#pragma once

// Instance-kind adapters: wrap the extended models (width-weighted busy
// time, multi-window active time) as core::InstanceExtension payloads so
// they travel through ProblemInstance / SolverRegistry / engine::runner on
// the same rails as the standard kinds. Solvers reach the concrete model
// back through the typed accessors below. The adapters also own the two
// models' Instance I/O v2 codecs (`model weighted` / `model multi-window`
// with per-job weight/window lines): linking this translation unit
// registers them with core::parse_instance, and the extensions implement
// the write hooks, so write_instance ∘ parse_instance is the identity for
// the extended kinds exactly as for the standard ones.

#include <memory>

#include "active/multi_window.hpp"
#include "busy/weighted.hpp"
#include "core/solver.hpp"

namespace abt::engine {

/// busy::WeightedInstance as a ProblemInstance payload (Family::kBusy,
/// InstanceKind::kWeighted).
class WeightedExtension final : public core::InstanceExtension {
 public:
  explicit WeightedExtension(busy::WeightedInstance inst)
      : inst_(std::move(inst)) {}

  [[nodiscard]] core::InstanceKind kind() const override {
    return core::InstanceKind::kWeighted;
  }
  [[nodiscard]] int size() const override { return inst_.size(); }
  [[nodiscard]] int capacity() const override { return inst_.capacity(); }
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string_view model_name() const override {
    return "weighted";
  }
  bool write_body(std::ostream& out) const override;

  [[nodiscard]] const busy::WeightedInstance& instance() const {
    return inst_;
  }

 private:
  busy::WeightedInstance inst_;
};

/// active::MultiWindowInstance as a ProblemInstance payload
/// (Family::kActive, InstanceKind::kMultiWindow).
class MultiWindowExtension final : public core::InstanceExtension {
 public:
  explicit MultiWindowExtension(active::MultiWindowInstance inst)
      : inst_(std::move(inst)) {}

  [[nodiscard]] core::InstanceKind kind() const override {
    return core::InstanceKind::kMultiWindow;
  }
  [[nodiscard]] int size() const override { return inst_.size(); }
  [[nodiscard]] int capacity() const override { return inst_.capacity(); }
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::string_view model_name() const override {
    return "multi-window";
  }
  bool write_body(std::ostream& out) const override;

  [[nodiscard]] const active::MultiWindowInstance& instance() const {
    return inst_;
  }

 private:
  active::MultiWindowInstance inst_;
};

[[nodiscard]] core::ProblemInstance make_weighted_instance(
    busy::WeightedInstance inst);
[[nodiscard]] core::ProblemInstance make_multi_window_instance(
    active::MultiWindowInstance inst);

/// Typed accessors; assert on a kind mismatch (the registry's kind gate
/// guarantees solvers never see the wrong payload).
[[nodiscard]] const busy::WeightedInstance& weighted_of(
    const core::ProblemInstance& inst);
[[nodiscard]] const active::MultiWindowInstance& multi_window_of(
    const core::ProblemInstance& inst);

/// Registers the `weighted` / `multi-window` codecs with core/io.
/// Idempotent; runs automatically when this translation unit is linked
/// (and again from engine::builtin_registry for belt and braces), so any
/// binary that can solve an extended kind can also parse and emit it.
void register_instance_codecs();

}  // namespace abt::engine
