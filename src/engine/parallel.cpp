#include "engine/parallel.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/assert.hpp"

namespace abt::engine {

namespace {

/// True on threads owned by a ThreadPool — nested parallel_for calls from
/// inside a cell run inline instead of deadlocking on the pool.
thread_local bool tl_pool_worker = false;

constexpr std::uint64_t pack(std::size_t begin, std::size_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) |
         static_cast<std::uint64_t>(end);
}
constexpr std::size_t range_begin(std::uint64_t packed) {
  return static_cast<std::size_t>(packed >> 32);
}
constexpr std::size_t range_end(std::uint64_t packed) {
  return static_cast<std::size_t>(packed & 0xffffffffULL);
}
constexpr std::size_t range_size(std::uint64_t packed) {
  const std::size_t b = range_begin(packed);
  const std::size_t e = range_end(packed);
  return b < e ? e - b : 0;
}

/// Cap on one owner claim. Chunks shrink geometrically (a quarter of the
/// remaining range per claim) down to single cells, so the tail stays
/// fine-grained enough for stealing to even out irregular cells.
constexpr std::size_t kMaxChunk = 64;

std::size_t chunk_of(std::size_t remaining) {
  return std::max<std::size_t>(
      1, std::min(kMaxChunk, remaining / 4));
}

/// Owner side of the queue: claims an adaptive chunk off the front (the
/// whole range in drain mode). Returns an empty pair when the range is
/// exhausted.
std::pair<std::size_t, std::size_t> claim_front(
    std::atomic<std::uint64_t>& range, bool take_all) {
  std::uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t b = range_begin(cur);
    const std::size_t e = range_end(cur);
    if (b >= e) return {0, 0};
    const std::size_t take = take_all ? e - b : chunk_of(e - b);
    if (range.compare_exchange_weak(cur, pack(b + take, e),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      ABT_DBG_ASSERT(take >= 1 && b + take <= e,
                     "owner claim must shrink its range from the front");
      return {b, b + take};
    }
  }
}

/// Thief side: takes half the victim's remainder off the back (all of it
/// in drain mode). Front and back operate on the same atomic word, so a
/// steal can never overlap an owner claim; ranges only shrink within a
/// batch, which rules out ABA.
std::pair<std::size_t, std::size_t> steal_back(
    std::atomic<std::uint64_t>& range, bool take_all) {
  std::uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t b = range_begin(cur);
    const std::size_t e = range_end(cur);
    if (b >= e) return {0, 0};
    const std::size_t take = take_all ? e - b : (e - b + 1) / 2;
    if (range.compare_exchange_weak(cur, pack(b, e - take),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      ABT_DBG_ASSERT(take >= 1 && take <= e - b,
                     "steal must shrink the victim's range from the back");
      return {e - take, e};
    }
  }
}

/// The inline path: identical cell semantics (begin_cell per cell,
/// cancellation drains the tail), no pool involved.
void serial_run(std::size_t items, const std::function<void(std::size_t)>& fn,
                const ParallelOptions& options) {
  bool drain = false;
  for (std::size_t i = 0; i < items; ++i) {
    if (!drain && options.cancel.cancelled()) drain = true;
    if (drain && options.on_cancelled) {
      options.on_cancelled(i);
    } else {
      begin_cell();
      fn(i);
    }
  }
}

}  // namespace

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hardware));
}

ThreadPool::ThreadPool(int threads) {
  std::unique_lock<std::mutex> lock(mutex_);
  spawn_locked(std::max(0, threads));
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread*> to_join;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    for (int i = 0; i < live_workers_; ++i) {
      to_join.push_back(&slots_[static_cast<std::size_t>(i)]->thread);
    }
    live_workers_ = 0;
  }
  work_ready_.notify_all();
  for (std::thread* worker : to_join) worker->join();
}

ThreadPool& ThreadPool::shared() {
  // Created empty: a process that only runs serial sweeps never spawns a
  // worker. Function-local static so workers are joined exactly once at
  // exit (after main, when the pool is necessarily idle).
  static ThreadPool pool(0);
  return pool;
}

int ThreadPool::thread_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return live_workers_;
}

void ThreadPool::spawn_locked(int target) {
  while (static_cast<int>(slots_.size()) < target) {
    slots_.push_back(std::make_unique<Slot>());
  }
  for (int i = live_workers_; i < target; ++i) {
    // The spawn-time epoch is the worker's "already seen" baseline. It is
    // captured under the lock while no batch is open, so a batch published
    // any time after this line has a strictly newer epoch — a fresh worker
    // can never mistake an in-flight batch for one it already served
    // (reading epoch_ on first lock acquisition inside the worker would).
    slots_[static_cast<std::size_t>(i)]->thread =
        std::thread(&ThreadPool::worker_main, this,
                    static_cast<std::size_t>(i), epoch_);
  }
  live_workers_ = std::max(live_workers_, target);
}

void ThreadPool::resize(int threads) {
  const int target = std::max(0, threads);
  std::vector<std::thread*> to_join;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    pool_idle_.wait(lock, [this] { return !batch_open_; });
    if (target < live_workers_) {
      for (int i = target; i < live_workers_; ++i) {
        to_join.push_back(&slots_[static_cast<std::size_t>(i)]->thread);
      }
      live_workers_ = target;  // workers with idx >= live_workers_ exit
    } else {
      spawn_locked(target);
    }
  }
  work_ready_.notify_all();
  for (std::thread* worker : to_join) worker->join();
}

void ThreadPool::ensure_workers(int threads) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (threads <= live_workers_) return;
  pool_idle_.wait(lock, [this] { return !batch_open_; });
  spawn_locked(threads);
}

void ThreadPool::worker_main(std::size_t slot_index, std::uint64_t seen) {
  std::unique_lock<std::mutex> lock(mutex_);
  // slots_ may be mid-push_back on another thread; index it under the lock
  // (the pointee itself is stable — slots are unique_ptrs and never die).
  Slot& slot = *slots_[slot_index];
  lock.unlock();

  // Worker-slot identity: the arena and scratch record this thread uses
  // belong to the SLOT, so they persist across pool resizes and are
  // reused by every sweep the process runs.
  core::set_thread_arena(&slot.arena);
  bind_worker_scratch(&slot.scratch);
  tl_pool_worker = true;

  lock.lock();
  for (;;) {
    work_ready_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int>(slot_index) >= live_workers_ ||
             epoch_ != seen;
    });
    if (stopping_ || static_cast<int>(slot_index) >= live_workers_) break;
    seen = epoch_;
    if (slot_index >= participants_) continue;
    lock.unlock();
    run_batch(slot_index, slot);
    lock.lock();
    if constexpr (core::kAuditEnabled) audit_invariants_locked();
    if (++finished_ == participants_) batch_done_.notify_all();
  }
  lock.unlock();
  tl_pool_worker = false;
  bind_worker_scratch(nullptr);
  core::set_thread_arena(nullptr);
}

void ThreadPool::run_batch(std::size_t self, Slot& slot) {
  // batch_fn_ / batch_options_ / participants_ are frozen for the whole
  // batch; the publishing caller cannot return (and so cannot retire
  // them) before this worker reports finished.
  const std::function<void(std::size_t)>& fn = *batch_fn_;
  const ParallelOptions& options = *batch_options_;
  const std::size_t P = participants_;

  const auto run_cells = [&](std::size_t b, std::size_t e, bool drained) {
    for (std::size_t i = b; i < e; ++i) {
      if (drained && options.on_cancelled) {
        // Cancellation-aware draining: stamp the slot, skip dispatch.
        options.on_cancelled(i);
      } else {
        begin_cell();
        fn(i);
      }
    }
  };

  bool drain = false;
  for (;;) {
    if (!drain && options.cancel.cancelled()) drain = true;
    const auto [b, e] = claim_front(ranges_[self].packed, drain);
    if (b < e) {
      ++slot.chunks_claimed;
      run_cells(b, e, drain);
      continue;
    }
    // Own queue empty: steal from the victim with the most work left.
    std::size_t victim = P;
    std::size_t most = 0;
    for (std::size_t off = 1; off < P; ++off) {
      const std::size_t v = (self + off) % P;
      const std::size_t n =
          range_size(ranges_[v].packed.load(std::memory_order_acquire));
      if (n > most) {
        most = n;
        victim = v;
      }
    }
    if (victim == P) break;  // every queue drained; batch is over for us
    const auto [sb, se] = steal_back(ranges_[victim].packed, drain);
    if (sb >= se) continue;  // lost the race; rescan
    ++slot.steals;
    // Install the loot as our own queue so other idle workers can steal
    // from it in turn, then go back to claiming chunks off the front.
    ranges_[self].packed.store(pack(sb, se), std::memory_order_release);
  }
}

void ThreadPool::parallel_for(std::size_t items,
                              const std::function<void(std::size_t)>& fn,
                              int max_workers,
                              const ParallelOptions& options) {
  if (items == 0) return;
  if (tl_pool_worker) {  // nested parallelism runs inline
    serial_run(items, fn, options);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // One batch at a time; concurrent external callers queue here.
  pool_idle_.wait(lock, [this] { return !batch_open_; });
  const std::size_t limit =
      max_workers <= 0 ? std::numeric_limits<std::size_t>::max()
                       : static_cast<std::size_t>(max_workers);
  const std::size_t P =
      std::min({static_cast<std::size_t>(live_workers_), limit, items});
  if (P <= 1) {
    lock.unlock();
    serial_run(items, fn, options);
    return;
  }
  if (ranges_.size() < P) {
    std::vector<Range> grown(P);
    ranges_.swap(grown);
  }
  // Even initial partition; the ranges are published before the epoch
  // bump, and workers acquire the mutex before reading them.
  const std::size_t base = items / P;
  const std::size_t rem = items % P;
  std::size_t at = 0;
  for (std::size_t i = 0; i < P; ++i) {
    const std::size_t len = base + (i < rem ? 1 : 0);
    ranges_[i].packed.store(pack(at, at + len), std::memory_order_relaxed);
    at += len;
  }
  batch_fn_ = &fn;
  batch_options_ = &options;
  batch_items_ = items;
  participants_ = P;
  finished_ = 0;
  batch_open_ = true;
  ++epoch_;
  if constexpr (core::kAuditEnabled) audit_invariants_locked();
  work_ready_.notify_all();
  // Epoch wait: woken once by the last participant, no polling. Waiting
  // until every participant has detached also makes it safe for the
  // caller to pop `fn` and `options` off its stack on return.
  batch_done_.wait(lock, [this] { return finished_ == participants_; });
  if constexpr (core::kAuditEnabled) audit_invariants_locked();
  batch_open_ = false;
  batch_fn_ = nullptr;
  batch_options_ = nullptr;
  pool_idle_.notify_one();
}

void ThreadPool::audit_invariants_locked() const {
  if constexpr (!core::kAuditEnabled) return;
  ABT_DBG_ASSERT(finished_ <= participants_,
                 "more workers finished than ever participated");
  ABT_DBG_ASSERT(participants_ <= ranges_.size(),
                 "participants without a published range");
  ABT_DBG_ASSERT(live_workers_ >= 0 &&
                     static_cast<std::size_t>(live_workers_) <= slots_.size(),
                 "worker ledger inconsistent with the slot table");
  for (std::size_t i = 0; i < participants_; ++i) {
    const std::uint64_t packed =
        ranges_[i].packed.load(std::memory_order_acquire);
    const std::size_t b = range_begin(packed);
    const std::size_t e = range_end(packed);
    ABT_DBG_ASSERT(b <= e, "range begin ran past its end");
    if (b < e) {
      ABT_DBG_ASSERT(e <= batch_items_,
                     "published range reaches past the batch's item space");
    }
  }
  // At the completion seam every queue must have drained: a leftover
  // claimable range with all participants finished is lost work.
  if (finished_ == participants_ && participants_ > 0) {
    for (std::size_t i = 0; i < participants_; ++i) {
      ABT_DBG_ASSERT(
          range_size(ranges_[i].packed.load(std::memory_order_acquire)) == 0,
          "batch completed with unclaimed cells left in a queue");
    }
  }
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<WorkerStats> out;
  out.reserve(slots_.size());
  for (const std::unique_ptr<Slot>& slot : slots_) {
    WorkerStats stats;
    stats.cells_served = slot->scratch.cells_served;
    stats.peak_arena_bytes = slot->scratch.peak_arena_bytes;
    stats.arena_capacity = slot->arena.capacity();
    stats.chunks_claimed = slot->chunks_claimed;
    stats.steals = slot->steals;
    out.push_back(stats);
  }
  return out;
}

void parallel_for(int threads, std::size_t items,
                  const std::function<void(std::size_t)>& fn,
                  const ParallelOptions& options) {
  // Tiny batches (and explicit --threads 1) never pay pool dispatch: the
  // serial path has identical begin_cell semantics and identical results.
  if (threads <= 1 || tl_pool_worker ||
      (items < kSerialBatchThreshold && !options.eager_dispatch)) {
    serial_run(items, fn, options);
    return;
  }
  ThreadPool& pool = ThreadPool::shared();
  pool.ensure_workers(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), items)));
  pool.parallel_for(items, fn, threads, options);
}

}  // namespace abt::engine
