#include "engine/parallel.hpp"

#include <algorithm>
#include <utility>

#include "engine/scratch.hpp"

namespace abt::engine {

int resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hardware));
}

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --busy_;
      if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
    }
  }
}

void parallel_for(int threads, std::size_t items,
                  const std::function<void(std::size_t)>& fn) {
  // Every cell starts with begin_cell(): the executing thread rewinds its
  // scratch arena so per-trial solver buffers are recycled (and
  // periodically trimmed) instead of growing a monotonic footprint across
  // a sweep or campaign.
  if (threads <= 1 || items <= 1) {
    for (std::size_t i = 0; i < items; ++i) {
      begin_cell();
      fn(i);
    }
    return;
  }
  ThreadPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), items)));
  for (std::size_t i = 0; i < items; ++i) {
    pool.submit([&fn, i] {
      begin_cell();
      fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace abt::engine
