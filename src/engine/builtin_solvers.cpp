#include "engine/builtin_solvers.hpp"

#include <utility>

#include "active/exact.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/dp_unbounded.hpp"
#include "busy/exact_busy.hpp"
#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/online.hpp"
#include "busy/preemptive.hpp"
#include "busy/special_cases.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/sweep.hpp"

namespace abt::engine {

using core::Family;
using core::ProblemInstance;
using core::Solution;
using core::Solver;

namespace {

bool interval_jobs(const ProblemInstance& inst, std::string* why) {
  if (inst.continuous.all_interval_jobs(1e-6)) return true;
  if (why != nullptr) *why = "needs interval jobs (no slack)";
  return false;
}

bool flexible_jobs(const ProblemInstance& inst, std::string* why) {
  if (!inst.continuous.all_interval_jobs(1e-6)) return true;
  if (why != nullptr) {
    *why = "interval jobs: use the direct interval algorithms";
  }
  return false;
}

Solution busy_solution(core::BusySchedule sched, const ProblemInstance& inst) {
  Solution sol;
  sol.ok = true;
  sol.cost = core::busy_cost(inst.continuous, sched);
  sol.busy = std::move(sched);
  return sol;
}

/// Direct interval-job algorithm taking (instance) -> BusySchedule.
template <typename Fn>
Solver interval_solver(std::string name, std::string guarantee, double factor,
                       Fn fn) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = factor;
  s.applicable = interval_jobs;
  s.run = [fn](const ProblemInstance& inst) {
    return busy_solution(fn(inst.continuous), inst);
  };
  return s;
}

/// Section 4.3 pipeline: freeze with the g=infinity DP, then run the given
/// interval algorithm. Registered for flexible instances only — on interval
/// jobs the pipeline degenerates to the direct algorithm.
Solver pipeline_solver(std::string name, std::string guarantee, double factor,
                       busy::IntervalAlgorithm algorithm) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = factor;
  s.applicable = flexible_jobs;
  s.run = [algorithm](const ProblemInstance& inst) {
    const busy::FlexiblePipelineResult result =
        busy::schedule_flexible(inst.continuous, algorithm);
    Solution sol = busy_solution(result.schedule, inst);
    sol.add_stat("opt_inf", result.opt_infinity);
    sol.add_stat("dp_exact", result.dp_exact ? 1.0 : 0.0);
    return sol;
  };
  return s;
}

Solver online_solver(std::string name, busy::OnlinePolicy policy) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.guarantee = "online baseline (Omega(g) adversarial)";
  s.guarantee_factor = 0.0;
  s.applicable = interval_jobs;
  s.run = [policy](const ProblemInstance& inst) {
    return busy_solution(busy::schedule_online(inst.continuous, policy), inst);
  };
  return s;
}

/// Minimal-feasible active solver with a fixed closing order.
Solver minimal_solver(std::string name, std::string guarantee,
                      active::CloseOrder order) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kActive;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = 3.0;
  s.run = [order](const ProblemInstance& inst) {
    Solution sol;
    active::MinimalFeasibleOptions options;
    options.order = order;
    const auto schedule = active::solve_minimal_feasible(inst.slotted, options);
    if (!schedule.has_value()) {
      sol.message = "instance infeasible";
      return sol;
    }
    sol.ok = true;
    sol.cost = static_cast<double>(schedule->cost());
    sol.active = *schedule;
    return sol;
  };
  return s;
}

void register_busy(core::SolverRegistry& registry) {
  registry.add(interval_solver(
      "busy/first-fit", "<= 4 OPT (Flammini et al.)", 4.0,
      [](const core::ContinuousInstance& inst) { return busy::first_fit(inst); }));
  registry.add(interval_solver(
      "busy/first-fit-release", "<= 2 OPT on proper instances", 0.0,
      [](const core::ContinuousInstance& inst) {
        return busy::first_fit_by_release(inst);
      }));
  registry.add(interval_solver(
      "busy/greedy-tracking", "<= 3 OPT (Thm 5)", 3.0,
      [](const core::ContinuousInstance& inst) {
        return busy::greedy_tracking(inst);
      }));
  registry.add(interval_solver(
      "busy/two-track-peeling", "<= 2 OPT (Thm 3, consolidating split)", 2.0,
      [](const core::ContinuousInstance& inst) {
        return busy::two_track_peeling(inst);
      }));
  registry.add(interval_solver(
      "busy/two-track-parity", "<= 2 OPT (Thm 3, Kumar-Rudra split)", 2.0,
      [](const core::ContinuousInstance& inst) {
        return busy::two_track_peeling(inst, nullptr,
                                       busy::PairSplit::kParity);
      }));

  {
    Solver s;
    s.name = "busy/exact";
    s.family = Family::kBusy;
    s.guarantee = "optimal (partition search)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.applicable = [](const ProblemInstance& inst, std::string* why) {
      if (!interval_jobs(inst, why)) return false;
      if (inst.continuous.size() > busy::ExactBusyOptions{}.max_jobs) {
        if (why != nullptr) *why = "instance too large for the exact oracle";
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst) {
      const auto sched = busy::solve_exact_interval(inst.continuous);
      Solution sol;
      if (!sched.has_value()) {
        sol.message = "exact oracle refused the instance";
        return sol;
      }
      sol = busy_solution(*sched, inst);
      sol.exact = true;
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "busy/proper-clique-dp";
    s.family = Family::kBusy;
    s.guarantee = "optimal (Mertzios et al. DP)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.applicable = [](const ProblemInstance& inst, std::string* why) {
      if (!interval_jobs(inst, why)) return false;
      if (!busy::is_proper_instance(inst.continuous) ||
          !busy::is_clique_instance(inst.continuous)) {
        if (why != nullptr) *why = "needs a proper clique instance";
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst) {
      const auto sched = busy::solve_proper_clique(inst.continuous);
      Solution sol;
      if (!sched.has_value()) {
        sol.message = "not a proper clique";
        return sol;
      }
      sol = busy_solution(*sched, inst);
      sol.exact = true;
      return sol;
    };
    registry.add(std::move(s));
  }

  registry.add(online_solver("busy/online-first-fit",
                             busy::OnlinePolicy::kFirstFit));
  registry.add(online_solver("busy/online-best-fit",
                             busy::OnlinePolicy::kBestFit));
  registry.add(online_solver("busy/online-next-fit",
                             busy::OnlinePolicy::kNextFit));

  registry.add(pipeline_solver("busy/pipeline-greedy-tracking",
                               "<= 3 OPT (sec 4.3 + Thm 5)", 3.0,
                               busy::IntervalAlgorithm::kGreedyTracking));
  registry.add(pipeline_solver("busy/pipeline-two-track-peeling",
                               "<= 4 OPT (Thm 10)", 4.0,
                               busy::IntervalAlgorithm::kTwoTrackPeeling));
  registry.add(pipeline_solver("busy/pipeline-first-fit",
                               "freeze + FIRSTFIT baseline (>= 4 worst case)",
                               0.0, busy::IntervalAlgorithm::kFirstFit));

  {
    Solver s;
    s.name = "busy/preemptive";
    s.family = Family::kBusy;
    s.guarantee = "<= 2 max(OPT_inf, mass/g) (Thm 7, preemptive)";
    s.guarantee_factor = 2.0;
    s.run = [](const ProblemInstance& inst) {
      const busy::PreemptiveBoundedSolution result =
          busy::solve_preemptive_bounded(inst.continuous);
      Solution sol;
      sol.ok = true;
      sol.cost = result.busy_time;
      sol.preemptive = result.schedule;
      sol.add_stat("opt_inf", result.opt_infinity);
      sol.add_stat("lb", std::max(result.opt_infinity,
                                  inst.continuous.mass_lower_bound()));
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    // The g = infinity DP as a standalone solver: when the frozen positions
    // already respect the capacity, a single machine carries everything and
    // the span lower bound is attained — a certified optimum.
    Solver s;
    s.name = "busy/dp-unbounded";
    s.family = Family::kBusy;
    s.guarantee = "optimal when the g=inf freeze fits g (Thm 4 DP)";
    s.guarantee_factor = 0.0;
    s.run = [](const ProblemInstance& inst) {
      const busy::UnboundedSolution dp =
          busy::solve_unbounded(inst.continuous);
      const core::ContinuousInstance frozen =
          busy::freeze_to_interval_instance(inst.continuous, dp);
      const int peak = core::max_concurrency(frozen.forced_intervals());
      Solution sol;
      if (!dp.exact || peak > inst.continuous.capacity()) {
        sol.message = "frozen g=inf solution exceeds capacity g";
      } else {
        core::BusySchedule sched;
        sched.placements.reserve(dp.starts.size());
        for (const double start : dp.starts) {
          sched.placements.push_back({0, start});
        }
        sol = busy_solution(std::move(sched), inst);
        sol.exact = true;
      }
      sol.add_stat("dp_states", static_cast<double>(dp.nodes));
      sol.add_stat("dp_interned", static_cast<double>(dp.interned));
      sol.add_stat("opt_inf", dp.busy_time);
      return sol;
    };
    registry.add(std::move(s));
  }
}

void register_active(core::SolverRegistry& registry) {
  registry.add(minimal_solver("active/minimal-feasible", "<= 3 OPT (Thm 1)",
                              active::CloseOrder::kLeftToRight));
  registry.add(minimal_solver("active/minimal-densest",
                              "<= 3 OPT (Thm 1, densest-first order)",
                              active::CloseOrder::kDensestFirst));

  {
    Solver s;
    s.name = "active/lp-rounding";
    s.family = Family::kActive;
    s.guarantee = "<= 2 OPT (Thm 2)";
    s.guarantee_factor = 2.0;
    s.run = [](const ProblemInstance& inst) {
      Solution sol;
      const auto result = active::solve_lp_rounding(inst.slotted);
      if (!result.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(result->schedule.cost());
      sol.active = result->schedule;
      sol.add_stat("lp_objective", result->lp_objective);
      sol.add_stat("repair_opens", result->repair_opens);
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "active/unit-greedy";
    s.family = Family::kActive;
    s.guarantee = "<= 3 OPT (minimal feasible); optimal for unit jobs";
    s.guarantee_factor = 3.0;
    s.run = [](const ProblemInstance& inst) {
      Solution sol;
      const auto schedule = active::solve_unit_greedy(inst.slotted);
      if (!schedule.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(schedule->cost());
      sol.active = *schedule;
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "active/exact";
    s.family = Family::kActive;
    s.guarantee = "optimal (branch & bound)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.applicable = [](const ProblemInstance& inst, std::string* why) {
      if (inst.slotted.size() > 12 || inst.slotted.horizon() > 24) {
        if (why != nullptr) {
          *why = "instance too large for branch & bound";
        }
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst) {
      Solution sol;
      const auto result = active::solve_exact(inst.slotted);
      if (!result.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(result->schedule.cost());
      sol.active = result->schedule;
      sol.exact = result->proven_optimal;
      sol.add_stat("nodes", static_cast<double>(result->nodes_explored));
      return sol;
    };
    registry.add(std::move(s));
  }
}

}  // namespace

core::SolverRegistry builtin_registry() {
  core::SolverRegistry registry;
  register_busy(registry);
  register_active(registry);
  return registry;
}

const core::SolverRegistry& shared_registry() {
  static const core::SolverRegistry registry = builtin_registry();
  return registry;
}

}  // namespace abt::engine
