#include "engine/builtin_solvers.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "active/exact.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/dp_unbounded.hpp"
#include "busy/exact_busy.hpp"
#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/online.hpp"
#include "busy/preemptive.hpp"
#include "busy/special_cases.hpp"
#include "busy/two_track_peeling.hpp"
#include "busy/weighted.hpp"
#include "core/sweep.hpp"
#include "engine/adapters.hpp"

namespace abt::engine {

using core::Family;
using core::InstanceKind;
using core::ProblemInstance;
using core::RunContext;
using core::Solution;
using core::Solver;

namespace {

/// The explicit "no gate" predicate. The project lint (scripts/abt_lint.py)
/// requires every registration to set `applicable`; solvers that genuinely
/// accept every instance of their family/kind say so by name instead of
/// leaving the field empty (an empty field crashed auto_entries() in PR 8).
bool always_applicable(const ProblemInstance& /*inst*/,
                       const RunContext& /*ctx*/, std::string* /*why*/) {
  return true;
}

bool interval_jobs(const ProblemInstance& inst, const RunContext& /*ctx*/,
                   std::string* why) {
  if (inst.continuous.all_interval_jobs(1e-6)) return true;
  if (why != nullptr) *why = "needs interval jobs (no slack)";
  return false;
}

bool flexible_jobs(const ProblemInstance& inst, const RunContext& /*ctx*/,
                   std::string* why) {
  if (!inst.continuous.all_interval_jobs(1e-6)) return true;
  if (why != nullptr) {
    *why = "interval jobs: use the direct interval algorithms";
  }
  return false;
}

Solution busy_solution(core::BusySchedule sched, const ProblemInstance& inst) {
  Solution sol;
  sol.ok = true;
  sol.cost = core::busy_cost(inst.continuous, sched);
  sol.busy = std::move(sched);
  return sol;
}

/// Direct interval-job algorithm taking (instance) -> BusySchedule.
template <typename Fn>
Solver interval_solver(std::string name, std::string guarantee, double factor,
                       Fn fn) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = factor;
  s.applicable = interval_jobs;
  s.check = core::check_standard_solution;
  s.run = [fn](const ProblemInstance& inst, const RunContext& /*ctx*/) {
    return busy_solution(fn(inst.continuous), inst);
  };
  return s;
}

/// Section 4.3 pipeline: freeze with the g=infinity DP, then run the given
/// interval algorithm. Registered for flexible instances only — on interval
/// jobs the pipeline degenerates to the direct algorithm.
Solver pipeline_solver(std::string name, std::string guarantee, double factor,
                       busy::IntervalAlgorithm algorithm) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = factor;
  s.applicable = flexible_jobs;
  s.check = core::check_standard_solution;
  s.run = [algorithm](const ProblemInstance& inst, const RunContext& /*ctx*/) {
    const busy::FlexiblePipelineResult result =
        busy::schedule_flexible(inst.continuous, algorithm);
    Solution sol = busy_solution(result.schedule, inst);
    sol.add_stat("opt_inf", result.opt_infinity);
    sol.add_stat("dp_exact", result.dp_exact ? 1.0 : 0.0);
    return sol;
  };
  return s;
}

Solver online_solver(std::string name, busy::OnlinePolicy policy) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.guarantee = "online baseline (Omega(g) adversarial)";
  s.guarantee_factor = 0.0;
  s.applicable = interval_jobs;
  s.check = core::check_standard_solution;
  s.run = [policy](const ProblemInstance& inst, const RunContext& /*ctx*/) {
    return busy_solution(busy::schedule_online(inst.continuous, policy), inst);
  };
  return s;
}

/// Minimal-feasible active solver with a fixed closing order.
Solver minimal_solver(std::string name, std::string guarantee,
                      active::CloseOrder order) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kActive;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = 3.0;
  s.applicable = always_applicable;
  s.check = core::check_standard_solution;
  s.run = [order](const ProblemInstance& inst, const RunContext& ctx) {
    Solution sol;
    active::MinimalFeasibleOptions options;
    options.order = order;
    options.context = &ctx;  // cancellation only; budgets cannot alter output
    bool cancelled = false;
    const auto schedule =
        active::solve_minimal_feasible(inst.slotted, options, &cancelled);
    if (!schedule.has_value()) {
      if (cancelled) {
        sol.timed_out = true;
        sol.message = "cancelled before feasibility was established";
        return sol;
      }
      sol.message = "instance infeasible";
      return sol;
    }
    sol.ok = true;
    sol.cost = static_cast<double>(schedule->cost());
    sol.active = *schedule;
    return sol;
  };
  return s;
}

void register_busy(core::SolverRegistry& registry) {
  registry.add(interval_solver(
      "busy/first-fit", "<= 4 OPT (Flammini et al.)", 4.0,
      [](const core::ContinuousInstance& inst) { return busy::first_fit(inst); }));
  registry.add(interval_solver(
      "busy/first-fit-release", "<= 2 OPT on proper instances", 0.0,
      [](const core::ContinuousInstance& inst) {
        return busy::first_fit_by_release(inst);
      }));
  registry.add(interval_solver(
      "busy/greedy-tracking", "<= 3 OPT (Thm 5)", 3.0,
      [](const core::ContinuousInstance& inst) {
        return busy::greedy_tracking(inst);
      }));
  registry.add(interval_solver(
      "busy/two-track-peeling", "<= 2 OPT (Thm 3, consolidating split)", 2.0,
      [](const core::ContinuousInstance& inst) {
        return busy::two_track_peeling(inst);
      }));
  registry.add(interval_solver(
      "busy/two-track-parity", "<= 2 OPT (Thm 3, Kumar-Rudra split)", 2.0,
      [](const core::ContinuousInstance& inst) {
        return busy::two_track_peeling(inst, nullptr,
                                       busy::PairSplit::kParity);
      }));

  {
    Solver s;
    s.name = "busy/exact";
    s.family = Family::kBusy;
    s.guarantee = "optimal (partition search; anytime under a budget)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.check = core::check_standard_solution;
    s.applicable = [](const ProblemInstance& inst, const RunContext& ctx,
                      std::string* why) {
      if (!interval_jobs(inst, ctx, why)) return false;
      // The measured gate is the free-run guard; a budget retires it —
      // the search runs anytime to the deadline and reports its gap.
      if (!ctx.has_budget() &&
          inst.continuous.size() > busy::ExactBusyOptions{}.max_jobs) {
        if (why != nullptr) {
          *why = "instance too large for the exact oracle (give it a "
                 "budget to run anytime)";
        }
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst, const RunContext& ctx) {
      busy::ExactBusyOptions options;
      options.context = &ctx;
      if (ctx.has_budget()) options.max_jobs = inst.continuous.size();
      const auto result =
          busy::solve_exact_interval_anytime(inst.continuous, options);
      Solution sol;
      if (!result.has_value()) {
        sol.message = "exact oracle refused the instance";
        return sol;
      }
      sol = busy_solution(result->schedule, inst);
      sol.exact = result->proven_optimal;
      sol.timed_out = !result->proven_optimal;
      if (!result->proven_optimal) {
        sol.best_bound =
            busy::busy_lower_bounds(inst.continuous, /*with_span=*/true)
                .best();
      }
      sol.add_stat("nodes", static_cast<double>(result->nodes));
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "busy/proper-clique-dp";
    s.family = Family::kBusy;
    s.guarantee = "optimal (Mertzios et al. DP)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.check = core::check_standard_solution;
    s.applicable = [](const ProblemInstance& inst, const RunContext& ctx,
                      std::string* why) {
      if (!interval_jobs(inst, ctx, why)) return false;
      if (!busy::is_proper_instance(inst.continuous) ||
          !busy::is_clique_instance(inst.continuous)) {
        if (why != nullptr) *why = "needs a proper clique instance";
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst, const RunContext& /*ctx*/) {
      const auto sched = busy::solve_proper_clique(inst.continuous);
      Solution sol;
      if (!sched.has_value()) {
        sol.message = "not a proper clique";
        return sol;
      }
      sol = busy_solution(*sched, inst);
      sol.exact = true;
      return sol;
    };
    registry.add(std::move(s));
  }

  registry.add(online_solver("busy/online-first-fit",
                             busy::OnlinePolicy::kFirstFit));
  registry.add(online_solver("busy/online-best-fit",
                             busy::OnlinePolicy::kBestFit));
  registry.add(online_solver("busy/online-next-fit",
                             busy::OnlinePolicy::kNextFit));

  registry.add(pipeline_solver("busy/pipeline-greedy-tracking",
                               "<= 3 OPT (sec 4.3 + Thm 5)", 3.0,
                               busy::IntervalAlgorithm::kGreedyTracking));
  registry.add(pipeline_solver("busy/pipeline-two-track-peeling",
                               "<= 4 OPT (Thm 10)", 4.0,
                               busy::IntervalAlgorithm::kTwoTrackPeeling));
  registry.add(pipeline_solver("busy/pipeline-first-fit",
                               "freeze + FIRSTFIT baseline (>= 4 worst case)",
                               0.0, busy::IntervalAlgorithm::kFirstFit));

  {
    Solver s;
    s.name = "busy/preemptive";
    s.family = Family::kBusy;
    s.guarantee = "<= 2 max(OPT_inf, mass/g) (Thm 7, preemptive)";
    s.guarantee_factor = 2.0;
    s.applicable = always_applicable;
    s.check = core::check_standard_solution;
    s.run = [](const ProblemInstance& inst, const RunContext& /*ctx*/) {
      const busy::PreemptiveBoundedSolution result =
          busy::solve_preemptive_bounded(inst.continuous);
      Solution sol;
      sol.ok = true;
      sol.cost = result.busy_time;
      sol.preemptive = result.schedule;
      sol.add_stat("opt_inf", result.opt_infinity);
      sol.add_stat("lb", std::max(result.opt_infinity,
                                  inst.continuous.mass_lower_bound()));
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    // The g = infinity DP as a standalone solver: when the frozen positions
    // already respect the capacity, a single machine carries everything and
    // the span lower bound is attained — a certified optimum.
    Solver s;
    s.name = "busy/dp-unbounded";
    s.family = Family::kBusy;
    s.guarantee = "optimal when the g=inf freeze fits g (Thm 4 DP)";
    s.guarantee_factor = 0.0;
    s.applicable = always_applicable;
    s.check = core::check_standard_solution;
    s.run = [](const ProblemInstance& inst, const RunContext& ctx) {
      busy::UnboundedOptions options;
      options.context = &ctx;
      const busy::UnboundedSolution dp =
          busy::solve_unbounded(inst.continuous, options);
      const core::ContinuousInstance frozen =
          busy::freeze_to_interval_instance(inst.continuous, dp);
      const int peak = core::max_concurrency(frozen.forced_intervals());
      Solution sol;
      sol.timed_out = dp.timed_out;
      if (!dp.exact || peak > inst.continuous.capacity()) {
        sol.message = dp.timed_out
                          ? "budget expired before the g=inf DP finished"
                          : "frozen g=inf solution exceeds capacity g";
      } else {
        core::BusySchedule sched;
        sched.placements.reserve(dp.starts.size());
        for (const double start : dp.starts) {
          sched.placements.push_back({0, start});
        }
        sol = busy_solution(std::move(sched), inst);
        sol.exact = true;
      }
      sol.add_stat("dp_states", static_cast<double>(dp.nodes));
      sol.add_stat("dp_interned", static_cast<double>(dp.interned));
      sol.add_stat("opt_inf", dp.busy_time);
      return sol;
    };
    registry.add(std::move(s));
  }
}

// ----------------------------------------------------------------------
// Extended kinds: the weighted (cumulative-width) busy-time model and the
// multi-window active-time model register through the InstanceKind adapter
// layer — their own applicability predicates, their own checkers, the same
// timed + validated registry path as every standard solver.

/// Applicability predicates may be probed directly (outside the registry's
/// kind gate), so they refuse wrong-kind instances instead of asserting.
bool is_weighted(const ProblemInstance& inst, std::string* why) {
  if (inst.kind == InstanceKind::kWeighted) return true;
  if (why != nullptr) *why = "needs a weighted instance";
  return false;
}

bool weighted_interval(const ProblemInstance& inst, const RunContext& /*ctx*/,
                       std::string* why) {
  if (!is_weighted(inst, why)) return false;
  if (weighted_of(inst).all_interval_jobs(1e-6)) return true;
  if (why != nullptr) *why = "needs interval jobs (no slack)";
  return false;
}

bool weighted_flexible(const ProblemInstance& inst, const RunContext& /*ctx*/,
                       std::string* why) {
  if (!is_weighted(inst, why)) return false;
  if (!weighted_of(inst).all_interval_jobs(1e-6)) return true;
  if (why != nullptr) {
    *why = "interval jobs: use the direct weighted algorithms";
  }
  return false;
}

bool check_weighted(const ProblemInstance& inst, const Solution& sol,
                    std::string* why) {
  if (!sol.busy.has_value()) {
    if (why != nullptr) *why = "weighted solver produced no schedule";
    return false;
  }
  return busy::check_weighted_schedule(weighted_of(inst), *sol.busy, why);
}

Solution weighted_solution(core::BusySchedule sched,
                           const ProblemInstance& inst) {
  Solution sol;
  sol.ok = true;
  sol.cost = core::busy_cost(weighted_of(inst).unweighted(), sched);
  sol.busy = std::move(sched);
  return sol;
}

/// Direct weighted interval algorithm taking (WeightedInstance) ->
/// BusySchedule.
template <typename Fn>
Solver weighted_solver(std::string name, std::string guarantee, double factor,
                       Fn fn) {
  Solver s;
  s.name = std::move(name);
  s.family = Family::kBusy;
  s.kind = InstanceKind::kWeighted;
  s.guarantee = std::move(guarantee);
  s.guarantee_factor = factor;
  s.applicable = weighted_interval;
  s.check = check_weighted;
  s.run = [fn](const ProblemInstance& inst, const RunContext& /*ctx*/) {
    return weighted_solution(fn(weighted_of(inst)), inst);
  };
  return s;
}

void register_weighted(core::SolverRegistry& registry) {
  registry.add(weighted_solver(
      "busy/weighted-first-fit",
      "heuristic (width-aware FIRSTFIT, non-increasing length)", 0.0,
      [](const busy::WeightedInstance& inst) {
        return busy::weighted_first_fit(inst);
      }));
  registry.add(weighted_solver(
      "busy/weighted-narrow-wide", "<= 5 OPT (Khandekar et al. [9] split)",
      5.0, [](const busy::WeightedInstance& inst) {
        return busy::narrow_wide_split(inst);
      }));

  {
    Solver s;
    s.name = "busy/weighted-exact";
    s.family = Family::kBusy;
    s.kind = InstanceKind::kWeighted;
    s.guarantee = "optimal (partition search; anytime under a budget)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.check = check_weighted;
    s.applicable = [](const ProblemInstance& inst, const RunContext& ctx,
                      std::string* why) {
      if (!weighted_interval(inst, ctx, why)) return false;
      if (!ctx.has_budget() &&
          weighted_of(inst).size() > busy::WeightedExactOptions{}.max_jobs) {
        if (why != nullptr) {
          *why = "instance too large for the exact oracle (give it a "
                 "budget to run anytime)";
        }
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst, const RunContext& ctx) {
      const busy::WeightedInstance& winst = weighted_of(inst);
      busy::WeightedExactOptions options;
      options.context = &ctx;
      if (ctx.has_budget()) options.max_jobs = winst.size();
      const auto result = busy::solve_exact_weighted_anytime(winst, options);
      Solution sol;
      if (!result.has_value()) {
        sol.message = "exact oracle refused the instance";
        return sol;
      }
      sol = weighted_solution(result->schedule, inst);
      sol.exact = result->proven_optimal;
      sol.timed_out = !result->proven_optimal;
      if (!result->proven_optimal) {
        sol.best_bound =
            std::max(winst.mass_lower_bound(), winst.span_lower_bound());
      }
      sol.add_stat("nodes", static_cast<double>(result->nodes));
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "busy/weighted-flexible";
    s.family = Family::kBusy;
    s.kind = InstanceKind::kWeighted;
    s.guarantee = "freeze (g=inf DP) + narrow/wide (Khandekar recipe)";
    s.guarantee_factor = 0.0;
    s.applicable = weighted_flexible;
    s.check = check_weighted;
    s.run = [](const ProblemInstance& inst, const RunContext& /*ctx*/) {
      return weighted_solution(
          busy::schedule_weighted_flexible(weighted_of(inst)), inst);
    };
    registry.add(std::move(s));
  }
}

/// Probed directly as well as through the registry's kind gate, so it
/// refuses wrong-kind instances instead of asserting (like is_weighted).
bool applicable_multi_window(const ProblemInstance& inst,
                             const RunContext& /*ctx*/, std::string* why) {
  if (inst.kind == InstanceKind::kMultiWindow) return true;
  if (why != nullptr) *why = "needs a multi-window instance";
  return false;
}

bool check_multi_window(const ProblemInstance& inst, const Solution& sol,
                        std::string* why) {
  if (!sol.active.has_value()) {
    if (why != nullptr) *why = "multi-window solver produced no schedule";
    return false;
  }
  return active::mw_check_schedule(multi_window_of(inst), *sol.active, why);
}

void register_multi_window(core::SolverRegistry& registry) {
  {
    Solver s;
    s.name = "active/multi-window-minimal";
    s.family = Family::kActive;
    s.kind = InstanceKind::kMultiWindow;
    s.guarantee = "minimal feasible heuristic (no factor carries over)";
    s.guarantee_factor = 0.0;
    s.check = check_multi_window;
    s.applicable = applicable_multi_window;
    s.run = [](const ProblemInstance& inst, const RunContext& /*ctx*/) {
      Solution sol;
      const auto sched =
          active::mw_solve_minimal_feasible(multi_window_of(inst));
      if (!sched.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(sched->cost());
      sol.active = *sched;
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "active/multi-window-exact";
    s.family = Family::kActive;
    s.kind = InstanceKind::kMultiWindow;
    s.guarantee = "optimal (subset enumeration; anytime under a budget)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.check = check_multi_window;
    s.applicable = [](const ProblemInstance& inst, const RunContext& ctx,
                      std::string* why) {
      if (inst.kind != InstanceKind::kMultiWindow) {
        if (why != nullptr) *why = "needs a multi-window instance";
        return false;
      }
      // Measured gate (docs/ALGORITHMS.md): enumeration is 2^candidates
      // max-flow checks — ~8 s at 22 candidate slots on one core, tens of
      // ms at 18. A budget lifts the measured gate, but only up to the
      // 64-bit-mask structural cap of 22 candidates.
      const std::size_t candidates =
          active::mw_candidate_slots(multi_window_of(inst)).size();
      const std::size_t gate = ctx.has_budget() ? 22 : 18;
      if (candidates > gate) {
        if (why != nullptr) {
          *why = "too many candidate slots (" + std::to_string(candidates) +
                 " > " + std::to_string(gate) + ") for subset enumeration";
        }
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst, const RunContext& ctx) {
      Solution sol;
      active::MultiWindowExactOptions options;
      options.context = &ctx;
      const auto result =
          active::mw_solve_exact_anytime(multi_window_of(inst), options);
      if (!result.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(result->schedule.cost());
      sol.active = result->schedule;
      sol.exact = result->proven_optimal;
      sol.timed_out = !result->proven_optimal;
      if (!result->proven_optimal) {
        const active::MultiWindowInstance& mw = multi_window_of(inst);
        sol.best_bound = std::ceil(static_cast<double>(mw.total_work()) /
                                   static_cast<double>(mw.capacity()));
      }
      return sol;
    };
    registry.add(std::move(s));
  }
}

void register_active(core::SolverRegistry& registry) {
  registry.add(minimal_solver("active/minimal-feasible", "<= 3 OPT (Thm 1)",
                              active::CloseOrder::kLeftToRight));
  registry.add(minimal_solver("active/minimal-densest",
                              "<= 3 OPT (Thm 1, densest-first order)",
                              active::CloseOrder::kDensestFirst));

  {
    Solver s;
    s.name = "active/lp-rounding";
    s.family = Family::kActive;
    s.guarantee = "<= 2 OPT (Thm 2)";
    s.guarantee_factor = 2.0;
    s.applicable = always_applicable;
    s.check = core::check_standard_solution;
    s.run = [](const ProblemInstance& inst, const RunContext& ctx) {
      Solution sol;
      const auto result = active::solve_lp_rounding(inst.slotted, &ctx);
      if (!result.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      if (result->cancelled) {
        sol.timed_out = true;
        sol.message = "cancelled before LP solve completed";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(result->schedule.cost());
      sol.active = result->schedule;
      sol.add_stat("lp_objective", result->lp_objective);
      sol.add_stat("repair_opens", result->repair_opens);
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "active/unit-greedy";
    s.family = Family::kActive;
    s.guarantee = "<= 3 OPT (minimal feasible); optimal for unit jobs";
    s.guarantee_factor = 3.0;
    s.applicable = always_applicable;
    s.check = core::check_standard_solution;
    s.run = [](const ProblemInstance& inst, const RunContext& /*ctx*/) {
      Solution sol;
      const auto schedule = active::solve_unit_greedy(inst.slotted);
      if (!schedule.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(schedule->cost());
      sol.active = *schedule;
      return sol;
    };
    registry.add(std::move(s));
  }

  {
    Solver s;
    s.name = "active/exact";
    s.family = Family::kActive;
    s.guarantee = "optimal (branch & bound; anytime under a budget)";
    s.guarantee_factor = 1.0;
    s.exact = true;
    s.check = core::check_standard_solution;
    s.applicable = [](const ProblemInstance& inst, const RunContext& ctx,
                      std::string* why) {
      // Measured gate (docs/ALGORITHMS.md): the search is horizon-driven,
      // not job-driven — worst observed wall time at horizon 24 is ~0.3 s
      // for any n <= 20, but horizon 32 already costs seconds. A budget
      // retires the gate: the branch & bound is seeded with a feasible
      // incumbent and runs anytime to the deadline.
      if (!ctx.has_budget() &&
          (inst.slotted.size() > 20 || inst.slotted.horizon() > 24)) {
        if (why != nullptr) {
          *why = "instance too large for branch & bound (give it a budget "
                 "to run anytime)";
        }
        return false;
      }
      return true;
    };
    s.run = [](const ProblemInstance& inst, const RunContext& ctx) {
      Solution sol;
      active::ExactOptions options;
      options.context = &ctx;
      const auto result = active::solve_exact(inst.slotted, options);
      if (!result.has_value()) {
        sol.message = "instance infeasible";
        return sol;
      }
      if (result->cancelled) {
        // Cancelled before the incumbent seed existed: the result carries
        // no schedule, so report the decline instead of reading it.
        sol.timed_out = true;
        sol.message = "cancelled before an incumbent was seeded";
        return sol;
      }
      sol.ok = true;
      sol.cost = static_cast<double>(result->schedule.cost());
      sol.active = result->schedule;
      sol.exact = result->proven_optimal;
      sol.timed_out = result->timed_out;
      if (!result->proven_optimal) {
        sol.best_bound =
            static_cast<double>(inst.slotted.mass_lower_bound());
      }
      sol.add_stat("nodes", static_cast<double>(result->nodes_explored));
      return sol;
    };
    registry.add(std::move(s));
  }
}

}  // namespace

core::SolverRegistry builtin_registry() {
  // Solving and serializing an extended kind travel together: anything
  // holding the registry can also parse/emit `model weighted` and
  // `model multi-window` files (idempotent; the adapters TU registers the
  // codecs at load time already).
  register_instance_codecs();
  core::SolverRegistry registry;
  register_busy(registry);
  register_active(registry);
  register_weighted(registry);
  register_multi_window(registry);
  return registry;
}

const core::SolverRegistry& shared_registry() {
  static const core::SolverRegistry registry = builtin_registry();
  return registry;
}

}  // namespace abt::engine
