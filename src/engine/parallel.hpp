#pragma once

// The trial-sweep scheduler: one lazily-created, process-wide persistent
// ThreadPool reused across every run_sweep / run_campaign / bench
// invocation. parallel_for hands out index RANGES through per-worker
// work-stealing queues (packed-atomic [begin, end) pairs — adaptive chunk
// claims from the front by the owner, half-steals from the back by idle
// workers), so dispatch costs no per-cell heap allocation and no global
// lock, and irregular cells (a budgeted exact search next to a
// microsecond greedy) cannot leave workers idle behind a central queue.
//
// The determinism invariant carried from PR 3 is untouched: fn(i) writes
// only slot i of a pre-sized result vector, so everything aggregated from
// the results is bit-identical for any worker count and any steal order.
//
// Cancellation is drained at the scheduler: once the sweep's CancelToken
// trips, workers claim whole remaining ranges at once and stamp each
// skipped index through `on_cancelled` (when provided) instead of paying
// per-cell dispatch + solver startup — a cancelled campaign stops after
// O(workers) in-flight cells.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/run_context.hpp"
#include "core/scratch.hpp"
#include "engine/scratch.hpp"

namespace abt::engine {

/// Resolves a thread-count request: values >= 1 pass through, anything
/// else (0, negative) becomes the hardware concurrency (at least 1).
[[nodiscard]] int resolve_threads(int requested);

/// Batches smaller than this run inline on the calling thread (same
/// begin_cell() semantics, no pool wakeup): dispatch overhead cannot be
/// amortized over so few cells, and the serial path is bitwise-identical
/// anyway.
inline constexpr std::size_t kSerialBatchThreshold = 4;

struct ParallelOptions {
  /// Polled at every chunk claim; once cancelled, remaining indices are
  /// drained (see on_cancelled) instead of dispatched as normal cells.
  core::CancelToken cancel;
  /// Called instead of fn for every index not yet claimed when `cancel`
  /// trips (no begin_cell, whole-range claims). Every index is still
  /// visited exactly once — callers use this to stamp their pre-sized
  /// result slots with a cheap "cancelled" record. When empty, fn runs
  /// for drained indices too (it is expected to decline cheaply itself).
  std::function<void(std::size_t)> on_cancelled;
  /// Dispatch to the pool even for batches below kSerialBatchThreshold.
  /// The threshold exists because tiny batches of INDEPENDENT cells can't
  /// amortize a pool wakeup — but portfolio races need their (often 2-3)
  /// contestants genuinely concurrent: a race serialized behind its first
  /// entry is not a race. threads <= 1 and nested calls still run inline.
  bool eager_dispatch = false;
};

/// Introspection snapshot of one worker slot (take while the pool is
/// idle). Slots persist across resizes, so these accumulate for the
/// process lifetime — the pool-reuse tests assert arena_capacity stops
/// growing once the first sweep has warmed the slot.
struct WorkerStats {
  std::size_t cells_served = 0;
  std::size_t peak_arena_bytes = 0;
  std::size_t arena_capacity = 0;
  std::uint64_t chunks_claimed = 0;
  std::uint64_t steals = 0;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 0; a 0-worker pool grows on
  /// first use).
  explicit ThreadPool(int threads);
  /// Wakes and joins the workers. Outstanding parallel_for calls must
  /// have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool every engine entry point shares. Created empty
  /// on first touch; parallel_for grows it on demand, so a process that
  /// only ever runs serial sweeps never spawns a worker.
  [[nodiscard]] static ThreadPool& shared();

  /// Live worker threads.
  [[nodiscard]] int thread_count() const;

  /// Sets the worker count exactly: grows by spawning, shrinks by joining
  /// surplus workers. Worker-slot state (arena, counters) is never
  /// discarded — a later regrow rebinds the same slots. Must be called
  /// while the pool is idle.
  void resize(int threads);

  /// Grows to at least `threads` workers (never shrinks).
  void ensure_workers(int threads);

  /// Runs fn(0) .. fn(items-1) on up to `max_workers` workers (0 = all),
  /// each cell preceded by begin_cell() on its executing worker. Blocks
  /// until every index has been visited AND every participating worker
  /// has detached from the batch. Calls from within a pool worker (nested
  /// parallelism) and concurrent calls from several external threads are
  /// safe: the former run inline, the latter serialize.
  void parallel_for(std::size_t items,
                    const std::function<void(std::size_t)>& fn,
                    int max_workers = 0, const ParallelOptions& options = {});

  /// Per-slot counters; take while idle (returns every slot ever used,
  /// including ones parked by a shrink).
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

 private:
  /// Batch-state sanity under mutex_: participant counts balance
  /// (finished_ never exceeds participants_, participants_ never exceed
  /// the published ranges), every range is a [b, e) subrange of the
  /// batch's item space (ranges only ever shrink within a batch), and the
  /// worker ledger is consistent with the slot table. No-op unless
  /// ABT_AUDIT is on; called at the publication and completion seams.
  void audit_invariants_locked() const;

  /// Persistent per-worker state. Slots are identity: a worker thread is
  /// "slot i alive", and everything that must survive across sweeps (the
  /// scratch arena above all) lives here rather than in thread_locals of
  /// transient threads.
  struct Slot {
    core::MonotonicArena arena;
    WorkerScratch scratch;
    std::uint64_t chunks_claimed = 0;
    std::uint64_t steals = 0;
    std::thread thread;
  };

  /// One work-stealing queue: a [begin, end) index range packed into one
  /// atomic word (begin in the high 32 bits). The owner claims adaptive
  /// chunks from the front, thieves CAS half off the back; ranges only
  /// ever shrink within a batch, which rules out ABA.
  struct alignas(64) Range {
    std::atomic<std::uint64_t> packed{0};
  };

  /// `seen_epoch` is the epoch at spawn time (captured under the lock, no
  /// batch open) — the baseline for "is this batch new to me".
  void worker_main(std::size_t slot_index, std::uint64_t seen_epoch);
  void run_batch(std::size_t self, Slot& slot);
  void spawn_locked(int target);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   ///< workers: a new batch epoch
  std::condition_variable batch_done_;   ///< caller: all participants out
  std::condition_variable pool_idle_;    ///< queued callers: batch slot free

  std::vector<std::unique_ptr<Slot>> slots_;  ///< grows, never shrinks
  int live_workers_ = 0;   ///< slots_[0..live_workers_) have a thread
  bool stopping_ = false;

  // State of the in-flight batch; valid from publication (epoch_ bump)
  // until finished_ == participants_. Guarded by mutex_ except the ranges,
  // which workers race on by design.
  std::uint64_t epoch_ = 0;
  std::vector<Range> ranges_;
  std::size_t batch_items_ = 0;  ///< Item count of the in-flight batch.
  const std::function<void(std::size_t)>* batch_fn_ = nullptr;
  const ParallelOptions* batch_options_ = nullptr;
  std::size_t participants_ = 0;
  std::size_t finished_ = 0;
  bool batch_open_ = false;
};

/// Runs fn(0) .. fn(items-1), fanning out over up to `threads` workers of
/// the shared persistent pool (inline on the calling thread when threads
/// <= 1 or the batch is tiny — bitwise-identical control flow either way
/// as long as fn(i) touches only slot i).
void parallel_for(int threads, std::size_t items,
                  const std::function<void(std::size_t)>& fn,
                  const ParallelOptions& options = {});

}  // namespace abt::engine
