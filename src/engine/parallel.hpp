#pragma once

// Minimal fixed-size thread pool for the trial-sweep engine: plain
// std::thread workers draining a mutex-guarded work queue, no external
// dependencies. Deterministic users submit closures that write to
// pre-sized slots, so results are identical for any worker count.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace abt::engine {

/// Resolves a thread-count request: values >= 1 pass through, anything
/// else (0, negative) becomes the hardware concurrency (at least 1).
[[nodiscard]] int resolve_threads(int requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int thread_count() const {
    return static_cast<int>(workers_.size());
  }

  /// Enqueues a task. Tasks must not throw (solver runs report failure
  /// through Solution, never exceptions); a task that does throw
  /// terminates, which is the correct loud failure for a checker bug.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t busy_ = 0;
  bool stopping_ = false;
};

/// Runs fn(0) .. fn(items-1), fanning out over up to `threads` workers
/// (inline when threads <= 1 — bitwise-identical control flow either way
/// as long as fn(i) touches only slot i).
void parallel_for(int threads, std::size_t items,
                  const std::function<void(std::size_t)>& fn);

}  // namespace abt::engine
