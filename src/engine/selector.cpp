#include "engine/selector.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>

#include "engine/runner.hpp"

namespace abt::engine {

namespace {

constexpr std::string_view kMagic = "selector-model";
constexpr std::string_view kVersion = "v1";

bool parse_double_token(const std::string& token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && !token.empty();
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> out;
  std::string token;
  while (stream >> token) out.push_back(token);
  return out;
}

/// One CSV record, honoring double-quoted fields with "" escapes (the
/// report::Table writer quotes any field containing a comma or quote).
std::vector<std::string> split_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

std::vector<std::string> select_solvers(const SelectorModel& model,
                                        const FeatureVector& features,
                                        int top_k) {
  if (model.centroids.empty()) return {};
  std::array<double, kFeatureCount> query{};
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    const double sigma = model.sigma[i] > 0.0 ? model.sigma[i] : 1.0;
    query[i] = (features.values[i] - model.mu[i]) / sigma;
  }
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < model.centroids.size(); ++c) {
    double distance = 0.0;
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      const double d = query[i] - model.centroids[c].center[i];
      distance += d * d;
    }
    if (distance < best_distance) {
      best_distance = distance;
      best = c;
    }
  }
  std::vector<std::string> ranking = model.centroids[best].ranking;
  if (top_k > 0 && static_cast<std::size_t>(top_k) < ranking.size()) {
    ranking.resize(static_cast<std::size_t>(top_k));
  }
  return ranking;
}

void write_model(std::ostream& os, const SelectorModel& model) {
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << kMagic << " v" << model.version << "\n";
  os << "features " << kFeatureCount;
  for (const std::string& name : feature_names()) os << " " << name;
  os << "\n";
  os << "mu";
  for (const double v : model.mu) os << " " << v;
  os << "\n";
  os << "sigma";
  for (const double v : model.sigma) os << " " << v;
  os << "\n";
  for (const SelectorCentroid& centroid : model.centroids) {
    os << "centroid " << centroid.label << "\n";
    os << "center";
    for (const double v : centroid.center) os << " " << v;
    os << "\n";
    os << "rank";
    for (const std::string& name : centroid.ranking) os << " " << name;
    os << "\n";
  }
  os.precision(old_precision);
}

std::optional<SelectorModel> parse_model(std::istream& in,
                                         std::string* error) {
  int line_no = 0;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };

  SelectorModel model;
  bool saw_header = false;
  bool saw_features = false, saw_mu = false, saw_sigma = false;
  // The open centroid block, if any, and which of its lines arrived.
  bool in_centroid = false, saw_center = false, saw_rank = false;

  const auto block_complete = [&]() { return saw_center && saw_rank; };
  const auto parse_row = [&](const std::vector<std::string>& tokens,
                             std::array<double, kFeatureCount>& out,
                             std::string* why) {
    if (tokens.size() != kFeatureCount + 1) {
      *why = tokens[0] + " needs exactly " + std::to_string(kFeatureCount) +
             " values, got " + std::to_string(tokens.size() - 1);
      return false;
    }
    for (std::size_t i = 0; i < kFeatureCount; ++i) {
      if (!parse_double_token(tokens[i + 1], out[i])) {
        *why = "bad number '" + tokens[i + 1] + "' in " + tokens[0];
        return false;
      }
    }
    return true;
  };

  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::vector<std::string> tokens = tokens_of(line);
    if (tokens.empty()) continue;

    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != kMagic) {
        return fail("expected header '" + std::string(kMagic) + " " +
                    std::string(kVersion) + "'");
      }
      if (tokens[1] != kVersion) {
        return fail("unsupported model version '" + tokens[1] + "' (this "
                    "build reads " + std::string(kVersion) + ")");
      }
      model.version = 1;
      saw_header = true;
      continue;
    }

    const std::string& directive = tokens[0];
    std::string why;
    if (directive == "features") {
      if (saw_features) return fail("duplicate features line");
      saw_features = true;
      int count = 0;
      if (tokens.size() < 2) return fail("features needs a count");
      {
        const char* begin = tokens[1].data();
        const char* end = begin + tokens[1].size();
        const auto [ptr, ec] = std::from_chars(begin, end, count);
        if (ec != std::errc() || ptr != end) {
          return fail("bad feature count '" + tokens[1] + "'");
        }
      }
      if (count != static_cast<int>(kFeatureCount) ||
          tokens.size() != kFeatureCount + 2) {
        return fail("feature count mismatch: model has " +
                    std::to_string(tokens.size() - 2) + " names (declares " +
                    std::to_string(count) + "), extractor has " +
                    std::to_string(kFeatureCount));
      }
      for (std::size_t i = 0; i < kFeatureCount; ++i) {
        if (tokens[i + 2] != feature_names()[i]) {
          return fail("feature name mismatch at position " +
                      std::to_string(i) + ": model says '" + tokens[i + 2] +
                      "', extractor says '" + feature_names()[i] + "'");
        }
      }
    } else if (directive == "mu") {
      if (saw_mu) return fail("duplicate mu line");
      if (!parse_row(tokens, model.mu, &why)) return fail(why);
      saw_mu = true;
    } else if (directive == "sigma") {
      if (saw_sigma) return fail("duplicate sigma line");
      if (!parse_row(tokens, model.sigma, &why)) return fail(why);
      for (const double v : model.sigma) {
        if (!(v > 0.0)) return fail("sigma values must be > 0");
      }
      saw_sigma = true;
    } else if (directive == "centroid") {
      if (in_centroid && !block_complete()) {
        return fail("previous centroid block is missing its " +
                    std::string(saw_center ? "rank" : "center") + " line");
      }
      if (tokens.size() != 2) return fail("centroid needs exactly one label");
      for (const SelectorCentroid& existing : model.centroids) {
        if (existing.label == tokens[1]) {
          return fail("duplicate centroid label '" + tokens[1] + "'");
        }
      }
      model.centroids.push_back({tokens[1], {}, {}});
      in_centroid = true;
      saw_center = saw_rank = false;
    } else if (directive == "center") {
      if (!in_centroid) return fail("center outside a centroid block");
      if (saw_center) return fail("duplicate center line in centroid block");
      if (!parse_row(tokens, model.centroids.back().center, &why)) {
        return fail(why);
      }
      saw_center = true;
    } else if (directive == "rank") {
      if (!in_centroid) return fail("rank outside a centroid block");
      if (saw_rank) return fail("duplicate rank line in centroid block");
      if (tokens.size() < 2) return fail("rank needs at least one solver");
      auto& ranking = model.centroids.back().ranking;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        if (std::find(ranking.begin(), ranking.end(), tokens[i]) !=
            ranking.end()) {
          return fail("duplicate solver '" + tokens[i] + "' in rank");
        }
        ranking.push_back(tokens[i]);
      }
      saw_rank = true;
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }

  ++line_no;  // EOF diagnostics point one past the last line.
  if (!saw_header) return fail("empty input, expected selector-model header");
  if (!saw_features) return fail("missing features line");
  if (!saw_mu) return fail("missing mu line");
  if (!saw_sigma) return fail("missing sigma line");
  if (model.centroids.empty()) return fail("model has no centroid");
  if (in_centroid && !block_complete()) {
    return fail("last centroid block is missing its " +
                std::string(saw_center ? "rank" : "center") + " line");
  }
  return model;
}

// ---------------------------------------------------------------------------
// Offline training from campaign CSV.

namespace {

struct SolverRecord {
  std::string solver;
  double feasible_rate = 0.0;
  double ratio_median = std::numeric_limits<double>::infinity();
  double wall_median = std::numeric_limits<double>::infinity();
  bool produced = false;  ///< ok > 0 — refusal-only rows never get raced.
};

struct TrainPoint {
  ScenarioSpec spec;
  FeatureVector features;
  std::vector<SolverRecord> records;

  /// Solver names of this point, best first (the per-point ranking).
  [[nodiscard]] std::vector<std::string> ranking() const {
    std::vector<const SolverRecord*> rows;
    for (const SolverRecord& r : records) {
      if (r.produced) rows.push_back(&r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const SolverRecord* a, const SolverRecord* b) {
                if (a->feasible_rate != b->feasible_rate) {
                  return a->feasible_rate > b->feasible_rate;
                }
                if (a->ratio_median != b->ratio_median) {
                  return a->ratio_median < b->ratio_median;
                }
                if (a->wall_median != b->wall_median) {
                  return a->wall_median < b->wall_median;
                }
                return a->solver < b->solver;
              });
    std::vector<std::string> out;
    out.reserve(rows.size());
    for (const SolverRecord* r : rows) out.push_back(r->solver);
    return out;
  }
};

}  // namespace

std::optional<SelectorModel> train_selector(std::istream& csv,
                                            std::string* error) {
  int line_no = 0;
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return std::nullopt;
  };

  std::string line;
  if (!std::getline(csv, line)) {
    ++line_no;
    return fail("empty input, expected campaign CSV header");
  }
  ++line_no;
  const std::vector<std::string> header = split_csv_row(line);
  const auto column = [&](std::string_view name) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  const int col_scenario = column("scenario"), col_n = column("n"),
            col_g = column("g"), col_seed = column("seed"),
            col_solver = column("solver"), col_runs = column("runs"),
            col_ok = column("ok"), col_feasible = column("feasible"),
            col_ratio = column("ratio_median"),
            col_wall = column("wall_median_ms");
  // Optional axes (campaign CSVs grew them in PR 10): when present they
  // separate points and feed the regenerated feature vectors; absent
  // columns fall back to the spec defaults, so older CSVs keep training.
  const int col_slack = column("slack"), col_horizon = column("horizon");
  for (const auto& [col, name] :
       {std::pair{col_scenario, "scenario"}, {col_n, "n"}, {col_g, "g"},
        {col_seed, "seed"}, {col_solver, "solver"}, {col_runs, "runs"},
        {col_ok, "ok"}, {col_feasible, "feasible"},
        {col_ratio, "ratio_median"}, {col_wall, "wall_median_ms"}}) {
    if (col < 0) {
      return fail("campaign CSV header is missing column '" +
                  std::string(name) + "'");
    }
  }

  std::vector<TrainPoint> points;
  std::map<std::string, std::size_t> point_index;
  while (std::getline(csv, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_csv_row(line);
    if (fields.size() != header.size()) {
      return fail("row has " + std::to_string(fields.size()) +
                  " fields, header has " + std::to_string(header.size()));
    }
    const auto field = [&](int col) -> const std::string& {
      return fields[static_cast<std::size_t>(col)];
    };
    ScenarioSpec spec;
    spec.name = field(col_scenario);
    double n = 0.0, g = 0.0, seed = 0.0, runs = 0.0, ok = 0.0, feas = 0.0;
    if (!parse_double_token(field(col_n), n) ||
        !parse_double_token(field(col_g), g) ||
        !parse_double_token(field(col_seed), seed) ||
        !parse_double_token(field(col_runs), runs) ||
        !parse_double_token(field(col_ok), ok) ||
        !parse_double_token(field(col_feasible), feas)) {
      return fail("bad numeric field in row for solver '" +
                  field(col_solver) + "'");
    }
    if (runs <= 0.0) return fail("runs must be positive");
    spec.n = static_cast<int>(n);
    spec.g = static_cast<int>(g);
    spec.seed = static_cast<std::uint64_t>(seed);

    std::string key = spec.name + "|" + field(col_n) + "|" + field(col_g) +
                      "|" + field(col_seed);
    double axis = 0.0;
    if (col_slack >= 0 && parse_double_token(field(col_slack), axis)) {
      spec.slack = axis;
      key += "|" + field(col_slack);
    }
    if (col_horizon >= 0 && parse_double_token(field(col_horizon), axis)) {
      spec.horizon = axis;
      key += "|" + field(col_horizon);
    }
    auto [it, inserted] = point_index.emplace(key, points.size());
    if (inserted) {
      TrainPoint point;
      point.spec = spec;
      std::string why;
      const auto inst = make_scenario(spec, &why);
      if (!inst.has_value()) {
        return fail("cannot regenerate point for features: " + why);
      }
      point.features = extract_features(*inst);
      points.push_back(std::move(point));
    }
    SolverRecord record;
    record.solver = field(col_solver);
    record.feasible_rate = feas / runs;
    record.produced = ok > 0.0;
    double value = 0.0;
    if (parse_double_token(field(col_ratio), value)) {
      record.ratio_median = value;
    }
    if (parse_double_token(field(col_wall), value)) {
      record.wall_median = value;
    }
    points[it->second].records.push_back(std::move(record));
  }
  if (points.empty()) {
    return fail("campaign CSV has a header but no rows");
  }

  SelectorModel model;
  const double count = static_cast<double>(points.size());
  for (std::size_t i = 0; i < kFeatureCount; ++i) {
    double sum = 0.0, sq = 0.0;
    for (const TrainPoint& point : points) {
      sum += point.features[i];
      sq += point.features[i] * point.features[i];
    }
    model.mu[i] = sum / count;
    const double variance =
        std::max(0.0, sq / count - model.mu[i] * model.mu[i]);
    const double sigma = std::sqrt(variance);
    model.sigma[i] = sigma > 1e-12 ? sigma : 1.0;
  }

  // One centroid per scenario label, in first-seen order: mean normalized
  // features of its points, rankings merged by mean per-point rank (Borda).
  std::vector<std::string> labels;
  for (const TrainPoint& point : points) {
    if (std::find(labels.begin(), labels.end(), point.spec.name) ==
        labels.end()) {
      labels.push_back(point.spec.name);
    }
  }
  for (const std::string& label : labels) {
    SelectorCentroid centroid;
    centroid.label = label;
    double members = 0.0;
    std::map<std::string, std::pair<double, double>> rank_sum;  // sum, count
    for (const TrainPoint& point : points) {
      if (point.spec.name != label) continue;
      members += 1.0;
      for (std::size_t i = 0; i < kFeatureCount; ++i) {
        centroid.center[i] +=
            (point.features[i] - model.mu[i]) / model.sigma[i];
      }
      const std::vector<std::string> ranking = point.ranking();
      for (std::size_t r = 0; r < ranking.size(); ++r) {
        auto& [sum, cnt] = rank_sum[ranking[r]];
        sum += static_cast<double>(r);
        cnt += 1.0;
      }
    }
    for (double& v : centroid.center) v /= members;
    std::vector<std::pair<double, std::string>> merged;
    merged.reserve(rank_sum.size());
    for (const auto& [solver, sums] : rank_sum) {
      merged.emplace_back(sums.first / sums.second, solver);
    }
    std::sort(merged.begin(), merged.end());
    for (auto& [rank, solver] : merged) {
      centroid.ranking.push_back(std::move(solver));
    }
    if (!centroid.ranking.empty()) {
      model.centroids.push_back(std::move(centroid));
    }
  }
  if (model.centroids.empty()) {
    return fail("no scenario produced a usable solver ranking");
  }
  return model;
}

}  // namespace abt::engine
