#pragma once

#include <cstddef>

#include "core/scratch.hpp"

namespace abt::engine {

/// Per-worker scratch bookkeeping for campaign-scale runs. Since the
/// persistent pool, a WorkerScratch belongs to a worker SLOT (pool-owned,
/// alive for the whole process), not to a transient thread: the pool binds
/// each worker thread to its slot's record at startup, so counters and the
/// companion arena accumulate across every sweep/campaign the process runs.
/// `begin_cell()` runs at the top of every cell (trial) and rewinds the
/// bound arena so solver scratch carved out of it is reused instead of
/// re-allocated, trial after trial.
///
/// The arena is only rewound between cells, never inside one — solvers use
/// core::ArenaScope for intra-cell stack discipline, so a missing scope
/// cannot leak past the next begin_cell().
struct WorkerScratch {
  /// Cells this worker slot has executed since pool creation (or thread
  /// start, for unbound serial callers).
  std::size_t cells_served = 0;

  /// High-water mark of arena capacity observed at cell boundaries.
  std::size_t peak_arena_bytes = 0;
};

/// The calling thread's scratch record: the bound worker slot's when the
/// pool installed one, a thread_local fallback otherwise (serial path,
/// direct callers).
[[nodiscard]] WorkerScratch& worker_scratch();

/// Binds the calling thread to a pool-owned scratch record (nullptr
/// restores the thread_local fallback). Installed by ThreadPool workers at
/// thread start; thread-affine, pointee must outlive the binding.
void bind_worker_scratch(WorkerScratch* scratch);

/// Marks the start of one sweep/campaign cell on the calling worker
/// thread: rewinds the thread arena (O(1), keeps blocks) and, every
/// kTrimPeriod cells, trims it back to kTrimBytes so one pathological
/// trial cannot pin a huge footprint for the rest of a campaign.
void begin_cell();

/// Trim threshold: a worker's arena may keep up to this many bytes of
/// blocks across cells. 8 MiB comfortably holds the flat event buffers of
/// the largest benchmark trials (n = 8192 is well under 1 MiB).
inline constexpr std::size_t kTrimBytes = std::size_t{8} << 20;

/// How many cells between trim checks.
inline constexpr std::size_t kTrimPeriod = 256;

}  // namespace abt::engine
