#include "engine/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <ostream>
#include <sstream>

#include "engine/parallel.hpp"
#include "report/table.hpp"

namespace abt::engine {

using core::ProblemInstance;

std::vector<ScenarioSpec> expand_grid(const CampaignGrid& grid) {
  const std::vector<int> ns = grid.ns.empty()
                                  ? std::vector<int>{grid.base.n}
                                  : grid.ns;
  const std::vector<int> gs = grid.gs.empty()
                                  ? std::vector<int>{grid.base.g}
                                  : grid.gs;
  const std::vector<double> slacks = grid.slacks.empty()
                                         ? std::vector<double>{grid.base.slack}
                                         : grid.slacks;
  const std::vector<double> horizons =
      grid.horizons.empty() ? std::vector<double>{grid.base.horizon}
                            : grid.horizons;
  std::vector<ScenarioSpec> points;
  points.reserve(grid.scenarios.size() * ns.size() * gs.size() *
                 slacks.size() * horizons.size());
  for (const std::string& scenario : grid.scenarios) {
    for (const int n : ns) {
      for (const int g : gs) {
        for (const double slack : slacks) {
          for (const double horizon : horizons) {
            ScenarioSpec spec = grid.base;
            spec.name = scenario;
            spec.n = n;
            spec.g = g;
            spec.slack = slack;
            spec.horizon = horizon;
            points.push_back(std::move(spec));
          }
        }
      }
    }
  }
  return points;
}

const std::vector<std::string>& grid_solvers(const CampaignGrid& grid,
                                             const std::string& scenario) {
  const auto it = grid.scenario_solvers.find(scenario);
  return it != grid.scenario_solvers.end() ? it->second : grid.solvers;
}

std::optional<CampaignGrid> parse_campaign(std::istream& in,
                                           std::string* error,
                                           const ScenarioSpec& base) {
  const auto fail = [error](int line, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + why;
    }
    return std::nullopt;
  };
  CampaignGrid grid;
  grid.base = base;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank / comment-only line

    if (directive == "scenario") {
      std::string name;
      while (tokens >> name) grid.scenarios.push_back(name);
      if (grid.scenarios.empty()) {
        return fail(line_no, "scenario needs at least one name");
      }
      continue;
    }
    if (directive == "n" || directive == "g") {
      auto& axis = directive == "n" ? grid.ns : grid.gs;
      int value = 0;
      while (tokens >> value) {
        if (value < 1) return fail(line_no, directive + " must be >= 1");
        axis.push_back(value);
      }
      if (!tokens.eof()) return fail(line_no, "bad value for " + directive);
      if (axis.empty()) return fail(line_no, directive + " needs values");
      continue;
    }
    // A one-value slack/horizon line is the historic scalar knob: a
    // single-point axis expands to exactly what the old base override did.
    if (directive == "slack" || directive == "horizon") {
      auto& axis = directive == "slack" ? grid.slacks : grid.horizons;
      double value = 0.0;
      while (tokens >> value) {
        if (value < 0.0) return fail(line_no, directive + " must be >= 0");
        axis.push_back(value);
      }
      if (!tokens.eof()) return fail(line_no, "bad value for " + directive);
      if (axis.empty()) return fail(line_no, directive + " needs values");
      continue;
    }
    if (directive == "solvers" || directive.rfind("solvers:", 0) == 0) {
      std::vector<std::string>* subset = nullptr;
      if (directive == "solvers") {
        subset = &grid.solvers;
      } else {
        const std::string scenario = directive.substr(8);
        if (scenario.empty()) {
          return fail(line_no, "solvers: needs a scenario name");
        }
        subset = &grid.scenario_solvers[scenario];
      }
      if (!subset->empty()) {
        return fail(line_no, "duplicate directive '" + directive + "'");
      }
      std::string name;
      while (tokens >> name) subset->push_back(name);
      if (subset->empty()) {
        return fail(line_no, directive + " needs at least one solver name");
      }
      continue;
    }
    // Scalar knobs shared by every grid point.
    const auto scalar = [&](auto& out) -> bool {
      return static_cast<bool>(tokens >> out) && (tokens >> std::ws).eof();
    };
    bool parsed = false;
    if (directive == "trials") {
      parsed = scalar(grid.trials) && grid.trials >= 1;
    } else if (directive == "seed") {
      parsed = scalar(grid.base.seed);
    } else if (directive == "eps") {
      parsed = scalar(grid.base.eps);
    } else {
      return fail(line_no, "unknown directive '" + directive + "'");
    }
    if (!parsed) return fail(line_no, "bad value for " + directive);
  }
  if (grid.scenarios.empty()) {
    if (error != nullptr) *error = "campaign names no scenario";
    return std::nullopt;
  }
  for (const auto& [scenario, subset] : grid.scenario_solvers) {
    (void)subset;
    if (std::find(grid.scenarios.begin(), grid.scenarios.end(), scenario) ==
        grid.scenarios.end()) {
      if (error != nullptr) {
        *error = "solvers:" + scenario + " names no scenario in the grid";
      }
      return std::nullopt;
    }
  }
  return grid;
}

const std::vector<CampaignPresetInfo>& campaign_presets() {
  static const std::vector<CampaignPresetInfo> kPresets = {
      {"smoke", "interval+flexible x n {8,12}, g 3 — tiny CI grid"},
      {"families",
       "interval+flexible+bursty+weighted x n {12,24}, g {3} — one point "
       "per random family at two sizes"},
      {"exact-frontier",
       "weighted+weighted-flexible x n {12,16,20,24}, g 3, horizon {12,18} "
       "— per-scenario solver subsets pit busy/weighted-exact against the "
       "approximation baselines; pair with --budget-ms to chart incumbent "
       "quality past the measured gate"},
  };
  return kPresets;
}

std::optional<CampaignGrid> campaign_preset(std::string_view name) {
  CampaignGrid grid;
  if (name == "smoke") {
    grid.scenarios = {"interval", "flexible"};
    grid.ns = {8, 12};
    grid.gs = {3};
    return grid;
  }
  if (name == "families") {
    grid.scenarios = {"interval", "flexible", "bursty", "weighted"};
    grid.ns = {12, 24};
    grid.gs = {3};
    return grid;
  }
  if (name == "exact-frontier") {
    grid.scenarios = {"weighted", "weighted-flexible"};
    grid.ns = {12, 16, 20, 24};
    grid.gs = {3};
    // Two horizons: the derived-density default neighbourhood, tight and
    // loose, so the exact oracle's frontier shows up at both regimes.
    grid.horizons = {12.0, 18.0};
    // The frontier race: the exact oracle against its approximation
    // baselines on interval jobs; the flexible points can only run the
    // freeze pipeline (the interval algorithms decline windowed jobs).
    grid.solvers = {"busy/weighted-exact", "busy/weighted-narrow-wide",
                    "busy/weighted-first-fit"};
    grid.scenario_solvers["weighted-flexible"] = {"busy/weighted-flexible"};
    return grid;
  }
  return std::nullopt;
}

namespace {

/// The solver names a point actually runs: the grid's (per-scenario or
/// grid-wide) subset when one was declared, else the campaign-wide
/// RunOptions::solvers (empty = every applicable solver).
const std::vector<std::string>& point_solver_names(
    const CampaignGrid& grid, const CampaignOptions& options,
    const std::string& scenario) {
  const std::vector<std::string>& subset = grid_solvers(grid, scenario);
  return subset.empty() ? options.run.solvers : subset;
}

/// Runs every (point, trial) cell as a portfolio race over one shared
/// pool. Races nested inside pool workers execute their contestants
/// inline (PR 7 nesting rule), so cross-cell parallelism comes from the
/// campaign fan-out and each race still terminates early on first
/// acceptance.
CampaignReport run_campaign_races(
    const core::SolverRegistry& registry, const CampaignGrid& grid,
    CampaignReport report, const CampaignOptions& options,
    const core::RunContext& base_ctx, const std::vector<ScenarioSpec>& specs,
    std::vector<std::vector<ProblemInstance>> instances) {
  report.raced = true;
  const std::size_t points = specs.size();

  // Resolve every cell's contestant list up front — auto picks depend on
  // the instance, explicit lists are shared verbatim. Explicit race
  // entries win over a grid solver subset, which wins over the auto pick.
  std::vector<std::vector<std::vector<RaceEntry>>> entries(points);
  for (std::size_t p = 0; p < points; ++p) {
    std::vector<RaceEntry> subset_entries;
    if (options.race.entries.empty()) {
      for (const std::string& name :
           point_solver_names(grid, options, specs[p].name)) {
        subset_entries.push_back({name, 0.0});
      }
    }
    entries[p].reserve(instances[p].size());
    for (const ProblemInstance& inst : instances[p]) {
      if (!options.race.entries.empty()) {
        entries[p].push_back(options.race.entries);
      } else if (!subset_entries.empty()) {
        entries[p].push_back(subset_entries);
      } else {
        entries[p].push_back(auto_entries(registry, inst, options.race.model,
                                          options.race.top_k, base_ctx));
      }
    }
  }

  struct RaceCell {
    std::size_t point;
    std::size_t trial;
  };
  std::vector<RaceCell> cells;
  std::vector<std::vector<RaceReport>> race_out(points);
  for (std::size_t p = 0; p < points; ++p) {
    race_out[p].resize(instances[p].size());
    for (std::size_t t = 0; t < instances[p].size(); ++t) {
      cells.push_back({p, t});
    }
  }

  RaceOptions race_options;
  // The campaign already fans its race CELLS out over the pool; each
  // cell's race runs inline in its worker (nested parallel_for is serial
  // anyway), so pin threads = 1 rather than letting 0 resolve to the
  // whole pool when the campaign itself runs serially.
  race_options.threads = 1;
  race_options.accept_gap = options.race.accept_gap;
  race_options.span_bound_max_jobs = options.run.span_bound_max_jobs;

  ParallelOptions parallel_options;
  parallel_options.cancel = options.run.cancel;
  parallel_options.on_cancelled = [&](std::size_t i) {
    const auto [p, t] = cells[i];
    RaceReport& race_report = race_out[p][t];
    race_report.entries = entries[p][t];
    race_report.rows.reserve(entries[p][t].size());
    for (const RaceEntry& entry : entries[p][t]) {
      const core::Solver* solver = registry.find(entry.solver);
      if (solver != nullptr) {
        race_report.rows.push_back(
            cancelled_cell_row(*solver, base_ctx.budget_ms()));
      } else {
        core::Solution refusal;
        refusal.solver = entry.solver;
        refusal.family = instances[p][t].family;
        refusal.message = "unknown solver";
        race_report.rows.push_back(std::move(refusal));
      }
    }
  };
  parallel_for(
      report.threads, cells.size(),
      [&](std::size_t i) {
        const auto [p, t] = cells[i];
        race_out[p][t] = race(registry, instances[p][t], entries[p][t],
                              base_ctx.restarted(), race_options);
      },
      parallel_options);

  report.points.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    CampaignPoint point;
    point.spec = specs[p];
    point.solvers = point_solver_names(grid, options, specs[p].name);
    std::vector<RunReport> trial_reports;
    trial_reports.reserve(instances[p].size());
    for (std::size_t t = 0; t < instances[p].size(); ++t) {
      RaceReport& race_report = race_out[p][t];
      point.races += 1;
      if (race_report.winner >= 0) {
        const std::string& name =
            race_report.rows[static_cast<std::size_t>(race_report.winner)]
                .solver;
        auto it = std::find_if(point.race_wins.begin(), point.race_wins.end(),
                               [&](const auto& w) { return w.first == name; });
        if (it == point.race_wins.end()) {
          point.race_wins.emplace_back(name, 1);
        } else {
          it->second += 1;
        }
      } else {
        point.races_unwon += 1;
      }
      RunReport cell;
      cell.instance = std::move(instances[p][t]);
      cell.solutions = std::move(race_report.rows);
      cell.lower_bound =
          derive_lower_bound(cell.instance, cell.solutions, options.run);
      for (const core::Solution& sol : cell.solutions) {
        point.cells += 1;
        if (sol.ok) point.ok_cells += 1;
        if (sol.ok && !sol.feasible) point.infeasible_cells += 1;
      }
      trial_reports.push_back(std::move(cell));
    }
    point.aggregates = aggregate_cells(trial_reports);
    report.points.push_back(std::move(point));
  }
  return report;
}

}  // namespace

std::optional<CampaignReport> run_campaign(
    const core::SolverRegistry& registry, const CampaignGrid& grid,
    const CampaignOptions& options, std::string* error) {
  CampaignReport report;
  report.trials = std::max(1, grid.trials > 0 ? grid.trials : options.trials);
  report.threads = resolve_threads(options.threads);
  report.budget_ms = options.run.budget_ms;
  const auto t0 = std::chrono::steady_clock::now();
  const core::RunContext base_ctx = make_run_context(options.run);

  const std::vector<ScenarioSpec> specs = expand_grid(grid);
  if (specs.empty()) {
    if (error != nullptr) *error = "campaign grid is empty";
    return std::nullopt;
  }

  // Generate every point's trial instances and solver plans up front
  // (sequential and cheap), so a bad grid fails before any cell runs and
  // the cell fan-out below is pure solver work.
  const std::size_t points = specs.size();
  std::vector<std::vector<ProblemInstance>> instances(points);
  std::vector<std::vector<std::vector<const core::Solver*>>> plans(points);
  for (std::size_t p = 0; p < points; ++p) {
    for (int t = 0; t < report.trials; ++t) {
      ScenarioSpec spec = specs[p];
      spec.seed = specs[p].seed + static_cast<std::uint64_t>(t);
      std::string why;
      auto inst = make_scenario(spec, &why);
      if (!inst.has_value()) {
        if (error != nullptr) {
          *error = "point " + specs[p].name + " n=" +
                   std::to_string(specs[p].n) + " g=" +
                   std::to_string(specs[p].g) + ": " + why;
        }
        return std::nullopt;
      }
      if (!options.race.enabled) {
        plans[p].push_back(registry.selection(
            *inst, point_solver_names(grid, options, specs[p].name),
            base_ctx));
      }
      instances[p].push_back(std::move(*inst));
    }
  }

  if (options.race.enabled) {
    report = run_campaign_races(registry, grid, std::move(report), options,
                                base_ctx, specs, std::move(instances));
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return report;
  }

  // One flat cell list across ALL points — the whole campaign shares one
  // pool, so a short point's workers immediately pick up the next point's
  // cells instead of idling at a per-point barrier.
  struct Cell {
    std::size_t point;
    std::size_t trial;
    std::size_t slot;
  };
  std::vector<Cell> cells;
  std::vector<std::vector<std::vector<core::Solution>>> grid_out(points);
  for (std::size_t p = 0; p < points; ++p) {
    grid_out[p].resize(static_cast<std::size_t>(report.trials));
    for (std::size_t t = 0; t < grid_out[p].size(); ++t) {
      grid_out[p][t].resize(plans[p][t].size());
      for (std::size_t s = 0; s < plans[p][t].size(); ++s) {
        cells.push_back({p, t, s});
      }
    }
  }
  // Cancellation drains at the scheduler: remaining cells are stamped with
  // the registry's decline row in O(cells) memory writes, so a cancelled
  // campaign stops after only the in-flight cells finish.
  ParallelOptions parallel_options;
  parallel_options.cancel = options.run.cancel;
  parallel_options.on_cancelled = [&](std::size_t i) {
    const auto [p, t, s] = cells[i];
    grid_out[p][t][s] =
        cancelled_cell_row(*plans[p][t][s], base_ctx.budget_ms());
  };
  parallel_for(
      report.threads, cells.size(),
      [&](std::size_t i) {
        const auto [p, t, s] = cells[i];
        grid_out[p][t][s] = registry.run(*plans[p][t][s], instances[p][t],
                                         base_ctx.restarted());
      },
      parallel_options);

  // Assemble per-point reports: refusal rows for unknown solver names,
  // per-trial lower bounds, then the shared sweep aggregation.
  report.points.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    CampaignPoint point;
    point.spec = specs[p];
    point.solvers = point_solver_names(grid, options, specs[p].name);
    std::vector<RunReport> trial_reports;
    trial_reports.reserve(static_cast<std::size_t>(report.trials));
    for (std::size_t t = 0; t < instances[p].size(); ++t) {
      RunReport cell;
      cell.instance = std::move(instances[p][t]);
      cell.solutions = std::move(grid_out[p][t]);
      append_unknown_solver_rows(registry, point.solvers, cell);
      cell.lower_bound =
          derive_lower_bound(cell.instance, cell.solutions, options.run);
      for (const core::Solution& sol : cell.solutions) {
        point.cells += 1;
        if (sol.ok) point.ok_cells += 1;
        if (sol.ok && !sol.feasible) point.infeasible_cells += 1;
      }
      trial_reports.push_back(std::move(cell));
    }
    point.aggregates = aggregate_cells(trial_reports);
    report.points.push_back(std::move(point));
  }

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

void print_campaign(std::ostream& os, const CampaignReport& report) {
  os << "campaign: " << report.points.size() << " grid points x "
     << report.trials << " trials, " << report.threads << " thread"
     << (report.threads == 1 ? "" : "s") << " (shared pool), "
     << report::Table::num(report.wall_ms) << " ms total";
  if (report.budget_ms > 0.0) {
    os << ", budget " << report::Table::num(report.budget_ms) << " ms/cell";
  }
  if (report.raced) os << ", portfolio race per cell";
  os << "\n\n";
  report::Table table({"scenario", "n", "g", "solver", "runs", "ok",
                       "feasible", "exact", "t/o", "ratio med", "ms med"});
  for (const CampaignPoint& point : report.points) {
    for (const SolverAggregate& agg : point.aggregates) {
      table.add_row(
          {point.spec.name, std::to_string(point.spec.n),
           std::to_string(point.spec.g), agg.solver,
           std::to_string(agg.runs), std::to_string(agg.ok),
           std::to_string(agg.feasible), std::to_string(agg.exact_runs),
           std::to_string(agg.timed_out),
           agg.ratio_count > 0 ? report::Table::num(agg.ratio_median) : "-",
           agg.feasible > 0 ? report::Table::num(agg.wall_median_ms) : "-"});
    }
  }
  table.print(os);
  if (!report.raced) return;

  os << "\n";
  report::Table wins({"scenario", "n", "g", "races", "winner", "wins"});
  for (const CampaignPoint& point : report.points) {
    for (const auto& [solver, count] : point.race_wins) {
      wins.add_row({point.spec.name, std::to_string(point.spec.n),
                    std::to_string(point.spec.g),
                    std::to_string(point.races), solver,
                    std::to_string(count)});
    }
    if (point.races_unwon > 0) {
      wins.add_row({point.spec.name, std::to_string(point.spec.n),
                    std::to_string(point.spec.g),
                    std::to_string(point.races), "(no winner)",
                    std::to_string(point.races_unwon)});
    }
  }
  wins.print(os);
}

void write_campaign_csv(std::ostream& os, const CampaignReport& report) {
  report::Table table({"scenario", "n", "g", "seed", "slack", "horizon",
                       "solver", "runs", "ok", "feasible", "exact",
                       "declined", "timed_out", "ratio_mean", "ratio_median",
                       "ratio_p95", "ratio_max", "wall_median_ms",
                       "wall_total_ms"});
  for (const CampaignPoint& point : report.points) {
    for (const SolverAggregate& agg : point.aggregates) {
      const bool has_ratio = agg.ratio_count > 0;
      table.add_row(
          {point.spec.name, std::to_string(point.spec.n),
           std::to_string(point.spec.g), std::to_string(point.spec.seed),
           report::Table::num(point.spec.slack, 6),
           report::Table::num(point.spec.horizon, 6),
           agg.solver, std::to_string(agg.runs), std::to_string(agg.ok),
           std::to_string(agg.feasible), std::to_string(agg.exact_runs),
           std::to_string(agg.declined), std::to_string(agg.timed_out),
           has_ratio ? report::Table::num(agg.ratio_mean, 6) : "",
           has_ratio ? report::Table::num(agg.ratio_median, 6) : "",
           has_ratio ? report::Table::num(agg.ratio_p95, 6) : "",
           has_ratio ? report::Table::num(agg.ratio_max, 6) : "",
           agg.feasible > 0 ? report::Table::num(agg.wall_median_ms, 6) : "",
           report::Table::num(agg.wall_total_ms, 6)});
    }
  }
  table.write_csv(os);
}

void write_campaign_json(std::ostream& os, const CampaignReport& report) {
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"campaign\": {\"points\": " << report.points.size()
     << ", \"trials\": " << report.trials
     << ", \"threads\": " << report.threads
     << ", \"raced\": " << (report.raced ? "true" : "false")
     << ", \"budget_ms\": " << report.budget_ms
     << ", \"wall_ms\": " << report.wall_ms << "},\n  \"points\": [";
  for (std::size_t p = 0; p < report.points.size(); ++p) {
    const CampaignPoint& point = report.points[p];
    os << (p == 0 ? "\n" : ",\n") << "    {\"scenario\": ";
    write_json_string(os, point.spec.name);
    os << ", \"n\": " << point.spec.n << ", \"g\": " << point.spec.g
       << ", \"seed\": " << point.spec.seed
       << ", \"slack\": " << point.spec.slack
       << ", \"horizon\": " << point.spec.horizon
       << ", \"cells\": " << point.cells
       << ", \"ok_cells\": " << point.ok_cells
       << ", \"infeasible_cells\": " << point.infeasible_cells;
    if (!point.solvers.empty()) {
      os << ",\n     \"solvers\": [";
      for (std::size_t i = 0; i < point.solvers.size(); ++i) {
        os << (i == 0 ? "" : ", ");
        write_json_string(os, point.solvers[i]);
      }
      os << "]";
    }
    if (report.raced) {
      os << ",\n     \"race\": {\"races\": " << point.races
         << ", \"unwon\": " << point.races_unwon << ", \"wins\": {";
      for (std::size_t i = 0; i < point.race_wins.size(); ++i) {
        os << (i == 0 ? "" : ", ");
        write_json_string(os, point.race_wins[i].first);
        os << ": " << point.race_wins[i].second;
      }
      os << "}}";
    }
    os << ",\n     \"aggregates\": [";
    for (std::size_t i = 0; i < point.aggregates.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "      ";
      write_aggregate_json(os, point.aggregates[i]);
    }
    os << "\n     ]}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

}  // namespace abt::engine
