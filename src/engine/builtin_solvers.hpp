#pragma once

#include "core/solver.hpp"

namespace abt::engine {

/// Builds a registry holding every algorithm the library implements, busy
/// and active family alike: the direct interval-job algorithms, the
/// section-4.3 flexible pipelines, the preemptive and online variants, the
/// exact/special-case oracles, and the active-time approximations. Each
/// entry carries its paper guarantee (and worst-case factor where one is
/// proven) so runners and tests can validate costs uniformly.
[[nodiscard]] core::SolverRegistry builtin_registry();

/// Process-wide shared instance of builtin_registry().
[[nodiscard]] const core::SolverRegistry& shared_registry();

}  // namespace abt::engine
