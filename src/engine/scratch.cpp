#include "engine/scratch.hpp"

#include <algorithm>

namespace abt::engine {

WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

void begin_cell() {
  WorkerScratch& scratch = worker_scratch();
  core::MonotonicArena& arena = core::thread_arena();
  scratch.peak_arena_bytes = std::max(scratch.peak_arena_bytes,
                                      arena.capacity());
  arena.reset();
  if (++scratch.cells_served % kTrimPeriod == 0) arena.trim(kTrimBytes);
}

}  // namespace abt::engine
