#include "engine/scratch.hpp"

#include <algorithm>

namespace abt::engine {

namespace {
thread_local WorkerScratch* tl_scratch_override = nullptr;
}  // namespace

WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return tl_scratch_override != nullptr ? *tl_scratch_override : scratch;
}

void bind_worker_scratch(WorkerScratch* scratch) {
  tl_scratch_override = scratch;
}

void begin_cell() {
  WorkerScratch& scratch = worker_scratch();
  core::MonotonicArena& arena = core::thread_arena();
  scratch.peak_arena_bytes = std::max(scratch.peak_arena_bytes,
                                      arena.capacity());
  arena.reset();
  if (++scratch.cells_served % kTrimPeriod == 0) arena.trim(kTrimBytes);
}

}  // namespace abt::engine
