#include "engine/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "busy/lower_bounds.hpp"
#include "core/rng.hpp"
#include "engine/adapters.hpp"
#include "engine/parallel.hpp"
#include "gen/extended_instances.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"
#include "report/table.hpp"

namespace abt::engine {

using core::Family;
using core::ProblemInstance;

namespace {

gen::SlottedParams slotted_params(const ScenarioSpec& spec) {
  gen::SlottedParams params;
  params.num_jobs = spec.n;
  params.capacity = spec.g;
  params.horizon = spec.horizon > 0
                       ? static_cast<core::SlotTime>(spec.horizon)
                       : std::max<core::SlotTime>(12, 2 * spec.n);
  return params;
}

gen::ContinuousParams continuous_params(const ScenarioSpec& spec,
                                        double slack) {
  gen::ContinuousParams params;
  params.num_jobs = spec.n;
  params.capacity = spec.g;
  params.horizon = spec.horizon > 0 ? spec.horizon : 10.0 + spec.n / 4.0;
  params.max_slack = slack;
  return params;
}

}  // namespace

const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> kScenarios = {
      {"slotted", Family::kActive, "random feasible slotted instance"},
      {"slotted-unit", Family::kActive, "random feasible unit-job instance"},
      {"fig3", Family::kActive, "Fig 3 minimal-feasible tight family (g>=3)"},
      {"lp-gap", Family::kActive, "section 3.5 LP integrality-gap family"},
      {"interval", Family::kBusy, "random interval jobs (no slack)"},
      {"flexible", Family::kBusy, "random flexible jobs (windowed)"},
      {"clique", Family::kBusy, "random interval jobs sharing a point"},
      {"proper", Family::kBusy, "random proper instance (no containment)"},
      {"laminar", Family::kBusy, "random laminar windows"},
      {"proper-clique", Family::kBusy,
       "proper clique (Mertzios DP exact case)"},
      {"fig1", Family::kBusy, "Fig 1 worked example (7 jobs, g=3)"},
      {"fig6", Family::kBusy, "Fig 6 GREEDYTRACKING factor-3 family"},
      {"fig8", Family::kBusy, "Fig 8 two-approximation tight family (g=2)"},
      {"fig10", Family::kBusy, "Fig 10-12 factor-4 flexible family"},
      {"bursty", Family::kBusy,
       "bursty arrivals: releases cluster around a few spikes"},
      {"weighted", Family::kBusy,
       "random weighted (cumulative-width) interval jobs"},
      {"weighted-flexible", Family::kBusy,
       "random weighted flexible (windowed) jobs"},
      {"multi-window", Family::kActive,
       "random feasible multi-window jobs (window unions)"},
  };
  return kScenarios;
}

std::optional<ProblemInstance> make_scenario(const ScenarioSpec& spec,
                                             std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  core::Rng rng(spec.seed);
  if (spec.name == "slotted" || spec.name == "slotted-unit") {
    gen::SlottedParams params = slotted_params(spec);
    params.unit_jobs = spec.name == "slotted-unit";
    return core::make_instance(gen::random_feasible_slotted(rng, params));
  }
  if (spec.name == "fig3") {
    if (spec.g < 3) return fail("fig3 requires g >= 3");
    return core::make_instance(gen::fig3_instance(spec.g));
  }
  if (spec.name == "lp-gap") {
    if (spec.g < 2) return fail("lp-gap requires g >= 2");
    return core::make_instance(gen::lp_gap_instance(spec.g));
  }
  if (spec.name == "interval") {
    return core::make_instance(
        gen::random_continuous(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "flexible") {
    return core::make_instance(
        gen::random_continuous(rng, continuous_params(spec, spec.slack)));
  }
  if (spec.name == "clique") {
    return core::make_instance(
        gen::random_clique(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "proper") {
    return core::make_instance(
        gen::random_proper(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "laminar") {
    return core::make_instance(
        gen::random_laminar(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "proper-clique") {
    return core::make_instance(
        gen::random_proper_clique(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "fig1") {
    return core::make_instance(gen::fig1_example());
  }
  if (spec.name == "fig6") {
    if (spec.g < 2) return fail("fig6 requires g >= 2");
    return core::make_instance(gen::fig6_instance(spec.g, spec.eps));
  }
  if (spec.name == "fig8") {
    return core::make_instance(
        gen::fig8_instance(spec.eps, spec.eps / 3.0));
  }
  if (spec.name == "fig10") {
    if (spec.g < 2) return fail("fig10 requires g >= 2");
    return core::make_instance(
        gen::fig10_instance(spec.g, spec.eps, spec.eps / 3.0));
  }
  if (spec.name == "bursty") {
    gen::BurstyParams params;
    params.base = continuous_params(spec, spec.slack);
    return core::make_instance(gen::random_bursty(rng, params));
  }
  if (spec.name == "weighted" || spec.name == "weighted-flexible") {
    gen::WeightedParams params;
    params.num_jobs = spec.n;
    params.capacity = spec.g;
    params.horizon = spec.horizon > 0 ? spec.horizon : 10.0 + spec.n / 4.0;
    params.max_slack = spec.name == "weighted-flexible" ? spec.slack : 0.0;
    if (spec.name == "weighted-flexible" && params.max_slack <= 0.0) {
      params.max_slack = 1.0;
    }
    return make_weighted_instance(gen::random_weighted(rng, params));
  }
  if (spec.name == "multi-window") {
    gen::MultiWindowParams params;
    params.num_jobs = spec.n;
    params.capacity = spec.g;
    params.horizon = static_cast<core::SlotTime>(spec.horizon);
    return make_multi_window_instance(gen::random_multi_window(rng, params));
  }
  return fail("unknown scenario '" + spec.name + "' (see --scenarios)");
}

core::RunContext make_run_context(const RunOptions& options) {
  core::RunContext ctx = core::RunContext::with_budget_ms(options.budget_ms);
  ctx.set_cancel_token(options.cancel);
  if (options.incumbent_hook) ctx.set_incumbent_hook(options.incumbent_hook);
  return ctx;
}

/// Reference lower bound: an exact certificate beats everything; else the
/// combinatorial bounds of the relevant family (the extension's own bound
/// for the extended kinds).
LowerBound derive_lower_bound(const ProblemInstance& inst,
                              const std::vector<core::Solution>& solutions,
                              const RunOptions& options) {
  LowerBound lb;
  for (const core::Solution& sol : solutions) {
    if (sol.ok && sol.feasible && sol.exact && !sol.preemptive.has_value()) {
      if (lb.kind != "exact" || sol.cost < lb.value) {
        lb = {sol.cost, "exact"};
      }
    }
  }
  if (lb.kind.empty()) {
    if (inst.kind != core::InstanceKind::kStandard) {
      lb.value = inst.extension->lower_bound();
      lb.kind = "model";
    } else if (inst.family == Family::kBusy) {
      // Harvest the g=infinity span bound from any solver that already ran
      // the DP (pipelines, preemptive, dp-unbounded) instead of paying for
      // it again; only fall back to computing it when nobody did.
      double harvested_span = -1.0;
      for (const core::Solution& sol : solutions) {
        harvested_span = std::max(harvested_span, sol.stat("opt_inf", -1.0));
      }
      const bool with_span =
          inst.continuous.all_interval_jobs(1e-6) ||
          (harvested_span < 0.0 &&
           inst.continuous.size() <= options.span_bound_max_jobs);
      busy::BusyLowerBounds bounds =
          busy::busy_lower_bounds(inst.continuous, with_span);
      bounds.span = std::max(bounds.span, harvested_span);
      lb.value = bounds.best();
      lb.kind = bounds.best() == bounds.profile  ? "profile"
                : bounds.best() == bounds.span   ? "span"
                                                 : "mass";
    } else {
      lb.value = static_cast<double>(inst.slotted.mass_lower_bound());
      lb.kind = "mass";
      for (const core::Solution& sol : solutions) {
        const double lp = sol.stat("lp_objective", -1.0);
        if (lp > lb.value) lb = {lp, "LP"};
      }
    }
  }
  return lb;
}

RunReport run_instance(const core::SolverRegistry& registry,
                       const ProblemInstance& inst,
                       const RunOptions& options) {
  RunReport report;
  report.instance = inst;
  report.solutions =
      registry.run_applicable(inst, options.solvers, make_run_context(options));
  report.lower_bound =
      derive_lower_bound(inst, report.solutions, options);
  return report;
}

namespace {

std::string verdict(const core::Solution& sol) {
  if (!sol.ok) return "declined";
  if (!sol.feasible) return "INFEASIBLE";
  return sol.timed_out ? "feasible (t/o)" : "feasible";
}

std::string ratio_cell(const RunReport& report, const core::Solution& sol) {
  if (!sol.ok || report.lower_bound.value <= 0.0) return "-";
  return report::Table::num(sol.cost / report.lower_bound.value);
}

/// Optimality-gap cell: 0 for proven optima, the certified relative gap
/// for interrupted anytime runs, "-" when the run certifies no bound.
std::string gap_cell(const core::Solution& sol) {
  if (!sol.ok) return "-";
  if (sol.exact) return "0";
  if (sol.best_bound <= 0.0) return "-";
  return report::Table::num(sol.gap());
}

}  // namespace

void write_json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

void write_aggregate_json(std::ostream& os, const SolverAggregate& agg) {
  os << "{\"solver\": ";
  write_json_string(os, agg.solver);
  os << ", \"runs\": " << agg.runs << ", \"ok\": " << agg.ok
     << ", \"feasible\": " << agg.feasible << ", \"exact\": " << agg.exact_runs
     << ", \"declined\": " << agg.declined
     << ", \"timed_out\": " << agg.timed_out;
  if (agg.ratio_count > 0) {
    os << ", \"ratio\": {\"count\": " << agg.ratio_count
       << ", \"mean\": " << agg.ratio_mean
       << ", \"median\": " << agg.ratio_median << ", \"p95\": " << agg.ratio_p95
       << ", \"max\": " << agg.ratio_max << "}";
  }
  if (agg.feasible > 0) {
    os << ", \"wall_ms\": {\"mean\": " << agg.wall_mean_ms
       << ", \"median\": " << agg.wall_median_ms
       << ", \"p95\": " << agg.wall_p95_ms
       << ", \"total\": " << agg.wall_total_ms << "}";
  }
  os << "}";
}

void append_unknown_solver_rows(const core::SolverRegistry& registry,
                                const std::vector<std::string>& only,
                                RunReport& cell) {
  for (const std::string& name : only) {
    if (registry.find(name) == nullptr) {
      core::Solution sol;
      sol.solver = name;
      sol.family = cell.instance.family;
      sol.message = "unknown solver";
      cell.solutions.push_back(std::move(sol));
    }
  }
}

core::Solution cancelled_cell_row(const core::Solver& solver,
                                  double budget_ms) {
  core::Solution sol;
  sol.solver = solver.name;
  sol.family = solver.family;
  sol.guarantee = solver.guarantee;
  sol.budget_ms = budget_ms;
  sol.message = "cancelled";
  sol.timed_out = true;
  return sol;
}

void print_report(std::ostream& os, const RunReport& report) {
  const bool busy = report.instance.family == Family::kBusy;
  if (report.instance.kind != core::InstanceKind::kStandard) {
    os << report.instance.extension->describe() << "\n";
  } else if (busy) {
    os << "busy-time instance: " << report.instance.continuous.size()
       << " jobs, g = " << report.instance.continuous.capacity() << ", "
       << (report.instance.continuous.all_interval_jobs() ? "interval"
                                                          : "flexible")
       << " jobs\n";
  } else {
    os << "active-time instance: " << report.instance.slotted.size()
       << " jobs, g = " << report.instance.slotted.capacity() << ", horizon "
       << report.instance.slotted.horizon() << "\n";
  }
  os << "lower bound: " << report::Table::num(report.lower_bound.value)
     << " (" << report.lower_bound.kind << ")\n\n";

  report::Table table({"solver", "cost", "/LB", "gap", busy ? "machines" : "-",
                       "ms", "verdict", "guarantee"});
  for (const core::Solution& sol : report.solutions) {
    table.add_row({sol.solver,
                   sol.ok ? report::Table::num(sol.cost) : "-",
                   ratio_cell(report, sol), gap_cell(sol),
                   busy && sol.ok ? std::to_string(sol.machines) : "-",
                   report::Table::num(sol.wall_ms),
                   verdict(sol), sol.guarantee});
  }
  table.print(os);
}

void write_csv(std::ostream& os, const RunReport& report) {
  report::Table table({"solver", "cost", "ratio_to_lb", "machines", "wall_ms",
                       "feasible", "exact", "timed_out", "best_bound", "gap",
                       "guarantee"});
  for (const core::Solution& sol : report.solutions) {
    table.add_row({sol.solver,
                   sol.ok ? report::Table::num(sol.cost, 6) : "",
                   sol.ok && report.lower_bound.value > 0.0
                       ? report::Table::num(
                             sol.cost / report.lower_bound.value, 6)
                       : "",
                   std::to_string(sol.machines),
                   report::Table::num(sol.wall_ms, 6),
                   sol.feasible ? "1" : "0", sol.exact ? "1" : "0",
                   sol.timed_out ? "1" : "0",
                   sol.ok && sol.best_bound > 0.0
                       ? report::Table::num(sol.best_bound, 6)
                       : "",
                   sol.ok && (sol.exact || sol.best_bound > 0.0)
                       ? report::Table::num(sol.gap(), 6)
                       : "",
                   sol.guarantee});
  }
  table.write_csv(os);
}

void write_json(std::ostream& os, const RunReport& report) {
  // Round-trippable doubles: the machine-readable report must not round
  // away digits the table/CSV writers keep.
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  const bool busy = report.instance.family == Family::kBusy;
  os << "{\n  \"family\": \"" << core::family_name(report.instance.family)
     << "\",\n  \"kind\": \""
     << core::instance_kind_name(report.instance.kind) << "\",\n";
  if (report.instance.kind != core::InstanceKind::kStandard) {
    os << "  \"jobs\": " << report.instance.extension->size()
       << ",\n  \"capacity\": " << report.instance.extension->capacity()
       << ",\n  \"description\": ";
    // Parity with the text report header: the extension's one-line model
    // summary, since kind alone does not identify the concrete shape.
    write_json_string(os, report.instance.extension->describe());
  } else if (busy) {
    os << "  \"jobs\": " << report.instance.continuous.size()
       << ",\n  \"capacity\": " << report.instance.continuous.capacity()
       << ",\n  \"interval_jobs\": "
       << (report.instance.continuous.all_interval_jobs() ? "true" : "false");
  } else {
    os << "  \"jobs\": " << report.instance.slotted.size()
       << ",\n  \"capacity\": " << report.instance.slotted.capacity()
       << ",\n  \"horizon\": " << report.instance.slotted.horizon();
  }
  os << ",\n  \"lower_bound\": {\"value\": " << report.lower_bound.value
     << ", \"kind\": ";
  write_json_string(os, report.lower_bound.kind);
  os << "},\n  \"solutions\": [";
  for (std::size_t i = 0; i < report.solutions.size(); ++i) {
    const core::Solution& sol = report.solutions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"solver\": ";
    write_json_string(os, sol.solver);
    os << ", \"ok\": " << (sol.ok ? "true" : "false")
       << ", \"feasible\": " << (sol.feasible ? "true" : "false");
    if (sol.ok) {
      os << ", \"cost\": " << sol.cost << ", \"machines\": " << sol.machines
         << ", \"exact\": " << (sol.exact ? "true" : "false");
      if (sol.timed_out) os << ", \"timed_out\": true";
      if (sol.best_bound > 0.0) {
        os << ", \"best_bound\": " << sol.best_bound;
        os << ", \"gap\": " << sol.gap();
      }
    }
    if (sol.budget_ms > 0.0) os << ", \"budget_ms\": " << sol.budget_ms;
    os << ", \"wall_ms\": " << sol.wall_ms;
    if (!sol.message.empty()) {
      os << ", \"message\": ";
      write_json_string(os, sol.message);
    }
    os << ", \"guarantee\": ";
    write_json_string(os, sol.guarantee);
    if (!sol.stats.empty()) {
      os << ", \"stats\": {";
      for (std::size_t k = 0; k < sol.stats.size(); ++k) {
        if (k > 0) os << ", ";
        write_json_string(os, sol.stats[k].first);
        os << ": " << sol.stats[k].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

// ---------------------------------------------------------------------------
// Trial sweeps.

namespace {

/// Deterministic order statistics over a scratch copy (nearest-rank p95,
/// middle-averaged median).
struct OrderStats {
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

OrderStats order_stats(std::vector<double> values) {
  OrderStats out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  const std::size_t n = values.size();
  out.mean = sum / static_cast<double>(n);
  out.median = n % 2 == 1 ? values[n / 2]
                          : 0.5 * (values[n / 2 - 1] + values[n / 2]);
  const std::size_t rank95 = static_cast<std::size_t>(
      std::ceil(0.95 * static_cast<double>(n)));
  out.p95 = values[std::max<std::size_t>(rank95, 1) - 1];
  out.max = values.back();
  return out;
}

}  // namespace

std::vector<SolverAggregate> aggregate_cells(
    const std::vector<RunReport>& cells) {
  std::vector<SolverAggregate> aggregates;
  std::vector<std::vector<double>> ratios;
  std::vector<std::vector<double>> walls;
  const auto index_of = [&](const core::Solution& sol) {
    for (std::size_t i = 0; i < aggregates.size(); ++i) {
      if (aggregates[i].solver == sol.solver) return i;
    }
    SolverAggregate agg;
    agg.solver = sol.solver;
    agg.guarantee = sol.guarantee;
    aggregates.push_back(std::move(agg));
    ratios.emplace_back();
    walls.emplace_back();
    return aggregates.size() - 1;
  };
  for (const RunReport& cell : cells) {
    for (const core::Solution& sol : cell.solutions) {
      const std::size_t idx = index_of(sol);
      SolverAggregate& agg = aggregates[idx];
      agg.runs += 1;
      agg.wall_total_ms += sol.wall_ms;
      if (sol.timed_out) agg.timed_out += 1;
      if (!sol.ok) {
        agg.declined += 1;
        continue;
      }
      agg.ok += 1;
      if (sol.exact) agg.exact_runs += 1;
      // Checker-failed schedules contribute to the verdict counts only:
      // an infeasible cost must never pollute the published ratio/wall
      // statistics (the infeasibility itself surfaces through
      // feasible < ok and the CLI's exit code 2).
      if (!sol.feasible) continue;
      agg.feasible += 1;
      walls[idx].push_back(sol.wall_ms);
      if (cell.lower_bound.value > 0.0) {
        ratios[idx].push_back(sol.cost / cell.lower_bound.value);
      }
    }
  }
  for (std::size_t i = 0; i < aggregates.size(); ++i) {
    SolverAggregate& agg = aggregates[i];
    agg.ratio_count = static_cast<int>(ratios[i].size());
    const OrderStats ratio = order_stats(ratios[i]);
    agg.ratio_mean = ratio.mean;
    agg.ratio_median = ratio.median;
    agg.ratio_p95 = ratio.p95;
    agg.ratio_max = ratio.max;
    const OrderStats wall = order_stats(walls[i]);
    agg.wall_mean_ms = wall.mean;
    agg.wall_median_ms = wall.median;
    agg.wall_p95_ms = wall.p95;
  }
  return aggregates;
}

std::optional<SweepReport> run_sweep(const core::SolverRegistry& registry,
                                     const ScenarioSpec& base,
                                     const SweepOptions& options,
                                     std::string* error) {
  SweepReport report;
  report.base = base;
  report.trials = std::max(1, options.trials);
  report.threads = resolve_threads(options.threads);
  report.budget_ms = options.run.budget_ms;
  const auto t0 = std::chrono::steady_clock::now();
  const core::RunContext base_ctx = make_run_context(options.run);

  // Instance generation is sequential: it is cheap, and trial t's workload
  // depends only on (scenario, base.seed + t), never on thread scheduling.
  std::vector<ProblemInstance> instances;
  instances.reserve(static_cast<std::size_t>(report.trials));
  std::vector<std::vector<const core::Solver*>> plans;
  plans.reserve(static_cast<std::size_t>(report.trials));
  for (int t = 0; t < report.trials; ++t) {
    ScenarioSpec spec = base;
    spec.seed = base.seed + static_cast<std::uint64_t>(t);
    auto inst = make_scenario(spec, error);
    if (!inst.has_value()) return std::nullopt;
    // The registry owns the selection semantics: the sweep's per-trial
    // plan is exactly what run_applicable would run on this instance
    // (budget-aware — a budget lifts the exact gates).
    plans.push_back(registry.selection(*inst, options.run.solvers, base_ctx));
    instances.push_back(std::move(*inst));
  }

  // Fan the (trial, solver) cells out over the pool. Every cell writes
  // only its own pre-sized slot, so the collected grid — and everything
  // aggregated from it — is identical for any worker count.
  struct Cell {
    int trial;
    std::size_t slot;
  };
  std::vector<Cell> cells;
  std::vector<std::vector<core::Solution>> grid(
      static_cast<std::size_t>(report.trials));
  for (int t = 0; t < report.trials; ++t) {
    grid[static_cast<std::size_t>(t)].resize(
        plans[static_cast<std::size_t>(t)].size());
    for (std::size_t s = 0; s < plans[static_cast<std::size_t>(t)].size();
         ++s) {
      cells.push_back({t, s});
    }
  }
  // The scheduler drains a cancelled sweep: once the token trips, workers
  // claim whole remaining ranges and stamp each cell's slot with the same
  // decline row the registry would produce — no begin_cell, no dispatch.
  ParallelOptions parallel_options;
  parallel_options.cancel = options.run.cancel;
  parallel_options.on_cancelled = [&](std::size_t i) {
    const auto [trial, slot] = cells[i];
    grid[static_cast<std::size_t>(trial)][slot] = cancelled_cell_row(
        *plans[static_cast<std::size_t>(trial)][slot], base_ctx.budget_ms());
  };
  parallel_for(
      report.threads, cells.size(),
      [&](std::size_t i) {
        const auto [trial, slot] = cells[i];
        // Each cell gets a freshly armed deadline; the cancel token and the
        // incumbent hook are shared across the whole sweep.
        grid[static_cast<std::size_t>(trial)][slot] = registry.run(
            *plans[static_cast<std::size_t>(trial)][slot],
            instances[static_cast<std::size_t>(trial)], base_ctx.restarted());
      },
      parallel_options);

  // Assemble the per-trial reports (plus refusal rows for unknown solver
  // names, mirroring run_applicable) and derive each trial's lower bound.
  report.cells.reserve(static_cast<std::size_t>(report.trials));
  for (int t = 0; t < report.trials; ++t) {
    RunReport cell;
    cell.instance = std::move(instances[static_cast<std::size_t>(t)]);
    cell.solutions = std::move(grid[static_cast<std::size_t>(t)]);
    append_unknown_solver_rows(registry, options.run.solvers, cell);
    cell.lower_bound =
        derive_lower_bound(cell.instance, cell.solutions, options.run);
    report.cells.push_back(std::move(cell));
  }

  // Aggregate per solver, in first-seen (registration) order.
  report.aggregates = aggregate_cells(report.cells);

  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

void print_sweep(std::ostream& os, const SweepReport& report) {
  os << "sweep: scenario '" << report.base.name << "', " << report.trials
     << " trials (seeds " << report.base.seed << ".."
     << report.base.seed + static_cast<std::uint64_t>(report.trials - 1)
     << "), " << report.threads << " thread"
     << (report.threads == 1 ? "" : "s") << ", "
     << report::Table::num(report.wall_ms) << " ms total";
  if (report.budget_ms > 0.0) {
    os << ", budget " << report::Table::num(report.budget_ms) << " ms/cell";
  }
  os << "\n";
  if (!report.cells.empty()) {
    const RunReport& first = report.cells.front();
    if (first.instance.kind != core::InstanceKind::kStandard) {
      os << "per trial: " << first.instance.extension->describe() << "\n";
    }
  }
  os << "\n";
  report::Table table({"solver", "runs", "ok", "feasible", "exact", "t/o",
                       "ratio mean", "med", "p95", "max", "ms med",
                       "ms p95"});
  for (const SolverAggregate& agg : report.aggregates) {
    const bool has_ratio = agg.ratio_count > 0;
    table.add_row(
        {agg.solver, std::to_string(agg.runs), std::to_string(agg.ok),
         std::to_string(agg.feasible), std::to_string(agg.exact_runs),
         std::to_string(agg.timed_out),
         has_ratio ? report::Table::num(agg.ratio_mean) : "-",
         has_ratio ? report::Table::num(agg.ratio_median) : "-",
         has_ratio ? report::Table::num(agg.ratio_p95) : "-",
         has_ratio ? report::Table::num(agg.ratio_max) : "-",
         agg.feasible > 0 ? report::Table::num(agg.wall_median_ms) : "-",
         agg.feasible > 0 ? report::Table::num(agg.wall_p95_ms) : "-"});
  }
  table.print(os);
}

void write_sweep_csv(std::ostream& os, const SweepReport& report) {
  report::Table table({"solver", "runs", "ok", "feasible", "exact",
                       "declined", "timed_out",
                       "ratio_mean", "ratio_median", "ratio_p95",
                       "ratio_max", "wall_mean_ms", "wall_median_ms",
                       "wall_p95_ms", "wall_total_ms"});
  for (const SolverAggregate& agg : report.aggregates) {
    const bool has_ratio = agg.ratio_count > 0;
    table.add_row(
        {agg.solver, std::to_string(agg.runs), std::to_string(agg.ok),
         std::to_string(agg.feasible), std::to_string(agg.exact_runs),
         std::to_string(agg.declined), std::to_string(agg.timed_out),
         has_ratio ? report::Table::num(agg.ratio_mean, 6) : "",
         has_ratio ? report::Table::num(agg.ratio_median, 6) : "",
         has_ratio ? report::Table::num(agg.ratio_p95, 6) : "",
         has_ratio ? report::Table::num(agg.ratio_max, 6) : "",
         agg.feasible > 0 ? report::Table::num(agg.wall_mean_ms, 6) : "",
         agg.feasible > 0 ? report::Table::num(agg.wall_median_ms, 6) : "",
         agg.feasible > 0 ? report::Table::num(agg.wall_p95_ms, 6) : "",
         report::Table::num(agg.wall_total_ms, 6)});
  }
  table.write_csv(os);
}

void write_sweep_json(std::ostream& os, const SweepReport& report) {
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"scenario\": ";
  write_json_string(os, report.base.name);
  os << ",\n  \"trials\": " << report.trials
     << ",\n  \"threads\": " << report.threads
     << ",\n  \"base_seed\": " << report.base.seed
     << ",\n  \"n\": " << report.base.n << ",\n  \"g\": " << report.base.g
     << ",\n  \"budget_ms\": " << report.budget_ms
     << ",\n  \"wall_ms\": " << report.wall_ms
     << ",\n  \"aggregates\": [";
  for (std::size_t i = 0; i < report.aggregates.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    ";
    write_aggregate_json(os, report.aggregates[i]);
  }
  os << "\n  ],\n  \"cells\": [";
  for (std::size_t t = 0; t < report.cells.size(); ++t) {
    const RunReport& cell = report.cells[t];
    os << (t == 0 ? "\n" : ",\n") << "    {\"seed\": "
       << report.base.seed + static_cast<std::uint64_t>(t)
       << ", \"lower_bound\": {\"value\": " << cell.lower_bound.value
       << ", \"kind\": ";
    write_json_string(os, cell.lower_bound.kind);
    os << "}, \"solutions\": [";
    for (std::size_t s = 0; s < cell.solutions.size(); ++s) {
      const core::Solution& sol = cell.solutions[s];
      os << (s == 0 ? "" : ", ") << "{\"solver\": ";
      write_json_string(os, sol.solver);
      os << ", \"ok\": " << (sol.ok ? "true" : "false") << ", \"feasible\": "
         << (sol.feasible ? "true" : "false");
      if (sol.ok) {
        os << ", \"cost\": " << sol.cost
           << ", \"exact\": " << (sol.exact ? "true" : "false");
        if (sol.timed_out) os << ", \"timed_out\": true";
        if (sol.best_bound > 0.0 && !sol.exact) {
          os << ", \"best_bound\": " << sol.best_bound
             << ", \"gap\": " << sol.gap();
        }
      }
      os << ", \"wall_ms\": " << sol.wall_ms << "}";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

}  // namespace abt::engine
