#include "engine/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "busy/lower_bounds.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"
#include "report/table.hpp"

namespace abt::engine {

using core::Family;
using core::ProblemInstance;

namespace {

gen::SlottedParams slotted_params(const ScenarioSpec& spec) {
  gen::SlottedParams params;
  params.num_jobs = spec.n;
  params.capacity = spec.g;
  params.horizon = spec.horizon > 0
                       ? static_cast<core::SlotTime>(spec.horizon)
                       : std::max<core::SlotTime>(12, 2 * spec.n);
  return params;
}

gen::ContinuousParams continuous_params(const ScenarioSpec& spec,
                                        double slack) {
  gen::ContinuousParams params;
  params.num_jobs = spec.n;
  params.capacity = spec.g;
  params.horizon = spec.horizon > 0 ? spec.horizon : 10.0 + spec.n / 4.0;
  params.max_slack = slack;
  return params;
}

}  // namespace

const std::vector<ScenarioInfo>& scenarios() {
  static const std::vector<ScenarioInfo> kScenarios = {
      {"slotted", Family::kActive, "random feasible slotted instance"},
      {"slotted-unit", Family::kActive, "random feasible unit-job instance"},
      {"fig3", Family::kActive, "Fig 3 minimal-feasible tight family (g>=3)"},
      {"lp-gap", Family::kActive, "section 3.5 LP integrality-gap family"},
      {"interval", Family::kBusy, "random interval jobs (no slack)"},
      {"flexible", Family::kBusy, "random flexible jobs (windowed)"},
      {"clique", Family::kBusy, "random interval jobs sharing a point"},
      {"proper", Family::kBusy, "random proper instance (no containment)"},
      {"laminar", Family::kBusy, "random laminar windows"},
      {"proper-clique", Family::kBusy,
       "proper clique (Mertzios DP exact case)"},
      {"fig1", Family::kBusy, "Fig 1 worked example (7 jobs, g=3)"},
      {"fig6", Family::kBusy, "Fig 6 GREEDYTRACKING factor-3 family"},
      {"fig8", Family::kBusy, "Fig 8 two-approximation tight family (g=2)"},
      {"fig10", Family::kBusy, "Fig 10-12 factor-4 flexible family"},
  };
  return kScenarios;
}

std::optional<ProblemInstance> make_scenario(const ScenarioSpec& spec,
                                             std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  core::Rng rng(spec.seed);
  if (spec.name == "slotted" || spec.name == "slotted-unit") {
    gen::SlottedParams params = slotted_params(spec);
    params.unit_jobs = spec.name == "slotted-unit";
    return core::make_instance(gen::random_feasible_slotted(rng, params));
  }
  if (spec.name == "fig3") {
    if (spec.g < 3) return fail("fig3 requires g >= 3");
    return core::make_instance(gen::fig3_instance(spec.g));
  }
  if (spec.name == "lp-gap") {
    if (spec.g < 2) return fail("lp-gap requires g >= 2");
    return core::make_instance(gen::lp_gap_instance(spec.g));
  }
  if (spec.name == "interval") {
    return core::make_instance(
        gen::random_continuous(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "flexible") {
    return core::make_instance(
        gen::random_continuous(rng, continuous_params(spec, spec.slack)));
  }
  if (spec.name == "clique") {
    return core::make_instance(
        gen::random_clique(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "proper") {
    return core::make_instance(
        gen::random_proper(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "laminar") {
    return core::make_instance(
        gen::random_laminar(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "proper-clique") {
    return core::make_instance(
        gen::random_proper_clique(rng, continuous_params(spec, 0.0)));
  }
  if (spec.name == "fig1") {
    return core::make_instance(gen::fig1_example());
  }
  if (spec.name == "fig6") {
    if (spec.g < 2) return fail("fig6 requires g >= 2");
    return core::make_instance(gen::fig6_instance(spec.g, spec.eps));
  }
  if (spec.name == "fig8") {
    return core::make_instance(
        gen::fig8_instance(spec.eps, spec.eps / 3.0));
  }
  if (spec.name == "fig10") {
    if (spec.g < 2) return fail("fig10 requires g >= 2");
    return core::make_instance(
        gen::fig10_instance(spec.g, spec.eps, spec.eps / 3.0));
  }
  return fail("unknown scenario '" + spec.name + "' (see --scenarios)");
}

RunReport run_instance(const core::SolverRegistry& registry,
                       const ProblemInstance& inst,
                       const RunOptions& options) {
  RunReport report;
  report.instance = inst;
  report.solutions = registry.run_applicable(inst, options.solvers);

  // Reference lower bound: an exact certificate beats everything; else the
  // combinatorial bounds of the relevant family.
  LowerBound lb;
  for (const core::Solution& sol : report.solutions) {
    if (sol.ok && sol.feasible && sol.exact && !sol.preemptive.has_value()) {
      if (lb.kind != "exact" || sol.cost < lb.value) {
        lb = {sol.cost, "exact"};
      }
    }
  }
  if (lb.kind.empty()) {
    if (inst.family == Family::kBusy) {
      // Harvest the g=infinity span bound from any solver that already ran
      // the DP (pipelines, preemptive, dp-unbounded) instead of paying for
      // it again; only fall back to computing it when nobody did.
      double harvested_span = -1.0;
      for (const core::Solution& sol : report.solutions) {
        harvested_span = std::max(harvested_span, sol.stat("opt_inf", -1.0));
      }
      const bool with_span =
          inst.continuous.all_interval_jobs(1e-6) ||
          (harvested_span < 0.0 &&
           inst.continuous.size() <= options.span_bound_max_jobs);
      busy::BusyLowerBounds bounds =
          busy::busy_lower_bounds(inst.continuous, with_span);
      bounds.span = std::max(bounds.span, harvested_span);
      lb.value = bounds.best();
      lb.kind = bounds.best() == bounds.profile  ? "profile"
                : bounds.best() == bounds.span   ? "span"
                                                 : "mass";
    } else {
      lb.value = static_cast<double>(inst.slotted.mass_lower_bound());
      lb.kind = "mass";
      for (const core::Solution& sol : report.solutions) {
        const double lp = sol.stat("lp_objective", -1.0);
        if (lp > lb.value) lb = {lp, "LP"};
      }
    }
  }
  report.lower_bound = lb;
  return report;
}

namespace {

std::string verdict(const core::Solution& sol) {
  if (!sol.ok) return "declined";
  return sol.feasible ? "feasible" : "INFEASIBLE";
}

std::string ratio_cell(const RunReport& report, const core::Solution& sol) {
  if (!sol.ok || report.lower_bound.value <= 0.0) return "-";
  return report::Table::num(sol.cost / report.lower_bound.value);
}

void escape_json(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c;
    }
  }
  os << '"';
}

}  // namespace

void print_report(std::ostream& os, const RunReport& report) {
  const bool busy = report.instance.family == Family::kBusy;
  if (busy) {
    os << "busy-time instance: " << report.instance.continuous.size()
       << " jobs, g = " << report.instance.continuous.capacity() << ", "
       << (report.instance.continuous.all_interval_jobs() ? "interval"
                                                          : "flexible")
       << " jobs\n";
  } else {
    os << "active-time instance: " << report.instance.slotted.size()
       << " jobs, g = " << report.instance.slotted.capacity() << ", horizon "
       << report.instance.slotted.horizon() << "\n";
  }
  os << "lower bound: " << report::Table::num(report.lower_bound.value)
     << " (" << report.lower_bound.kind << ")\n\n";

  report::Table table({"solver", "cost", "/LB", busy ? "machines" : "-",
                       "ms", "verdict", "guarantee"});
  for (const core::Solution& sol : report.solutions) {
    table.add_row({sol.solver,
                   sol.ok ? report::Table::num(sol.cost) : "-",
                   ratio_cell(report, sol),
                   busy && sol.ok ? std::to_string(sol.machines) : "-",
                   report::Table::num(sol.wall_ms),
                   verdict(sol), sol.guarantee});
  }
  table.print(os);
}

void write_csv(std::ostream& os, const RunReport& report) {
  report::Table table({"solver", "cost", "ratio_to_lb", "machines", "wall_ms",
                       "feasible", "exact", "guarantee"});
  for (const core::Solution& sol : report.solutions) {
    table.add_row({sol.solver,
                   sol.ok ? report::Table::num(sol.cost, 6) : "",
                   sol.ok && report.lower_bound.value > 0.0
                       ? report::Table::num(
                             sol.cost / report.lower_bound.value, 6)
                       : "",
                   std::to_string(sol.machines),
                   report::Table::num(sol.wall_ms, 6),
                   sol.feasible ? "1" : "0", sol.exact ? "1" : "0",
                   sol.guarantee});
  }
  table.write_csv(os);
}

void write_json(std::ostream& os, const RunReport& report) {
  // Round-trippable doubles: the machine-readable report must not round
  // away digits the table/CSV writers keep.
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  const bool busy = report.instance.family == Family::kBusy;
  os << "{\n  \"family\": \"" << core::family_name(report.instance.family)
     << "\",\n";
  if (busy) {
    os << "  \"jobs\": " << report.instance.continuous.size()
       << ",\n  \"capacity\": " << report.instance.continuous.capacity()
       << ",\n  \"interval_jobs\": "
       << (report.instance.continuous.all_interval_jobs() ? "true" : "false");
  } else {
    os << "  \"jobs\": " << report.instance.slotted.size()
       << ",\n  \"capacity\": " << report.instance.slotted.capacity()
       << ",\n  \"horizon\": " << report.instance.slotted.horizon();
  }
  os << ",\n  \"lower_bound\": {\"value\": " << report.lower_bound.value
     << ", \"kind\": ";
  escape_json(os, report.lower_bound.kind);
  os << "},\n  \"solutions\": [";
  for (std::size_t i = 0; i < report.solutions.size(); ++i) {
    const core::Solution& sol = report.solutions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"solver\": ";
    escape_json(os, sol.solver);
    os << ", \"ok\": " << (sol.ok ? "true" : "false")
       << ", \"feasible\": " << (sol.feasible ? "true" : "false");
    if (sol.ok) {
      os << ", \"cost\": " << sol.cost << ", \"machines\": " << sol.machines
         << ", \"exact\": " << (sol.exact ? "true" : "false");
    }
    os << ", \"wall_ms\": " << sol.wall_ms;
    if (!sol.message.empty()) {
      os << ", \"message\": ";
      escape_json(os, sol.message);
    }
    os << ", \"guarantee\": ";
    escape_json(os, sol.guarantee);
    if (!sol.stats.empty()) {
      os << ", \"stats\": {";
      for (std::size_t k = 0; k < sol.stats.size(); ++k) {
        if (k > 0) os << ", ";
        escape_json(os, sol.stats[k].first);
        os << ": " << sol.stats[k].second;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

}  // namespace abt::engine
