#pragma once

// Data-driven solver selection: a nearest-centroid model over normalized
// instance features (engine/features), trained offline from campaign CSV
// output and serialized as a versioned text format whose round trip is
// lossless (write_model ∘ parse_model == identity, doubles emitted at
// max_digits10). One centroid per scenario label carries a solver ranking
// (best first, by feasibility rate, then median cost ratio, then median
// wall time across the scenario's grid points); selection normalizes the
// query instance's features with the model's mu/sigma and returns the
// nearest centroid's ranking, truncated to the requested top-k. The
// portfolio layer races that subset (engine/portfolio).

#include <array>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "engine/features.hpp"

namespace abt::engine {

struct SelectorCentroid {
  std::string label;  ///< Scenario name the centroid was trained from.
  std::array<double, kFeatureCount> center{};  ///< In normalized space.
  std::vector<std::string> ranking;            ///< Solver names, best first.

  friend bool operator==(const SelectorCentroid&,
                         const SelectorCentroid&) = default;
};

struct SelectorModel {
  int version = 1;
  std::array<double, kFeatureCount> mu{};
  std::array<double, kFeatureCount> sigma{};  ///< Strictly positive.
  std::vector<SelectorCentroid> centroids;

  friend bool operator==(const SelectorModel&, const SelectorModel&) = default;
};

/// Ranked solver subset for `features`: the ranking of the centroid
/// nearest in normalized squared-L2 distance (first wins ties), truncated
/// to `top_k` names (<= 0 = the full ranking). Empty model => empty.
[[nodiscard]] std::vector<std::string> select_solvers(
    const SelectorModel& model, const FeatureVector& features, int top_k = 0);

/// Versioned text serialization ("selector-model v1" header, feature-name
/// manifest, mu/sigma, centroid blocks). Doubles are written at
/// max_digits10 so parse_model(write_model(m)) == m exactly.
void write_model(std::ostream& os, const SelectorModel& model);

/// Parses the text format. Nullopt with a line-numbered `error` on any
/// malformed input: wrong header/version, feature manifest not matching
/// this build's extractor, wrong arities, non-positive sigma, centroid
/// blocks missing their center/rank lines, duplicate labels or solver
/// names, unknown directives, or no centroid at all.
[[nodiscard]] std::optional<SelectorModel> parse_model(
    std::istream& in, std::string* error = nullptr);

/// Offline training from campaign CSV (write_campaign_csv schema). Rows
/// are grouped into (scenario, n, g, seed) points; each point's solvers
/// are ranked by feasibility rate, then median cost ratio, then median
/// wall time (name as the final tie-break), the point's instance is
/// regenerated through make_scenario for its features, and every scenario
/// label becomes one centroid (mean normalized features, mean-rank Borda
/// merge of its points' rankings). Nullopt with `error` on a missing
/// header column, an unparseable row, or a scenario the generator does
/// not know. Non-grid knobs (slack/horizon/eps) are not recorded in the
/// CSV and default to the generator defaults.
[[nodiscard]] std::optional<SelectorModel> train_selector(
    std::istream& csv, std::string* error = nullptr);

}  // namespace abt::engine
