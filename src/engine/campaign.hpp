#pragma once

// Multi-scenario campaigns: sweep a grid of ScenarioSpecs (scenario × n ×
// g) through ONE shared thread pool in a single invocation — the
// fleet-style batch mode layered on top of the budget-aware RunContext
// API. Every (point, trial, solver) cell runs with a freshly armed
// per-cell budget and the campaign-wide cancel token; per-point
// aggregates reuse the trial sweep's statistics so a campaign point and a
// standalone sweep of the same spec report identical numbers.

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/portfolio.hpp"
#include "engine/runner.hpp"

namespace abt::engine {

/// A campaign grid: the cross product scenarios × ns × gs × slacks ×
/// horizons, every point sharing the remaining knobs (seed, eps) of
/// `base`. Empty axes borrow the base value, so a file may fix any
/// subset. A grid may also restrict which solvers run: `solvers` applies
/// to every point, `scenario_solvers` overrides it for one scenario's
/// points (empty = no restriction, i.e. the campaign-wide solver list).
struct CampaignGrid {
  std::vector<std::string> scenarios;
  std::vector<int> ns;
  std::vector<int> gs;
  std::vector<double> slacks;    ///< Window-slack axis (empty = base.slack).
  std::vector<double> horizons;  ///< Horizon axis (empty = base.horizon).
  std::vector<std::string> solvers;  ///< Grid-wide subset ({} = no limit).
  /// Per-scenario solver subsets; a named scenario's points use this
  /// instead of `solvers`.
  std::map<std::string, std::vector<std::string>> scenario_solvers;
  ScenarioSpec base;
  int trials = 0;  ///< 0 = take CampaignOptions::trials.
};

/// The grid's points in scenario-major, then n, g, slack, horizon order.
[[nodiscard]] std::vector<ScenarioSpec> expand_grid(const CampaignGrid& grid);

/// The solver subset a point of `scenario` runs: the per-scenario
/// override when one exists, else the grid-wide `solvers` list. An empty
/// result means "no grid restriction" (run_campaign then falls back to
/// CampaignOptions::run.solvers).
[[nodiscard]] const std::vector<std::string>& grid_solvers(
    const CampaignGrid& grid, const std::string& scenario);

/// Parses the campaign file format (one directive per line, `#` comments):
///
///   scenario interval flexible   # grid axis: scenario names
///   n 8 16 24                    # grid axis: job counts
///   g 3                          # grid axis: capacities
///   slack 0.5 1.5                # grid axis: window slacks
///   horizon 12 18                # grid axis: horizons (0 = derived)
///   solvers busy/first-fit busy/greedy-tracking   # grid-wide subset
///   solvers:flexible busy/greedy-tracking         # per-scenario subset
///   trials 4                     # optional: per-point trials
///   seed 7                       # optional shared knobs: seed, eps
///
/// A one-value `slack`/`horizon` line behaves exactly like the historic
/// scalar knob (a single-point axis). Nullopt (with a line-numbered
/// `error`) on unknown directives or malformed values; a campaign must
/// name at least one scenario, and every `solvers:<scenario>` override
/// must name a scenario the grid declares. `base` seeds the grid's shared
/// knobs (and any axis the file fixes none of) — the CLI passes its
/// scenario flags here, so `--seed 99` applies to a campaign file unless
/// the file's own `seed` directive overrides it.
[[nodiscard]] std::optional<CampaignGrid> parse_campaign(
    std::istream& in, std::string* error, const ScenarioSpec& base = {});

struct CampaignPresetInfo {
  std::string name;
  std::string description;
};

/// Built-in preset grids (usable as `abt_solve --campaign <name>`).
[[nodiscard]] const std::vector<CampaignPresetInfo>& campaign_presets();
[[nodiscard]] std::optional<CampaignGrid> campaign_preset(
    std::string_view name);

/// Per-point portfolio racing: instead of running every selected solver to
/// completion, each (point, trial) cell races `entries` (or the selector /
/// applicability auto pick) under engine::race and keeps the full race
/// rows — losers show up in the aggregates as interrupted/cancelled runs,
/// and their incumbents still tighten the per-trial lower bound.
struct CampaignRace {
  bool enabled = false;
  std::vector<RaceEntry> entries;        ///< Explicit contestants; empty = auto.
  const SelectorModel* model = nullptr;  ///< Optional selector for auto picks.
  int top_k = 3;                         ///< Auto pick width with a model.
  double accept_gap = -1.0;              ///< RaceOptions::accept_gap per cell.
};

struct CampaignOptions {
  int trials = 4;     ///< Per-point trials (grid `trials` directive wins).
  int threads = 1;    ///< One pool for the whole campaign; 0 = hardware.
  RunOptions run;     ///< Solver subset, per-cell budget, cancel token.
  CampaignRace race;  ///< Per-cell portfolio racing (off by default).
};

/// One grid point's outcome: the spec it ran and the same per-solver
/// aggregates a standalone sweep of that spec would report.
struct CampaignPoint {
  ScenarioSpec spec;
  /// The solver subset this point ran under (grid subset when one was
  /// declared, else the campaign-wide RunOptions::solvers; empty = every
  /// applicable solver).
  std::vector<std::string> solvers;
  std::vector<SolverAggregate> aggregates;
  int cells = 0;             ///< (trial, solver) cells fanned out.
  int ok_cells = 0;          ///< Cells that produced a schedule.
  int infeasible_cells = 0;  ///< Cells whose schedule FAILED its checker.
  // Racing mode only:
  int races = 0;        ///< Trials raced at this point.
  int races_unwon = 0;  ///< Races where no contestant met acceptance.
  /// Winner tallies in first-win order: (solver, races won).
  std::vector<std::pair<std::string, int>> race_wins;
};

struct CampaignReport {
  int trials = 0;
  int threads = 1;
  bool raced = false;      ///< Cells were portfolio races, not full sweeps.
  double budget_ms = 0.0;  ///< Per-cell budget every point ran under.
  double wall_ms = 0.0;    ///< Whole-campaign wall clock.
  std::vector<CampaignPoint> points;
};

/// Runs every (point, trial, solver) cell of the expanded grid through one
/// shared pool. Nullopt (with `error`) when any point's scenario cannot be
/// instantiated — the grid is validated up front, before any cell runs.
[[nodiscard]] std::optional<CampaignReport> run_campaign(
    const core::SolverRegistry& registry, const CampaignGrid& grid,
    const CampaignOptions& options, std::string* error = nullptr);

/// Aligned text table: one row per (point, solver) aggregate.
void print_campaign(std::ostream& os, const CampaignReport& report);

/// CSV rows: scenario,n,g,seed,slack,horizon,solver,runs,ok,feasible,
/// exact,declined,timed_out,ratio_*,wall_median_ms,wall_total_ms.
void write_campaign_csv(std::ostream& os, const CampaignReport& report);

/// Machine-readable JSON: campaign parameters plus one object per grid
/// point with its per-solver aggregates.
void write_campaign_json(std::ostream& os, const CampaignReport& report);

}  // namespace abt::engine
