#pragma once

// Deterministic instance features for data-driven solver selection: a
// fixed-width numeric descriptor of a ProblemInstance (size, capacity,
// family/kind, density, slack distribution, window statistics) computed
// by straight-line arithmetic in job order — the same instance always
// yields the bit-identical vector, so a selector model trained offline
// applies reproducibly online. The vector layout is a versioned contract
// shared with engine/selector: parse_model rejects models whose feature
// names do not match feature_names() exactly.

#include <array>
#include <cstddef>
#include <string>

#include "core/solver.hpp"

namespace abt::engine {

inline constexpr std::size_t kFeatureCount = 12;

/// Feature names, index-aligned with FeatureVector::values:
///   jobs        number of jobs n
///   capacity    machine/slot capacity g
///   family      0 = busy, 1 = active
///   kind        0 = standard, 1 = weighted, 2 = multi-window
///   horizon     span of the time axis (max deadline - min release)
///   density     total work mass / (g * horizon)
///   slack_mean  mean of (window - length) / window over jobs
///   slack_max   max of the same
///   rigid_frac  fraction of jobs with zero slack (interval/rigid jobs)
///   window_mean mean window size / horizon
///   window_cv   coefficient of variation of window sizes
///   shape       kind-specific extra: mean width / g (weighted), mean
///               windows per job (multi-window), 0 otherwise
[[nodiscard]] const std::array<std::string, kFeatureCount>& feature_names();

struct FeatureVector {
  std::array<double, kFeatureCount> values{};

  [[nodiscard]] double operator[](std::size_t i) const { return values[i]; }

  friend bool operator==(const FeatureVector&, const FeatureVector&) = default;
};

/// Extracts the descriptor for any of the four instance kinds. Pure
/// arithmetic over the job list in storage order: deterministic and
/// allocation-light (one pass, two small scratch vectors).
[[nodiscard]] FeatureVector extract_features(const core::ProblemInstance& inst);

}  // namespace abt::engine
