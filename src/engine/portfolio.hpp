#pragma once

// Portfolio racing: run several registered solvers on the SAME instance
// concurrently over the shared work-stealing pool; the first contestant
// returning an acceptable solution (checker-pass, plus an optional
// certified-gap threshold) wins and trips a race-local CancelSource, so
// losers drain through the PR 7 protocol — running anytime solvers return
// their incumbent at the next poll, unstarted cells are stamped in
// O(workers) without ever entering the registry. Every contestant runs in
// a child RunContext derived from the caller's budget
// (core::RunContext::child), so the race can never outlive its caller and
// the caller's own cancellation reaches every contestant.
//
// Determinism contract (pinned by tests/test_portfolio.cpp): WHICH
// contestant wins is timing-dependent by design; everything reported
// about the winner is not. The winning row is always checker-verified,
// its cost equals a standalone run of that solver (completed runs are
// deterministic), the reference bound is a pure function of the instance,
// and `best_bound` only tightens monotonically over certified bounds — so
// an all-exact race reports a bit-identical (cost, verdict, bound)
// fingerprint for every thread count, steal order and repetition. At one
// thread the race degenerates to "first acceptable entry in order wins",
// bitwise-reproducibly.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "engine/runner.hpp"
#include "engine/selector.hpp"

namespace abt::engine {

/// One contestant: a registry name plus an optional per-entry wall-clock
/// cap in ms (<= 0 = inherit the caller's remaining budget unchanged).
/// Entries may repeat a solver, e.g. under different caps.
struct RaceEntry {
  std::string solver;
  double budget_cap_ms = 0.0;
};

struct RaceOptions {
  /// Pool workers racing (0 = resolved to hardware concurrency, i.e.
  /// every worker of the shared pool). At 1 the race runs inline and
  /// sequentially in entry order.
  int threads = 0;
  /// Acceptance: a finisher wins iff its schedule passed the checker AND
  /// (accept_gap < 0, or it is exact, or its cost is within (1 +
  /// accept_gap) of the tightest certified lower bound known for it —
  /// max(its own best_bound, the race's reference bound)). accept_gap < 0
  /// means any checker-verified schedule wins.
  double accept_gap = -1.0;
  /// Reference-bound knob, as RunOptions::span_bound_max_jobs.
  int span_bound_max_jobs = 48;
};

/// Outcome of one race. rows[i] is entry i's Solution and is written by
/// exactly one cell: the winner's completed run, a loser's drained or
/// incumbent row, or a refusal row for unknown names.
struct RaceReport {
  std::vector<RaceEntry> entries;
  std::vector<core::Solution> rows;
  /// Row index of the acceptance-passing winner; -1 = none. A race whose
  /// CALLER cancelled never declares a winner, even when an interrupted
  /// contestant returned an acceptable incumbent (it stays visible as
  /// `best`).
  int winner = -1;
  /// Lowest-cost checker-verified row (== winner when someone won under
  /// accept_gap < 0; the best-effort answer when nobody met acceptance).
  int best = -1;
  LowerBound reference;     ///< Combinatorial bound acceptance was judged by.
  double best_bound = 0.0;  ///< Tightest certified bound: reference + rows.
  double accept_gap = -1.0;
  double wall_ms = 0.0;
  /// Contestants the race (or its caller) interrupted — drained unstarted
  /// or observed cancelled at return. A contestant that merely exhausted
  /// its own per-entry budget cap is timed out, not cancelled.
  int cancelled = 0;
};

/// Races `entries` on `inst`. Each contestant gets parent.child(token,
/// cap): the caller's remaining budget (per-entry capped), the caller's
/// token chained with the race's own source, a fresh clock. Unknown entry
/// names become refusal rows without occupying a worker beyond stamping.
[[nodiscard]] RaceReport race(const core::SolverRegistry& registry,
                              const core::ProblemInstance& inst,
                              const std::vector<RaceEntry>& entries,
                              const core::RunContext& parent = {},
                              const RaceOptions& options = {});

/// Entries for `--race auto`: the selector model's ranked pick (top_k)
/// filtered to solvers registered and applicable under `ctx`; without a
/// model, every applicable solver in registration order.
[[nodiscard]] std::vector<RaceEntry> auto_entries(
    const core::SolverRegistry& registry, const core::ProblemInstance& inst,
    const SelectorModel* model = nullptr, int top_k = 3,
    const core::RunContext& ctx = {});

/// Aligned text table of the race (one row per contestant + winner line).
void print_race(std::ostream& os, const RaceReport& report);

/// CSV rows: solver,cost,wall_ms,feasible,exact,timed_out,best_bound,
/// winner,message.
void write_race_csv(std::ostream& os, const RaceReport& report);

/// Machine-readable JSON: a "race" object (winner, bounds, acceptance,
/// wall) plus one row object per contestant.
void write_race_json(std::ostream& os, const core::ProblemInstance& inst,
                     const RaceReport& report);

}  // namespace abt::engine
