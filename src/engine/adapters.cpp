#include "engine/adapters.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/assert.hpp"
#include "core/io.hpp"

namespace abt::engine {

double WeightedExtension::lower_bound() const {
  // Width-weighted mass is always valid; the span projection additionally
  // holds when every run position is forced (interval jobs).
  double bound = inst_.mass_lower_bound();
  if (inst_.all_interval_jobs(1e-6)) {
    bound = std::max(bound, inst_.span_lower_bound());
  }
  return bound;
}

std::string WeightedExtension::describe() const {
  std::ostringstream os;
  os << "weighted busy-time instance: " << inst_.size() << " jobs, g = "
     << inst_.capacity() << ", "
     << (inst_.all_interval_jobs(1e-6) ? "interval" : "flexible")
     << " jobs (cumulative-width model)";
  return os.str();
}

double MultiWindowExtension::lower_bound() const {
  // The Theorem 1 full-slots bound carries over verbatim: P units of work,
  // at most g per active slot.
  return std::ceil(static_cast<double>(inst_.total_work()) /
                   static_cast<double>(inst_.capacity()));
}

std::string MultiWindowExtension::describe() const {
  std::ostringstream os;
  os << "multi-window active-time instance: " << inst_.size()
     << " jobs, g = " << inst_.capacity() << ", horizon " << inst_.horizon();
  return os.str();
}

bool WeightedExtension::write_body(std::ostream& out) const {
  // precision 17 == max_digits10: the doubles survive the text round trip
  // bit-for-bit, exactly like the standard continuous writer (and like it,
  // the caller's precision is restored).
  const std::streamsize old_precision = out.precision(17);
  for (const busy::WeightedJob& wj : inst_.jobs()) {
    out << "job " << wj.job.release << ' ' << wj.job.deadline << ' '
        << wj.job.length << "\nweight " << wj.width << "\n";
  }
  out.precision(old_precision);
  return true;
}

bool MultiWindowExtension::write_body(std::ostream& out) const {
  for (const active::MultiWindowJob& job : inst_.jobs()) {
    out << "job " << job.length << "\n";
    for (const auto& [r, d] : job.windows) {
      out << "window " << r << ' ' << d << "\n";
    }
  }
  return true;
}

namespace {

/// `model weighted` body: `job r d p` (reals) optionally followed by
/// `weight w` for the preceding job (default width 1).
class WeightedParser final : public core::ExtensionParser {
 public:
  bool directive(const std::string& keyword, std::istream& args,
                 std::string* why) override {
    if (keyword == "job") {
      core::RealTime r = 0;
      core::RealTime d = 0;
      core::RealTime p = 0;
      if (!(args >> r >> d >> p)) {
        if (why != nullptr) *why = "job needs: release deadline length";
        return false;
      }
      jobs_.push_back({{r, d, p}, 1});
      return true;
    }
    if (keyword == "weight") {
      if (jobs_.empty()) {
        if (why != nullptr) *why = "weight before any job";
        return false;
      }
      int w = 0;
      if (!(args >> w) || w < 1) {
        if (why != nullptr) *why = "weight needs a positive integer";
        return false;
      }
      jobs_.back().width = w;
      return true;
    }
    if (why != nullptr) {
      *why = "unknown directive '" + keyword + "' in model weighted";
    }
    return false;
  }

  bool finish(int capacity, core::ProblemInstance* out,
              std::string* why) override {
    busy::WeightedInstance inst(std::move(jobs_), capacity);
    if (!inst.structurally_valid(why)) return false;
    *out = make_weighted_instance(std::move(inst));
    return true;
  }

 private:
  std::vector<busy::WeightedJob> jobs_;
};

/// `model multi-window` body: `job p` (length only) followed by one
/// `window r d` line per window of that job.
class MultiWindowParser final : public core::ExtensionParser {
 public:
  bool directive(const std::string& keyword, std::istream& args,
                 std::string* why) override {
    if (keyword == "job") {
      core::SlotTime p = 0;
      if (!(args >> p)) {
        if (why != nullptr) *why = "job needs: length";
        return false;
      }
      jobs_.push_back({{}, p});
      return true;
    }
    if (keyword == "window") {
      if (jobs_.empty()) {
        if (why != nullptr) *why = "window before any job";
        return false;
      }
      core::SlotTime r = 0;
      core::SlotTime d = 0;
      if (!(args >> r >> d)) {
        if (why != nullptr) *why = "window needs: release deadline";
        return false;
      }
      jobs_.back().windows.emplace_back(r, d);
      return true;
    }
    if (why != nullptr) {
      *why = "unknown directive '" + keyword + "' in model multi-window";
    }
    return false;
  }

  bool finish(int capacity, core::ProblemInstance* out,
              std::string* why) override {
    active::MultiWindowInstance inst(std::move(jobs_), capacity);
    if (!inst.structurally_valid(why)) return false;
    *out = make_multi_window_instance(std::move(inst));
    return true;
  }

 private:
  std::vector<active::MultiWindowJob> jobs_;
};

/// Runs register_instance_codecs whenever this TU is linked: any binary
/// holding the adapters (hence able to solve the extended kinds) can parse
/// and emit them without an explicit setup call.
const bool kCodecsRegistered = [] {
  register_instance_codecs();
  return true;
}();

}  // namespace

void register_instance_codecs() {
  core::register_instance_model(
      "weighted", [] { return std::make_unique<WeightedParser>(); });
  core::register_instance_model(
      "multi-window", [] { return std::make_unique<MultiWindowParser>(); });
}

core::ProblemInstance make_weighted_instance(busy::WeightedInstance inst) {
  return core::make_instance(
      core::Family::kBusy,
      std::make_shared<const WeightedExtension>(std::move(inst)));
}

core::ProblemInstance make_multi_window_instance(
    active::MultiWindowInstance inst) {
  return core::make_instance(
      core::Family::kActive,
      std::make_shared<const MultiWindowExtension>(std::move(inst)));
}

const busy::WeightedInstance& weighted_of(const core::ProblemInstance& inst) {
  ABT_ASSERT(inst.kind == core::InstanceKind::kWeighted && inst.extension,
             "not a weighted instance");
  return static_cast<const WeightedExtension&>(*inst.extension).instance();
}

const active::MultiWindowInstance& multi_window_of(
    const core::ProblemInstance& inst) {
  ABT_ASSERT(inst.kind == core::InstanceKind::kMultiWindow && inst.extension,
             "not a multi-window instance");
  return static_cast<const MultiWindowExtension&>(*inst.extension).instance();
}

}  // namespace abt::engine
