#include "engine/adapters.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/assert.hpp"

namespace abt::engine {

double WeightedExtension::lower_bound() const {
  // Width-weighted mass is always valid; the span projection additionally
  // holds when every run position is forced (interval jobs).
  double bound = inst_.mass_lower_bound();
  if (inst_.all_interval_jobs(1e-6)) {
    bound = std::max(bound, inst_.span_lower_bound());
  }
  return bound;
}

std::string WeightedExtension::describe() const {
  std::ostringstream os;
  os << "weighted busy-time instance: " << inst_.size() << " jobs, g = "
     << inst_.capacity() << ", "
     << (inst_.all_interval_jobs(1e-6) ? "interval" : "flexible")
     << " jobs (cumulative-width model)";
  return os.str();
}

double MultiWindowExtension::lower_bound() const {
  // The Theorem 1 full-slots bound carries over verbatim: P units of work,
  // at most g per active slot.
  return std::ceil(static_cast<double>(inst_.total_work()) /
                   static_cast<double>(inst_.capacity()));
}

std::string MultiWindowExtension::describe() const {
  std::ostringstream os;
  os << "multi-window active-time instance: " << inst_.size()
     << " jobs, g = " << inst_.capacity() << ", horizon " << inst_.horizon();
  return os.str();
}

core::ProblemInstance make_weighted_instance(busy::WeightedInstance inst) {
  return core::make_instance(
      core::Family::kBusy,
      std::make_shared<const WeightedExtension>(std::move(inst)));
}

core::ProblemInstance make_multi_window_instance(
    active::MultiWindowInstance inst) {
  return core::make_instance(
      core::Family::kActive,
      std::make_shared<const MultiWindowExtension>(std::move(inst)));
}

const busy::WeightedInstance& weighted_of(const core::ProblemInstance& inst) {
  ABT_ASSERT(inst.kind == core::InstanceKind::kWeighted && inst.extension,
             "not a weighted instance");
  return static_cast<const WeightedExtension&>(*inst.extension).instance();
}

const active::MultiWindowInstance& multi_window_of(
    const core::ProblemInstance& inst) {
  ABT_ASSERT(inst.kind == core::InstanceKind::kMultiWindow && inst.extension,
             "not a multi-window instance");
  return static_cast<const MultiWindowExtension&>(*inst.extension).instance();
}

}  // namespace abt::engine
