#include "engine/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <ostream>

#include "engine/parallel.hpp"
#include "report/table.hpp"

namespace abt::engine {

namespace {

core::Solution unknown_entry_row(const std::string& name,
                                 const core::ProblemInstance& inst) {
  core::Solution sol;
  sol.solver = name;
  sol.family = inst.family;
  sol.message = "unknown solver";
  return sol;
}

/// The budget a drained (never-started) contestant would have run under,
/// for its stamped row's bookkeeping.
double entry_budget_ms(const RaceEntry& entry, const core::RunContext& parent) {
  if (entry.budget_cap_ms > 0.0) {
    return parent.has_budget()
               ? std::min(entry.budget_cap_ms, parent.budget_ms())
               : entry.budget_cap_ms;
  }
  return parent.budget_ms();
}

}  // namespace

RaceReport race(const core::SolverRegistry& registry,
                const core::ProblemInstance& inst,
                const std::vector<RaceEntry>& entries,
                const core::RunContext& parent, const RaceOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  RaceReport report;
  report.entries = entries;
  report.accept_gap = options.accept_gap;
  RunOptions bound_options;
  bound_options.span_bound_max_jobs = options.span_bound_max_jobs;
  report.reference = derive_lower_bound(inst, {}, bound_options);
  report.rows.resize(entries.size());
  if (entries.empty()) return report;

  // The race's own source: tripped exactly once, by the winning cell.
  // Contestants observe it chained BEHIND the caller's token (via
  // RunContext::child), so the caller aborting the whole race and the
  // race retiring its losers drain through the same protocol.
  core::CancelSource stop;
  std::atomic<int> winner{-1};

  const double reference = report.reference.value;
  const double accept_gap = options.accept_gap;
  const auto acceptable = [reference, accept_gap](const core::Solution& sol) {
    if (!sol.ok || !sol.feasible) return false;
    if (accept_gap < 0.0 || sol.exact) return sol.ok && sol.feasible;
    const double bound = std::max(sol.best_bound, reference);
    if (bound <= 0.0) return false;
    return sol.cost <= (1.0 + accept_gap) * bound + 1e-9;
  };

  // Written by exactly one cell each (like rows), read after the join:
  // whether entry i's interruption was a cancellation (the race's trip or
  // the caller's token) rather than its own budget running dry.
  std::vector<unsigned char> cancel_interrupted(entries.size(), 0);

  ParallelOptions parallel_options;
  parallel_options.eager_dispatch = true;  // 2 contestants must still race
  parallel_options.cancel = stop.token().chained(parent.cancel_token());
  parallel_options.on_cancelled = [&](std::size_t i) {
    const core::Solver* solver = registry.find(entries[i].solver);
    report.rows[i] = solver != nullptr
                         ? cancelled_cell_row(*solver,
                                              entry_budget_ms(entries[i],
                                                              parent))
                         : unknown_entry_row(entries[i].solver, inst);
    cancel_interrupted[i] = 1;
  };

  parallel_for(
      resolve_threads(options.threads), entries.size(),
      [&](std::size_t i) {
        const core::Solver* solver = registry.find(entries[i].solver);
        if (solver == nullptr) {
          report.rows[i] = unknown_entry_row(entries[i].solver, inst);
          return;
        }
        const core::RunContext ctx =
            parent.child(stop.token(), entries[i].budget_cap_ms);
        report.rows[i] = registry.run(*solver, inst, ctx);
        if (report.rows[i].timed_out && ctx.cancelled()) {
          cancel_interrupted[i] = 1;
        }
        // An externally aborted race never crowns a winner: a contestant
        // the caller interrupted may still return a feasible incumbent,
        // which stays visible as `best` but must not read as "the race
        // finished".
        if (acceptable(report.rows[i]) && !parent.cancel_token().cancelled()) {
          // First acceptable completion wins; exactly one CAS succeeds,
          // and only the winner cancels — losers that still finish
          // acceptably after the trip simply fail the exchange.
          int expected = -1;
          if (winner.compare_exchange_strong(expected, static_cast<int>(i),
                                             std::memory_order_relaxed)) {
            stop.cancel();
          }
        }
      },
      parallel_options);

  report.winner = winner.load(std::memory_order_relaxed);
  report.best_bound = reference;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const core::Solution& sol = report.rows[i];
    report.best_bound = std::max(report.best_bound, sol.best_bound);
    if (cancel_interrupted[i] && static_cast<int>(i) != report.winner) {
      report.cancelled += 1;
    }
    if (sol.ok && sol.feasible && sol.cost < best_cost) {
      best_cost = sol.cost;
      report.best = static_cast<int>(i);
    }
  }
  if (report.winner >= 0 && accept_gap < 0.0) {
    // Under checker-only acceptance the winner IS the answer; `best` may
    // differ only when a cancelled loser's incumbent happened to be
    // cheaper, which reporting keeps visible but does not promote.
    report.best = report.winner;
  }
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return report;
}

std::vector<RaceEntry> auto_entries(const core::SolverRegistry& registry,
                                    const core::ProblemInstance& inst,
                                    const SelectorModel* model, int top_k,
                                    const core::RunContext& ctx) {
  std::vector<RaceEntry> entries;
  if (model != nullptr) {
    const std::vector<std::string> picked =
        select_solvers(*model, extract_features(inst), top_k);
    for (const std::string& name : picked) {
      const core::Solver* solver = registry.find(name);
      if (solver == nullptr) continue;
      std::string why;
      if (solver->family != inst.family || solver->kind != inst.kind ||
          (solver->applicable && !solver->applicable(inst, ctx, &why))) {
        continue;
      }
      entries.push_back({name, 0.0});
    }
    if (!entries.empty()) return entries;
    // A model trained on other kinds may pick nothing applicable; racing
    // everything is the honest fallback rather than failing the solve.
  }
  for (const core::Solver* solver : registry.applicable_to(inst, ctx)) {
    entries.push_back({solver->name, 0.0});
  }
  return entries;
}

namespace {

std::string race_verdict(const RaceReport& report, std::size_t i) {
  const core::Solution& sol = report.rows[i];
  if (static_cast<int>(i) == report.winner) return "WINNER";
  if (!sol.ok) {
    return sol.message == "cancelled" ? "cancelled" : "declined";
  }
  if (!sol.feasible) return "INFEASIBLE";
  return sol.timed_out ? "interrupted" : "lost";
}

}  // namespace

void print_race(std::ostream& os, const RaceReport& report) {
  os << "race: " << report.entries.size() << " contestants, "
     << report::Table::num(report.wall_ms) << " ms";
  if (report.accept_gap >= 0.0) {
    os << ", accept gap <= " << report::Table::num(report.accept_gap);
  }
  os << "\n";
  if (report.winner >= 0) {
    os << "winner: " << report.rows[static_cast<std::size_t>(report.winner)]
                            .solver
       << "\n";
  } else if (report.best >= 0) {
    os << "no contestant met acceptance; best effort: "
       << report.rows[static_cast<std::size_t>(report.best)].solver << "\n";
  } else {
    os << "no contestant produced a feasible schedule\n";
  }
  os << "tightest bound: " << report::Table::num(report.best_bound) << " ("
     << (report.best_bound > report.reference.value ? "contestant"
                                                    : report.reference.kind)
     << ")\n\n";
  report::Table table({"solver", "verdict", "cost", "wall_ms", "best_bound",
                       "gap", "guarantee"});
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const core::Solution& sol = report.rows[i];
    table.add_row(
        {sol.solver, race_verdict(report, i),
         sol.ok ? report::Table::num(sol.cost) : "-",
         report::Table::num(sol.wall_ms),
         sol.best_bound > 0.0 ? report::Table::num(sol.best_bound) : "-",
         sol.ok && sol.best_bound > 0.0 ? report::Table::num(sol.gap()) : "-",
         sol.ok ? sol.guarantee : sol.message});
  }
  table.print(os);
}

void write_race_csv(std::ostream& os, const RaceReport& report) {
  report::Table table({"solver", "verdict", "cost", "wall_ms", "feasible",
                       "exact", "timed_out", "best_bound", "winner",
                       "message"});
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const core::Solution& sol = report.rows[i];
    table.add_row({sol.solver, race_verdict(report, i),
                   sol.ok ? report::Table::num(sol.cost, 6) : "",
                   report::Table::num(sol.wall_ms, 6),
                   sol.feasible ? "1" : "0", sol.exact ? "1" : "0",
                   sol.timed_out ? "1" : "0",
                   sol.best_bound > 0.0 ? report::Table::num(sol.best_bound, 6)
                                        : "",
                   static_cast<int>(i) == report.winner ? "1" : "0",
                   sol.message});
  }
  table.write_csv(os);
}

void write_race_json(std::ostream& os, const core::ProblemInstance& inst,
                     const RaceReport& report) {
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n  \"family\": \"" << core::family_name(inst.family)
     << "\",\n  \"kind\": \"" << core::instance_kind_name(inst.kind)
     << "\",\n  \"race\": {\"contestants\": " << report.entries.size()
     << ", \"winner\": " << report.winner << ", \"winner_solver\": ";
  if (report.winner >= 0) {
    write_json_string(
        os, report.rows[static_cast<std::size_t>(report.winner)].solver);
  } else {
    os << "null";
  }
  os << ", \"best\": " << report.best << ", \"accept_gap\": ";
  if (report.accept_gap >= 0.0) {
    os << report.accept_gap;
  } else {
    os << "null";
  }
  os << ", \"best_bound\": " << report.best_bound
     << ", \"reference\": {\"value\": " << report.reference.value
     << ", \"kind\": ";
  write_json_string(os, report.reference.kind);
  os << "}, \"cancelled\": " << report.cancelled
     << ", \"wall_ms\": " << report.wall_ms << "},\n  \"rows\": [";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const core::Solution& sol = report.rows[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"solver\": ";
    write_json_string(os, sol.solver);
    os << ", \"verdict\": ";
    write_json_string(os, race_verdict(report, i));
    os << ", \"ok\": " << (sol.ok ? "true" : "false")
       << ", \"feasible\": " << (sol.feasible ? "true" : "false");
    if (sol.ok) {
      os << ", \"cost\": " << sol.cost
         << ", \"exact\": " << (sol.exact ? "true" : "false");
      if (sol.best_bound > 0.0) {
        os << ", \"best_bound\": " << sol.best_bound
           << ", \"gap\": " << sol.gap();
      }
    }
    if (sol.timed_out) os << ", \"timed_out\": true";
    if (sol.budget_ms > 0.0) os << ", \"budget_ms\": " << sol.budget_ms;
    os << ", \"wall_ms\": " << sol.wall_ms;
    if (!sol.message.empty()) {
      os << ", \"message\": ";
      write_json_string(os, sol.message);
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

}  // namespace abt::engine
