#include "engine/features.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/adapters.hpp"

namespace abt::engine {

namespace {

/// Per-job (window, length) pairs plus the axis span, uniform across the
/// four concrete models so the statistics below are written once.
struct JobShape {
  std::vector<double> windows;
  std::vector<double> lengths;
  double horizon = 0.0;
  double mass = 0.0;
  double shape = 0.0;  ///< Kind-specific extra (see feature_names()).
};

JobShape shape_of(const core::ProblemInstance& inst) {
  JobShape out;
  if (inst.kind == core::InstanceKind::kWeighted) {
    const busy::WeightedInstance& w = weighted_of(inst);
    double lo = 0.0, hi = 0.0, widths = 0.0;
    bool first = true;
    for (const busy::WeightedJob& job : w.jobs()) {
      out.windows.push_back(job.job.window_size());
      out.lengths.push_back(job.job.length);
      out.mass += job.job.length * static_cast<double>(job.width);
      widths += static_cast<double>(job.width);
      lo = first ? job.job.release : std::min(lo, job.job.release);
      hi = first ? job.job.deadline : std::max(hi, job.job.deadline);
      first = false;
    }
    out.horizon = hi - lo;
    if (!out.windows.empty() && w.capacity() > 0) {
      out.shape = widths / static_cast<double>(out.windows.size()) /
                  static_cast<double>(w.capacity());
    }
    return out;
  }
  if (inst.kind == core::InstanceKind::kMultiWindow) {
    const active::MultiWindowInstance& mw = multi_window_of(inst);
    double window_count = 0.0;
    for (const active::MultiWindowJob& job : mw.jobs()) {
      out.windows.push_back(static_cast<double>(job.window_slots()));
      out.lengths.push_back(static_cast<double>(job.length));
      window_count += static_cast<double>(job.windows.size());
    }
    out.horizon = static_cast<double>(mw.horizon());
    out.mass = static_cast<double>(mw.total_work());
    if (!out.windows.empty()) {
      out.shape = window_count / static_cast<double>(out.windows.size());
    }
    return out;
  }
  if (inst.family == core::Family::kActive) {
    for (const core::SlottedJob& job : inst.slotted.jobs()) {
      out.windows.push_back(static_cast<double>(job.window_size()));
      out.lengths.push_back(static_cast<double>(job.length));
    }
    out.horizon = static_cast<double>(inst.slotted.horizon());
    out.mass = static_cast<double>(inst.slotted.total_work());
    return out;
  }
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (const core::ContinuousJob& job : inst.continuous.jobs()) {
    out.windows.push_back(job.window_size());
    out.lengths.push_back(job.length);
    lo = first ? job.release : std::min(lo, job.release);
    hi = first ? job.deadline : std::max(hi, job.deadline);
    first = false;
  }
  out.horizon = hi - lo;
  out.mass = inst.continuous.total_mass();
  return out;
}

int instance_size(const core::ProblemInstance& inst) {
  if (inst.extension != nullptr) return inst.extension->size();
  return inst.family == core::Family::kBusy ? inst.continuous.size()
                                            : inst.slotted.size();
}

int instance_capacity(const core::ProblemInstance& inst) {
  if (inst.extension != nullptr) return inst.extension->capacity();
  return inst.family == core::Family::kBusy ? inst.continuous.capacity()
                                            : inst.slotted.capacity();
}

}  // namespace

const std::array<std::string, kFeatureCount>& feature_names() {
  static const std::array<std::string, kFeatureCount> kNames = {
      "jobs",       "capacity",   "family",     "kind",
      "horizon",    "density",    "slack_mean", "slack_max",
      "rigid_frac", "window_mean", "window_cv", "shape"};
  return kNames;
}

FeatureVector extract_features(const core::ProblemInstance& inst) {
  constexpr double kEps = 1e-12;
  const JobShape shape = shape_of(inst);
  const double n = static_cast<double>(shape.windows.size());
  const double g = static_cast<double>(instance_capacity(inst));

  FeatureVector f;
  f.values[0] = static_cast<double>(instance_size(inst));
  f.values[1] = g;
  f.values[2] = inst.family == core::Family::kActive ? 1.0 : 0.0;
  f.values[3] = inst.kind == core::InstanceKind::kStandard     ? 0.0
                : inst.kind == core::InstanceKind::kWeighted   ? 1.0
                                                               : 2.0;
  f.values[4] = shape.horizon;
  if (shape.horizon > kEps && g > kEps) {
    f.values[5] = shape.mass / (g * shape.horizon);
  }
  if (n > 0.0) {
    double slack_sum = 0.0, slack_max = 0.0, rigid = 0.0;
    double win_sum = 0.0, win_sq = 0.0;
    for (std::size_t i = 0; i < shape.windows.size(); ++i) {
      const double w = shape.windows[i];
      const double slack =
          w > kEps ? std::max(0.0, (w - shape.lengths[i]) / w) : 0.0;
      slack_sum += slack;
      slack_max = std::max(slack_max, slack);
      if (slack <= kEps) rigid += 1.0;
      win_sum += w;
      win_sq += w * w;
    }
    f.values[6] = slack_sum / n;
    f.values[7] = slack_max;
    f.values[8] = rigid / n;
    const double win_mean = win_sum / n;
    if (shape.horizon > kEps) f.values[9] = win_mean / shape.horizon;
    if (win_mean > kEps) {
      const double variance = std::max(0.0, win_sq / n - win_mean * win_mean);
      f.values[10] = std::sqrt(variance) / win_mean;
    }
  }
  f.values[11] = shape.shape;
  return f;
}

}  // namespace abt::engine
