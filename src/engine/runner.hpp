#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"

namespace abt::engine {

/// A named generated workload. One spec covers every generator the library
/// ships — the random families of gen/random_instances and the paper's
/// adversarial gadget families of gen/gadgets — so "scenario x solver" is a
/// closed grid any driver can sweep.
struct ScenarioSpec {
  std::string name = "interval";
  int n = 20;                 ///< Jobs (random families).
  int g = 3;                  ///< Capacity.
  std::uint64_t seed = 1;     ///< Rng seed (random families).
  double slack = 1.0;         ///< Window slack (flexible families).
  double horizon = 0.0;       ///< 0 = derived from n.
  double eps = 0.01;          ///< Gadget parameter.
};

struct ScenarioInfo {
  std::string name;
  core::Family family;
  std::string description;
};

/// All registered scenario names with family and one-line description.
[[nodiscard]] const std::vector<ScenarioInfo>& scenarios();

/// Instantiates a scenario; nullopt (with `error`) for unknown names or
/// out-of-range parameters (e.g. fig3 needs g >= 3).
[[nodiscard]] std::optional<core::ProblemInstance> make_scenario(
    const ScenarioSpec& spec, std::string* error = nullptr);

/// Best known lower bound on OPT for an instance, assembled from the exact
/// solvers' certificates when present and the paper's combinatorial bounds
/// otherwise.
struct LowerBound {
  double value = 0.0;
  std::string kind;  ///< "exact", "LP", "mass", "span", "profile", "".
};

struct RunOptions {
  /// Restrict to these solver names (empty = every applicable solver).
  std::vector<std::string> solvers;
  /// Compute the g=infinity span bound for flexible instances no larger
  /// than this (the DP can be expensive); mass/profile bounds are always on.
  int span_bound_max_jobs = 48;
  /// Per-cell wall-clock budget in ms (0 = unlimited). Every solver run
  /// gets a fresh deadline; a budget also lifts the exact solvers' size
  /// gates — they run anytime to the deadline and report incumbent + gap.
  double budget_ms = 0.0;
  /// Shared cancellation: once cancelled, remaining cells decline with
  /// message "cancelled" and running anytime solvers return their
  /// incumbent at the next poll.
  core::CancelToken cancel;
  /// Observer for incumbents the anytime solvers report mid-run.
  core::IncumbentHook incumbent_hook;
};

/// The invocation context `options` describes: budget, token, hook. The
/// clock starts now — callers arm it per cell (registry/sweep drivers call
/// restarted() per run).
[[nodiscard]] core::RunContext make_run_context(const RunOptions& options);

/// One instance driven through a solver subset: the uniform run record the
/// CLI, the benches and the tests all consume.
struct RunReport {
  core::ProblemInstance instance;
  std::vector<core::Solution> solutions;
  LowerBound lower_bound;
};

/// Runs every selected applicable solver on the instance (timed and
/// checker-validated by the registry) and derives the reference lower bound.
[[nodiscard]] RunReport run_instance(const core::SolverRegistry& registry,
                                     const core::ProblemInstance& inst,
                                     const RunOptions& options = {});

// ---------------------------------------------------------------------------
// Trial sweeps: many seeds of one scenario, fanned out over a thread pool.

struct SweepOptions {
  int trials = 8;   ///< Trial t regenerates the scenario with seed base+t.
  int threads = 1;  ///< Worker threads; <= 0 resolves to the hardware count.
  RunOptions run;   ///< Solver subset / lower-bound knobs per trial.
};

/// Aggregate statistics of one solver across the sweep's trials. Cost and
/// verdict aggregates are deterministic functions of (scenario, seeds,
/// solver subset) — identical for every thread count when no budget is in
/// play; only the wall-clock fields vary run to run.
struct SolverAggregate {
  std::string solver;
  std::string guarantee;
  int runs = 0;        ///< Cells attempted (== trials).
  int ok = 0;          ///< Produced a schedule.
  int feasible = 0;    ///< Passed the checker.
  int exact_runs = 0;  ///< Proved optimality.
  int declined = 0;    ///< Refused the cell (== runs - ok).
  int timed_out = 0;   ///< Budget/cancellation interrupted the run.

  /// Cost / per-trial lower bound, over checker-validated cells with a
  /// positive bound (an infeasible cost never enters the statistics).
  int ratio_count = 0;
  double ratio_mean = 0.0;
  double ratio_median = 0.0;
  double ratio_p95 = 0.0;
  double ratio_max = 0.0;

  /// Wall-clock per run() call, over checker-validated cells only —
  /// EXCEPT wall_total_ms, which sums every cell including declined ones
  /// (a declined cell still costs its applicability probe, and the total
  /// is the sweep's actual spend). The `declined` count above makes the
  /// denominator difference explicit in the reports.
  double wall_mean_ms = 0.0;
  double wall_median_ms = 0.0;
  double wall_p95_ms = 0.0;
  double wall_total_ms = 0.0;  ///< Over every cell, including declined.
};

/// Per-solver aggregation over assembled cells, in first-seen (solution)
/// order — shared by the trial sweep and the campaign engine so both
/// report identical statistics for identical cells.
[[nodiscard]] std::vector<SolverAggregate> aggregate_cells(
    const std::vector<RunReport>& cells);

/// The decline row a cancelled cell gets WITHOUT entering the registry:
/// field-for-field what SolverRegistry::run returns for a cancelled
/// context (message "cancelled", timed_out set), so the scheduler's
/// drained cells are indistinguishable from ones the registry declined.
[[nodiscard]] core::Solution cancelled_cell_row(const core::Solver& solver,
                                                double budget_ms);

/// Reference lower bound of one run: an exact certificate from
/// `solutions` beats everything; otherwise the combinatorial bounds of
/// the instance's family (the extension's own bound for extended kinds).
[[nodiscard]] LowerBound derive_lower_bound(
    const core::ProblemInstance& inst,
    const std::vector<core::Solution>& solutions, const RunOptions& options);

/// Shared report plumbing (used by the sweep and campaign writers so the
/// two schemas cannot silently diverge):
/// `write_json_string` emits `text` as an escaped JSON string literal;
/// `write_aggregate_json` emits one SolverAggregate as a single-line JSON
/// object (solver/runs/ok/feasible/exact/declined/timed_out + optional
/// ratio and wall_ms groups); `append_unknown_solver_rows` adds the
/// refusal row every requested-but-unregistered solver name gets,
/// mirroring run_applicable.
void write_json_string(std::ostream& os, const std::string& text);
void write_aggregate_json(std::ostream& os, const SolverAggregate& agg);
void append_unknown_solver_rows(const core::SolverRegistry& registry,
                                const std::vector<std::string>& only,
                                RunReport& cell);

struct SweepReport {
  ScenarioSpec base;  ///< Trial t used seed base.seed + t.
  int trials = 0;
  int threads = 1;
  double budget_ms = 0.0;  ///< Per-cell budget the sweep ran under.
  double wall_ms = 0.0;  ///< Whole-sweep wall clock (all cells, all threads).
  std::vector<RunReport> cells;             ///< One per trial, seed order.
  std::vector<SolverAggregate> aggregates;  ///< Registration order.
};

/// Fans (trial, solver) cells out over a fixed-size thread pool, collects
/// the per-cell Solutions (each timed and checker-validated by the
/// registry), derives per-trial lower bounds and aggregates per-solver
/// mean/median/p95 cost ratios, wall times and verdicts. Nullopt (with
/// `error`) when the scenario cannot be instantiated.
[[nodiscard]] std::optional<SweepReport> run_sweep(
    const core::SolverRegistry& registry, const ScenarioSpec& base,
    const SweepOptions& options, std::string* error = nullptr);

/// Renders the sweep aggregate as an aligned text table.
void print_sweep(std::ostream& os, const SweepReport& report);

/// Aggregate CSV rows: solver,runs,ok,feasible,exact,ratio_*,wall_*.
void write_sweep_csv(std::ostream& os, const SweepReport& report);

/// Machine-readable JSON: sweep parameters, per-solver aggregates, and a
/// compact per-cell record (lower bound + per-solver cost/verdict).
void write_sweep_json(std::ostream& os, const SweepReport& report);

/// Renders the report as an aligned text table (report::Table).
void print_report(std::ostream& os, const RunReport& report);

/// CSV rows: solver,cost,ratio,machines,wall_ms,feasible,guarantee.
void write_csv(std::ostream& os, const RunReport& report);

/// Machine-readable JSON: instance summary, lower bound, one object per
/// solution including its stats.
void write_json(std::ostream& os, const RunReport& report);

}  // namespace abt::engine
