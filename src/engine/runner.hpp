#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"

namespace abt::engine {

/// A named generated workload. One spec covers every generator the library
/// ships — the random families of gen/random_instances and the paper's
/// adversarial gadget families of gen/gadgets — so "scenario x solver" is a
/// closed grid any driver can sweep.
struct ScenarioSpec {
  std::string name = "interval";
  int n = 20;                 ///< Jobs (random families).
  int g = 3;                  ///< Capacity.
  std::uint64_t seed = 1;     ///< Rng seed (random families).
  double slack = 1.0;         ///< Window slack (flexible families).
  double horizon = 0.0;       ///< 0 = derived from n.
  double eps = 0.01;          ///< Gadget parameter.
};

struct ScenarioInfo {
  std::string name;
  core::Family family;
  std::string description;
};

/// All registered scenario names with family and one-line description.
[[nodiscard]] const std::vector<ScenarioInfo>& scenarios();

/// Instantiates a scenario; nullopt (with `error`) for unknown names or
/// out-of-range parameters (e.g. fig3 needs g >= 3).
[[nodiscard]] std::optional<core::ProblemInstance> make_scenario(
    const ScenarioSpec& spec, std::string* error = nullptr);

/// Best known lower bound on OPT for an instance, assembled from the exact
/// solvers' certificates when present and the paper's combinatorial bounds
/// otherwise.
struct LowerBound {
  double value = 0.0;
  std::string kind;  ///< "exact", "LP", "mass", "span", "profile", "".
};

struct RunOptions {
  /// Restrict to these solver names (empty = every applicable solver).
  std::vector<std::string> solvers;
  /// Compute the g=infinity span bound for flexible instances no larger
  /// than this (the DP can be expensive); mass/profile bounds are always on.
  int span_bound_max_jobs = 48;
};

/// One instance driven through a solver subset: the uniform run record the
/// CLI, the benches and the tests all consume.
struct RunReport {
  core::ProblemInstance instance;
  std::vector<core::Solution> solutions;
  LowerBound lower_bound;
};

/// Runs every selected applicable solver on the instance (timed and
/// checker-validated by the registry) and derives the reference lower bound.
[[nodiscard]] RunReport run_instance(const core::SolverRegistry& registry,
                                     const core::ProblemInstance& inst,
                                     const RunOptions& options = {});

/// Renders the report as an aligned text table (report::Table).
void print_report(std::ostream& os, const RunReport& report);

/// CSV rows: solver,cost,ratio,machines,wall_ms,feasible,guarantee.
void write_csv(std::ostream& os, const RunReport& report);

/// Machine-readable JSON: instance summary, lower bound, one object per
/// solution including its stats.
void write_json(std::ostream& os, const RunReport& report);

}  // namespace abt::engine
