#include "report/gantt.hpp"

#include <algorithm>
#include <sstream>

namespace abt::report {

namespace {

char job_glyph(int id) {
  static const char* kGlyphs =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kGlyphs[id % 62];
}

}  // namespace

std::string render_active_gantt(const core::SlottedInstance& inst,
                                const core::ActiveSchedule& sched) {
  std::ostringstream os;
  const auto horizon = static_cast<std::size_t>(inst.horizon());
  for (core::JobId j = 0; j < inst.size(); ++j) {
    const core::SlottedJob& job = inst.job(j);
    std::string row(horizon, ' ');
    for (core::SlotTime t = job.release + 1; t <= job.deadline; ++t) {
      row[static_cast<std::size_t>(t - 1)] = '.';
    }
    for (core::SlotTime t : sched.job_slots[static_cast<std::size_t>(j)]) {
      row[static_cast<std::size_t>(t - 1)] = '#';
    }
    os << "job " << j << " |" << row << "|\n";
  }
  std::string footer(horizon, ' ');
  for (core::SlotTime t : sched.active_slots) {
    footer[static_cast<std::size_t>(t - 1)] = '^';
  }
  os << "  on  |" << footer << "|\n";
  return os.str();
}

std::string render_busy_gantt(const core::ContinuousInstance& inst,
                              const core::BusySchedule& sched, int columns) {
  std::ostringstream os;
  if (inst.size() == 0 || columns <= 0) return "";
  double lo = 1e300;
  double hi = -1e300;
  for (core::JobId j = 0; j < inst.size(); ++j) {
    const auto& p = sched.placements[static_cast<std::size_t>(j)];
    lo = std::min(lo, p.start);
    hi = std::max(hi, p.start + inst.job(j).length);
  }
  if (hi <= lo) return "";
  const double scale = columns / (hi - lo);

  const int machines = sched.machine_count();
  for (int m = 0; m < machines; ++m) {
    std::string row(static_cast<std::size_t>(columns), ' ');
    for (core::JobId j = 0; j < inst.size(); ++j) {
      const auto& p = sched.placements[static_cast<std::size_t>(j)];
      if (p.machine != m) continue;
      auto begin = static_cast<int>((p.start - lo) * scale);
      auto end = static_cast<int>((p.start + inst.job(j).length - lo) * scale);
      begin = std::clamp(begin, 0, columns - 1);
      end = std::clamp(end, begin + 1, columns);
      for (int c = begin; c < end; ++c) {
        row[static_cast<std::size_t>(c)] =
            row[static_cast<std::size_t>(c)] == ' ' ? job_glyph(j) : '*';
      }
    }
    os << "m" << m << " |" << row << "|\n";
  }
  return os.str();
}

}  // namespace abt::report
