#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace abt::report {

/// Fixed-width text table used by the benchmark harness to print the rows
/// each experiment reproduces. Also serializes to CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders an aligned text table.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV.
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Running summary of approximation ratios across a sweep.
class RatioStats {
 public:
  void add(double ratio);
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] long count() const { return count_; }

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  double min_ = 1e300;
  long count_ = 0;
};

}  // namespace abt::report
