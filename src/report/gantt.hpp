#pragma once

#include <string>

#include "core/active_schedule.hpp"
#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"
#include "core/slotted_instance.hpp"

namespace abt::report {

/// ASCII Gantt chart of an active-time schedule: one row per job, '#' in
/// occupied slots, '.' inside the window, ' ' elsewhere; a footer row marks
/// active slots. Debug/teaching aid used by the examples.
[[nodiscard]] std::string render_active_gantt(
    const core::SlottedInstance& inst, const core::ActiveSchedule& sched);

/// ASCII Gantt chart of a busy-time schedule: one row per machine showing
/// the jobs it runs (each job as its id modulo 62 alphanumeric), with
/// `columns` characters across the instance's time span.
[[nodiscard]] std::string render_busy_gantt(
    const core::ContinuousInstance& inst, const core::BusySchedule& sched,
    int columns = 72);

}  // namespace abt::report
