#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "core/assert.hpp"

namespace abt::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  ABT_ASSERT(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void RatioStats::add(double ratio) {
  sum_ += ratio;
  max_ = std::max(max_, ratio);
  min_ = std::min(min_, ratio);
  ++count_;
}

double RatioStats::mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

}  // namespace abt::report
