#include "gen/random_instances.hpp"

#include <algorithm>
#include <functional>

#include "active/feasibility.hpp"
#include "core/assert.hpp"

namespace abt::gen {

using core::ContinuousInstance;
using core::ContinuousJob;
using core::Rng;
using core::SlotTime;
using core::SlottedInstance;
using core::SlottedJob;

namespace {

SlottedJob random_slotted_job(Rng& rng, const SlottedParams& params) {
  const SlotTime length =
      params.unit_jobs ? 1 : rng.uniform_int(1, params.max_length);
  const SlotTime slack = rng.uniform_int(0, params.max_slack);
  const SlotTime window = std::min(length + slack, params.horizon);
  const SlotTime release = rng.uniform_int(0, params.horizon - window);
  return {release, release + window, length};
}

}  // namespace

SlottedInstance random_slotted(Rng& rng, const SlottedParams& params) {
  ABT_ASSERT(params.horizon >= params.max_length, "horizon too small");
  std::vector<SlottedJob> jobs;
  jobs.reserve(static_cast<std::size_t>(params.num_jobs));
  for (int i = 0; i < params.num_jobs; ++i) {
    jobs.push_back(random_slotted_job(rng, params));
  }
  return SlottedInstance(std::move(jobs), params.capacity);
}

SlottedInstance random_feasible_slotted(Rng& rng,
                                        const SlottedParams& params) {
  std::vector<SlottedJob> jobs;
  jobs.reserve(static_cast<std::size_t>(params.num_jobs));
  // Add jobs one at a time; drop any job that makes the prefix infeasible.
  // When the machine's total capacity g * horizon is nearly exhausted no
  // further job may fit, so the loop also stops after a fixed attempt
  // budget and returns the (feasible) prefix built so far.
  int attempts = 0;
  const int attempt_budget = 60 * params.num_jobs + 200;
  while (static_cast<int>(jobs.size()) < params.num_jobs &&
         attempts < attempt_budget) {
    SlottedJob job = random_slotted_job(rng, params);
    if (++attempts > 40 * params.num_jobs) {
      job = {0, params.horizon, 1};  // low-impact filler
    }
    jobs.push_back(job);
    const SlottedInstance trial(jobs, params.capacity);
    if (!abt::active::is_feasible(trial)) jobs.pop_back();
  }
  return SlottedInstance(std::move(jobs), params.capacity);
}

ContinuousInstance random_continuous(Rng& rng,
                                     const ContinuousParams& params) {
  std::vector<ContinuousJob> jobs;
  jobs.reserve(static_cast<std::size_t>(params.num_jobs));
  for (int i = 0; i < params.num_jobs; ++i) {
    const double length =
        rng.uniform_real(params.min_length, params.max_length);
    const double window =
        length * (1.0 + (params.max_slack > 0.0
                             ? rng.uniform_real(0.0, params.max_slack)
                             : 0.0));
    const double release =
        rng.uniform_real(0.0, std::max(1e-9, params.horizon - window));
    jobs.push_back({release, release + window, length});
  }
  return ContinuousInstance(std::move(jobs), params.capacity);
}

ContinuousInstance random_clique(Rng& rng, const ContinuousParams& params) {
  const double focus = params.horizon / 2;
  std::vector<ContinuousJob> jobs;
  jobs.reserve(static_cast<std::size_t>(params.num_jobs));
  for (int i = 0; i < params.num_jobs; ++i) {
    const double length =
        rng.uniform_real(params.min_length, params.max_length);
    // Interval must contain `focus`: start in (focus - length, focus].
    const double lo = std::max(0.0, focus - length + 1e-6);
    const double release = rng.uniform_real(lo, focus);
    jobs.push_back({release, release + length, length});
  }
  return ContinuousInstance(std::move(jobs), params.capacity);
}

ContinuousInstance random_proper(Rng& rng, const ContinuousParams& params) {
  // Draw starts, sort; draw lengths; fix containments by forcing ends to be
  // increasing as well.
  std::vector<double> starts;
  starts.reserve(static_cast<std::size_t>(params.num_jobs));
  for (int i = 0; i < params.num_jobs; ++i) {
    starts.push_back(rng.uniform_real(0.0, params.horizon));
  }
  std::sort(starts.begin(), starts.end());
  std::vector<ContinuousJob> jobs;
  double prev_end = 0.0;
  for (double s : starts) {
    double length = rng.uniform_real(params.min_length, params.max_length);
    if (s + length <= prev_end) length = prev_end - s + params.min_length / 2;
    prev_end = s + length;
    jobs.push_back({s, s + length, length});
  }
  return ContinuousInstance(std::move(jobs), params.capacity);
}

ContinuousInstance random_laminar(Rng& rng, const ContinuousParams& params) {
  // Recursively split a segment: either nest a smaller job inside the
  // current one or place siblings side by side.
  std::vector<ContinuousJob> jobs;
  std::function<void(double, double, int)> build = [&](double lo, double hi,
                                                       int depth) {
    if (static_cast<int>(jobs.size()) >= params.num_jobs || hi - lo < 0.25) {
      return;
    }
    const double length = hi - lo;
    jobs.push_back({lo, hi, length});
    if (depth > 6) return;
    if (rng.flip(0.5)) {
      // Nest one child strictly inside.
      const double margin = length * 0.15;
      build(lo + margin, hi - margin, depth + 1);
    } else {
      // Two disjoint children.
      const double mid = lo + length * rng.uniform_real(0.3, 0.7);
      const double pad = length * 0.05;
      build(lo + pad, mid - pad, depth + 1);
      build(mid + pad, hi - pad, depth + 1);
    }
  };
  while (static_cast<int>(jobs.size()) < params.num_jobs) {
    const double width =
        rng.uniform_real(params.horizon * 0.3, params.horizon * 0.9);
    const double lo = rng.uniform_real(0.0, params.horizon - width);
    build(lo, lo + width, 0);
  }
  jobs.resize(static_cast<std::size_t>(params.num_jobs));
  return ContinuousInstance(std::move(jobs), params.capacity);
}

ContinuousInstance random_proper_clique(Rng& rng,
                                        const ContinuousParams& params) {
  // Sample starts left of the focus and matching ends right of it; sorting
  // both coordinates identically yields a proper set, and the shared focus
  // point makes it a clique.
  const double focus = params.horizon / 2;
  std::vector<double> starts;
  std::vector<double> ends;
  for (int i = 0; i < params.num_jobs; ++i) {
    starts.push_back(focus - rng.uniform_real(0.01, params.max_length));
    ends.push_back(focus + rng.uniform_real(0.01, params.max_length));
  }
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  std::vector<ContinuousJob> jobs;
  for (int i = 0; i < params.num_jobs; ++i) {
    const double lo = starts[static_cast<std::size_t>(i)];
    const double hi = ends[static_cast<std::size_t>(i)];
    jobs.push_back({lo, hi, hi - lo});
  }
  return ContinuousInstance(std::move(jobs), params.capacity);
}

ContinuousInstance random_bursty(Rng& rng, const BurstyParams& params) {
  ABT_ASSERT(params.bursts >= 1, "need at least one burst");
  const ContinuousParams& base = params.base;
  std::vector<double> centers;
  centers.reserve(static_cast<std::size_t>(params.bursts));
  for (int b = 0; b < params.bursts; ++b) {
    centers.push_back(rng.uniform_real(0.0, base.horizon));
  }
  const double half_width = std::max(1e-6, params.spread * base.horizon);
  std::vector<ContinuousJob> jobs;
  jobs.reserve(static_cast<std::size_t>(base.num_jobs));
  for (int i = 0; i < base.num_jobs; ++i) {
    const double length = rng.uniform_real(base.min_length, base.max_length);
    const double window =
        length * (1.0 + (base.max_slack > 0.0
                             ? rng.uniform_real(0.0, base.max_slack)
                             : 0.0));
    const double center = centers[static_cast<std::size_t>(
        rng.uniform_int(0, params.bursts - 1))];
    double release = center + rng.uniform_real(-half_width, half_width);
    release = std::clamp(release, 0.0, std::max(0.0, base.horizon - window));
    jobs.push_back({release, release + window, length});
  }
  return ContinuousInstance(std::move(jobs), base.capacity);
}

}  // namespace abt::gen
