#include "gen/extended_instances.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/assert.hpp"

namespace abt::gen {

using core::Rng;
using core::SlotTime;

busy::WeightedInstance random_weighted(Rng& rng,
                                       const WeightedParams& params) {
  ABT_ASSERT(params.capacity >= 1, "capacity must be positive");
  const int width_cap = params.max_width > 0
                            ? std::min(params.max_width, params.capacity)
                            : params.capacity;
  std::vector<busy::WeightedJob> jobs;
  jobs.reserve(static_cast<std::size_t>(params.num_jobs));
  for (int i = 0; i < params.num_jobs; ++i) {
    const double length =
        rng.uniform_real(params.min_length, params.max_length);
    const double window =
        length * (1.0 + (params.max_slack > 0.0
                             ? rng.uniform_real(0.0, params.max_slack)
                             : 0.0));
    const double release =
        rng.uniform_real(0.0, std::max(1e-9, params.horizon - window));
    jobs.push_back({{release, release + window, length},
                    static_cast<int>(rng.uniform_int(1, width_cap))});
  }
  return busy::WeightedInstance(std::move(jobs), params.capacity);
}

active::MultiWindowInstance random_multi_window(
    Rng& rng, const MultiWindowParams& params) {
  ABT_ASSERT(params.capacity >= 1, "capacity must be positive");
  ABT_ASSERT(params.max_windows >= 1, "need at least one window per job");

  // Draw the work first so the horizon can be sized to admit everything.
  std::vector<SlotTime> lengths;
  SlotTime total = 0;
  for (int i = 0; i < params.num_jobs; ++i) {
    lengths.push_back(rng.uniform_int(1, params.max_length));
    total += lengths.back();
  }
  const SlotTime horizon = std::max<SlotTime>(
      params.horizon, 2 * ((total + params.capacity - 1) / params.capacity) +
                          params.max_length + 4);

  // Seed a feasible assignment: per job, scatter its units over available
  // slots (load < g) in up to max_windows consecutive runs, then grow the
  // job's windows around the assigned runs. Feasibility is by construction.
  std::vector<int> load(static_cast<std::size_t>(horizon) + 1, 0);

  std::vector<active::MultiWindowJob> jobs;
  for (int i = 0; i < params.num_jobs; ++i) {
    const SlotTime length = lengths[static_cast<std::size_t>(i)];
    std::vector<SlotTime> assigned;
    const auto taken = [&](SlotTime t) {
      return std::find(assigned.begin(), assigned.end(), t) != assigned.end();
    };
    const auto run_fits = [&](SlotTime start, SlotTime len) {
      if (start < 1 || start + len - 1 > horizon) return false;
      for (SlotTime t = start; t < start + len; ++t) {
        if (load[static_cast<std::size_t>(t)] >= params.capacity ||
            taken(t)) {
          return false;
        }
      }
      return true;
    };

    // Split the length into fragments and place each as a consecutive run.
    SlotTime remaining = length;
    SlotTime fragments =
        rng.uniform_int(1, std::min<SlotTime>(params.max_windows, length));
    while (remaining > 0) {
      SlotTime piece =
          fragments > 1 ? rng.uniform_int(1, remaining - fragments + 1)
                        : remaining;
      fragments = std::max<SlotTime>(1, fragments - 1);
      bool placed = false;
      for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
        const SlotTime start = rng.uniform_int(1, horizon - piece + 1);
        if (!run_fits(start, piece)) continue;
        for (SlotTime t = start; t < start + piece; ++t) {
          ++load[static_cast<std::size_t>(t)];
          assigned.push_back(t);
        }
        placed = true;
      }
      if (!placed) {
        // Dense region: fall back to unit placements anywhere available
        // (always possible because horizon * g >= 2 * total work).
        for (SlotTime t = 1; t <= horizon && piece > 0; ++t) {
          if (load[static_cast<std::size_t>(t)] >= params.capacity ||
              taken(t)) {
            continue;
          }
          ++load[static_cast<std::size_t>(t)];
          assigned.push_back(t);
          --piece;
        }
        ABT_ASSERT(piece == 0, "horizon cannot absorb the drawn work");
      }
      remaining = length - static_cast<SlotTime>(assigned.size());
    }
    std::sort(assigned.begin(), assigned.end());
    ABT_ASSERT(static_cast<SlotTime>(assigned.size()) == length,
               "assignment lost units");

    // Windows: one per maximal run of assigned slots, padded by random
    // slack and merged when the padding makes them collide.
    active::MultiWindowJob job;
    job.length = length;
    std::size_t k = 0;
    while (k < assigned.size()) {
      std::size_t end = k;
      while (end + 1 < assigned.size() &&
             assigned[end + 1] == assigned[end] + 1) {
        ++end;
      }
      SlotTime lo = assigned[k] - 1 - rng.uniform_int(0, params.window_slack);
      SlotTime hi = assigned[end] + rng.uniform_int(0, params.window_slack);
      lo = std::max<SlotTime>(0, lo);
      hi = std::min(horizon, hi);
      if (!job.windows.empty() && job.windows.back().second >= lo) {
        job.windows.back().second =
            std::max(job.windows.back().second, hi);
      } else {
        job.windows.emplace_back(lo, hi);
      }
      k = end + 1;
    }
    jobs.push_back(std::move(job));
  }
  active::MultiWindowInstance inst(std::move(jobs), params.capacity);
  ABT_ASSERT(inst.structurally_valid(), "generator produced invalid windows");
  return inst;
}

}  // namespace abt::gen
