#include "gen/gadgets.hpp"

#include "core/assert.hpp"

namespace abt::gen {

using core::ContinuousInstance;
using core::ContinuousJob;
using core::SlotTime;
using core::SlottedInstance;
using core::SlottedJob;

ContinuousInstance fig1_example() {
  // Seven interval jobs, g = 3; peak demand 6 forces two machines, and the
  // optimal packing ({1,2,3,7} and {4,5,6}) has busy time 3 + 3 = 6, which
  // matches the demand-profile lower bound (demand 2 throughout [0,3)).
  std::vector<ContinuousJob> jobs = {
      {0.0, 3.0, 3.0},  // 1
      {0.0, 1.5, 1.5},  // 2
      {1.5, 3.0, 1.5},  // 3
      {0.0, 3.0, 3.0},  // 4
      {0.0, 3.0, 3.0},  // 5
      {0.0, 3.0, 3.0},  // 6
      {0.0, 1.5, 1.5},  // 7
  };
  return ContinuousInstance(std::move(jobs), 3);
}

SlottedInstance fig3_instance(int g) {
  ABT_ASSERT(g >= 3, "Fig 3 needs g >= 3");
  const SlotTime G = g;
  std::vector<SlottedJob> jobs;
  jobs.push_back({0, 2 * G, G});      // long job 1, window [0, 2g)
  jobs.push_back({G, 3 * G, G});      // long job 2, window [g, 3g)
  for (int i = 0; i < g - 2; ++i) {
    jobs.push_back({G + 1, 2 * G - 1, G - 2});  // rigid, window [g+1, 2g-1)
  }
  for (int i = 0; i < g - 2; ++i) {
    jobs.push_back({G + 1, 2 * G, 1});  // unit, window [g+1, 2g)
  }
  for (int i = 0; i < g - 2; ++i) {
    jobs.push_back({G, 2 * G - 1, 1});  // unit, window [g, 2g-1)
  }
  return SlottedInstance(std::move(jobs), g);
}

std::vector<SlotTime> fig3_adversarial_slots(int g) {
  std::vector<SlotTime> slots;
  for (SlotTime t = 2; t <= 3 * static_cast<SlotTime>(g) - 1; ++t) {
    slots.push_back(t);
  }
  return slots;
}

std::vector<SlotTime> fig3_optimal_slots(int g) {
  std::vector<SlotTime> slots;
  for (SlotTime t = g + 1; t <= 2 * static_cast<SlotTime>(g); ++t) {
    slots.push_back(t);
  }
  return slots;
}

SlottedInstance lp_gap_instance(int g) {
  ABT_ASSERT(g >= 1, "capacity must be positive");
  std::vector<SlottedJob> jobs;
  for (int pair = 1; pair <= g; ++pair) {
    const SlotTime release = 2 * (pair - 1);  // window = slots {2p-1, 2p}
    for (int k = 0; k < g + 1; ++k) {
      jobs.push_back({release, release + 2, 1});
    }
  }
  return SlottedInstance(std::move(jobs), g);
}

namespace {
constexpr double kFig6GadgetPitch = 3.0;
}  // namespace

ContinuousInstance fig6_instance(int g, double eps) {
  ABT_ASSERT(g >= 2 && eps > 0 && eps < 0.5, "need g >= 2, 0 < eps < 1/2");
  std::vector<ContinuousJob> jobs;
  for (int k = 0; k < g; ++k) {
    const double base = k * kFig6GadgetPitch;
    for (int i = 0; i < g; ++i) jobs.push_back({base, base + 1, 1.0});
    for (int i = 0; i < g; ++i) {
      jobs.push_back({base + 1 - eps, base + 2 - eps, 1.0});
    }
  }
  const double span_end = (g - 1) * kFig6GadgetPitch + 2 - eps;
  const double flex_len = 1 - eps / 2;
  for (int i = 0; i < 2 * g; ++i) {
    jobs.push_back({0.0, span_end, flex_len});
  }
  return ContinuousInstance(std::move(jobs), g);
}

ContinuousInstance fig7_adversarial_freeze(int g, double eps) {
  ABT_ASSERT(g >= 2 && eps > 0 && eps < 0.5, "need g >= 2, 0 < eps < 1/2");
  std::vector<ContinuousJob> jobs;
  for (int k = 0; k < g; ++k) {
    const double base = k * kFig6GadgetPitch;
    for (int i = 0; i < g; ++i) jobs.push_back({base, base + 1, 1.0});
    for (int i = 0; i < g; ++i) {
      jobs.push_back({base + 1 - eps, base + 2 - eps, 1.0});
    }
  }
  // Two flexible jobs pinned inside each gadget, straddling the eps overlap
  // so they conflict with both unit groups: run [base + eps/2, base + 1).
  const double flex_len = 1 - eps / 2;
  for (int k = 0; k < g; ++k) {
    const double start = k * kFig6GadgetPitch + eps / 2;
    jobs.push_back({start, start + flex_len, flex_len});
    jobs.push_back({start, start + flex_len, flex_len});
  }
  return ContinuousInstance(std::move(jobs), g);
}

double fig6_optimal_cost(int g, double eps) {
  // g gadgets x two unit bundles + two bundles of g flexible jobs each.
  return 2.0 * g + 2.0 * (1 - eps / 2);
}

PackedInstance fig7_paper_packing(int g, double eps) {
  PackedInstance out{fig7_adversarial_freeze(g, eps), {}};
  const int n = out.instance.size();
  out.schedule.placements.assign(static_cast<std::size_t>(n), {});
  auto place = [&](int id, int machine) {
    out.schedule.placements[static_cast<std::size_t>(id)] = {
        machine, out.instance.job(id).release};
  };
  // Ids follow fig7_adversarial_freeze: gadget k holds A jobs
  // [2gk, 2gk+g) and B jobs [2gk+g, 2gk+2g); the 2g pinned flexible jobs
  // come last, two per gadget.
  const int half_up = (g + 1) / 2;
  for (int k = 0; k < g; ++k) {
    const int base = 2 * g * k;
    // Bundle 0 takes ceil(g/2) A's + floor(g/2) B's per gadget (exactly g
    // concurrent in the eps overlap); bundle 1 takes the complement.
    for (int a = 0; a < g; ++a) place(base + a, a < half_up ? 0 : 1);
    for (int b = 0; b < g; ++b) place(base + g + b, b < g - half_up ? 0 : 1);
  }
  for (int k = 0; k < g; ++k) {
    place(2 * g * g + 2 * k, 2);      // first pinned flexible of gadget k
    place(2 * g * g + 2 * k + 1, 3);  // second
  }
  return out;
}

ContinuousInstance fig8_instance(double eps, double eps_prime) {
  ABT_ASSERT(eps > 0 && eps_prime > 0 && eps_prime < eps && eps < 1,
             "need 0 < eps' < eps < 1");
  std::vector<ContinuousJob> jobs = {
      {0.0, 1.0, 1.0},                    // unit job J1
      {eps, 1.0 + eps, 1.0},              // unit job J2, shifted by eps
      {0.0, eps_prime, eps_prime},        // filler eps'
      {eps_prime, eps, eps - eps_prime},  // filler eps - eps'
      {1.0, 1.0 + eps, eps},              // filler eps at the right end
  };
  return ContinuousInstance(std::move(jobs), 2);
}

namespace {

/// Left edges of the Fig 9 blocks: block 0 holds the standalone unit job,
/// block i (i >= 1) holds g identical jobs of length 1 + i*eps. Blocks are
/// separated by unit gaps.
std::vector<double> fig9_bases(int g, double eps) {
  std::vector<double> bases(static_cast<std::size_t>(g));
  double cursor = 0.0;
  for (int i = 0; i < g; ++i) {
    bases[static_cast<std::size_t>(i)] = cursor;
    const double len = 1.0 + i * eps;
    cursor += len + 1.0;  // block length + unit gap
  }
  return bases;
}

ContinuousInstance fig9_build(int g, double eps, bool freeze,
                              bool adversarial) {
  ABT_ASSERT(g >= 2 && eps > 0 && eps < 0.25, "need g >= 2, small eps");
  const std::vector<double> bases = fig9_bases(g, eps);
  std::vector<ContinuousJob> jobs;
  jobs.push_back({bases[0], bases[0] + 1.0, 1.0});  // standalone unit job
  for (int i = 1; i < g; ++i) {
    const double len = 1.0 + i * eps;
    for (int k = 0; k < g; ++k) {
      jobs.push_back({bases[static_cast<std::size_t>(i)],
                      bases[static_cast<std::size_t>(i)] + len, len});
    }
  }
  for (int i = 1; i < g; ++i) {
    const double len = 1.0 + i * eps;
    if (!freeze) {
      // Window spans blocks 0..i.
      jobs.push_back({0.0, bases[static_cast<std::size_t>(i)] + len, len});
    } else if (adversarial) {
      // Pinned exactly onto block i (span-optimal, demand becomes g + 1).
      jobs.push_back({bases[static_cast<std::size_t>(i)],
                      bases[static_cast<std::size_t>(i)] + len, len});
    } else {
      // Pinned at the left, over the standalone unit job.
      jobs.push_back({0.0, len, len});
    }
  }
  return ContinuousInstance(std::move(jobs), g);
}

}  // namespace

ContinuousInstance fig9_instance(int g, double eps) {
  return fig9_build(g, eps, false, false);
}

ContinuousInstance fig9_adversarial_freeze(int g, double eps) {
  return fig9_build(g, eps, true, true);
}

ContinuousInstance fig9_optimal_freeze(int g, double eps) {
  return fig9_build(g, eps, true, false);
}

namespace {

constexpr double kFig10GadgetPitch = 3.0;

ContinuousInstance fig10_build(int g, double eps, double eps_prime,
                               bool freeze, bool adversarial) {
  ABT_ASSERT(g >= 2 && eps > 0 && eps_prime > 0 && eps_prime < eps &&
                 eps < 0.5,
             "need g >= 2, 0 < eps' < eps < 1/2");
  std::vector<ContinuousJob> jobs;
  jobs.push_back({0.0, 1.0, 1.0});  // standalone unit job
  for (int i = 1; i < g; ++i) {
    const double b = i * kFig10GadgetPitch;
    for (int k = 0; k < g; ++k) jobs.push_back({b, b + 1, 1.0});  // unit block
    // Left flank: demand exactly g throughout [b - eps, b).
    for (int k = 0; k < g - 1; ++k) jobs.push_back({b - eps, b, eps});
    jobs.push_back({b - eps, b - eps + eps_prime, eps_prime});
    jobs.push_back({b - eps + eps_prime, b, eps - eps_prime});
    // Right flank: demand exactly g throughout [b + 1, b + 1 + eps).
    for (int k = 0; k < g - 1; ++k) {
      jobs.push_back({b + 1, b + 1 + eps, eps});
    }
    jobs.push_back({b + 1, b + 1 + eps - eps_prime, eps - eps_prime});
    jobs.push_back({b + 1 + eps - eps_prime, b + 1 + eps, eps_prime});
  }
  const double span_end = (g - 1) * kFig10GadgetPitch + 1 + eps;
  for (int i = 1; i < g; ++i) {
    if (!freeze) {
      jobs.push_back({0.0, span_end, 1.0});
    } else if (adversarial) {
      const double b = i * kFig10GadgetPitch;
      jobs.push_back({b, b + 1, 1.0});  // on gadget i's unit block
    } else {
      jobs.push_back({0.0, 1.0, 1.0});  // with the standalone unit job
    }
  }
  return ContinuousInstance(std::move(jobs), g);
}

}  // namespace

ContinuousInstance fig10_instance(int g, double eps, double eps_prime) {
  return fig10_build(g, eps, eps_prime, false, false);
}

ContinuousInstance fig10_adversarial_freeze(int g, double eps,
                                            double eps_prime) {
  return fig10_build(g, eps, eps_prime, true, true);
}

ContinuousInstance fig10_optimal_freeze(int g, double eps, double eps_prime) {
  return fig10_build(g, eps, eps_prime, true, false);
}

PackedInstance fig12_paper_packing(int g, double eps, double eps_prime) {
  ABT_ASSERT(g >= 2 && eps > 0 && eps_prime > 0 && eps_prime < eps &&
                 eps < 0.5,
             "need g >= 2, 0 < eps' < eps < 1/2");
  // Build the padded adversarial instance (Fig 11) with an explicit id
  // layout so the packing below can reference job groups directly.
  std::vector<ContinuousJob> jobs;
  std::vector<int> standalone_ids;   // unit job + its dummies at [0,1)
  std::vector<std::vector<int>> unitpos_ids(static_cast<std::size_t>(g));
  std::vector<std::vector<int>> left_ids(static_cast<std::size_t>(g));
  std::vector<std::vector<int>> right_ids(static_cast<std::size_t>(g));

  auto add = [&](double lo, double hi) {
    jobs.push_back({lo, hi, hi - lo});
    return static_cast<int>(jobs.size()) - 1;
  };

  standalone_ids.push_back(add(0.0, 1.0));
  for (int d = 0; d < g - 1; ++d) standalone_ids.push_back(add(0.0, 1.0));

  for (int i = 1; i < g; ++i) {
    const double b = i * kFig10GadgetPitch;
    auto& unit = unitpos_ids[static_cast<std::size_t>(i)];
    auto& left = left_ids[static_cast<std::size_t>(i)];
    auto& right = right_ids[static_cast<std::size_t>(i)];
    for (int k = 0; k < g; ++k) unit.push_back(add(b, b + 1));  // unit block
    unit.push_back(add(b, b + 1));                        // pinned flexible
    for (int d = 0; d < g - 1; ++d) unit.push_back(add(b, b + 1));  // dummies
    for (int k = 0; k < g - 1; ++k) left.push_back(add(b - eps, b));
    left.push_back(add(b - eps, b - eps + eps_prime));
    left.push_back(add(b - eps + eps_prime, b));
    for (int k = 0; k < g - 1; ++k) right.push_back(add(b + 1, b + 1 + eps));
    right.push_back(add(b + 1, b + 1 + eps - eps_prime));
    right.push_back(add(b + 1 + eps - eps_prime, b + 1 + eps));
  }

  PackedInstance out{ContinuousInstance(std::move(jobs), g), {}};
  out.schedule.placements.assign(
      static_cast<std::size_t>(out.instance.size()), {});
  auto place = [&](int id, int machine) {
    out.schedule.placements[static_cast<std::size_t>(id)] = {
        machine, out.instance.job(id).release};
  };

  // Machine 0: the standalone unit block (exactly g jobs).
  for (int id : standalone_ids) place(id, 0);
  // Four machines per gadget, jobs dealt round-robin so every machine
  // straddles flank + unit block + flank: span 1 + 2 eps each. This is the
  // pair-opening behaviour of the Kumar-Rudra / Alicherry-Bhatia runs on
  // the padded profile (demand 2g at the unit block -> two level groups,
  // two machines each).
  for (int i = 1; i < g; ++i) {
    const int base = 1 + 4 * (i - 1);
    const auto deal = [&](const std::vector<int>& ids) {
      for (std::size_t j = 0; j < ids.size(); ++j) {
        place(ids[j], base + static_cast<int>(j % 4));
      }
    };
    deal(unitpos_ids[static_cast<std::size_t>(i)]);
    deal(left_ids[static_cast<std::size_t>(i)]);
    deal(right_ids[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace abt::gen
