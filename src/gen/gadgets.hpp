#pragma once

#include <vector>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"
#include "core/slotted_instance.hpp"

namespace abt::gen {

// ---------------------------------------------------------------------------
// The paper's worst-case constructions, one per figure / in-text example.
// Each returns the instance; where the paper exhibits a specific adversarial
// solution, a companion function returns that solution so experiments can
// reproduce the claimed ratio deterministically.
// ---------------------------------------------------------------------------

/// Fig 1: the worked example — 7 interval jobs, g = 3, optimally packed on
/// two machines.
[[nodiscard]] core::ContinuousInstance fig1_example();

/// Fig 3: active-time instance where a minimal feasible solution costs
/// 3g - 2 while OPT = g. Requires g >= 3.
[[nodiscard]] core::SlottedInstance fig3_instance(int g);

/// The adversarial active-slot set of Fig 3 (slots 2 .. 3g-1, cost 3g-2).
/// Feasible by construction; minimalizing it keeps cost >= 3g - 3.
[[nodiscard]] std::vector<core::SlotTime> fig3_adversarial_slots(int g);

/// Optimal slots of Fig 3 (slots g+1 .. 2g, cost g).
[[nodiscard]] std::vector<core::SlotTime> fig3_optimal_slots(int g);

/// Section 3.5: the LP integrality-gap instance — g pairs of adjacent
/// slots, each wanted by g+1 unit jobs. Integral OPT = 2g, LP* = g + 1.
[[nodiscard]] core::SlottedInstance lp_gap_instance(int g);

/// Fig 6: the GREEDYTRACKING factor-3 family. Returns the *flexible*
/// instance: g disjoint gadgets (g unit jobs, then g unit jobs overlapping
/// the first by eps) plus 2g flexible jobs of length 1 - eps/2 spanning all
/// gadgets.
[[nodiscard]] core::ContinuousInstance fig6_instance(int g, double eps);

/// Fig 7: the adversarial g=infinity output for Fig 6 — flexible jobs
/// frozen two-per-gadget so they clash with every gadget job (span-optimal,
/// so a legitimate DP output). All jobs are interval jobs.
[[nodiscard]] core::ContinuousInstance fig7_adversarial_freeze(int g,
                                                               double eps);

/// The intended optimal structure for Fig 6 (flexible jobs parked in two
/// dedicated bundles); busy time 2g + 2 - eps.
[[nodiscard]] double fig6_optimal_cost(int g, double eps);

/// An instance together with a hand-constructed (feasible) packing — used
/// to reproduce the paper's figures that depict a *possible* run of an
/// algorithm rather than a forced one.
struct PackedInstance {
  core::ContinuousInstance instance;
  core::BusySchedule schedule;
};

/// Fig 7 as the paper costs it: the packing of the adversarially frozen
/// Fig 6 family whose busy time is (6 - o(eps)) g — unit groups split
/// half-and-half across two bundles per side (span 2 - eps per gadget
/// each) and the pinned flexible jobs in two dedicated bundles. A valid
/// GREEDYTRACKING outcome under adversarial tie-breaking.
[[nodiscard]] PackedInstance fig7_paper_packing(int g, double eps);

/// Fig 8: the interval-job instance on which the 2-approximations are
/// tight (g = 2): two unit jobs shifted by eps, plus three filler jobs of
/// lengths eps', eps - eps', eps. OPT = 1 + eps.
[[nodiscard]] core::ContinuousInstance fig8_instance(double eps, double eps_prime);

/// Fig 9: the family showing the g=infinity DP's demand profile can cost
/// twice the optimal solution's profile. Returns the flexible instance:
/// one unit interval job, g-1 disjoint blocks of g identical interval jobs
/// (block i has length 1 + i*eps), and g-1 flexible jobs (job i of length
/// 1 + i*eps, window spanning blocks 0..i).
[[nodiscard]] core::ContinuousInstance fig9_instance(int g, double eps);

/// Fig 9 (C): the adversarial span-optimal freeze — flexible job i pinned
/// exactly onto block i.
[[nodiscard]] core::ContinuousInstance fig9_adversarial_freeze(int g,
                                                               double eps);

/// Fig 9 (B): the busy-time-optimal structure — flexible job i pinned at
/// the left, over the standalone unit job.
[[nodiscard]] core::ContinuousInstance fig9_optimal_freeze(int g, double eps);

/// Fig 10-12: the factor-4 family for flexible jobs under profile-charging
/// algorithms. Returns the flexible instance: a standalone unit job, g-1
/// gadgets (g unit interval jobs flanked by eps/eps' filler jobs keeping
/// side demand exactly g), and g-1 unit flexible jobs spanning everything.
[[nodiscard]] core::ContinuousInstance fig10_instance(int g, double eps,
                                                      double eps_prime);

/// Fig 11: adversarial freeze of fig10 — flexible job i pinned onto gadget
/// i's unit block (span-optimal).
[[nodiscard]] core::ContinuousInstance fig10_adversarial_freeze(
    int g, double eps, double eps_prime);

/// Busy-time-optimal freeze of fig10 — flexible jobs pinned on the
/// standalone unit job.
[[nodiscard]] core::ContinuousInstance fig10_optimal_freeze(int g, double eps,
                                                            double eps_prime);

/// Fig 12 as the paper costs it: the padded adversarial freeze of Fig 10
/// (dummy jobs included, Fig 11) packed the way the Kumar-Rudra /
/// Alicherry-Bhatia pair-opening runs it — four machines per gadget, each
/// straddling both flanks, for busy time 1 + 4(g-1)(1 + 2 eps) -> ratio 4.
[[nodiscard]] PackedInstance fig12_paper_packing(int g, double eps,
                                                 double eps_prime);

}  // namespace abt::gen
