#pragma once

// Random generators for the extended instance kinds (width-weighted busy
// time, multi-window active time). They live in gen/ next to the standard
// families but sit above busy/ and active/ because they produce those
// layers' instance types directly.

#include "active/multi_window.hpp"
#include "busy/weighted.hpp"
#include "core/rng.hpp"

namespace abt::gen {

/// Parameters for random weighted (cumulative-width) busy-time instances.
struct WeightedParams {
  int num_jobs = 12;
  int capacity = 4;
  double horizon = 20.0;
  double min_length = 0.5;
  double max_length = 4.0;
  /// Window size is length * (1 + slack); 0 gives interval jobs.
  double max_slack = 0.0;
  /// Widths are uniform in [1, min(max_width, capacity)]; 0 = capacity.
  int max_width = 0;
};

/// Random weighted instance; always structurally valid (widths in [1, g]).
[[nodiscard]] busy::WeightedInstance random_weighted(
    core::Rng& rng, const WeightedParams& params);

/// Parameters for random multi-window active-time instances.
struct MultiWindowParams {
  int num_jobs = 10;
  int capacity = 3;
  /// 0 = derived from the drawn work (2 * total / g + 4).
  core::SlotTime horizon = 0;
  core::SlotTime max_length = 4;
  /// Upper bound on the window fragments *seeded* per job (at least 1).
  /// Under very dense load the unit-by-unit fallback placement may
  /// fragment a job further, so treat this as typical, not a hard cap.
  int max_windows = 3;
  /// Random per-window slack slots added around the seeded runs.
  core::SlotTime window_slack = 2;
};

/// Random multi-window instance, feasible by construction: a concrete
/// capacity-respecting assignment is sampled first and each job's windows
/// are grown around its assigned slots, so the flow check always succeeds.
[[nodiscard]] active::MultiWindowInstance random_multi_window(
    core::Rng& rng, const MultiWindowParams& params);

}  // namespace abt::gen
