#pragma once

#include "core/continuous_instance.hpp"
#include "core/rng.hpp"
#include "core/slotted_instance.hpp"

namespace abt::gen {

/// Parameters for random slotted (active-time) instances.
struct SlottedParams {
  int num_jobs = 10;
  core::SlotTime horizon = 20;   ///< Deadlines at most this.
  int capacity = 3;              ///< g.
  core::SlotTime max_length = 4;
  core::SlotTime max_slack = 6;  ///< Window size at most length + slack.
  bool unit_jobs = false;        ///< Force p_j = 1.
};

/// Uniformly random slotted instance; may be infeasible.
[[nodiscard]] core::SlottedInstance random_slotted(core::Rng& rng,
                                                   const SlottedParams& params);

/// Random slotted instance that is guaranteed feasible (regenerates jobs
/// that break feasibility; always terminates because a job with a window of
/// full slack can be retried with smaller length).
[[nodiscard]] core::SlottedInstance random_feasible_slotted(
    core::Rng& rng, const SlottedParams& params);

/// Parameters for random continuous (busy-time) instances.
struct ContinuousParams {
  int num_jobs = 20;
  double horizon = 30.0;
  int capacity = 3;
  double min_length = 0.5;
  double max_length = 4.0;
  /// Window size is length * (1 + slack); slack = 0 gives interval jobs.
  double max_slack = 0.0;
};

/// Random continuous instance (interval jobs when max_slack == 0).
[[nodiscard]] core::ContinuousInstance random_continuous(
    core::Rng& rng, const ContinuousParams& params);

/// Clique instance: every job's interval contains `focus` (defaults to the
/// middle of the horizon) — the special case studied by Khandekar et al.
[[nodiscard]] core::ContinuousInstance random_clique(
    core::Rng& rng, const ContinuousParams& params);

/// Proper instance: no job's interval is contained in another's (releases
/// and deadlines are sorted consistently) — Flammini et al.'s special case.
[[nodiscard]] core::ContinuousInstance random_proper(
    core::Rng& rng, const ContinuousParams& params);

/// Laminar instance: any two windows are disjoint or nested.
[[nodiscard]] core::ContinuousInstance random_laminar(
    core::Rng& rng, const ContinuousParams& params);

/// Proper clique instance: all intervals share a point and none contains
/// another — the case solved exactly by the DP of Mertzios et al. [12]
/// (paper footnote 1, implemented in busy/special_cases).
[[nodiscard]] core::ContinuousInstance random_proper_clique(
    core::Rng& rng, const ContinuousParams& params);

/// Parameters for bursty arrivals layered on a continuous family.
struct BurstyParams {
  ContinuousParams base;
  int bursts = 3;             ///< Arrival cluster count (>= 1).
  double spread = 0.06;       ///< Cluster half-width, fraction of horizon.
};

/// Bursty-arrival continuous instance: releases cluster around `bursts`
/// random centers instead of spreading uniformly, producing the deep
/// demand spikes that stress the packing algorithms (interval jobs when
/// base.max_slack == 0).
[[nodiscard]] core::ContinuousInstance random_bursty(
    core::Rng& rng, const BurstyParams& params);

}  // namespace abt::gen
