#pragma once

#include <cstdio>
#include <cstdlib>

/// ABT_ASSERT(cond, msg): contract check that stays on in release builds.
/// The library is a research artifact; silent corruption is worse than an
/// abort, so violations terminate with a location-stamped message.
#define ABT_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ABT_ASSERT failed at %s:%d: %s\n  -> %s\n",    \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
