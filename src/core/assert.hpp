#pragma once

#include <cstdio>
#include <cstdlib>

/// ABT_ASSERT(cond, msg): contract check that stays on in release builds.
/// The library is a research artifact; silent corruption is worse than an
/// abort, so violations terminate with a location-stamped message.
#define ABT_ASSERT(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "ABT_ASSERT failed at %s:%d: %s\n  -> %s\n",    \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// ABT_DBG_ASSERT(cond, msg): structural invariant check that exists only
/// in audit builds (cmake -DABT_AUDIT=ON). The flat sweep structures, the
/// scratch arena and the thread pool call these from audit_invariants()
/// at their state-mutation seams; a release build pays nothing — the
/// condition is not even evaluated (sizeof keeps the operands ODR-used so
/// audit-only locals never trip -Wunused under the default build).
#if defined(ABT_AUDIT) && ABT_AUDIT
#define ABT_DBG_ASSERT(cond, msg) ABT_ASSERT(cond, msg)
#else
#define ABT_DBG_ASSERT(cond, msg)                                          \
  do {                                                                     \
    (void)sizeof((cond) ? 1 : 0);                                          \
    (void)sizeof(msg);                                                     \
  } while (0)
#endif

namespace abt::core {

/// True in audit builds; tests use this to gate audit-only expectations
/// without littering #ifdefs.
#if defined(ABT_AUDIT) && ABT_AUDIT
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

}  // namespace abt::core
