#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/active_schedule.hpp"
#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"
#include "core/run_context.hpp"
#include "core/slotted_instance.hpp"

namespace abt::core {

/// Which of the paper's two problem families a solver addresses.
enum class Family { kBusy, kActive };

[[nodiscard]] std::string_view family_name(Family family);

/// Which instance representation a ProblemInstance carries. The two
/// standard kinds are the paper's base models; the extended kinds are the
/// generalizations (width-weighted busy time, multi-window active time)
/// that ride through the registry via an InstanceExtension payload instead
/// of a dedicated member, so core stays ignorant of their concrete types.
enum class InstanceKind { kStandard, kWeighted, kMultiWindow };

[[nodiscard]] std::string_view instance_kind_name(InstanceKind kind);

/// Type-erased payload for the extended instance kinds. Concrete wrappers
/// (engine/adapters) subclass this around busy::WeightedInstance /
/// active::MultiWindowInstance and expose just enough shape for generic
/// reporting and lower-bound derivation; solvers downcast through the
/// adapter accessors.
class InstanceExtension {
 public:
  virtual ~InstanceExtension() = default;
  [[nodiscard]] virtual InstanceKind kind() const = 0;
  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual int capacity() const = 0;
  /// Family-appropriate combinatorial lower bound on OPT (mass/span).
  [[nodiscard]] virtual double lower_bound() const = 0;
  /// One-line instance summary for the report headers.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Instance I/O v2 serialization hooks. `model_name` is the token the
  /// plain-text format's `model` directive carries (e.g. "weighted");
  /// `write_body` emits the per-job directive lines that follow the shared
  /// `model`/`capacity` header. The defaults mark the extension as
  /// NOT serializable: core::write_instance then fails loudly instead of
  /// letting a caller fall back to a lossy standard-model emit.
  [[nodiscard]] virtual std::string_view model_name() const { return {}; }
  virtual bool write_body(std::ostream& /*out*/) const { return false; }
};

/// Uniform instance carrier: for the standard kinds exactly one of the two
/// instance members is meaningful, selected by `family`; the extended kinds
/// carry their model in `extension` instead. This is the single currency
/// the solver registry, the scenario engine and the CLI trade in, so that
/// "run every applicable algorithm on this input" is one call regardless of
/// model.
struct ProblemInstance {
  Family family = Family::kBusy;
  InstanceKind kind = InstanceKind::kStandard;
  SlottedInstance slotted;        ///< Valid when family == kActive.
  ContinuousInstance continuous;  ///< Valid when family == kBusy.
  /// Set exactly when kind != kStandard.
  std::shared_ptr<const InstanceExtension> extension;
};

[[nodiscard]] ProblemInstance make_instance(SlottedInstance inst);
[[nodiscard]] ProblemInstance make_instance(ContinuousInstance inst);
/// Extended-kind carrier: family per the extension's model, kind from the
/// extension itself.
[[nodiscard]] ProblemInstance make_instance(
    Family family, std::shared_ptr<const InstanceExtension> extension);

/// Uniform result of one solver run. Every solver — busy or active, exact
/// or approximate, preemptive or not — reports through this struct so the
/// runner, the benchmarks and the tests share one validation/reporting path.
struct Solution {
  std::string solver;   ///< Registered solver name.
  Family family = Family::kBusy;

  bool ok = false;        ///< A schedule was produced.
  bool feasible = false;  ///< Checker verdict on the produced schedule.
  std::string message;    ///< Why not ok / why infeasible (checker output).

  double cost = 0.0;     ///< Busy time, or number of active slots.
  double wall_ms = 0.0;  ///< Wall-clock time of the run() call.
  int machines = 0;      ///< Machines used (busy family; 0 for active).

  std::string guarantee;  ///< Human-readable a-priori bound of the solver.
  bool exact = false;     ///< This run proved optimality of `cost`.

  /// Budget / anytime bookkeeping. `budget_ms` echoes the RunContext the
  /// run was given (0 = unlimited); `timed_out` means the budget or a
  /// cancellation interrupted the run, so `cost` is the best incumbent
  /// found, not a proven optimum; `best_bound` is the strongest lower
  /// bound on OPT the run can certify (== cost for a completed exact run,
  /// a combinatorial bound for an interrupted one, 0 when none applies).
  double budget_ms = 0.0;
  bool timed_out = false;
  double best_bound = 0.0;

  /// Relative optimality gap of `cost` against `best_bound`: 0 for a
  /// proven optimum, (cost - best_bound) / best_bound when a positive
  /// bound is known, +infinity when the run certifies no bound at all.
  [[nodiscard]] double gap() const;

  /// Solver-specific counters (DP states, interned sets, LP objective,
  /// repair opens, ...), reported as ordered key/value pairs.
  std::vector<std::pair<std::string, double>> stats;

  /// The produced schedule, for Gantt rendering and re-checking. At most
  /// one is set, matching the solver's family and preemptiveness.
  std::optional<BusySchedule> busy;
  std::optional<PreemptiveBusySchedule> preemptive;
  std::optional<ActiveSchedule> active;

  [[nodiscard]] double stat(std::string_view key, double fallback = 0.0) const;
  void add_stat(std::string key, double value);
};

/// A registered algorithm. `run` fills cost / schedule / stats; the
/// registry wraps it with timing and checker validation so individual
/// solvers never reimplement either.
struct Solver {
  std::string name;    ///< Unique registry key, e.g. "busy/greedy-tracking".
  Family family = Family::kBusy;
  /// Instance representation the solver consumes. A solver only ever sees
  /// instances of its own kind — the registry gates on it exactly like on
  /// `family`, so standard solvers never receive an extended instance.
  InstanceKind kind = InstanceKind::kStandard;
  std::string guarantee;  ///< e.g. "<= 3 OPT", "optimal", "heuristic".

  /// Worst-case approximation factor vs OPT claimed by the paper
  /// (cost <= factor * OPT); 0 when no finite a-priori factor applies.
  double guarantee_factor = 0.0;
  /// True when the solver proves optimality whenever it succeeds.
  bool exact = false;

  /// Whether the solver accepts this instance (model, job shape, size)
  /// under the given invocation context. May explain a refusal through
  /// `why`. Size gates on the exact solvers consult `ctx.has_budget()`:
  /// with a budget the hard gate lifts — the solver runs anytime-style to
  /// the deadline and reports its incumbent with a gap instead of
  /// refusing outright.
  std::function<bool(const ProblemInstance&, const RunContext& ctx,
                     std::string* why)>
      applicable;

  /// Runs the algorithm. Preconditions: `applicable` returned true.
  /// Polynomial solvers ignore `ctx`; anytime solvers poll
  /// `ctx.should_stop()` and report incumbents through it.
  std::function<Solution(const ProblemInstance&, const RunContext& ctx)> run;

  /// Checker for the produced schedule. Required for extended kinds (the
  /// default checkers only understand the standard models); when set it
  /// replaces the registry's built-in validation. Must not trust any
  /// bookkeeping in the Solution beyond the schedule itself.
  std::function<bool(const ProblemInstance&, const Solution&,
                     std::string* why)>
      check;
};

/// The registry's built-in validation for standard-kind solutions: the
/// family-appropriate schedule checker applied to whatever schedule the
/// Solution carries. Exposed so registrations can name it explicitly as
/// their `check` — the project lint requires every registered solver to
/// supply a checker, and "the standard one, on purpose" beats an empty
/// field that might mean "forgot". Fails (with a message) on extended
/// instance kinds: those must bring their own checker.
[[nodiscard]] bool check_standard_solution(const ProblemInstance& inst,
                                           const Solution& sol,
                                           std::string* why);

/// Name-keyed collection of solvers with a uniform timed + checked run
/// entry point. Registration order is preserved (it is the display order).
class SolverRegistry {
 public:
  /// Registers a solver; the name must be unique.
  void add(Solver solver);

  [[nodiscard]] const Solver* find(std::string_view name) const;
  [[nodiscard]] const std::vector<Solver>& all() const { return solvers_; }
  [[nodiscard]] std::size_t size() const { return solvers_.size(); }

  /// Solvers of `family` whose applicability predicate accepts `inst`
  /// under `ctx` (a budget lifts the exact solvers' size gates).
  [[nodiscard]] std::vector<const Solver*> applicable_to(
      const ProblemInstance& inst, const RunContext& ctx = {}) const;

  /// The solvers run_applicable would run on `inst`, in registration
  /// order: every family/kind/applicability match when `only` is empty,
  /// else the named subset verbatim (mismatches included — run() turns
  /// them into declined rows). Unknown names have no Solver and are not
  /// represented here; callers surface them as refusal rows. This is the
  /// single definition of sweep/run selection semantics — extend gates
  /// here, never in a caller.
  [[nodiscard]] std::vector<const Solver*> selection(
      const ProblemInstance& inst, const std::vector<std::string>& only = {},
      const RunContext& ctx = {}) const;

  /// Runs one solver: applicability gate, wall-clock timing, checker
  /// validation of whatever schedule the solver produced. Never throws on
  /// solver refusal — the verdict lands in Solution::ok / message. The
  /// context is used as given (deadline already armed by the caller); a
  /// context cancelled before the call declines the run with message
  /// "cancelled" so batch drivers stop promptly.
  [[nodiscard]] Solution run(const Solver& solver, const ProblemInstance& inst,
                             const RunContext& ctx = {}) const;

  /// Convenience: run(find(name)); refusal Solution when unknown.
  [[nodiscard]] Solution run(std::string_view name,
                             const ProblemInstance& inst,
                             const RunContext& ctx = {}) const;

  /// Runs every applicable solver (or the named subset) in registration
  /// order. Each run gets `ctx.restarted()` — the budget applies per
  /// solver, not to the whole batch.
  [[nodiscard]] std::vector<Solution> run_applicable(
      const ProblemInstance& inst, const std::vector<std::string>& only = {},
      const RunContext& ctx = {}) const;

 private:
  std::vector<Solver> solvers_;
};

}  // namespace abt::core
