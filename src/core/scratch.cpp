#include "core/scratch.hpp"

namespace abt::core {

namespace {
thread_local MonotonicArena* tl_arena_override = nullptr;
}  // namespace

MonotonicArena& thread_arena() {
  thread_local MonotonicArena arena;
  return tl_arena_override != nullptr ? *tl_arena_override : arena;
}

void set_thread_arena(MonotonicArena* arena) { tl_arena_override = arena; }

}  // namespace abt::core
