#include "core/scratch.hpp"

namespace abt::core {

MonotonicArena& thread_arena() {
  thread_local MonotonicArena arena;
  return arena;
}

}  // namespace abt::core
