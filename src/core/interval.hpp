#pragma once

#include <span>
#include <vector>

#include "core/job.hpp"

namespace abt::core {

/// Half-open interval [lo, hi) on the continuous time axis.
struct Interval {
  RealTime lo = 0.0;
  RealTime hi = 0.0;

  [[nodiscard]] RealTime length() const { return hi - lo; }
  [[nodiscard]] bool empty() const { return hi <= lo; }
  [[nodiscard]] bool contains(RealTime t) const { return t >= lo && t < hi; }
  [[nodiscard]] bool overlaps(const Interval& o) const {
    return lo < o.hi && o.lo < hi;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Union of a set of intervals as a sorted list of disjoint intervals.
/// Intervals closer than `eps` are merged (treats touching as merged).
[[nodiscard]] std::vector<Interval> interval_union(std::vector<Interval> ivs,
                                                   RealTime eps = 1e-12);

/// Measure (total length) of the union of `ivs` — the paper's Sp(S), the
/// projection of the set onto the time axis (Definition 10).
[[nodiscard]] RealTime span_of(std::span<const Interval> ivs);

/// Total length sum — the paper's "mass" l(S) (Definition 10).
[[nodiscard]] RealTime mass_of(std::span<const Interval> ivs);

/// Event boundaries of a set of intervals: the sorted distinct endpoints.
/// Consecutive boundaries delimit the paper's "interesting intervals"
/// (Definition 12): no interval starts or ends strictly inside one.
[[nodiscard]] std::vector<RealTime> event_points(std::span<const Interval> ivs,
                                                 RealTime eps = 1e-12);

/// Number of intervals covering the midpoint of [lo,hi). With `ivs`
/// arbitrary, this is the raw demand |A(t)| of Definition 11 evaluated on an
/// interesting interval.
[[nodiscard]] int coverage_at(std::span<const Interval> ivs, RealTime lo,
                              RealTime hi);

}  // namespace abt::core
