#pragma once

#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/job.hpp"

namespace abt::core {

/// A busy-time instance (paper section 1.1): jobs with real-valued release
/// times, deadlines and lengths; an unbounded pool of machines, each able to
/// run up to g jobs simultaneously; jobs are non-preemptive.
class ContinuousInstance {
 public:
  ContinuousInstance() = default;
  ContinuousInstance(std::vector<ContinuousJob> jobs, int capacity);

  [[nodiscard]] const std::vector<ContinuousJob>& jobs() const { return jobs_; }
  [[nodiscard]] const ContinuousJob& job(JobId j) const { return jobs_[static_cast<std::size_t>(j)]; }
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] int capacity() const { return capacity_; }

  /// Total processing mass l(J) = sum of lengths (Definition 10).
  [[nodiscard]] RealTime total_mass() const { return total_mass_; }

  /// Mass lower bound l(J)/g on optimal busy time (Observation 2).
  [[nodiscard]] RealTime mass_lower_bound() const {
    return total_mass_ / capacity_;
  }

  /// True when every job is individually schedulable (length > 0,
  /// window >= length). Busy-time instances are always globally feasible.
  [[nodiscard]] bool structurally_valid(std::string* why = nullptr) const;

  /// True when every job is an interval job (deadline == release + length).
  [[nodiscard]] bool all_interval_jobs(RealTime eps = 1e-9) const;

  /// The interval [release, deadline) of each job — the job's *window*.
  [[nodiscard]] std::vector<Interval> windows() const;

  /// For an instance of interval jobs: each job's (forced) execution
  /// interval [r_j, r_j + p_j).
  [[nodiscard]] std::vector<Interval> forced_intervals() const;

 private:
  std::vector<ContinuousJob> jobs_;
  int capacity_ = 1;
  RealTime total_mass_ = 0.0;
};

}  // namespace abt::core
