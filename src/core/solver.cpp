#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/assert.hpp"

namespace abt::core {

std::string_view family_name(Family family) {
  return family == Family::kBusy ? "busy" : "active";
}

std::string_view instance_kind_name(InstanceKind kind) {
  switch (kind) {
    case InstanceKind::kWeighted: return "weighted";
    case InstanceKind::kMultiWindow: return "multi-window";
    case InstanceKind::kStandard: break;
  }
  return "standard";
}

ProblemInstance make_instance(SlottedInstance inst) {
  ProblemInstance out;
  out.family = Family::kActive;
  out.slotted = std::move(inst);
  return out;
}

ProblemInstance make_instance(ContinuousInstance inst) {
  ProblemInstance out;
  out.family = Family::kBusy;
  out.continuous = std::move(inst);
  return out;
}

ProblemInstance make_instance(
    Family family, std::shared_ptr<const InstanceExtension> extension) {
  ABT_ASSERT(extension != nullptr, "extended instance without payload");
  ProblemInstance out;
  out.family = family;
  out.kind = extension->kind();
  ABT_ASSERT(out.kind != InstanceKind::kStandard,
             "standard instances use the typed make_instance overloads");
  out.extension = std::move(extension);
  return out;
}

double Solution::gap() const {
  if (exact) return 0.0;
  if (best_bound <= 0.0) return std::numeric_limits<double>::infinity();
  return std::max(0.0, cost - best_bound) / best_bound;
}

double Solution::stat(std::string_view key, double fallback) const {
  for (const auto& [k, v] : stats) {
    if (k == key) return v;
  }
  return fallback;
}

void Solution::add_stat(std::string key, double value) {
  stats.emplace_back(std::move(key), value);
}

void SolverRegistry::add(Solver solver) {
  ABT_ASSERT(!solver.name.empty(), "solver must be named");
  ABT_ASSERT(find(solver.name) == nullptr, "duplicate solver name");
  ABT_ASSERT(static_cast<bool>(solver.run), "solver must have a run fn");
  solvers_.push_back(std::move(solver));
}

const Solver* SolverRegistry::find(std::string_view name) const {
  const auto it = std::find_if(
      solvers_.begin(), solvers_.end(),
      [&](const Solver& s) { return s.name == name; });
  return it == solvers_.end() ? nullptr : &*it;
}

std::vector<const Solver*> SolverRegistry::applicable_to(
    const ProblemInstance& inst, const RunContext& ctx) const {
  std::vector<const Solver*> out;
  for (const Solver& s : solvers_) {
    if (s.family != inst.family || s.kind != inst.kind) continue;
    if (s.applicable && !s.applicable(inst, ctx, nullptr)) continue;
    out.push_back(&s);
  }
  return out;
}

Solution SolverRegistry::run(const Solver& solver, const ProblemInstance& inst,
                             const RunContext& ctx) const {
  Solution sol;
  sol.solver = solver.name;
  sol.family = solver.family;
  sol.guarantee = solver.guarantee;
  sol.budget_ms = ctx.budget_ms();

  // A cancelled batch declines every remaining cell up front — the point
  // of cancellation is that no further solver work starts.
  if (ctx.cancelled()) {
    sol.message = "cancelled";
    sol.timed_out = true;
    return sol;
  }
  if (solver.family != inst.family) {
    sol.message = "wrong family";
    return sol;
  }
  if (solver.kind != inst.kind) {
    sol.message = std::string("wrong instance kind (solver wants ") +
                  std::string(instance_kind_name(solver.kind)) + ", got " +
                  std::string(instance_kind_name(inst.kind)) + ")";
    return sol;
  }
  if (solver.applicable) {
    std::string why;
    if (!solver.applicable(inst, ctx, &why)) {
      sol.message = why.empty() ? "not applicable" : why;
      return sol;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  Solution produced = solver.run(inst, ctx);
  const auto t1 = std::chrono::steady_clock::now();

  produced.solver = solver.name;
  produced.family = solver.family;
  produced.budget_ms = ctx.budget_ms();
  if (produced.guarantee.empty()) produced.guarantee = solver.guarantee;
  produced.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  // A completed exact run certifies its own cost as the lower bound; an
  // interrupted one keeps whatever combinatorial bound the solver set.
  if (produced.ok && produced.exact && produced.best_bound <= 0.0) {
    produced.best_bound = produced.cost;
  }

  if (!produced.ok) {
    produced.feasible = false;
    return produced;
  }

  // Shared checker validation: the verdict is part of the contract, so no
  // caller ever trusts a solver's own bookkeeping. Extended kinds (and any
  // solver with its own validation contract) supply the checker at
  // registration; the registry still owns the verdict and the machine
  // count either way.
  std::string why;
  produced.feasible = solver.check
                          ? solver.check(inst, produced, &why)
                          : check_standard_solution(inst, produced, &why);
  if (produced.busy.has_value()) {
    produced.machines = produced.busy->machine_count();
  } else if (produced.preemptive.has_value()) {
    int machines = 0;
    for (const auto& pieces : produced.preemptive->pieces) {
      for (const auto& piece : pieces) {
        machines = std::max(machines, piece.machine + 1);
      }
    }
    produced.machines = machines;
  }
  if (!produced.feasible) produced.message = why;
  return produced;
}

bool check_standard_solution(const ProblemInstance& inst, const Solution& sol,
                             std::string* why) {
  if (inst.kind != InstanceKind::kStandard) {
    if (why != nullptr) {
      *why = "extended instance kind without a registered checker";
    }
    return false;
  }
  if (sol.family == Family::kActive) {
    ABT_ASSERT(sol.active.has_value(), "active solver without schedule");
    return check_active_schedule(inst.slotted, *sol.active, why);
  }
  if (sol.preemptive.has_value()) {
    return check_preemptive_schedule(inst.continuous, *sol.preemptive, why);
  }
  ABT_ASSERT(sol.busy.has_value(), "busy solver without schedule");
  return check_busy_schedule(inst.continuous, *sol.busy, why);
}

Solution SolverRegistry::run(std::string_view name, const ProblemInstance& inst,
                             const RunContext& ctx) const {
  const Solver* solver = find(name);
  if (solver == nullptr) {
    Solution sol;
    sol.solver = std::string(name);
    sol.message = "unknown solver";
    return sol;
  }
  return run(*solver, inst, ctx);
}

std::vector<const Solver*> SolverRegistry::selection(
    const ProblemInstance& inst, const std::vector<std::string>& only,
    const RunContext& ctx) const {
  std::vector<const Solver*> out;
  for (const Solver& s : solvers_) {
    if (only.empty()) {
      // Unrestricted runs silently skip inapplicable solvers.
      if (s.family != inst.family || s.kind != inst.kind) continue;
      if (s.applicable && !s.applicable(inst, ctx, nullptr)) continue;
    } else if (std::find(only.begin(), only.end(), s.name) == only.end()) {
      continue;
    }
    out.push_back(&s);
  }
  return out;
}

std::vector<Solution> SolverRegistry::run_applicable(
    const ProblemInstance& inst, const std::vector<std::string>& only,
    const RunContext& ctx) const {
  std::vector<Solution> out;
  for (const Solver* s : selection(inst, only, ctx)) {
    // An explicitly requested solver always gets a row: run() turns a
    // family mismatch or applicability refusal into a declined Solution
    // instead of dropping the request on the floor.
    out.push_back(run(*s, inst, ctx.restarted()));
  }
  // Unknown requested names get a refusal row too, not a silent drop.
  for (const std::string& name : only) {
    if (find(name) == nullptr) {
      Solution sol;
      sol.solver = name;
      sol.family = inst.family;
      sol.message = "unknown solver";
      out.push_back(std::move(sol));
    }
  }
  return out;
}

}  // namespace abt::core
