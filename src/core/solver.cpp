#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "core/assert.hpp"

namespace abt::core {

std::string_view family_name(Family family) {
  return family == Family::kBusy ? "busy" : "active";
}

std::string_view instance_kind_name(InstanceKind kind) {
  switch (kind) {
    case InstanceKind::kWeighted: return "weighted";
    case InstanceKind::kMultiWindow: return "multi-window";
    case InstanceKind::kStandard: break;
  }
  return "standard";
}

ProblemInstance make_instance(SlottedInstance inst) {
  ProblemInstance out;
  out.family = Family::kActive;
  out.slotted = std::move(inst);
  return out;
}

ProblemInstance make_instance(ContinuousInstance inst) {
  ProblemInstance out;
  out.family = Family::kBusy;
  out.continuous = std::move(inst);
  return out;
}

ProblemInstance make_instance(
    Family family, std::shared_ptr<const InstanceExtension> extension) {
  ABT_ASSERT(extension != nullptr, "extended instance without payload");
  ProblemInstance out;
  out.family = family;
  out.kind = extension->kind();
  ABT_ASSERT(out.kind != InstanceKind::kStandard,
             "standard instances use the typed make_instance overloads");
  out.extension = std::move(extension);
  return out;
}

double Solution::gap() const {
  if (exact) return 0.0;
  if (best_bound <= 0.0) return std::numeric_limits<double>::infinity();
  return std::max(0.0, cost - best_bound) / best_bound;
}

double Solution::stat(std::string_view key, double fallback) const {
  for (const auto& [k, v] : stats) {
    if (k == key) return v;
  }
  return fallback;
}

void Solution::add_stat(std::string key, double value) {
  stats.emplace_back(std::move(key), value);
}

void SolverRegistry::add(Solver solver) {
  ABT_ASSERT(!solver.name.empty(), "solver must be named");
  ABT_ASSERT(find(solver.name) == nullptr, "duplicate solver name");
  ABT_ASSERT(static_cast<bool>(solver.run), "solver must have a run fn");
  solvers_.push_back(std::move(solver));
}

const Solver* SolverRegistry::find(std::string_view name) const {
  const auto it = std::find_if(
      solvers_.begin(), solvers_.end(),
      [&](const Solver& s) { return s.name == name; });
  return it == solvers_.end() ? nullptr : &*it;
}

std::vector<const Solver*> SolverRegistry::applicable_to(
    const ProblemInstance& inst, const RunContext& ctx) const {
  std::vector<const Solver*> out;
  for (const Solver& s : solvers_) {
    if (s.family != inst.family || s.kind != inst.kind) continue;
    if (s.applicable && !s.applicable(inst, ctx, nullptr)) continue;
    out.push_back(&s);
  }
  return out;
}

Solution SolverRegistry::run(const Solver& solver, const ProblemInstance& inst,
                             const RunContext& ctx) const {
  Solution sol;
  sol.solver = solver.name;
  sol.family = solver.family;
  sol.guarantee = solver.guarantee;
  sol.budget_ms = ctx.budget_ms();

  // A cancelled batch declines every remaining cell up front — the point
  // of cancellation is that no further solver work starts.
  if (ctx.cancelled()) {
    sol.message = "cancelled";
    sol.timed_out = true;
    return sol;
  }
  if (solver.family != inst.family) {
    sol.message = "wrong family";
    return sol;
  }
  if (solver.kind != inst.kind) {
    sol.message = std::string("wrong instance kind (solver wants ") +
                  std::string(instance_kind_name(solver.kind)) + ", got " +
                  std::string(instance_kind_name(inst.kind)) + ")";
    return sol;
  }
  if (solver.applicable) {
    std::string why;
    if (!solver.applicable(inst, ctx, &why)) {
      sol.message = why.empty() ? "not applicable" : why;
      return sol;
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  Solution produced = solver.run(inst, ctx);
  const auto t1 = std::chrono::steady_clock::now();

  produced.solver = solver.name;
  produced.family = solver.family;
  produced.budget_ms = ctx.budget_ms();
  if (produced.guarantee.empty()) produced.guarantee = solver.guarantee;
  produced.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  // A completed exact run certifies its own cost as the lower bound; an
  // interrupted one keeps whatever combinatorial bound the solver set.
  if (produced.ok && produced.exact && produced.best_bound <= 0.0) {
    produced.best_bound = produced.cost;
  }

  if (!produced.ok) {
    produced.feasible = false;
    return produced;
  }

  // Shared checker validation: the verdict is part of the contract, so no
  // caller ever trusts a solver's own bookkeeping.
  std::string why;
  if (solver.check) {
    // Extended kinds (and any solver with its own validation contract)
    // supply the checker at registration; the registry still owns the
    // verdict and the machine count.
    produced.feasible = solver.check(inst, produced, &why);
    if (produced.busy.has_value()) {
      produced.machines = produced.busy->machine_count();
    }
    if (!produced.feasible) produced.message = why;
    return produced;
  }
  if (inst.kind != InstanceKind::kStandard) {
    produced.feasible = false;
    produced.message = "extended instance kind without a registered checker";
    return produced;
  }
  if (produced.family == Family::kActive) {
    ABT_ASSERT(produced.active.has_value(), "active solver without schedule");
    produced.feasible = check_active_schedule(inst.slotted, *produced.active,
                                              &why);
  } else if (produced.preemptive.has_value()) {
    produced.feasible =
        check_preemptive_schedule(inst.continuous, *produced.preemptive, &why);
    int machines = 0;
    for (const auto& pieces : produced.preemptive->pieces) {
      for (const auto& piece : pieces) {
        machines = std::max(machines, piece.machine + 1);
      }
    }
    produced.machines = machines;
  } else {
    ABT_ASSERT(produced.busy.has_value(), "busy solver without schedule");
    produced.feasible =
        check_busy_schedule(inst.continuous, *produced.busy, &why);
    produced.machines = produced.busy->machine_count();
  }
  if (!produced.feasible) produced.message = why;
  return produced;
}

Solution SolverRegistry::run(std::string_view name, const ProblemInstance& inst,
                             const RunContext& ctx) const {
  const Solver* solver = find(name);
  if (solver == nullptr) {
    Solution sol;
    sol.solver = std::string(name);
    sol.message = "unknown solver";
    return sol;
  }
  return run(*solver, inst, ctx);
}

std::vector<const Solver*> SolverRegistry::selection(
    const ProblemInstance& inst, const std::vector<std::string>& only,
    const RunContext& ctx) const {
  std::vector<const Solver*> out;
  for (const Solver& s : solvers_) {
    if (only.empty()) {
      // Unrestricted runs silently skip inapplicable solvers.
      if (s.family != inst.family || s.kind != inst.kind) continue;
      if (s.applicable && !s.applicable(inst, ctx, nullptr)) continue;
    } else if (std::find(only.begin(), only.end(), s.name) == only.end()) {
      continue;
    }
    out.push_back(&s);
  }
  return out;
}

std::vector<Solution> SolverRegistry::run_applicable(
    const ProblemInstance& inst, const std::vector<std::string>& only,
    const RunContext& ctx) const {
  std::vector<Solution> out;
  for (const Solver* s : selection(inst, only, ctx)) {
    // An explicitly requested solver always gets a row: run() turns a
    // family mismatch or applicability refusal into a declined Solution
    // instead of dropping the request on the floor.
    out.push_back(run(*s, inst, ctx.restarted()));
  }
  // Unknown requested names get a refusal row too, not a silent drop.
  for (const std::string& name : only) {
    if (find(name) == nullptr) {
      Solution sol;
      sol.solver = name;
      sol.family = inst.family;
      sol.message = "unknown solver";
      out.push_back(std::move(sol));
    }
  }
  return out;
}

}  // namespace abt::core
