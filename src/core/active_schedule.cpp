#include "core/active_schedule.hpp"

#include <algorithm>
#include <map>

namespace abt::core {

namespace {

bool fail(std::string* why, std::string reason) {
  if (why != nullptr) *why = std::move(reason);
  return false;
}

}  // namespace

bool check_active_schedule(const SlottedInstance& inst,
                           const ActiveSchedule& sched, std::string* why) {
  if (!std::is_sorted(sched.active_slots.begin(), sched.active_slots.end())) {
    return fail(why, "active slots not sorted");
  }
  if (std::adjacent_find(sched.active_slots.begin(),
                         sched.active_slots.end()) !=
      sched.active_slots.end()) {
    return fail(why, "duplicate active slot");
  }
  if (static_cast<int>(sched.job_slots.size()) != inst.size()) {
    return fail(why, "job_slots size mismatch");
  }

  std::map<SlotTime, int> load;
  for (JobId j = 0; j < inst.size(); ++j) {
    const SlottedJob& job = inst.job(j);
    const auto& slots = sched.job_slots[static_cast<std::size_t>(j)];
    if (static_cast<SlotTime>(slots.size()) != job.length) {
      return fail(why, "job " + std::to_string(j) + " got " +
                           std::to_string(slots.size()) + " units, needs " +
                           std::to_string(job.length));
    }
    SlotTime prev = -1;
    for (SlotTime t : slots) {
      if (t == prev) {
        return fail(why,
                    "job " + std::to_string(j) + " scheduled twice in slot " +
                        std::to_string(t));
      }
      if (t < prev) return fail(why, "job slots not sorted");
      prev = t;
      if (!job.live_in_slot(t)) {
        return fail(why, "job " + std::to_string(j) + " outside window at " +
                             std::to_string(t));
      }
      if (!std::binary_search(sched.active_slots.begin(),
                              sched.active_slots.end(), t)) {
        return fail(why, "job " + std::to_string(j) +
                             " scheduled in inactive slot " +
                             std::to_string(t));
      }
      ++load[t];
    }
  }
  for (const auto& [t, count] : load) {
    if (count > inst.capacity()) {
      return fail(why, "slot " + std::to_string(t) + " holds " +
                           std::to_string(count) + " jobs > g=" +
                           std::to_string(inst.capacity()));
    }
  }
  return true;
}

std::vector<int> slot_loads(const SlottedInstance& inst,
                            const ActiveSchedule& sched) {
  std::vector<int> loads(sched.active_slots.size(), 0);
  for (JobId j = 0; j < inst.size(); ++j) {
    for (SlotTime t : sched.job_slots[static_cast<std::size_t>(j)]) {
      const auto it = std::lower_bound(sched.active_slots.begin(),
                                       sched.active_slots.end(), t);
      if (it != sched.active_slots.end() && *it == t) {
        ++loads[static_cast<std::size_t>(it - sched.active_slots.begin())];
      }
    }
  }
  return loads;
}

}  // namespace abt::core
