#include "core/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace abt::core {

namespace {

bool fail(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + what;
  }
  return false;
}

}  // namespace

std::optional<ParsedInstance> parse_instance(std::istream& in,
                                             std::string* error) {
  std::optional<ModelKind> kind;
  int capacity = -1;
  std::vector<SlottedJob> slotted_jobs;
  std::vector<ContinuousJob> continuous_jobs;

  std::string line;
  int line_no = 0;
  auto report = [&](const std::string& what) {
    fail(error, line_no, what);
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line

    if (keyword == "model") {
      std::string name;
      if (!(ls >> name)) return report("model needs a name");
      if (name == "slotted") {
        kind = ModelKind::kSlotted;
      } else if (name == "continuous") {
        kind = ModelKind::kContinuous;
      } else {
        return report("unknown model '" + name + "'");
      }
    } else if (keyword == "capacity") {
      if (!(ls >> capacity) || capacity < 1) {
        return report("capacity needs a positive integer");
      }
    } else if (keyword == "job") {
      if (!kind.has_value()) return report("job before model directive");
      if (*kind == ModelKind::kSlotted) {
        SlotTime r = 0;
        SlotTime d = 0;
        SlotTime p = 0;
        if (!(ls >> r >> d >> p)) {
          return report("job needs: release deadline length");
        }
        slotted_jobs.push_back({r, d, p});
      } else {
        RealTime r = 0;
        RealTime d = 0;
        RealTime p = 0;
        if (!(ls >> r >> d >> p)) {
          return report("job needs: release deadline length");
        }
        continuous_jobs.push_back({r, d, p});
      }
    } else {
      return report("unknown directive '" + keyword + "'");
    }
  }
  ++line_no;
  if (!kind.has_value()) return report("missing 'model' directive");
  if (capacity < 1) return report("missing 'capacity' directive");

  ParsedInstance out;
  out.kind = *kind;
  std::string why;
  if (*kind == ModelKind::kSlotted) {
    out.slotted = SlottedInstance(std::move(slotted_jobs), capacity);
    if (!out.slotted.structurally_valid(&why)) return report(why);
  } else {
    out.continuous = ContinuousInstance(std::move(continuous_jobs), capacity);
    if (!out.continuous.structurally_valid(&why)) return report(why);
  }
  return out;
}

void write_instance(std::ostream& out, const SlottedInstance& inst) {
  out << "model slotted\ncapacity " << inst.capacity() << "\n";
  for (const SlottedJob& j : inst.jobs()) {
    out << "job " << j.release << ' ' << j.deadline << ' ' << j.length << "\n";
  }
}

void write_instance(std::ostream& out, const ContinuousInstance& inst) {
  out << "model continuous\ncapacity " << inst.capacity() << "\n";
  out.precision(17);
  for (const ContinuousJob& j : inst.jobs()) {
    out << "job " << j.release << ' ' << j.deadline << ' ' << j.length << "\n";
  }
}

}  // namespace abt::core
