#include "core/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

namespace abt::core {

namespace {

/// model-name -> parser factory, registration order preserved.
std::vector<std::pair<std::string, ExtensionParserFactory>>& codecs() {
  static std::vector<std::pair<std::string, ExtensionParserFactory>> registry;
  return registry;
}

const ExtensionParserFactory* find_codec(const std::string& name) {
  for (const auto& [key, factory] : codecs()) {
    if (key == name) return &factory;
  }
  return nullptr;
}

bool fail(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + what;
  }
  return false;
}

}  // namespace

void register_instance_model(const std::string& model_name,
                             ExtensionParserFactory factory) {
  for (auto& [key, existing] : codecs()) {
    if (key == model_name) {
      existing = std::move(factory);
      return;
    }
  }
  codecs().emplace_back(model_name, std::move(factory));
}

std::vector<std::string> registered_instance_models() {
  std::vector<std::string> out;
  out.reserve(codecs().size());
  for (const auto& [key, factory] : codecs()) out.push_back(key);
  return out;
}

std::optional<ProblemInstance> parse_instance(std::istream& in,
                                              std::string* error) {
  enum class Model { kNone, kSlotted, kContinuous, kExtended };
  Model model = Model::kNone;
  std::unique_ptr<ExtensionParser> extension_parser;
  int capacity = -1;
  std::vector<SlottedJob> slotted_jobs;
  std::vector<ContinuousJob> continuous_jobs;

  std::string line;
  int line_no = 0;
  auto report = [&](const std::string& what) {
    fail(error, line_no, what);
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line

    if (keyword == "model") {
      if (model != Model::kNone) return report("duplicate model directive");
      std::string name;
      if (!(ls >> name)) return report("model needs a name");
      if (name == "slotted") {
        model = Model::kSlotted;
      } else if (name == "continuous") {
        model = Model::kContinuous;
      } else if (const ExtensionParserFactory* codec = find_codec(name)) {
        model = Model::kExtended;
        extension_parser = (*codec)();
      } else {
        std::string known = "slotted, continuous";
        for (const std::string& key : registered_instance_models()) {
          known += ", " + key;
        }
        std::string what = "unknown model '" + name + "' (known: " + known;
        if (codecs().empty()) {
          // Distinguish a typo from a binary that never linked the codecs
          // (engine/adapters registers them at load time).
          what += "; no extended-model codecs are registered — link "
                  "engine/adapters or call engine::register_instance_codecs()";
        }
        return report(what + ")");
      }
    } else if (keyword == "capacity") {
      // A repeated capacity silently changing every preceding job's
      // context is exactly the silent-data-change class v2 eliminates.
      if (capacity > 0) return report("duplicate capacity directive");
      if (!(ls >> capacity) || capacity < 1) {
        return report("capacity needs a positive integer");
      }
    } else if (model == Model::kExtended) {
      // Everything but the shared header belongs to the model's codec.
      std::string why;
      if (!extension_parser->directive(keyword, ls, &why)) {
        return report(why);
      }
    } else if (keyword == "job") {
      if (model == Model::kNone) return report("job before model directive");
      if (model == Model::kSlotted) {
        SlotTime r = 0;
        SlotTime d = 0;
        SlotTime p = 0;
        if (!(ls >> r >> d >> p)) {
          return report("job needs: release deadline length");
        }
        slotted_jobs.push_back({r, d, p});
      } else {
        RealTime r = 0;
        RealTime d = 0;
        RealTime p = 0;
        if (!(ls >> r >> d >> p)) {
          return report("job needs: release deadline length");
        }
        continuous_jobs.push_back({r, d, p});
      }
    } else {
      return report("unknown directive '" + keyword + "'");
    }
  }
  ++line_no;
  if (model == Model::kNone) return report("missing 'model' directive");
  if (capacity < 1) return report("missing 'capacity' directive");

  std::string why;
  if (model == Model::kExtended) {
    ProblemInstance out;
    if (!extension_parser->finish(capacity, &out, &why)) return report(why);
    return out;
  }
  if (model == Model::kSlotted) {
    SlottedInstance inst(std::move(slotted_jobs), capacity);
    if (!inst.structurally_valid(&why)) return report(why);
    return make_instance(std::move(inst));
  }
  ContinuousInstance inst(std::move(continuous_jobs), capacity);
  if (!inst.structurally_valid(&why)) return report(why);
  return make_instance(std::move(inst));
}

void write_instance(std::ostream& out, const SlottedInstance& inst) {
  out << "model slotted\ncapacity " << inst.capacity() << "\n";
  for (const SlottedJob& j : inst.jobs()) {
    out << "job " << j.release << ' ' << j.deadline << ' ' << j.length << "\n";
  }
}

void write_instance(std::ostream& out, const ContinuousInstance& inst) {
  out << "model continuous\ncapacity " << inst.capacity() << "\n";
  // precision 17 == max_digits10: doubles survive the text round trip
  // bit-for-bit. Restored so a long-lived caller stream is not left with
  // 17-digit formatting.
  const std::streamsize old_precision = out.precision(17);
  for (const ContinuousJob& j : inst.jobs()) {
    out << "job " << j.release << ' ' << j.deadline << ' ' << j.length << "\n";
  }
  out.precision(old_precision);
}

bool write_instance(std::ostream& out, const ProblemInstance& inst,
                    std::string* why) {
  if (inst.kind == InstanceKind::kStandard) {
    if (inst.family == Family::kActive) {
      write_instance(out, inst.slotted);
    } else {
      write_instance(out, inst.continuous);
    }
    return true;
  }
  const InstanceExtension* ext = inst.extension.get();
  if (ext == nullptr || ext->model_name().empty()) {
    if (why != nullptr) {
      *why = "instance kind '" +
             std::string(instance_kind_name(inst.kind)) +
             "' has no serialization support (emitting the standard-model "
             "view would silently drop the extension payload)";
    }
    return false;
  }
  // Buffer the body so a mid-serialization failure leaves NOTHING on the
  // caller's stream — a truncated-but-plausible instance file is the
  // artifact this function exists to prevent.
  std::ostringstream body;
  if (!ext->write_body(body)) {
    if (why != nullptr) {
      *why = "model '" + std::string(ext->model_name()) +
             "' failed to serialize its job payload";
    }
    return false;
  }
  out << "model " << ext->model_name() << "\ncapacity " << ext->capacity()
      << "\n"
      << body.str();
  return true;
}

}  // namespace abt::core
