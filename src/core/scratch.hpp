#pragma once

// Scratch-memory primitives for the sweep hot paths (ROADMAP direction 4;
// the shape follows TCPSPSuite's fast_reset_vector + skyline ground):
//
//  - FastResetVector<T>: a dense vector whose logical clear is O(1) via
//    epoch stamps, replacing the assign(n, 0) marker arrays that cost a
//    full fill per loop iteration.
//  - MonotonicArena: a chained-block bump allocator whose reset rewinds in
//    O(1) and keeps its blocks, so per-trial flat buffers are carved out of
//    memory that is allocated once per worker thread.
//  - thread_arena(): the calling thread's arena. Solvers borrow from it
//    through an ArenaScope (stack discipline); the engine's workers rewind
//    and trim it between cells (engine/scratch.hpp).
//
// Everything here is thread-affine by design: instances are either owned by
// one object or reached through thread_local storage, never shared.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/assert.hpp"

namespace abt::core {

/// Dense vector with O(1) logical clear: every slot carries the epoch that
/// last wrote it, and reads from an older epoch see T{}. `resize` only
/// grows the backing storage; values surviving from earlier epochs are
/// invisible, so no fill is ever needed.
template <typename T>
class FastResetVector {
 public:
  void resize(std::size_t n) {
    if (n > data_.size()) {
      data_.resize(n);
      stamp_.resize(n, 0);
    }
    size_ = n;
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  /// O(1): bumps the epoch so every slot reads as T{} again.
  void clear() {
    if (++epoch_ == 0) {  // epoch wrapped: stale stamps could collide
      std::fill(stamp_.begin(), stamp_.end(), std::uint32_t{0});
      epoch_ = 1;
    }
    if constexpr (kAuditEnabled) audit_invariants();
  }

  /// Epoch sanity: the live epoch is never 0 (0 marks "never written"),
  /// stamps parallel the data storage, and no stamp is from the future.
  /// No-op unless ABT_AUDIT is on.
  void audit_invariants() const {
    if constexpr (!kAuditEnabled) return;
    ABT_DBG_ASSERT(epoch_ >= 1, "live epoch must be positive");
    ABT_DBG_ASSERT(stamp_.size() == data_.size(),
                   "stamp array out of sync with data array");
    ABT_DBG_ASSERT(size_ <= data_.size(), "logical size exceeds storage");
    for (const std::uint32_t s : stamp_) {
      ABT_DBG_ASSERT(s <= epoch_, "slot stamped with a future epoch");
    }
  }

  void set(std::size_t i, T v) {
    data_[i] = v;
    stamp_[i] = epoch_;
  }

  [[nodiscard]] T get(std::size_t i) const {
    return stamp_[i] == epoch_ ? data_[i] : T{};
  }

 private:
  std::vector<T> data_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
  std::size_t size_ = 0;
};

/// Chained-block bump allocator. Allocations stay valid until the owning
/// scope (or the arena) is rewound; blocks are never freed by reset, so a
/// worker thread touching the same solver repeatedly allocates real memory
/// only on its first, largest trial. Only trivially copyable element types
/// are allowed — nothing is constructed or destroyed.
class MonotonicArena {
 public:
  /// Uninitialized span of `n` elements.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena memory is raw bytes");
    if (n == 0) return {};
    void* p = allocate(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// O(1) full rewind; keeps every block.
  void reset() {
    current_ = 0;
    offset_ = 0;
    if constexpr (kAuditEnabled) audit_invariants();
  }

  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Drops trailing blocks until capacity fits `max_bytes`. Only safe (and
  /// only acted upon) when the arena is fully rewound.
  void trim(std::size_t max_bytes) {
    if (current_ != 0 || offset_ != 0) return;
    while (!blocks_.empty() && capacity() > max_bytes) blocks_.pop_back();
    if constexpr (kAuditEnabled) audit_invariants();
  }

  /// Block-chain sanity: the bump cursor points into the chain, the bump
  /// offset fits its block, every block is real memory, and block sizes
  /// never shrink along the chain (growth is geometric, trim only drops
  /// the tail). No-op unless ABT_AUDIT is on.
  void audit_invariants() const {
    if constexpr (!kAuditEnabled) return;
    if (blocks_.empty()) {
      ABT_DBG_ASSERT(current_ == 0 && offset_ == 0,
                     "bump cursor into an empty block chain");
      return;
    }
    ABT_DBG_ASSERT(current_ < blocks_.size(),
                   "bump cursor past the block chain");
    ABT_DBG_ASSERT(offset_ <= blocks_[current_].size,
                   "bump offset past its block");
    std::size_t prev_size = 0;
    for (const Block& b : blocks_) {
      ABT_DBG_ASSERT(b.data != nullptr && b.size > 0, "hollow arena block");
      ABT_DBG_ASSERT(b.size >= prev_size,
                     "block sizes must be non-decreasing along the chain");
      prev_size = b.size;
    }
  }

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocate(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& b = blocks_[current_];
        const std::size_t off = (offset_ + align - 1) & ~(align - 1);
        if (off + bytes <= b.size) {
          offset_ = off + bytes;
          return b.data.get() + off;
        }
        if (current_ + 1 < blocks_.size()) {  // skip to the next block
          ++current_;
          offset_ = 0;
          continue;
        }
      }
      const std::size_t last = blocks_.empty() ? 0 : blocks_.back().size;
      const std::size_t want =
          std::max({bytes + align, 2 * last, kMinBlockBytes});
      blocks_.push_back({std::make_unique<std::byte[]>(want), want});
      current_ = blocks_.size() - 1;
      offset_ = 0;
    }
  }

  static constexpr std::size_t kMinBlockBytes = 1 << 12;

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  ///< Block being bumped.
  std::size_t offset_ = 0;   ///< Bump offset within it.
};

/// RAII rewind point: allocations made inside the scope are reclaimed when
/// it ends. Scopes nest in stack order, which makes arena use safe even
/// when nobody ever calls reset() (benchmarks, direct API callers).
class ArenaScope {
 public:
  explicit ArenaScope(MonotonicArena& arena)
      : arena_(arena), block_(arena.current_), offset_(arena.offset_) {}
  ~ArenaScope() {
    arena_.current_ = block_;
    arena_.offset_ = offset_;
  }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  MonotonicArena& arena_;
  std::size_t block_;
  std::size_t offset_;
};

/// The calling thread's scratch arena. Worker threads of the sweep engine
/// keep one alive across every cell they execute (engine/scratch.hpp wires
/// the per-cell rewind + trim); standalone callers get the same reuse
/// across repeated calls on one thread via ArenaScope.
///
/// By default this is a thread_local arena that dies with the thread. The
/// persistent thread pool instead binds each worker to a pool-owned arena
/// (set_thread_arena), so scratch identity follows the worker SLOT: the
/// arena survives pool resizes and is reused across every sweep/campaign
/// the process ever runs, not just across cells of one call.
[[nodiscard]] MonotonicArena& thread_arena();

/// Overrides thread_arena() for the calling thread (nullptr restores the
/// thread_local default). The pointee must outlive the binding; bindings
/// are thread-affine and never shared.
void set_thread_arena(MonotonicArena* arena);

}  // namespace abt::core
