#pragma once

#include <string>
#include <vector>

#include "core/slotted_instance.hpp"

namespace abt::core {

/// A feasible solution to the active-time problem: the set A of active slots
/// plus an assignment of each unit of work to a slot (paper section 2).
struct ActiveSchedule {
  /// Sorted, distinct active slots.
  std::vector<SlotTime> active_slots;
  /// job_slots[j] = sorted, distinct slots in which one unit of job j runs.
  std::vector<std::vector<SlotTime>> job_slots;

  /// Active-time cost |A|.
  [[nodiscard]] SlotTime cost() const {
    return static_cast<SlotTime>(active_slots.size());
  }
};

/// Verifies all feasibility conditions of an active-time schedule:
///  * every assigned slot is active,
///  * at most one unit of a job per slot, within the job's window,
///  * job j receives exactly p_j units,
///  * at most g jobs share any slot.
/// On failure returns false and (optionally) explains in `why`.
[[nodiscard]] bool check_active_schedule(const SlottedInstance& inst,
                                         const ActiveSchedule& sched,
                                         std::string* why = nullptr);

/// Number of jobs assigned to each active slot, indexed like
/// `sched.active_slots`.
[[nodiscard]] std::vector<int> slot_loads(const SlottedInstance& inst,
                                          const ActiveSchedule& sched);

}  // namespace abt::core
