#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace abt::core {

/// Polled cancellation: a CancelSource owns the flag, every CancelToken
/// copied from it observes the same flag. A default-constructed token is
/// never cancelled, so "no cancellation" costs one null check per poll.
/// Thread-safe: cancel() may race with cancelled() from any worker.
///
/// Tokens compose: `a.chained(b)` observes a's flag OR b's (transitively),
/// which is the derivation primitive for child scopes — a portfolio race
/// trips its own source without touching the caller's, while the caller's
/// cancellation still reaches every contestant through the chain.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] bool cancelled() const {
    for (const CancelToken* t = this; t != nullptr; t = t->upstream_.get()) {
      if (t->flag_ != nullptr && t->flag_->load(std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] bool empty() const {
    return flag_ == nullptr && upstream_ == nullptr;
  }

  /// A token that is cancelled as soon as EITHER this token or `upstream`
  /// is. Chains stay short (races nest a couple of levels at most), so
  /// cancelled() walks them with relaxed loads — no extra allocation on
  /// the poll path, one node per chained() call.
  [[nodiscard]] CancelToken chained(const CancelToken& upstream) const {
    if (upstream.empty()) return *this;
    if (empty()) return upstream;
    CancelToken out;
    out.flag_ = flag_;
    out.upstream_ = std::make_shared<const CancelToken>(
        upstream_ == nullptr ? upstream : upstream_->chained(upstream));
    return out;
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::shared_ptr<const CancelToken> upstream_;
};

class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A strictly improving incumbent reported by an anytime solver mid-run.
/// `cost` is the solver's own bookkeeping (the final schedule still goes
/// through the registry checker); `elapsed_ms` is measured against the
/// context's start.
struct Incumbent {
  double cost = 0.0;
  double elapsed_ms = 0.0;
};

using IncumbentHook = std::function<void(const Incumbent&)>;

/// Ring buffer of the last K improving incumbent SCHEDULES an anytime run
/// reported — the (cost, elapsed) hook tells a driver THAT progress
/// happened, this retains WHAT the incumbent looked like, as a compact
/// solver-rendered text snapshot (live Gantt streaming / the service
/// protocol's `progress` events). Off by default: solvers render a
/// snapshot only when a ring is attached to their context, so runs that
/// never ask pay one null check per improvement. Thread-safe — pool
/// workers report concurrently during races.
class IncumbentRing {
 public:
  /// Retains the last `capacity` improving snapshots (>= 1).
  explicit IncumbentRing(int capacity)
      : capacity_(capacity < 1 ? std::size_t{1}
                               : static_cast<std::size_t>(capacity)) {}

  struct Snapshot {
    double cost = 0.0;
    double elapsed_ms = 0.0;
    std::string schedule;  ///< Solver-rendered incumbent, one line.
  };

  void push(Snapshot snapshot) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++total_;
    if (ring_.size() == capacity_) ring_.pop_front();
    ring_.push_back(std::move(snapshot));
  }

  /// Retained snapshots, oldest first.
  [[nodiscard]] std::vector<Snapshot> snapshots() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {ring_.begin(), ring_.end()};
  }

  /// Improvements ever reported (>= snapshots().size(); the ring forgets,
  /// the counter does not).
  [[nodiscard]] std::size_t total_reported() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Snapshot> ring_;
  std::size_t total_ = 0;
};

/// Compact one-line renders for IncumbentRing snapshots, shared by the
/// anytime searches so the service's `progress` events speak one dialect:
/// a job -> group partition ("machine 0: 1 3 | machine 1: 0 2"; jobs with
/// no group yet are omitted) and a slot list ("slots 1 3 5").
[[nodiscard]] inline std::string render_partition(
    const char* label, const std::vector<int>& assignment) {
  int groups = 0;
  for (const int a : assignment) groups = a >= groups ? a + 1 : groups;
  std::string out;
  for (int g = 0; g < groups; ++g) {
    if (!out.empty()) out += " | ";
    out += label;
    out += ' ';
    out += std::to_string(g);
    out += ':';
    for (std::size_t j = 0; j < assignment.size(); ++j) {
      if (assignment[j] == g) {
        out += ' ';
        out += std::to_string(j);
      }
    }
  }
  return out.empty() ? std::string("(empty)") : out;
}

template <typename SlotT>
[[nodiscard]] inline std::string render_slots(const std::vector<SlotT>& open) {
  std::string out = "slots";
  for (const SlotT& s : open) {
    out += ' ';
    out += std::to_string(s);
  }
  return out;
}

/// The per-run invocation context every registered solver receives: a
/// monotonic time budget, a polled cancellation token and an
/// incumbent-reporting hook. Polynomial solvers ignore it entirely; the
/// branch-and-bound / enumeration solvers poll `should_stop()` on a node
/// counter and return their best incumbent (with `Solution::timed_out =
/// true` and `exact = false`) instead of running to completion.
///
/// The clock starts at construction. Drivers that reuse one configured
/// context for many runs (the sweep/campaign engines) call `restarted()`
/// to re-arm the deadline per cell; the budget, token and hook carry over.
///
/// A default-constructed context is unlimited and never cancelled — the
/// legacy "run to completion or refuse" behavior.
class RunContext {
 public:
  RunContext() = default;

  /// Context with a wall-clock budget in milliseconds (<= 0 = unlimited).
  [[nodiscard]] static RunContext with_budget_ms(double budget_ms) {
    RunContext ctx;
    ctx.budget_ms_ = budget_ms > 0.0 ? budget_ms : 0.0;
    return ctx;
  }

  RunContext& set_cancel_token(CancelToken token) {
    cancel_ = std::move(token);
    return *this;
  }
  RunContext& set_incumbent_hook(IncumbentHook hook) {
    hook_ = std::move(hook);
    return *this;
  }
  /// Attaches a ring that retains the last K improving incumbent
  /// schedules (nullptr detaches). Solvers consult `wants_schedules()`
  /// and render a snapshot only when someone is listening.
  RunContext& set_schedule_ring(std::shared_ptr<IncumbentRing> ring) {
    ring_ = std::move(ring);
    return *this;
  }

  /// Copy with the clock (and therefore the deadline) re-armed at now.
  [[nodiscard]] RunContext restarted() const {
    RunContext ctx = *this;
    ctx.start_ = std::chrono::steady_clock::now();
    return ctx;
  }

  /// Derives the context a raced / nested sub-run gets: budget = whatever
  /// remains of this context's budget, optionally capped by `cap_ms`
  /// (> 0), with a fresh clock; cancellation = this context's token
  /// chained with `extra`, so either side stops the child but the child's
  /// source can never stop the parent; the incumbent hook carries over.
  /// A parent already out of budget yields an immediately-expiring child
  /// (1 microsecond), never an accidentally unlimited one.
  [[nodiscard]] RunContext child(CancelToken extra = {},
                                 double cap_ms = 0.0) const {
    RunContext ctx;
    double budget = has_budget() ? std::max(remaining_ms(), 1e-3) : 0.0;
    if (cap_ms > 0.0) {
      budget = has_budget() ? std::min(budget, cap_ms) : cap_ms;
    }
    ctx.budget_ms_ = budget;
    ctx.cancel_ = extra.chained(cancel_);
    ctx.hook_ = hook_;
    ctx.ring_ = ring_;
    return ctx;
  }

  [[nodiscard]] const CancelToken& cancel_token() const { return cancel_; }

  [[nodiscard]] double budget_ms() const { return budget_ms_; }
  [[nodiscard]] bool has_budget() const { return budget_ms_ > 0.0; }

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  /// Milliseconds left on the budget; +infinity when unlimited.
  [[nodiscard]] double remaining_ms() const {
    if (!has_budget()) return std::numeric_limits<double>::infinity();
    return budget_ms_ - elapsed_ms();
  }
  [[nodiscard]] bool out_of_budget() const {
    return has_budget() && elapsed_ms() >= budget_ms_;
  }
  [[nodiscard]] bool cancelled() const { return cancel_.cancelled(); }

  /// The one predicate search loops poll (amortize over a node counter —
  /// each call reads the monotonic clock).
  [[nodiscard]] bool should_stop() const {
    return cancelled() || out_of_budget();
  }

  /// Reports a strictly improving incumbent to the hook (if any). Safe to
  /// call from any solver thread; `const` because solvers only see a
  /// read-only context.
  void report_incumbent(double cost) const {
    if (hook_) hook_({cost, elapsed_ms()});
  }

  /// True when a schedule ring is attached — the solver should pay for a
  /// snapshot render on its next improvement.
  [[nodiscard]] bool wants_schedules() const { return ring_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<IncumbentRing>& schedule_ring() const {
    return ring_;
  }

  /// Improvement report with a lazily rendered schedule snapshot: `render`
  /// (any callable returning a std::string) is invoked ONLY when a ring is
  /// attached, so solvers pass it unconditionally without paying for the
  /// string on ordinary runs.
  template <typename Render>
  void report_incumbent(double cost, Render&& render) const {
    const double elapsed = elapsed_ms();
    if (ring_ != nullptr) {
      ring_->push({cost, elapsed, std::forward<Render>(render)()});
    }
    if (hook_) hook_({cost, elapsed});
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
  double budget_ms_ = 0.0;  ///< 0 = unlimited.
  CancelToken cancel_;
  IncumbentHook hook_;
  std::shared_ptr<IncumbentRing> ring_;
};

}  // namespace abt::core
