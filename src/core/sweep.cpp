#include "core/sweep.hpp"

#include <algorithm>
#include <limits>

namespace abt::core {

CoverageProfile::CoverageProfile(std::span<const Interval> ivs, RealTime eps) {
  const std::vector<RealTime> points = event_points(ivs, eps);
  if (points.size() < 2) return;

  // Each endpoint was merged into the cluster representative at or just
  // below it, so the greatest boundary <= the endpoint recovers its index.
  const auto snap = [&points](RealTime t) -> std::size_t {
    const auto it = std::upper_bound(points.begin(), points.end(), t);
    return static_cast<std::size_t>(it - points.begin()) - 1;
  };

  std::vector<int> delta(points.size(), 0);
  for (const Interval& iv : ivs) {
    if (iv.empty()) continue;
    ++delta[snap(iv.lo)];
    --delta[snap(iv.hi)];
  }

  segments_.reserve(points.size() - 1);
  int count = 0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    count += delta[i];
    if (count > 0) {
      segments_.push_back({{points[i], points[i + 1]}, count});
    }
  }
}

RealTime CoverageProfile::cost() const {
  RealTime total = 0.0;
  for (const CoverageSegment& s : segments_) {
    total += s.count * s.interval.length();
  }
  return total;
}

int CoverageProfile::max() const {
  int best = 0;
  for (const CoverageSegment& s : segments_) best = std::max(best, s.count);
  return best;
}

int CoverageProfile::coverage_at(RealTime t) const {
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](RealTime v, const CoverageSegment& s) { return v < s.interval.lo; });
  if (it == segments_.begin()) return 0;
  const CoverageSegment& s = *std::prev(it);
  return s.interval.contains(t) ? s.count : 0;
}

int CoverageProfile::max_coverage_in(RealTime lo, RealTime hi) const {
  if (hi <= lo) return 0;
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), lo,
      [](RealTime v, const CoverageSegment& s) { return v < s.interval.lo; });
  int best = 0;
  if (it != segments_.begin() && std::prev(it)->interval.contains(lo)) {
    best = std::prev(it)->count;
  }
  for (; it != segments_.end() && it->interval.lo < hi; ++it) {
    best = std::max(best, it->count);
  }
  return best;
}

int max_concurrency(std::span<const Interval> ivs) {
  struct Event {
    RealTime t;
    int delta;
  };
  std::vector<Event> events;
  events.reserve(ivs.size() * 2);
  for (const Interval& iv : ivs) {
    if (iv.empty()) continue;
    events.push_back({iv.lo, +1});
    events.push_back({iv.hi, -1});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    // Closings before openings at the same coordinate: half-open intervals
    // [a,b) and [b,c) do not overlap.
    return a.t < b.t || (a.t == b.t && a.delta < b.delta);
  });
  int cur = 0;
  int best = 0;
  for (const Event& e : events) {
    cur += e.delta;
    best = std::max(best, cur);
  }
  return best;
}

int OccupancyIndex::max_coverage_in(RealTime lo, RealTime hi) const {
  if (hi <= lo || steps_.empty()) return 0;
  auto it = steps_.upper_bound(lo);
  int best = (it == steps_.begin()) ? 0 : std::prev(it)->second;
  for (; it != steps_.end() && it->first < hi; ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

RealTime OccupancyIndex::covered_measure_in(RealTime lo, RealTime hi) const {
  if (hi <= lo || steps_.empty()) return 0.0;
  auto it = steps_.upper_bound(lo);
  int level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
  RealTime covered = 0.0;
  RealTime cursor = lo;
  for (; it != steps_.end() && it->first < hi; ++it) {
    if (level > 0) covered += it->first - cursor;
    cursor = it->first;
    level = it->second;
  }
  if (level > 0) covered += hi - cursor;
  return covered;
}

void OccupancyIndex::insert(const Interval& iv) {
  if (iv.empty()) return;
  // Split a breakpoint at each endpoint (carrying the incumbent level), then
  // raise every step inside [lo, hi) by one.
  const auto split = [this](RealTime t) {
    auto it = steps_.lower_bound(t);
    if (it == steps_.end() || it->first != t) {
      const int level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
      it = steps_.emplace_hint(it, t, level);
    }
    return it;
  };
  const auto it_hi = split(iv.hi);
  for (auto it = split(iv.lo); it != it_hi; ++it) ++it->second;
  ++count_;
}

namespace {
constexpr RealTime kNoMachine = std::numeric_limits<RealTime>::infinity();
}  // namespace

void MachineFreeIndex::rebuild(std::size_t capacity) {
  cap_ = capacity;
  tree_.assign(2 * cap_, kNoMachine);
  for (std::size_t i = 0; i < keys_.size(); ++i) tree_[cap_ + i] = keys_[i];
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    tree_[i] = std::min(tree_[2 * i], tree_[2 * i + 1]);
  }
}

int MachineFreeIndex::push_back(RealTime key) {
  keys_.push_back(key);
  if (keys_.size() > cap_) {
    rebuild(std::max<std::size_t>(2 * cap_, 1));
  } else {
    set(static_cast<int>(keys_.size()) - 1, key);
  }
  return static_cast<int>(keys_.size()) - 1;
}

void MachineFreeIndex::set(int i, RealTime key) {
  keys_[static_cast<std::size_t>(i)] = key;
  std::size_t node = cap_ + static_cast<std::size_t>(i);
  tree_[node] = key;
  for (node /= 2; node >= 1; node /= 2) {
    tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
  }
}

int MachineFreeIndex::first_at_most(RealTime x) const {
  if (cap_ == 0 || tree_[1] > x) return -1;
  std::size_t node = 1;
  while (node < cap_) {
    node = (tree_[2 * node] <= x) ? 2 * node : 2 * node + 1;
  }
  const int index = static_cast<int>(node - cap_);
  return index < size() ? index : -1;
}

}  // namespace abt::core
