#include "core/sweep.hpp"

#include <algorithm>
#include <limits>

#include "core/assert.hpp"
#include "core/scratch.hpp"

namespace abt::core {

namespace {

/// One endpoint event of the coverage sweep: +1 opens an interval at t,
/// -1 closes one.
struct SweepEvent {
  RealTime t;
  int delta;
};

}  // namespace

CoverageProfile::CoverageProfile(std::span<const Interval> ivs, RealTime eps) {
  if (ivs.empty()) return;
  MonotonicArena& arena = thread_arena();
  const ArenaScope scope(arena);

  // Event sort into one flat arena span: (coordinate, +-1) per endpoint.
  const std::span<SweepEvent> events = arena.alloc<SweepEvent>(2 * ivs.size());
  std::size_t ne = 0;
  for (const Interval& iv : ivs) {
    if (iv.empty()) continue;
    events[ne++] = {iv.lo, +1};
    events[ne++] = {iv.hi, -1};
  }
  if (ne == 0) return;
  std::sort(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(ne),
            [](const SweepEvent& a, const SweepEvent& b) { return a.t < b.t; });

  // Cluster representatives (event_points' eps merge) and per-cluster
  // deltas fall out of the same linear pass: a sorted event within eps of
  // the current representative snaps to it — the greatest boundary <= the
  // endpoint, exactly what the per-endpoint upper_bound recovered before.
  const std::span<RealTime> points = arena.alloc<RealTime>(ne);
  const std::span<int> delta = arena.alloc<int>(ne);
  std::size_t np = 0;
  for (std::size_t i = 0; i < ne; ++i) {
    if (np == 0 || events[i].t > points[np - 1] + eps) {
      points[np] = events[i].t;
      delta[np] = 0;
      ++np;
    }
    delta[np - 1] += events[i].delta;
  }
  if (np < 2) return;

  // Prefix-sum the deltas into coverage counts — one tight loop over flat
  // int arrays — then emit the positive segments into exactly-sized output.
  const std::span<int> counts = arena.alloc<int>(np - 1);
  int run = 0;
  for (std::size_t i = 0; i + 1 < np; ++i) {
    run += delta[i];
    counts[i] = run;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i + 1 < np; ++i) {
    kept += counts[i] > 0 ? std::size_t{1} : std::size_t{0};
  }
  segments_.reserve(kept);
  for (std::size_t i = 0; i + 1 < np; ++i) {
    if (counts[i] > 0) {
      segments_.push_back({{points[i], points[i + 1]}, counts[i]});
    }
  }
}

RealTime CoverageProfile::cost() const {
  RealTime total = 0.0;
  for (const CoverageSegment& s : segments_) {
    total += s.count * s.interval.length();
  }
  return total;
}

int CoverageProfile::max() const {
  int best = 0;
  for (const CoverageSegment& s : segments_) best = std::max(best, s.count);
  return best;
}

int CoverageProfile::coverage_at(RealTime t) const {
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](RealTime v, const CoverageSegment& s) { return v < s.interval.lo; });
  if (it == segments_.begin()) return 0;
  const CoverageSegment& s = *std::prev(it);
  return s.interval.contains(t) ? s.count : 0;
}

int CoverageProfile::max_coverage_in(RealTime lo, RealTime hi) const {
  if (hi <= lo) return 0;
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), lo,
      [](RealTime v, const CoverageSegment& s) { return v < s.interval.lo; });
  int best = 0;
  if (it != segments_.begin() && std::prev(it)->interval.contains(lo)) {
    best = std::prev(it)->count;
  }
  for (; it != segments_.end() && it->interval.lo < hi; ++it) {
    best = std::max(best, it->count);
  }
  return best;
}

int max_concurrency(std::span<const Interval> ivs) {
  if (ivs.empty()) return 0;
  MonotonicArena& arena = thread_arena();
  const ArenaScope scope(arena);
  const std::span<SweepEvent> events = arena.alloc<SweepEvent>(2 * ivs.size());
  std::size_t ne = 0;
  for (const Interval& iv : ivs) {
    if (iv.empty()) continue;
    events[ne++] = {iv.lo, +1};
    events[ne++] = {iv.hi, -1};
  }
  std::sort(events.begin(), events.begin() + static_cast<std::ptrdiff_t>(ne),
            [](const SweepEvent& a, const SweepEvent& b) {
              // Closings before openings at the same coordinate: half-open
              // intervals [a,b) and [b,c) do not overlap.
              return a.t < b.t || (a.t == b.t && a.delta < b.delta);
            });
  int cur = 0;
  int best = 0;
  for (std::size_t i = 0; i < ne; ++i) {
    cur += events[i].delta;
    best = std::max(best, cur);
  }
  return best;
}

FlatOccupancyIndex::Pos FlatOccupancyIndex::locate_lower(RealTime t) const {
  const std::size_t nb = blocks_.size();
  // Frontier fast path: release-ordered drivers probe and insert at or
  // past the right edge almost every time, so one predictable compare
  // replaces the serial block-directory search.
  const std::size_t fb = (firsts_[nb - 1] < t)
                             ? nb
                             : flat_lower_bound(firsts_.data(), nb, t);
  if (fb == 0) return {0, 0};
  // First block whose first coordinate is >= t; the answer lives in the
  // block before it (or at the very front when there is none).
  const std::size_t b = fb - 1;
  const Block& blk = blocks_[b];
  if (blk.coords[blk.n - 1] < t) return {b + 1, 0};
  const std::size_t off = flat_lower_bound(blk.coords.data(), blk.n, t);
  return {b, off};
}

FlatOccupancyIndex::Pos FlatOccupancyIndex::locate_upper(RealTime t) const {
  const std::size_t nb = blocks_.size();
  const std::size_t fb = (!(t < firsts_[nb - 1]))
                             ? nb
                             : flat_upper_bound(firsts_.data(), nb, t);
  if (fb == 0) return {0, 0};
  const std::size_t b = fb - 1;
  const Block& blk = blocks_[b];
  if (!(t < blk.coords[blk.n - 1])) return {b + 1, 0};
  const std::size_t off = flat_upper_bound(blk.coords.data(), blk.n, t);
  return {b, off};
}

int FlatOccupancyIndex::pred_level(Pos p) const {
  if (p.off > 0) return blocks_[p.block].levels[p.off - 1];
  if (p.block > 0) {
    const Block& prev = blocks_[p.block - 1];
    return prev.levels[prev.n - 1];
  }
  return 0;
}

int FlatOccupancyIndex::max_coverage_in(RealTime lo, RealTime hi) const {
  if (hi <= lo || blocks_.empty()) return 0;
  const Pos i = locate_upper(lo);
  int best = pred_level(i);
  const Pos j = locate_lower(hi);
  if (i.block < j.block || (i.block == j.block && i.off < j.off)) {
    best = std::max(best, range_max(i, j));
  }
  return best;
}

RealTime FlatOccupancyIndex::covered_from(Pos p, int level, RealTime lo,
                                          RealTime hi) const {
  RealTime covered = 0.0;
  RealTime cursor = lo;
  // Walks the breakpoints in ascending order exactly as the single flat
  // array (and the frozen map) did — same values, same FP op sequence.
  const std::size_t nb = blocks_.size();
  std::size_t x = p.off;
  for (std::size_t b = p.block; b < nb; ++b) {
    const Block& blk = blocks_[b];
    for (; x < blk.n; ++x) {
      const RealTime c = blk.coords[x];
      if (c >= hi) {
        if (level > 0) covered += hi - cursor;
        return covered;
      }
      if (level > 0) covered += c - cursor;
      cursor = c;
      level = blk.levels[x];
    }
    x = 0;
  }
  if (level > 0) covered += hi - cursor;
  return covered;
}

RealTime FlatOccupancyIndex::covered_measure_in(RealTime lo,
                                                RealTime hi) const {
  if (hi <= lo || blocks_.empty()) return 0.0;
  const Pos p = locate_upper(lo);
  return covered_from(p, pred_level(p), lo, hi);
}

int FlatOccupancyIndex::probe(RealTime lo, RealTime hi,
                              RealTime* covered) const {
  if (hi <= lo || blocks_.empty()) {
    if (covered != nullptr) *covered = 0.0;
    return 0;
  }
  const Pos i = locate_upper(lo);
  const int pred = pred_level(i);
  int best = pred;
  const Pos j = locate_lower(hi);
  if (i.block < j.block || (i.block == j.block && i.off < j.off)) {
    best = std::max(best, range_max(i, j));
  }
  if (covered != nullptr) *covered = covered_from(i, pred, lo, hi);
  return best;
}

void FlatOccupancyIndex::split_block(std::size_t b) {
  constexpr std::size_t kHalf = kBlockCap / 2;
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(b) + 1,
                 Block{});
  Block& lo = blocks_[b];
  Block& hi = blocks_[b + 1];
  std::copy(lo.coords.begin() + kHalf, lo.coords.end(), hi.coords.begin());
  std::copy(lo.levels.begin() + kHalf, lo.levels.end(), hi.levels.begin());
  lo.n = kHalf;
  hi.n = kBlockCap - kHalf;
  lo.max_level = *std::max_element(lo.levels.begin(),
                                   lo.levels.begin() + static_cast<std::ptrdiff_t>(lo.n));
  hi.max_level = *std::max_element(hi.levels.begin(),
                                   hi.levels.begin() + static_cast<std::ptrdiff_t>(hi.n));
  firsts_.insert(firsts_.begin() + static_cast<std::ptrdiff_t>(b) + 1,
                 hi.coords[0]);
  on_blocks_changed(b);
}

FlatOccupancyIndex::Pos FlatOccupancyIndex::split(RealTime t, bool* created) {
  if (blocks_.empty()) {
    blocks_.emplace_back();
    Block& blk = blocks_.back();
    blk.coords[0] = t;
    blk.levels[0] = 0;
    blk.n = 1;
    blk.max_level = 0;
    firsts_.push_back(t);
    on_blocks_changed(0);
    *created = true;
    return {0, 0};
  }
  const Pos p = locate_lower(t);
  if (p.block < blocks_.size() && blocks_[p.block].coords[p.off] == t) {
    *created = false;
    return p;
  }
  const int level = pred_level(p);
  std::size_t b = p.block;
  std::size_t off = p.off;
  if (b == blocks_.size()) {  // global append: extend the last block
    b = blocks_.size() - 1;
    off = blocks_[b].n;
  }
  if (blocks_[b].n == kBlockCap) {
    split_block(b);
    constexpr std::size_t kHalf = kBlockCap / 2;
    if (off > kHalf) {
      ++b;
      off -= kHalf;
    }
  }
  Block& blk = blocks_[b];
  std::copy_backward(
      blk.coords.begin() + static_cast<std::ptrdiff_t>(off),
      blk.coords.begin() + static_cast<std::ptrdiff_t>(blk.n),
      blk.coords.begin() + static_cast<std::ptrdiff_t>(blk.n) + 1);
  std::copy_backward(
      blk.levels.begin() + static_cast<std::ptrdiff_t>(off),
      blk.levels.begin() + static_cast<std::ptrdiff_t>(blk.n),
      blk.levels.begin() + static_cast<std::ptrdiff_t>(blk.n) + 1);
  blk.coords[off] = t;
  blk.levels[off] = level;
  ++blk.n;
  if (off == 0) firsts_[b] = t;
  if (level > blk.max_level) {
    // The incumbent level came from the previous block and exceeds this
    // block's own maximum (all of whose steps it now precedes).
    blk.max_level = level;
    patch_tree(b, b + 1);
  }
  *created = true;
  return {b, off};
}

void FlatOccupancyIndex::increment_range(Pos a, Pos b) {
  const std::size_t nb = blocks_.size();
  for (std::size_t bi = a.block; bi < nb && bi <= b.block; ++bi) {
    Block& blk = blocks_[bi];
    const std::size_t x0 = (bi == a.block) ? a.off : 0;
    const std::size_t x1 = (bi == b.block) ? b.off : blk.n;
    for (std::size_t x = x0; x < x1; ++x) {
      ++blk.levels[x];
      if (blk.levels[x] > blk.max_level) blk.max_level = blk.levels[x];
    }
  }
  patch_tree(a.block, std::min(nb, b.block + 1));
}

void FlatOccupancyIndex::on_blocks_changed(std::size_t from_block) {
  const std::size_t nb = blocks_.size();
  if (nb > cap_) {
    std::size_t cap = cap_ == 0 ? 1 : cap_;
    while (cap < nb) cap *= 2;
    cap_ = cap;
    tree_.assign(2 * cap_, 0);
    patch_tree(0, nb);
  } else {
    patch_tree(from_block, nb);
  }
}

void FlatOccupancyIndex::patch_tree(std::size_t first, std::size_t last) {
  if (first >= last) return;
  std::size_t a = cap_ + first;
  std::size_t b = cap_ + last - 1;  // inclusive node range per level
  for (std::size_t i = a; i <= b; ++i) tree_[i] = blocks_[i - cap_].max_level;
  while (a > 1) {
    a >>= 1;
    b >>= 1;
    for (std::size_t i = a; i <= b; ++i) {
      tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
    }
  }
}

int FlatOccupancyIndex::range_max(Pos i, Pos j) const {
  if (i.block == j.block) {
    const Block& blk = blocks_[i.block];
    int best = 0;
    for (std::size_t x = i.off; x < j.off; ++x) {
      best = std::max(best, blk.levels[x]);
    }
    return best;
  }
  const Block& head = blocks_[i.block];
  int best = 0;
  for (std::size_t x = i.off; x < head.n; ++x) {
    best = std::max(best, head.levels[x]);
  }
  if (j.block < blocks_.size() && j.off > 0) {
    const Block& tail = blocks_[j.block];
    for (std::size_t x = 0; x < j.off; ++x) {
      best = std::max(best, tail.levels[x]);
    }
  }
  return std::max(best, tree_range_max(i.block + 1, j.block));
}

int FlatOccupancyIndex::tree_range_max(std::size_t first,
                                       std::size_t last) const {
  // Bottom-up decomposition: only nodes whose whole subtree lies inside
  // [first, last) are aggregated, so leaves past blocks_.size() — stale
  // after a clear() — are never read.
  int best = 0;
  std::size_t a = cap_ + first;
  std::size_t b = cap_ + last;
  while (a < b) {
    if ((a & 1) != 0) best = std::max(best, tree_[a++]);
    if ((b & 1) != 0) best = std::max(best, tree_[--b]);
    a >>= 1;
    b >>= 1;
  }
  return best;
}

void FlatOccupancyIndex::insert(const Interval& iv) {
  if (iv.empty()) return;
  // Split a breakpoint at each endpoint (carrying the incumbent level),
  // then raise every step inside [lo, hi) by one — the same splice the
  // map predecessor performed, now as bounded in-block moves. The hi
  // split sits strictly after lo, so it can only move lo's position by
  // splitting a block — re-locate only in that (1-in-kBlockCap/2) case.
  bool created_lo = false;
  bool created_hi = false;
  Pos lo = split(iv.lo, &created_lo);
  const std::size_t blocks_before = blocks_.size();
  const Pos hi = split(iv.hi, &created_hi);
  if (blocks_.size() != blocks_before) lo = locate_lower(iv.lo);
  increment_range(lo, hi);
  ++count_;
  if constexpr (kAuditEnabled) audit_invariants();
}

void FlatOccupancyIndex::audit_invariants() const {
  if constexpr (!kAuditEnabled) return;
  ABT_DBG_ASSERT(blocks_.size() == firsts_.size(),
                 "block directory out of sync with block storage");
  ABT_DBG_ASSERT(count_ >= 0, "negative insert count");
  RealTime prev = -std::numeric_limits<RealTime>::infinity();
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const Block& blk = blocks_[b];
    ABT_DBG_ASSERT(blk.n >= 1 && blk.n <= kBlockCap,
                   "block occupancy outside [1, kBlockCap]");
    ABT_DBG_ASSERT(firsts_[b] == blk.coords[0],
                   "firsts_ does not mirror its block's first coordinate");
    int max_seen = 0;
    for (std::size_t x = 0; x < blk.n; ++x) {
      ABT_DBG_ASSERT(blk.coords[x] > prev,
                     "breakpoint coordinates not strictly ascending");
      prev = blk.coords[x];
      ABT_DBG_ASSERT(blk.levels[x] >= 0, "negative coverage level");
      max_seen = std::max(max_seen, blk.levels[x]);
    }
    ABT_DBG_ASSERT(blk.max_level == max_seen,
                   "block maximum inconsistent with its entries");
  }
  // Implicit max-tree: every live leaf mirrors its block's maximum, and
  // every internal node whose subtree is entirely live aggregates its
  // children (stale leaves past blocks_.size() are never read by queries,
  // so they carry no invariant).
  if (!blocks_.empty()) {
    ABT_DBG_ASSERT(cap_ >= blocks_.size() && tree_.size() == 2 * cap_,
                   "max-tree smaller than the live block range");
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      ABT_DBG_ASSERT(tree_[cap_ + b] == blocks_[b].max_level,
                     "max-tree leaf does not mirror its block maximum");
    }
    for (std::size_t i = 1; i < cap_; ++i) {
      // Subtree of node i covers leaves [lo, hi): fully live <=> hi <= nb.
      std::size_t span = 1;
      std::size_t node = i;
      while (node < cap_) {
        node *= 2;
        span *= 2;
      }
      const std::size_t leaf_lo = node - cap_;
      if (leaf_lo + span <= blocks_.size()) {
        ABT_DBG_ASSERT(tree_[i] == std::max(tree_[2 * i], tree_[2 * i + 1]),
                       "max-tree internal node out of date");
      }
    }
  }
}

double FlatIntervalSet::measure_in(const Interval& window) const {
  double total = 0.0;
  const std::size_t n = set_.size();
  for (std::size_t i = first_overlapping(window);
       i < n && set_[i].lo < window.hi; ++i) {
    const double lo = std::max(set_[i].lo, window.lo);
    const double hi = std::min(set_[i].hi, window.hi);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

std::vector<Interval> FlatIntervalSet::covered_in(const Interval& window,
                                                  double sliver_eps) const {
  std::vector<Interval> out;
  const std::size_t n = set_.size();
  for (std::size_t i = first_overlapping(window);
       i < n && set_[i].lo < window.hi; ++i) {
    const double lo = std::max(set_[i].lo, window.lo);
    const double hi = std::min(set_[i].hi, window.hi);
    if (hi > lo + sliver_eps) out.push_back({lo, hi});
  }
  return out;
}

std::vector<Interval> FlatIntervalSet::free_in(const Interval& window,
                                               double sliver_eps) const {
  std::vector<Interval> out;
  double cursor = window.lo;
  const std::size_t n = set_.size();
  for (std::size_t i = first_overlapping(window);
       i < n && set_[i].lo < window.hi; ++i) {
    if (set_[i].lo > cursor) {
      out.push_back({cursor, std::min(set_[i].lo, window.hi)});
    }
    cursor = std::max(cursor, set_[i].hi);
    if (cursor >= window.hi) break;
  }
  if (cursor < window.hi) out.push_back({cursor, window.hi});
  std::erase_if(out, [sliver_eps](const Interval& iv) {
    return iv.length() <= sliver_eps;
  });
  return out;
}

void FlatIntervalSet::insert(Interval iv) {
  // First stored lo > iv.lo, mirroring the map's upper_bound on the lo key.
  const Interval* base = set_.data();
  std::size_t idx = 0;
  {
    std::size_t len = set_.size();
    while (len > 0) {
      const std::size_t half = len / 2;
      const bool right = !(iv.lo < base[idx + half].lo);
      idx = right ? idx + half + 1 : idx;
      len = right ? len - half - 1 : half;
    }
  }
  std::size_t erase_begin = idx;
  std::size_t erase_end = idx;
  if (idx > 0 && iv.lo <= set_[idx - 1].hi + kMergeEps) {
    iv.lo = set_[idx - 1].lo;
    iv.hi = std::max(iv.hi, set_[idx - 1].hi);
    --erase_begin;
  }
  while (erase_end < set_.size() && set_[erase_end].lo <= iv.hi + kMergeEps) {
    iv.hi = std::max(iv.hi, set_[erase_end].hi);
    ++erase_end;
  }
  if (erase_begin < erase_end) {
    set_[erase_begin] = iv;
    set_.erase(set_.begin() + static_cast<std::ptrdiff_t>(erase_begin) + 1,
               set_.begin() + static_cast<std::ptrdiff_t>(erase_end));
  } else {
    set_.insert(set_.begin() + static_cast<std::ptrdiff_t>(erase_begin), iv);
  }
  if constexpr (kAuditEnabled) audit_invariants();
}

void FlatIntervalSet::audit_invariants() const {
  if constexpr (!kAuditEnabled) return;
  for (std::size_t i = 0; i < set_.size(); ++i) {
    ABT_DBG_ASSERT(set_[i].hi > set_[i].lo, "empty stored interval");
    if (i > 0) {
      ABT_DBG_ASSERT(set_[i].lo > set_[i - 1].hi + kMergeEps,
                     "adjacent intervals within merge tolerance (should "
                     "have coalesced on insert)");
    }
  }
}

std::size_t FlatIntervalSet::first_overlapping(const Interval& w) const {
  const Interval* base = set_.data();
  std::size_t idx = 0;
  std::size_t len = set_.size();
  while (len > 0) {
    const std::size_t half = len / 2;
    const bool right = !(w.lo < base[idx + half].lo);
    idx = right ? idx + half + 1 : idx;
    len = right ? len - half - 1 : half;
  }
  if (idx > 0 && set_[idx - 1].hi > w.lo) return idx - 1;
  return idx;
}

namespace {
constexpr RealTime kNoMachine = std::numeric_limits<RealTime>::infinity();
}  // namespace

void MachineFreeIndex::rebuild(std::size_t capacity) {
  cap_ = capacity;
  tree_.assign(2 * cap_, kNoMachine);
  for (std::size_t i = 0; i < keys_.size(); ++i) tree_[cap_ + i] = keys_[i];
  for (std::size_t i = cap_ - 1; i >= 1; --i) {
    tree_[i] = std::min(tree_[2 * i], tree_[2 * i + 1]);
  }
}

void MachineFreeIndex::reserve(std::size_t machines) {
  std::size_t cap = cap_ == 0 ? 1 : cap_;
  while (cap < machines) cap *= 2;
  if (cap <= cap_) return;
  // Reserve one doubling ahead so the next growth's assign() reuses the
  // allocation instead of reallocating and re-copying the whole tree.
  keys_.reserve(2 * cap);
  tree_.reserve(4 * cap);
  rebuild(cap);
}

int MachineFreeIndex::push_back(RealTime key) {
  keys_.push_back(key);
  if (keys_.size() > cap_) {
    reserve(keys_.size());  // geometric: rounds up to the next power of two
  } else {
    set(static_cast<int>(keys_.size()) - 1, key);
  }
  return static_cast<int>(keys_.size()) - 1;
}

void MachineFreeIndex::set(int i, RealTime key) {
  keys_[static_cast<std::size_t>(i)] = key;
  std::size_t node = cap_ + static_cast<std::size_t>(i);
  tree_[node] = key;
  for (node /= 2; node >= 1; node /= 2) {
    tree_[node] = std::min(tree_[2 * node], tree_[2 * node + 1]);
  }
}

int MachineFreeIndex::first_at_most(RealTime x) const {
  if (cap_ == 0 || tree_[1] > x) return -1;
  std::size_t node = 1;
  while (node < cap_) {
    node = (tree_[2 * node] <= x) ? 2 * node : 2 * node + 1;
  }
  const int index = static_cast<int>(node - cap_);
  return index < size() ? index : -1;
}

}  // namespace abt::core
