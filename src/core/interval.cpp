#include "core/interval.hpp"

#include <algorithm>
#include <cmath>

namespace abt::core {

std::vector<Interval> interval_union(std::vector<Interval> ivs, RealTime eps) {
  std::erase_if(ivs, [](const Interval& iv) { return iv.empty(); });
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
  });
  std::vector<Interval> out;
  for (const Interval& iv : ivs) {
    if (!out.empty() && iv.lo <= out.back().hi + eps) {
      out.back().hi = std::max(out.back().hi, iv.hi);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

RealTime span_of(std::span<const Interval> ivs) {
  std::vector<Interval> copy(ivs.begin(), ivs.end());
  RealTime total = 0.0;
  for (const Interval& iv : interval_union(std::move(copy))) {
    total += iv.length();
  }
  return total;
}

RealTime mass_of(std::span<const Interval> ivs) {
  RealTime total = 0.0;
  for (const Interval& iv : ivs) {
    if (!iv.empty()) total += iv.length();
  }
  return total;
}

std::vector<RealTime> event_points(std::span<const Interval> ivs,
                                   RealTime eps) {
  std::vector<RealTime> pts;
  pts.reserve(ivs.size() * 2);
  for (const Interval& iv : ivs) {
    if (iv.empty()) continue;
    pts.push_back(iv.lo);
    pts.push_back(iv.hi);
  }
  std::sort(pts.begin(), pts.end());
  std::vector<RealTime> out;
  for (RealTime p : pts) {
    if (out.empty() || p > out.back() + eps) out.push_back(p);
  }
  return out;
}

int coverage_at(std::span<const Interval> ivs, RealTime lo, RealTime hi) {
  const RealTime mid = lo + (hi - lo) / 2;
  int count = 0;
  for (const Interval& iv : ivs) {
    if (iv.contains(mid)) ++count;
  }
  return count;
}

}  // namespace abt::core
