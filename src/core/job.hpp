#pragma once

#include <cstdint>

namespace abt::core {

/// Integer time used by the slotted (active-time) model. Slot t denotes the
/// unit interval [t-1, t); a job with window (r, d] may occupy slots
/// r+1, ..., d (paper section 1.1).
using SlotTime = std::int64_t;

/// Continuous time used by the busy-time model.
using RealTime = double;

/// Index of a job inside an instance.
using JobId = std::int32_t;

/// A job in the slotted active-time model: p units of work, each unit one
/// slot, preemption at integer boundaries, window slots {release+1, ...,
/// deadline}.
struct SlottedJob {
  SlotTime release = 0;   ///< Earliest time the job may start (slot release+1).
  SlotTime deadline = 0;  ///< Last slot the job may occupy.
  SlotTime length = 0;    ///< Units of work p_j >= 1.

  /// Number of slots in the window.
  [[nodiscard]] SlotTime window_size() const { return deadline - release; }
  /// True when the job admits at least one feasible assignment in isolation.
  [[nodiscard]] bool window_fits() const { return window_size() >= length; }
  /// True when the job may be scheduled in slot t.
  [[nodiscard]] bool live_in_slot(SlotTime t) const {
    return t > release && t <= deadline;
  }
  /// A rigid job has no slack: it must occupy every slot of its window.
  [[nodiscard]] bool rigid() const { return window_size() == length; }

  friend bool operator==(const SlottedJob&, const SlottedJob&) = default;
};

/// A job in the continuous busy-time model: must run non-preemptively for
/// `length` time inside [release, deadline).
struct ContinuousJob {
  RealTime release = 0.0;
  RealTime deadline = 0.0;
  RealTime length = 0.0;

  [[nodiscard]] RealTime window_size() const { return deadline - release; }
  /// True when the window can hold the job. Tolerant to the rounding of
  /// (release + length) - release, which matters for generated interval
  /// jobs whose window is exactly their length.
  [[nodiscard]] bool window_fits(RealTime eps = 1e-9) const {
    return window_size() >= length - eps && length > 0.0;
  }
  /// Latest feasible start time.
  [[nodiscard]] RealTime latest_start() const { return deadline - length; }
  /// Interval jobs have no slack: the start time is forced to `release`.
  [[nodiscard]] bool is_interval_job(RealTime eps = 1e-9) const {
    return window_size() <= length + eps;
  }

  friend bool operator==(const ContinuousJob&, const ContinuousJob&) = default;
};

}  // namespace abt::core
