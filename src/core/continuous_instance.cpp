#include "core/continuous_instance.hpp"

#include "core/assert.hpp"

namespace abt::core {

ContinuousInstance::ContinuousInstance(std::vector<ContinuousJob> jobs,
                                       int capacity)
    : jobs_(std::move(jobs)), capacity_(capacity) {
  ABT_ASSERT(capacity_ >= 1, "machine capacity g must be at least 1");
  for (const ContinuousJob& j : jobs_) total_mass_ += j.length;
}

bool ContinuousInstance::structurally_valid(std::string* why) const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const ContinuousJob& j = jobs_[i];
    auto fail = [&](const char* reason) {
      if (why != nullptr) *why = "job " + std::to_string(i) + ": " + reason;
      return false;
    };
    if (!(j.length > 0.0)) return fail("length must be positive");
    if (!j.window_fits()) return fail("window shorter than length");
  }
  return true;
}

bool ContinuousInstance::all_interval_jobs(RealTime eps) const {
  for (const ContinuousJob& j : jobs_) {
    if (!j.is_interval_job(eps)) return false;
  }
  return true;
}

std::vector<Interval> ContinuousInstance::windows() const {
  std::vector<Interval> out;
  out.reserve(jobs_.size());
  for (const ContinuousJob& j : jobs_) out.push_back({j.release, j.deadline});
  return out;
}

std::vector<Interval> ContinuousInstance::forced_intervals() const {
  std::vector<Interval> out;
  out.reserve(jobs_.size());
  for (const ContinuousJob& j : jobs_) {
    out.push_back({j.release, j.release + j.length});
  }
  return out;
}

}  // namespace abt::core
