#pragma once

#include <cstdint>
#include <random>

namespace abt::core {

/// Deterministic random source used by generators and tests. A thin wrapper
/// over mt19937_64 so every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool flip(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace abt::core
