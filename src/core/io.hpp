#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/continuous_instance.hpp"
#include "core/slotted_instance.hpp"
#include "core/solver.hpp"

namespace abt::core {

/// Instance I/O v2: plain-text instance format, one directive per line
/// ('#' comments). Every instance starts with a `model` directive and a
/// `capacity` directive; the per-job lines depend on the model:
///
///     model slotted            # integer active-time jobs
///     capacity 3
///     job 0 5 2                # release deadline length
///
///     model continuous         # real busy-time jobs
///     capacity 2
///     job 0.5 3.25 1.75        # release deadline length (reals)
///
///     model weighted           # cumulative-width busy time
///     capacity 4
///     job 0 2.5 2.5            # release deadline length (reals)
///     weight 3                 # width of the preceding job (default 1)
///
///     model multi-window       # window-union active time
///     capacity 2
///     job 3                    # length only
///     window 0 4               # release deadline; one line per window
///     window 6 9
///
/// The two standard models are built in; the extended models are plugged
/// in through the ExtensionCodec registry below (engine/adapters registers
/// `weighted` and `multi-window`), so core stays ignorant of their
/// concrete types while `parse_instance` / `write_instance` remain a
/// lossless inverse pair for every registered kind.

/// Parses an instance into the uniform carrier the registry trades in:
/// standard models fill the matching member, extended models carry an
/// InstanceExtension built by their registered codec. On failure returns
/// nullopt and explains in `error` (with a line number).
[[nodiscard]] std::optional<ProblemInstance> parse_instance(
    std::istream& in, std::string* error = nullptr);

/// Serializers (lossless inverses of parse_instance).
void write_instance(std::ostream& out, const SlottedInstance& inst);
void write_instance(std::ostream& out, const ContinuousInstance& inst);

/// Uniform writer for any ProblemInstance. Returns false (explaining in
/// `why`) when the instance carries an extension that does not implement
/// the serialization hooks — callers must surface that as an error, never
/// fall back to emitting a lossy standard-model view.
[[nodiscard]] bool write_instance(std::ostream& out,
                                  const ProblemInstance& inst,
                                  std::string* why = nullptr);

/// Per-model parser plugged into parse_instance for one extended model.
/// The shared loop owns line reading, comments, line numbers and the
/// `model`/`capacity` directives; everything else inside an extended-model
/// file is forwarded here keyword by keyword.
class ExtensionParser {
 public:
  virtual ~ExtensionParser() = default;

  /// Consumes one directive (`args` positioned after the keyword). Errors
  /// are reported through `why` WITHOUT a line prefix; the caller adds it.
  virtual bool directive(const std::string& keyword, std::istream& args,
                         std::string* why) = 0;

  /// Validates the accumulated jobs and produces the finished instance
  /// (family, kind and extension all set).
  virtual bool finish(int capacity, ProblemInstance* out,
                      std::string* why) = 0;
};

/// Codec for one extended model name: a fresh parser per file.
using ExtensionParserFactory = std::function<std::unique_ptr<ExtensionParser>()>;

/// Registers an extended model under its `model` directive token.
/// Registering the same name twice replaces the codec (idempotent
/// re-registration is fine). Not thread-safe: register during startup,
/// before any concurrent parsing.
void register_instance_model(const std::string& model_name,
                             ExtensionParserFactory factory);

/// Registered extended model names, registration order (for diagnostics).
[[nodiscard]] std::vector<std::string> registered_instance_models();

}  // namespace abt::core
