#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/continuous_instance.hpp"
#include "core/slotted_instance.hpp"

namespace abt::core {

/// Plain-text instance format, one directive per line ('#' comments):
///
///     model slotted            # or: continuous
///     capacity 3
///     job 0 5 2                # release deadline length
///     job 1 4 1
///
/// Slotted instances use integers; continuous instances accept reals.
enum class ModelKind { kSlotted, kContinuous };

/// Result of parsing: exactly one instance is set, per `kind`.
struct ParsedInstance {
  ModelKind kind = ModelKind::kSlotted;
  SlottedInstance slotted;
  ContinuousInstance continuous;
};

/// Parses an instance; on failure returns nullopt and explains in `error`
/// (with a line number).
[[nodiscard]] std::optional<ParsedInstance> parse_instance(
    std::istream& in, std::string* error = nullptr);

/// Serializers (inverse of parse_instance).
void write_instance(std::ostream& out, const SlottedInstance& inst);
void write_instance(std::ostream& out, const ContinuousInstance& inst);

}  // namespace abt::core
