#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/interval.hpp"

namespace abt::core {

/// One maximal piece of a coverage step function: exactly `count` of the
/// input intervals cover every point of `interval`.
struct CoverageSegment {
  Interval interval;
  int count = 0;

  friend bool operator==(const CoverageSegment&, const CoverageSegment&) =
      default;
};

/// Coordinate-compressed coverage step function of a set of intervals, built
/// in one O(n log n) sweep. Segment boundaries are the event points of the
/// input (endpoints merged within `eps`, exactly as `event_points`), so a
/// segment is one of the paper's "interesting intervals" (Definition 12) and
/// its `count` is the raw demand |A(t)| (Definition 11). Segments with zero
/// coverage are not stored; adjacent equal-count segments are kept separate
/// so that each segment spans exactly one interesting interval.
class CoverageProfile {
 public:
  CoverageProfile() = default;
  explicit CoverageProfile(std::span<const Interval> ivs, RealTime eps = 1e-12);

  [[nodiscard]] const std::vector<CoverageSegment>& segments() const {
    return segments_;
  }

  /// Integral of the step function = total mass of the input intervals.
  [[nodiscard]] RealTime cost() const;

  /// Height of the step function = max concurrency of the input.
  [[nodiscard]] int max() const;

  /// Coverage at point t (0 outside every stored segment). O(log n).
  [[nodiscard]] int coverage_at(RealTime t) const;

  /// Max coverage over [lo, hi). O(log n + segments intersected).
  [[nodiscard]] int max_coverage_in(RealTime lo, RealTime hi) const;

 private:
  std::vector<CoverageSegment> segments_;  ///< Sorted, disjoint, count > 0.
};

/// Max number of intervals simultaneously overlapping (intervals are
/// half-open, so [a,b) and [b,c) never overlap). One O(n log n) sweep with
/// no profile materialization — the lean form of CoverageProfile::max().
[[nodiscard]] int max_concurrency(std::span<const Interval> ivs);

/// Incremental occupancy structure for one machine: a sorted endpoint map
/// from coordinate to coverage level on [coordinate, next coordinate).
/// `insert` and `max_coverage_in` cost O(log k) to locate the boundary plus
/// one step per breakpoint spanned by the query interval — O(log k) whenever
/// interval lengths are bounded relative to the machine's span, which turns
/// first-fit's per-candidate probe from O(k^2) into a logarithmic lookup.
class OccupancyIndex {
 public:
  /// Max coverage over [lo, hi); 0 for empty ranges or an empty index.
  [[nodiscard]] int max_coverage_in(RealTime lo, RealTime hi) const;

  /// Measure of {t in [lo, hi) : coverage(t) > 0} — how much of the query
  /// interval is already busy. Same cost shape as max_coverage_in; it is
  /// the O(log k) replacement for the "copy all intervals and re-span"
  /// growth probe of the online best-fit policy.
  [[nodiscard]] RealTime covered_measure_in(RealTime lo, RealTime hi) const;

  /// Adds one covering interval (no-op when empty).
  void insert(const Interval& iv);

  /// Number of intervals inserted so far.
  [[nodiscard]] int size() const { return count_; }

 private:
  std::map<RealTime, int> steps_;  ///< coordinate -> level on [key, next).
  int count_ = 0;
};

/// Positional first-fit index over a dynamic sequence of machines, each
/// summarized by one scalar key (its earliest-free time, or its coverage at
/// the current sweep frontier). A min-segment tree answers
/// `first_at_most(x)` — the smallest machine index whose key is <= x — in
/// O(log m), which lets first-fit drivers jump straight past hopeless
/// machines instead of scanning them linearly per job.
class MachineFreeIndex {
 public:
  /// Appends a machine with the given key; returns its index.
  int push_back(RealTime key);

  /// Updates machine i's key.
  void set(int i, RealTime key);

  [[nodiscard]] RealTime key(int i) const {
    return keys_[static_cast<std::size_t>(i)];
  }

  /// Smallest index with key <= x, or -1 when every key exceeds x.
  [[nodiscard]] int first_at_most(RealTime x) const;

  [[nodiscard]] int size() const { return static_cast<int>(keys_.size()); }

 private:
  void rebuild(std::size_t capacity);

  std::vector<RealTime> keys_;
  std::vector<RealTime> tree_;  ///< 1-based min-tree over `cap_` leaves.
  std::size_t cap_ = 0;         ///< Power-of-two leaf count.
};

}  // namespace abt::core
