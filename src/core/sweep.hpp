#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/interval.hpp"

namespace abt::core {

/// Lower bound over a sorted flat array: index of the first element >= x.
/// The halving loop carries no data-dependent branches (both updates are
/// conditional moves), so probes into the flat sweep structures never pay
/// a mispredict on random query positions.
[[nodiscard]] inline std::size_t flat_lower_bound(const RealTime* data,
                                                  std::size_t n, RealTime x) {
  std::size_t lo = 0;
  while (n > 0) {
    const std::size_t half = n / 2;
    const bool right = data[lo + half] < x;
    lo = right ? lo + half + 1 : lo;
    n = right ? n - half - 1 : half;
  }
  return lo;
}

/// Upper bound over a sorted flat array: index of the first element > x.
[[nodiscard]] inline std::size_t flat_upper_bound(const RealTime* data,
                                                  std::size_t n, RealTime x) {
  std::size_t lo = 0;
  while (n > 0) {
    const std::size_t half = n / 2;
    const bool right = !(x < data[lo + half]);
    lo = right ? lo + half + 1 : lo;
    n = right ? n - half - 1 : half;
  }
  return lo;
}

/// One maximal piece of a coverage step function: exactly `count` of the
/// input intervals cover every point of `interval`.
struct CoverageSegment {
  Interval interval;
  int count = 0;

  friend bool operator==(const CoverageSegment&, const CoverageSegment&) =
      default;
};

/// Coordinate-compressed coverage step function of a set of intervals, built
/// in one O(n log n) sweep. Segment boundaries are the event points of the
/// input (endpoints merged within `eps`, exactly as `event_points`), so a
/// segment is one of the paper's "interesting intervals" (Definition 12) and
/// its `count` is the raw demand |A(t)| (Definition 11). Segments with zero
/// coverage are not stored; adjacent equal-count segments are kept separate
/// so that each segment spans exactly one interesting interval.
///
/// Construction works on flat arena-backed event arrays: one sort of
/// (coordinate, +-1) events, a linear cluster-and-accumulate pass that
/// folds event_points' eps merging and the endpoint snapping into the same
/// sweep, then a tight prefix-sum loop over flat int arrays. No per-element
/// binary searches, no per-call heap allocation beyond the output.
class CoverageProfile {
 public:
  CoverageProfile() = default;
  explicit CoverageProfile(std::span<const Interval> ivs, RealTime eps = 1e-12);

  [[nodiscard]] const std::vector<CoverageSegment>& segments() const {
    return segments_;
  }

  /// Integral of the step function = total mass of the input intervals.
  [[nodiscard]] RealTime cost() const;

  /// Height of the step function = max concurrency of the input.
  [[nodiscard]] int max() const;

  /// Coverage at point t (0 outside every stored segment). O(log n).
  [[nodiscard]] int coverage_at(RealTime t) const;

  /// Max coverage over [lo, hi). O(log n + segments intersected).
  [[nodiscard]] int max_coverage_in(RealTime lo, RealTime hi) const;

 private:
  std::vector<CoverageSegment> segments_;  ///< Sorted, disjoint, count > 0.
};

/// Max number of intervals simultaneously overlapping (intervals are
/// half-open, so [a,b) and [b,c) never overlap). One O(n log n) sweep with
/// no profile materialization — the lean form of CoverageProfile::max().
[[nodiscard]] int max_concurrency(std::span<const Interval> ivs);

/// Incremental occupancy structure for one machine on blocked flat storage:
/// the sorted breakpoint sequence (coordinate, coverage level on
/// [coordinate, next coordinate)) lives in fixed-capacity blocks of
/// kBlockCap parallel (coords, levels) arrays, each block carrying its own
/// level maximum, with an implicit binary max-tree over the block maxima.
/// `max_coverage_in` is two branch-free probes (block directory + in-block)
/// plus at most two partial-block scans and one tree range-max — worst-case
/// O(log k) for constant block size, which retires the "steps spanned" term
/// the endpoint-map predecessor paid (frozen as naive::MapOccupancyIndex).
/// `insert` shifts within one block (a bounded memmove) instead of the
/// whole array, so it costs O(kBlockCap + span + log k) amortized rather
/// than the O(k) a single flat vector pays — the difference dominates once
/// a machine accumulates thousands of breakpoints.
class FlatOccupancyIndex {
 public:
  /// Max coverage over [lo, hi); 0 for empty ranges or an empty index.
  /// Worst-case O(log k) (block size is a compile-time constant).
  [[nodiscard]] int max_coverage_in(RealTime lo, RealTime hi) const;

  /// Measure of {t in [lo, hi) : coverage(t) > 0} — how much of the query
  /// interval is already busy. O(log k + breakpoints spanned); the
  /// accumulation order matches the frozen map baseline bit for bit.
  [[nodiscard]] RealTime covered_measure_in(RealTime lo, RealTime hi) const;

  /// Fused probe: returns max_coverage_in(lo, hi) and, when `covered` is
  /// non-null, writes covered_measure_in(lo, hi) — identical values (the
  /// covered walk runs the same FP op sequence), one shared locate pass.
  /// Best-fit drivers ask both questions about every candidate machine.
  int probe(RealTime lo, RealTime hi, RealTime* covered) const;

  /// Adds one covering interval (no-op when empty).
  void insert(const Interval& iv);

  /// Number of intervals inserted so far.
  [[nodiscard]] int size() const { return count_; }

  /// Logical reset that keeps every capacity — the machine-pool reuse hook
  /// for per-worker scratch (first-fit / online drivers).
  void clear() {
    blocks_.clear();
    firsts_.clear();
    count_ = 0;
  }

  /// Full structural self-check: block occupancy bounds, strictly
  /// ascending coordinates (within and across blocks), firsts_ mirror,
  /// per-block maxima consistent with their entries, implicit max-tree
  /// valid over every live leaf, non-negative levels. Trips ABT_DBG_ASSERT
  /// on violation; compiled to a no-op unless ABT_AUDIT is on, so the
  /// state-mutation seams call it unconditionally.
  void audit_invariants() const;

#if defined(ABT_AUDIT) && ABT_AUDIT
  /// Test-only corruption hook (audit builds): deliberately breaks one
  /// block maximum so the audit suite can prove audit_invariants()
  /// actually trips instead of passing vacuously.
  void corrupt_block_max_for_test(std::size_t block, int value) {
    blocks_[block].max_level = value;
  }
#endif

  /// The (coordinate, level) steps, ascending. Equivalence-suite hook.
  [[nodiscard]] std::vector<std::pair<RealTime, int>> steps() const {
    std::vector<std::pair<RealTime, int>> out;
    for (const Block& blk : blocks_) {
      for (std::size_t i = 0; i < blk.n; ++i) {
        out.emplace_back(blk.coords[i], blk.levels[i]);
      }
    }
    return out;
  }

 private:
  /// Entries per block. Inserts memmove at most this many entries; probes
  /// scan at most two partial blocks. Constant, so O(kBlockCap) = O(1).
  static constexpr std::size_t kBlockCap = 64;

  struct Block {
    std::array<RealTime, kBlockCap> coords;  ///< Ascending breakpoints.
    std::array<int, kBlockCap> levels;  ///< Level on [coords[i], next).
    std::size_t n = 0;                  ///< Live entries in [0, kBlockCap].
    int max_level = 0;                  ///< max(levels[0..n)).
  };

  /// Position of one breakpoint: (block index, offset within block). The
  /// one-past-the-end position is canonically (blocks_.size(), 0).
  struct Pos {
    std::size_t block;
    std::size_t off;
  };

  /// First position with coordinate >= t (canonical form). O(log k).
  [[nodiscard]] Pos locate_lower(RealTime t) const;

  /// First position with coordinate > t (canonical form). O(log k).
  [[nodiscard]] Pos locate_upper(RealTime t) const;

  /// Level of the breakpoint immediately before p, or 0 when p is first.
  [[nodiscard]] int pred_level(Pos p) const;

  /// Covered-measure walk from position p (incumbent level `level`) up to
  /// hi, accumulating from cursor lo — the shared tail of
  /// covered_measure_in and probe.
  [[nodiscard]] RealTime covered_from(Pos p, int level, RealTime lo,
                                      RealTime hi) const;

  /// Ensures a breakpoint at t (carrying the incumbent level); returns its
  /// position and reports whether a new breakpoint was created. May split
  /// a full block (which shifts positions at and after that block).
  Pos split(RealTime t, bool* created);

  /// Halves full block b into blocks b and b+1 (B-tree leaf split).
  void split_block(std::size_t b);

  /// Raises every level in [a, b) by one and repairs block maxima + tree.
  void increment_range(Pos a, Pos b);

  /// Regrows or repairs the block max-tree after blocks_[from..] changed.
  void on_blocks_changed(std::size_t from_block);

  /// Recomputes tree leaves [first, last) from block maxima and repairs
  /// parents. O((last - first) + log): the touched range halves per level.
  void patch_tree(std::size_t first, std::size_t last);

  /// Max level over positions [i, j): two partial-block scans plus a tree
  /// range-max over the whole blocks strictly between them.
  [[nodiscard]] int range_max(Pos i, Pos j) const;

  /// Max of block maxima over blocks [first, last) via the implicit tree.
  [[nodiscard]] int tree_range_max(std::size_t first, std::size_t last) const;

  std::vector<Block> blocks_;     ///< Breakpoints, ascending across blocks.
  std::vector<RealTime> firsts_;  ///< firsts_[b] == blocks_[b].coords[0].
  std::vector<int> tree_;         ///< 1-based max-tree over cap_ blocks.
  std::size_t cap_ = 0;           ///< Power-of-two leaf (block) count.
  int count_ = 0;
};

/// The flat index is a drop-in swap behind the name every driver already
/// uses (first-fit, online, best-fit, tests).
using OccupancyIndex = FlatOccupancyIndex;

/// Sorted disjoint set of open intervals on one flat vector — the
/// incremental form of core::interval_union. Neighbours closer than
/// `kMergeEps` coalesce on insert, exactly as the batch union would merge
/// them. Queries are one branch-free lower-bound probe plus one step per
/// intersected interval; insert is a contiguous splice. Bit-exact against
/// the std::map predecessor (frozen as naive::MapOpenSet) — every compare
/// and every double op happens in the same order on the same values.
class FlatIntervalSet {
 public:
  /// interval_union's merge tolerance (treats touching as merged).
  static constexpr double kMergeEps = 1e-12;
  /// Default sliver threshold for covered_in / free_in output filtering.
  static constexpr double kSliverEps = 1e-9;

  /// Measure of window ∩ union(set).
  [[nodiscard]] double measure_in(const Interval& window) const;

  /// Clipped covered sub-intervals of `window` (sorted, disjoint, slivers
  /// <= sliver_eps dropped) — union(set) ∩ window.
  [[nodiscard]] std::vector<Interval> covered_in(
      const Interval& window, double sliver_eps = kSliverEps) const;

  /// Free sub-intervals of `window` not covered by the set (sorted,
  /// disjoint, slivers <= sliver_eps dropped).
  [[nodiscard]] std::vector<Interval> free_in(
      const Interval& window, double sliver_eps = kSliverEps) const;

  /// Adds one interval, coalescing with every neighbour within kMergeEps.
  void insert(Interval iv);

  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return set_;
  }

  void clear() { set_.clear(); }

  /// Structural self-check: intervals non-empty, strictly ascending, and
  /// pairwise separated by more than kMergeEps (anything closer must have
  /// coalesced on insert). No-op unless ABT_AUDIT is on.
  void audit_invariants() const;

 private:
  /// Index of the first stored interval intersecting `w` (or of the first
  /// starting past it). O(log n), branch-free probe.
  [[nodiscard]] std::size_t first_overlapping(const Interval& w) const;

  std::vector<Interval> set_;  ///< Ascending, disjoint, gaps > kMergeEps.
};

/// Positional first-fit index over a dynamic sequence of machines, each
/// summarized by one scalar key (its earliest-free time, or its coverage at
/// the current sweep frontier). A min-segment tree answers
/// `first_at_most(x)` — the smallest machine index whose key is <= x — in
/// O(log m), which lets first-fit drivers jump straight past hopeless
/// machines instead of scanning them linearly per job.
class MachineFreeIndex {
 public:
  /// Appends a machine with the given key; returns its index.
  int push_back(RealTime key);

  /// Updates machine i's key.
  void set(int i, RealTime key);

  [[nodiscard]] RealTime key(int i) const {
    return keys_[static_cast<std::size_t>(i)];
  }

  /// Smallest index with key <= x, or -1 when every key exceeds x.
  [[nodiscard]] int first_at_most(RealTime x) const;

  [[nodiscard]] int size() const { return static_cast<int>(keys_.size()); }

  /// Pre-sizes the tree for at least `machines` leaves (rounded up to a
  /// power of two) and reserves the backing storage, so a driver that can
  /// bound its machine count pays one allocation and zero mid-run
  /// rebuilds.
  void reserve(std::size_t machines);

 private:
  void rebuild(std::size_t capacity);

  std::vector<RealTime> keys_;
  std::vector<RealTime> tree_;  ///< 1-based min-tree over `cap_` leaves.
  std::size_t cap_ = 0;         ///< Power-of-two leaf count.
};

}  // namespace abt::core
