#pragma once

#include <string>
#include <vector>

#include "core/job.hpp"

namespace abt::core {

/// An active-time instance (paper section 1.1): jobs with integral release
/// times, deadlines and lengths, one machine of capacity g, slotted time.
///
/// Slots are numbered 1..horizon(); slot t is the interval [t-1, t). Job j
/// may occupy slots {release_j + 1, ..., deadline_j}.
class SlottedInstance {
 public:
  SlottedInstance() = default;
  SlottedInstance(std::vector<SlottedJob> jobs, int capacity);

  [[nodiscard]] const std::vector<SlottedJob>& jobs() const { return jobs_; }
  [[nodiscard]] const SlottedJob& job(JobId j) const { return jobs_[static_cast<std::size_t>(j)]; }
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] int capacity() const { return capacity_; }

  /// Latest relevant slot T = max_j d_j (0 for an empty instance).
  [[nodiscard]] SlotTime horizon() const { return horizon_; }
  /// Total work P = sum of job lengths.
  [[nodiscard]] SlotTime total_work() const { return total_work_; }

  /// Ceiling of P/g — the "full slots" lower bound used in Theorem 1.
  [[nodiscard]] SlotTime mass_lower_bound() const;

  /// True when every job's window is long enough for its length and
  /// parameters are sane (release >= 0, length >= 1). Does NOT decide
  /// instance feasibility (that requires the flow check in abt::active).
  [[nodiscard]] bool structurally_valid(std::string* why = nullptr) const;

  /// Jobs live in slot t (Definition 1), as job ids.
  [[nodiscard]] std::vector<JobId> live_jobs(SlotTime t) const;

 private:
  std::vector<SlottedJob> jobs_;
  int capacity_ = 1;
  SlotTime horizon_ = 0;
  SlotTime total_work_ = 0;
};

}  // namespace abt::core
