#include "core/busy_schedule.hpp"

#include <algorithm>
#include <cmath>

#include "core/sweep.hpp"

namespace abt::core {

namespace {

bool fail(std::string* why, std::string reason) {
  if (why != nullptr) *why = std::move(reason);
  return false;
}

}  // namespace

int BusySchedule::machine_count() const {
  int count = 0;
  for (const Placement& p : placements) count = std::max(count, p.machine + 1);
  return count;
}

std::vector<std::vector<Interval>> machine_intervals(
    const ContinuousInstance& inst, const BusySchedule& sched) {
  std::vector<std::vector<Interval>> per_machine(
      static_cast<std::size_t>(sched.machine_count()));
  for (JobId j = 0; j < inst.size(); ++j) {
    const Placement& p = sched.placements[static_cast<std::size_t>(j)];
    per_machine[static_cast<std::size_t>(p.machine)].push_back(
        {p.start, p.start + inst.job(j).length});
  }
  return per_machine;
}

RealTime busy_cost(const ContinuousInstance& inst, const BusySchedule& sched) {
  RealTime total = 0.0;
  for (const auto& ivs : machine_intervals(inst, sched)) {
    total += span_of(ivs);
  }
  return total;
}

RealTime machine_busy_time(const ContinuousInstance& inst,
                           const BusySchedule& sched, int machine) {
  std::vector<Interval> ivs;
  for (JobId j = 0; j < inst.size(); ++j) {
    const Placement& p = sched.placements[static_cast<std::size_t>(j)];
    if (p.machine == machine) {
      ivs.push_back({p.start, p.start + inst.job(j).length});
    }
  }
  return span_of(ivs);
}

bool check_busy_schedule(const ContinuousInstance& inst,
                         const BusySchedule& sched, std::string* why,
                         RealTime eps) {
  if (static_cast<int>(sched.placements.size()) != inst.size()) {
    return fail(why, "placement count mismatch");
  }
  for (JobId j = 0; j < inst.size(); ++j) {
    const ContinuousJob& job = inst.job(j);
    const Placement& p = sched.placements[static_cast<std::size_t>(j)];
    if (p.machine < 0) {
      return fail(why, "job " + std::to_string(j) + " unassigned");
    }
    if (p.start < job.release - eps || p.start > job.latest_start() + eps) {
      return fail(why, "job " + std::to_string(j) + " start " +
                           std::to_string(p.start) + " outside [" +
                           std::to_string(job.release) + ", " +
                           std::to_string(job.latest_start()) + "]");
    }
  }
  const auto per_machine = machine_intervals(inst, sched);
  for (std::size_t m = 0; m < per_machine.size(); ++m) {
    // Shrink each interval by eps at the right end so that chains of jobs
    // with floating-point-adjacent endpoints do not report spurious overlap.
    std::vector<Interval> shrunk = per_machine[m];
    for (Interval& iv : shrunk) iv.hi -= eps;
    const int conc = max_concurrency(shrunk);
    if (conc > inst.capacity()) {
      return fail(why, "machine " + std::to_string(m) + " runs " +
                           std::to_string(conc) + " jobs > g=" +
                           std::to_string(inst.capacity()));
    }
  }
  return true;
}

RealTime busy_cost(const ContinuousInstance& inst,
                   const PreemptiveBusySchedule& sched) {
  // Group pieces per machine, then sum spans.
  int machines = 0;
  for (const auto& pieces : sched.pieces) {
    for (const auto& piece : pieces) {
      machines = std::max(machines, piece.machine + 1);
    }
  }
  std::vector<std::vector<Interval>> per_machine(
      static_cast<std::size_t>(machines));
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece : sched.pieces[static_cast<std::size_t>(j)]) {
      per_machine[static_cast<std::size_t>(piece.machine)].push_back(piece.run);
    }
  }
  RealTime total = 0.0;
  for (const auto& ivs : per_machine) total += span_of(ivs);
  return total;
}

bool check_preemptive_schedule(const ContinuousInstance& inst,
                               const PreemptiveBusySchedule& sched,
                               std::string* why, RealTime eps) {
  if (static_cast<int>(sched.pieces.size()) != inst.size()) {
    return fail(why, "pieces count mismatch");
  }
  int machines = 0;
  for (JobId j = 0; j < inst.size(); ++j) {
    const ContinuousJob& job = inst.job(j);
    std::vector<Interval> runs;
    RealTime total = 0.0;
    for (const auto& piece : sched.pieces[static_cast<std::size_t>(j)]) {
      if (piece.machine < 0) return fail(why, "piece with no machine");
      machines = std::max(machines, piece.machine + 1);
      if (piece.run.empty()) return fail(why, "empty piece");
      if (piece.run.lo < job.release - eps ||
          piece.run.hi > job.deadline + eps) {
        return fail(why, "job " + std::to_string(j) + " piece outside window");
      }
      total += piece.run.length();
      runs.push_back(piece.run);
    }
    if (std::abs(total - job.length) > eps) {
      return fail(why, "job " + std::to_string(j) + " scheduled " +
                           std::to_string(total) + " units, needs " +
                           std::to_string(job.length));
    }
    // Pieces of one job must not overlap (at most one machine at a time).
    std::sort(runs.begin(), runs.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].lo < runs[i - 1].hi - eps) {
        return fail(why, "job " + std::to_string(j) + " overlapping pieces");
      }
    }
  }
  // Capacity per machine.
  std::vector<std::vector<Interval>> per_machine(
      static_cast<std::size_t>(machines));
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece : sched.pieces[static_cast<std::size_t>(j)]) {
      Interval iv = piece.run;
      iv.hi -= eps;
      per_machine[static_cast<std::size_t>(piece.machine)].push_back(iv);
    }
  }
  for (std::size_t m = 0; m < per_machine.size(); ++m) {
    const int conc = max_concurrency(per_machine[m]);
    if (conc > inst.capacity()) {
      return fail(why, "machine " + std::to_string(m) + " concurrency " +
                           std::to_string(conc) + " > g");
    }
  }
  return true;
}

}  // namespace abt::core
