#include "core/slotted_instance.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace abt::core {

SlottedInstance::SlottedInstance(std::vector<SlottedJob> jobs, int capacity)
    : jobs_(std::move(jobs)), capacity_(capacity) {
  ABT_ASSERT(capacity_ >= 1, "machine capacity g must be at least 1");
  for (const SlottedJob& j : jobs_) {
    horizon_ = std::max(horizon_, j.deadline);
    total_work_ += j.length;
  }
}

SlotTime SlottedInstance::mass_lower_bound() const {
  return (total_work_ + capacity_ - 1) / capacity_;
}

bool SlottedInstance::structurally_valid(std::string* why) const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const SlottedJob& j = jobs_[i];
    auto fail = [&](const char* reason) {
      if (why != nullptr) {
        *why = "job " + std::to_string(i) + ": " + reason;
      }
      return false;
    };
    if (j.release < 0) return fail("negative release time");
    if (j.length < 1) return fail("length must be >= 1");
    if (!j.window_fits()) return fail("window shorter than length");
  }
  return true;
}

std::vector<JobId> SlottedInstance::live_jobs(SlotTime t) const {
  std::vector<JobId> out;
  for (JobId j = 0; j < size(); ++j) {
    if (job(j).live_in_slot(t)) out.push_back(j);
  }
  return out;
}

}  // namespace abt::core
