#pragma once

#include <string>
#include <vector>

#include "core/continuous_instance.hpp"

namespace abt::core {

/// One job's placement in a busy-time schedule.
struct Placement {
  int machine = -1;        ///< Bundle / machine index (>= 0).
  RealTime start = 0.0;    ///< Start time; the job runs [start, start+length).
};

/// A solution to the (non-preemptive) busy-time problem: every job is
/// assigned a machine and a start time. Machines are "virtual": any number
/// may be used, each with capacity g (paper section 1.1).
struct BusySchedule {
  std::vector<Placement> placements;  ///< Indexed by JobId.

  [[nodiscard]] int machine_count() const;
};

/// Total busy time: sum over machines of the measure of the union of the
/// execution intervals assigned to that machine.
[[nodiscard]] RealTime busy_cost(const ContinuousInstance& inst,
                                 const BusySchedule& sched);

/// Busy time of one machine.
[[nodiscard]] RealTime machine_busy_time(const ContinuousInstance& inst,
                                         const BusySchedule& sched,
                                         int machine);

/// Verifies feasibility: each start within [release, deadline-length], and
/// on every machine at most g jobs run simultaneously.
[[nodiscard]] bool check_busy_schedule(const ContinuousInstance& inst,
                                       const BusySchedule& sched,
                                       std::string* why = nullptr,
                                       RealTime eps = 1e-9);

/// Execution intervals per machine.
[[nodiscard]] std::vector<std::vector<Interval>> machine_intervals(
    const ContinuousInstance& inst, const BusySchedule& sched);

/// A preemptive busy-time solution: each job is a set of execution pieces,
/// each piece on some machine (paper section 4.4: a job may migrate, but at
/// most one machine works on it at any time).
struct PreemptiveBusySchedule {
  struct Piece {
    int machine = -1;
    Interval run;  ///< Execution interval of this piece.
  };
  std::vector<std::vector<Piece>> pieces;  ///< Indexed by JobId.
};

/// Total busy time of a preemptive schedule.
[[nodiscard]] RealTime busy_cost(const ContinuousInstance& inst,
                                 const PreemptiveBusySchedule& sched);

/// Verifies: per job, pieces are disjoint in time, inside the window, total
/// length p_j; per machine, at most g jobs active at any time.
[[nodiscard]] bool check_preemptive_schedule(const ContinuousInstance& inst,
                                             const PreemptiveBusySchedule& sched,
                                             std::string* why = nullptr,
                                             RealTime eps = 1e-6);

}  // namespace abt::core
