#include "service/protocol.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "core/assert.hpp"
#include "core/io.hpp"

namespace abt::service {

namespace {

constexpr std::string_view kTypeNames[] = {
    "solve", "race", "cancel", "stats", "ok", "error", "overloaded",
    "progress"};

bool fail(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
  return false;
}

bool fail_line(std::string* error, int line, const std::string& what) {
  return fail(error, "line " + std::to_string(line) + ": " + what);
}

/// Strict full-token numeric parses, mirroring the CLI's: the whole token
/// must be consumed, so "12x" and "" are rejected.
bool parse_full_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool parse_full_size(const std::string& text, std::size_t* out) {
  if (text.empty() || text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

bool parse_full_int(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  if (value < INT_MIN || value > INT_MAX) return false;
  *out = static_cast<int>(value);
  return true;
}

/// Flags ride the header line, so their syntax is deliberately tiny.
bool valid_flag_token(const std::string& token) {
  if (token.empty()) return false;
  for (const char c : token) {
    if (c == ' ' || c == '=' || c == '\n' || c == '\r') return false;
  }
  return true;
}

/// %.17g-style shortest-roundtrip double for directives and cache keys.
std::string render_double(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

std::string_view frame_type_name(FrameType type) {
  return kTypeNames[static_cast<int>(type)];
}

std::optional<FrameType> frame_type_from(std::string_view name) {
  for (int i = 0; i < static_cast<int>(std::size(kTypeNames)); ++i) {
    if (kTypeNames[i] == name) return static_cast<FrameType>(i);
  }
  return std::nullopt;
}

std::string Frame::flag(std::string_view key, std::string fallback) const {
  for (const auto& [k, v] : flags) {
    if (k == key) return v;
  }
  return fallback;
}

bool Frame::has_flag(std::string_view key) const {
  for (const auto& [k, v] : flags) {
    if (k == key) return true;
  }
  return false;
}

bool parse_frame_header(const std::string& line, FrameType* type,
                        std::size_t* bytes,
                        std::vector<std::pair<std::string, std::string>>* flags,
                        std::string* error) {
  std::istringstream ls(line);
  std::string magic;
  std::string name;
  std::string length;
  if (!(ls >> magic) || magic != kMagic) {
    return fail(error, "bad magic (expected 'abt1')");
  }
  if (!(ls >> name)) return fail(error, "missing frame type");
  const auto parsed = frame_type_from(name);
  if (!parsed.has_value()) {
    return fail(error, "unknown frame type '" + name + "'");
  }
  *type = *parsed;
  if (!(ls >> length) || !parse_full_size(length, bytes)) {
    return fail(error, "bad payload length");
  }
  if (*bytes > kMaxFrameBytes) return fail(error, "payload length over limit");
  flags->clear();
  std::string token;
  while (ls >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      return fail(error, "bad flag '" + token + "' (want key=value)");
    }
    flags->emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return true;
}

std::string frame_header(const Frame& frame) {
  std::string out(kMagic);
  out += ' ';
  out += frame_type_name(frame.type);
  out += ' ';
  out += std::to_string(frame.payload.size());
  for (const auto& [key, value] : frame.flags) {
    ABT_ASSERT(valid_flag_token(key) && valid_flag_token(value),
               "frame flags must be space/=/newline-free tokens");
    out += ' ';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

bool read_frame(std::istream& in, Frame* out, std::string* error) {
  std::string header;
  if (!std::getline(in, header)) {
    if (error != nullptr) error->clear();  // clean EOF at a frame boundary
    return false;
  }
  if (!header.empty() && header.back() == '\r') header.pop_back();
  std::size_t bytes = 0;
  if (!parse_frame_header(header, &out->type, &bytes, &out->flags, error)) {
    return false;
  }
  out->payload.resize(bytes);
  if (bytes > 0) {
    in.read(out->payload.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes) {
      return fail(error, "truncated payload");
    }
  }
  return true;
}

void write_frame(std::ostream& out, const Frame& frame) {
  out << frame_header(frame) << '\n' << frame.payload;
}

// ---------------------------------------------------------------------------
// Solve/race payload codec.

bool parse_solve_payload(const std::string& payload, SolveRequest* out,
                         std::string* error) {
  *out = SolveRequest{};
  std::size_t pos = 0;
  int line_no = 0;
  bool saw_instance = false;
  std::size_t instance_offset = 0;
  int instance_line_base = 0;
  bool seen[6] = {};  // id, solvers, budget, gap, progress, format
  auto once = [&](int which, const char* name) {
    if (seen[which]) {
      return fail_line(error, line_no,
                       std::string("duplicate ") + name + " directive");
    }
    seen[which] = true;
    return true;
  };

  while (pos < payload.size()) {
    const auto nl = payload.find('\n', pos);
    std::string line =
        payload.substr(pos, (nl == std::string::npos ? payload.size() : nl) -
                                pos);
    pos = nl == std::string::npos ? payload.size() : nl + 1;
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line

    std::string extra;
    if (keyword == "instance") {
      if (ls >> extra) {
        return fail_line(error, line_no,
                         "instance directive takes no arguments");
      }
      saw_instance = true;
      instance_offset = pos;
      instance_line_base = line_no;
      break;
    }
    if (keyword == "id") {
      if (!once(0, "id")) return false;
      if (!(ls >> out->id)) return fail_line(error, line_no, "id needs a token");
    } else if (keyword == "solvers") {
      if (!once(1, "solvers")) return false;
      std::string name;
      while (ls >> name) out->solvers.push_back(name);
      if (out->solvers.empty()) {
        return fail_line(error, line_no, "solvers needs at least one name");
      }
    } else if (keyword == "budget-ms") {
      if (!once(2, "budget-ms")) return false;
      std::string value;
      if (!(ls >> value) || !parse_full_double(value, &out->budget_ms) ||
          out->budget_ms < 0.0) {
        return fail_line(error, line_no,
                         "budget-ms needs a non-negative number");
      }
    } else if (keyword == "accept-gap") {
      if (!once(3, "accept-gap")) return false;
      std::string value;
      if (!(ls >> value) || !parse_full_double(value, &out->accept_gap)) {
        return fail_line(error, line_no, "accept-gap needs a number");
      }
    } else if (keyword == "progress") {
      if (!once(4, "progress")) return false;
      std::string value;
      if (!(ls >> value) || !parse_full_int(value, &out->progress) ||
          out->progress < 0) {
        return fail_line(error, line_no,
                         "progress needs a non-negative integer");
      }
    } else if (keyword == "format") {
      if (!once(5, "format")) return false;
      if (!(ls >> out->format) ||
          (out->format != "json" && out->format != "csv" &&
           out->format != "table")) {
        return fail_line(error, line_no,
                         "format must be json, csv or table");
      }
    } else {
      return fail_line(error, line_no,
                       "unknown request directive '" + keyword + "'");
    }
    if (keyword != "solvers" && (ls >> extra)) {
      return fail_line(error, line_no,
                       "trailing tokens after " + keyword + " directive");
    }
  }

  if (!saw_instance) {
    return fail_line(error, line_no + 1, "missing instance directive");
  }

  std::istringstream instance_text(payload.substr(instance_offset));
  std::string parse_error;
  auto inst = core::parse_instance(instance_text, &parse_error);
  if (!inst.has_value()) {
    // Re-number the io-v2 error over the whole payload: its "line M"
    // counts from the first instance line, which is payload line
    // instance_line_base + M.
    int local = 0;
    std::size_t colon = 0;
    if (parse_error.rfind("line ", 0) == 0 &&
        (colon = parse_error.find(':')) != std::string::npos &&
        parse_full_int(parse_error.substr(5, colon - 5), &local)) {
      return fail_line(error, instance_line_base + local,
                       parse_error.substr(colon + 2));
    }
    return fail_line(error, instance_line_base + 1, parse_error);
  }
  std::ostringstream canonical;
  std::string why;
  if (!core::write_instance(canonical, *inst, &why)) {
    return fail_line(error, instance_line_base + 1,
                     "instance not serializable: " + why);
  }
  out->instance = std::move(*inst);
  out->canonical = canonical.str();
  return true;
}

bool write_solve_payload(std::ostream& os, const SolveRequest& request,
                         std::string* error) {
  if (!request.id.empty()) os << "id " << request.id << '\n';
  if (!request.solvers.empty()) {
    os << "solvers";
    for (const std::string& name : request.solvers) os << ' ' << name;
    os << '\n';
  }
  if (request.budget_ms > 0.0) {
    os << "budget-ms " << render_double(request.budget_ms) << '\n';
  }
  if (request.accept_gap >= 0.0) {
    os << "accept-gap " << render_double(request.accept_gap) << '\n';
  }
  if (request.progress > 0) os << "progress " << request.progress << '\n';
  os << "format " << request.format << '\n';
  os << "instance\n";
  std::string why;
  if (!core::write_instance(os, request.instance, &why)) {
    return fail(error, "instance not serializable: " + why);
  }
  return true;
}

std::string cache_key(const SolveRequest& request) {
  std::string key = request.race ? "verb race\n" : "verb solve\n";
  key += "format " + request.format + '\n';
  key += "solvers";
  for (const std::string& name : request.solvers) key += ' ' + name;
  key += '\n';
  key += "budget-ms " + render_double(request.budget_ms) + '\n';
  key += "accept-gap " + render_double(request.accept_gap) + '\n';
  key += "instance\n";
  key += request.canonical;
  return key;
}

// ---------------------------------------------------------------------------
// Addresses and socket plumbing.

std::string Address::describe() const {
  if (is_unix()) return socket_path;
  return host + ':' + std::to_string(port);
}

std::optional<Address> parse_address(const std::string& text,
                                     std::string* error) {
  if (text.empty()) {
    fail(error, "empty address");
    return std::nullopt;
  }
  Address out;
  const auto colon = text.rfind(':');
  if (text.find('/') == std::string::npos && colon != std::string::npos) {
    int port = -1;
    if (!parse_full_int(text.substr(colon + 1), &port) || port < 0 ||
        port > 65535) {
      fail(error, "bad port in address '" + text + "'");
      return std::nullopt;
    }
    out.host = colon == 0 ? std::string("127.0.0.1") : text.substr(0, colon);
    out.port = port;
    return out;
  }
  out.socket_path = text;
  return out;
}

Connection::~Connection() { close(); }

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      consumed_(other.consumed_) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    consumed_ = other.consumed_;
    other.fd_ = -1;
  }
  return *this;
}

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
  consumed_ = 0;
}

bool Connection::read_more(std::string* error) {
  char chunk[4096];
  while (true) {
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      return true;
    }
    if (got == 0) return fail(error, "");  // peer closed
    if (errno == EINTR) continue;
    return fail(error, std::string("recv: ") + std::strerror(errno));
  }
}

bool Connection::read_frame(Frame* out, std::string* error) {
  if (fd_ < 0) return fail(error, "connection closed");
  // Header line.
  std::size_t nl = 0;
  while ((nl = buffer_.find('\n', consumed_)) == std::string::npos) {
    std::string io_error;
    if (!read_more(&io_error)) {
      if (io_error.empty() && consumed_ == buffer_.size()) {
        if (error != nullptr) error->clear();  // clean EOF between frames
        return false;
      }
      return fail(error, io_error.empty() ? "truncated frame header"
                                          : io_error);
    }
  }
  std::string header = buffer_.substr(consumed_, nl - consumed_);
  consumed_ = nl + 1;
  if (!header.empty() && header.back() == '\r') header.pop_back();
  std::size_t bytes = 0;
  if (!parse_frame_header(header, &out->type, &bytes, &out->flags, error)) {
    return false;
  }
  // Payload bytes.
  while (buffer_.size() - consumed_ < bytes) {
    std::string io_error;
    if (!read_more(&io_error)) {
      return fail(error,
                  io_error.empty() ? "truncated payload" : io_error);
    }
  }
  out->payload = buffer_.substr(consumed_, bytes);
  consumed_ += bytes;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10)) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  return true;
}

bool Connection::write_frame(const Frame& frame, std::string* error) {
  if (fd_ < 0) return fail(error, "connection closed");
  std::string wire = frame_header(frame);
  wire += '\n';
  wire += frame.payload;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the daemon with SIGPIPE.
    const ssize_t put =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return fail(error, std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(put);
  }
  return true;
}

Connection connect_to(const Address& address, std::string* error) {
  if (address.is_unix()) {
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    if (address.socket_path.size() >= sizeof sun.sun_path) {
      fail(error, "unix socket path too long");
      return Connection();
    }
    std::memcpy(sun.sun_path, address.socket_path.c_str(),
                address.socket_path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      fail(error, std::string("socket: ") + std::strerror(errno));
      return Connection();
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sun), sizeof sun) !=
        0) {
      fail(error, "connect " + address.socket_path + ": " +
                      std::strerror(errno));
      ::close(fd);
      return Connection();
    }
    return Connection(fd);
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* found = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc = ::getaddrinfo(address.host.c_str(), port.c_str(), &hints,
                               &found);
  if (rc != 0) {
    fail(error, "resolve " + address.host + ": " + ::gai_strerror(rc));
    return Connection();
  }
  int fd = -1;
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    fail(error, "connect " + address.describe() + ": " +
                    std::strerror(errno));
    return Connection();
  }
  return Connection(fd);
}

std::optional<Exchange> client_roundtrip(const Address& address,
                                         const Frame& request,
                                         std::string* error) {
  Connection conn = connect_to(address, error);
  if (!conn.valid()) return std::nullopt;
  // A shed connection is answered (`overloaded`) and closed without the
  // request ever being read, so the send can fail with EPIPE while the
  // response already sits in the socket buffer. Read regardless, and
  // report the send failure only when no response frame arrived either.
  std::string send_error;
  const bool sent = conn.write_frame(request, &send_error);
  Exchange exchange;
  while (true) {
    Frame frame;
    std::string frame_error;
    if (!conn.read_frame(&frame, &frame_error)) {
      if (!sent) {
        fail(error, send_error);
      } else {
        fail(error, frame_error.empty() ? "server closed before responding"
                                        : frame_error);
      }
      return std::nullopt;
    }
    if (frame.type == FrameType::kProgress) {
      exchange.progress.push_back(std::move(frame));
      continue;
    }
    exchange.final = std::move(frame);
    return exchange;
  }
}

}  // namespace abt::service
