#pragma once

// abtd wire protocol v1: length-prefixed, line-oriented frames over a
// byte stream (Unix-domain or TCP socket). One frame is a single ASCII
// header line followed by exactly `bytes` payload bytes:
//
//     abt1 <type> <bytes>[ <key>=<value>]...\n
//     <payload, `bytes` bytes>
//
// Request types:  solve, race, cancel, stats.
// Response types: ok, error, overloaded, progress. A solve/race exchange
// is zero or more `progress` frames followed by exactly one final frame;
// `cancel` and `stats` answer with one final frame. Header flags carry
// response metadata OUTSIDE the payload — `exit=N` (the CLI exit code the
// same run would have produced), `cached=1` (payload replayed from the
// solution cache, bit-identical to the original response), `budget-ms=X`
// (admission control shrank the request's budget to X) — so a cached
// payload stays byte-identical to the first computation.
//
// The solve/race payload is line-oriented in the instance-format dialect
// ('#' comments, one directive per line): request directives first, then
// an `instance` directive, then the v2 instance text verbatim:
//
//     id req-7                  # optional, enables the cancel verb
//     solvers busy/first-fit busy/weighted-exact
//     budget-ms 200
//     accept-gap 0.02           # race acceptance threshold
//     progress 4                # stream up to 4 incumbent snapshots
//     format json               # json | csv | table
//     instance
//     model weighted
//     capacity 4
//     job 0 2.5 2.5
//
// Payload parse errors are line-numbered over the WHOLE payload ("line
// 9: ..."), instance lines included, in the io-v2 style.

#include <cstddef>
#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/solver.hpp"

namespace abt::service {

inline constexpr std::string_view kMagic = "abt1";
/// Frames larger than this are rejected at the header (protects the
/// daemon from a hostile or corrupted length prefix).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class FrameType {
  kSolve,
  kRace,
  kCancel,
  kStats,
  kOk,
  kError,
  kOverloaded,
  kProgress,
};

[[nodiscard]] std::string_view frame_type_name(FrameType type);
[[nodiscard]] std::optional<FrameType> frame_type_from(std::string_view name);

struct Frame {
  FrameType type = FrameType::kError;
  /// Header key=value pairs, in wire order. Keys and values must be
  /// non-empty and free of spaces, '=' and newlines.
  std::vector<std::pair<std::string, std::string>> flags;
  std::string payload;

  [[nodiscard]] std::string flag(std::string_view key,
                                 std::string fallback = "") const;
  [[nodiscard]] bool has_flag(std::string_view key) const;
};

/// Parses one header line (without the trailing newline). False (with
/// `error`) on malformed magic, unknown type, bad length or bad flag
/// syntax; `*bytes` is the declared payload length.
[[nodiscard]] bool parse_frame_header(
    const std::string& line, FrameType* type, std::size_t* bytes,
    std::vector<std::pair<std::string, std::string>>* flags,
    std::string* error);

/// The header line for `frame` (payload length taken from frame.payload),
/// WITHOUT the trailing newline.
[[nodiscard]] std::string frame_header(const Frame& frame);

/// Stream framing (the socket Connection below layers the same codec
/// over a fd; the iostream pair exists so tests and tools can round-trip
/// frames without sockets). read_frame returns false with an empty
/// `error` on clean EOF before any header byte, and with a diagnostic on
/// any malformed or truncated frame.
[[nodiscard]] bool read_frame(std::istream& in, Frame* out,
                              std::string* error);
void write_frame(std::ostream& out, const Frame& frame);

/// A parsed solve/race request.
struct SolveRequest {
  bool race = false;
  std::string id;                     ///< "" = not cancellable by verb.
  std::vector<std::string> solvers;   ///< Empty = every applicable solver.
  double budget_ms = 0.0;             ///< 0 = unlimited (server may shrink).
  double accept_gap = -1.0;           ///< Race acceptance (< 0 = any).
  int progress = 0;                   ///< Max progress frames wanted.
  std::string format = "json";        ///< json | csv | table.
  core::ProblemInstance instance;
  /// Canonical write_instance serialization of `instance` — the
  /// instance part of the cache key.
  std::string canonical;
};

/// Parses a solve/race payload. Errors are "line N: ..." with N counted
/// over the whole payload.
[[nodiscard]] bool parse_solve_payload(const std::string& payload,
                                       SolveRequest* out, std::string* error);

/// Serializes `request` into the payload format (client side). False
/// (with `error`) when the instance cannot be serialized.
[[nodiscard]] bool write_solve_payload(std::ostream& os,
                                       const SolveRequest& request,
                                       std::string* error);

/// Canonical cache key of a parsed request: verb, format, solver subset,
/// budget and acceptance parameters, then the canonical instance text.
/// Deliberately excludes `id` and `progress` — neither changes the
/// response payload.
[[nodiscard]] std::string cache_key(const SolveRequest& request);

/// A daemon endpoint: exactly one of socket_path (Unix domain) or
/// host/port (TCP) is set.
struct Address {
  std::string socket_path;
  std::string host;
  int port = -1;
  [[nodiscard]] bool is_unix() const { return !socket_path.empty(); }
  [[nodiscard]] std::string describe() const;
};

/// Parses a --connect / --socket style address: `host:port` when the
/// text has no '/' and ends in `:<digits>`, a Unix socket path
/// otherwise. nullopt (with `error`) for empty or unusable text.
[[nodiscard]] std::optional<Address> parse_address(const std::string& text,
                                                   std::string* error);

/// Blocking framed connection over a connected socket fd (owns the fd).
class Connection {
 public:
  Connection() = default;
  explicit Connection(int fd) : fd_(fd) {}
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Reads one frame. False with empty `error` on clean EOF at a frame
  /// boundary; false with a diagnostic on malformed or truncated input.
  [[nodiscard]] bool read_frame(Frame* out, std::string* error);
  [[nodiscard]] bool write_frame(const Frame& frame, std::string* error);
  void close();

 private:
  [[nodiscard]] bool read_more(std::string* error);

  int fd_ = -1;
  std::string buffer_;       ///< Received-but-unconsumed bytes.
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
};

/// Connects to a daemon address. Invalid Connection (with `error`) on
/// failure.
[[nodiscard]] Connection connect_to(const Address& address,
                                    std::string* error);

/// One full request/response exchange: progress frames are collected
/// until the final ok/error/overloaded frame arrives.
struct Exchange {
  std::vector<Frame> progress;
  Frame final;
};

/// Sends `request` over a fresh connection and drains the response.
/// nullopt (with `error`) on connection or framing failure.
[[nodiscard]] std::optional<Exchange> client_roundtrip(const Address& address,
                                                       const Frame& request,
                                                       std::string* error);

}  // namespace abt::service
