#include "service/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/assert.hpp"
#include "engine/parallel.hpp"
#include "engine/portfolio.hpp"
#include "engine/runner.hpp"

namespace abt::service {

namespace {

/// The CLI exit contract over one set of solution rows: a checker FAIL
/// anywhere is 2, nothing solved is 1, otherwise 0 (abt_solve's local
/// mode uses the same rules, so --connect is a drop-in).
int solve_exit_code(const std::vector<core::Solution>& rows) {
  bool any_ok = false;
  for (const core::Solution& sol : rows) {
    if (sol.ok && !sol.feasible) return 2;
    any_ok = any_ok || sol.ok;
  }
  return any_ok ? 0 : 1;
}

int race_exit_code(const engine::RaceReport& report) {
  for (const core::Solution& sol : report.rows) {
    if (sol.ok && !sol.feasible) return 2;
  }
  return report.winner < 0 && report.best < 0 ? 1 : 0;
}

std::string progress_payload(const core::IncumbentRing::Snapshot& snap) {
  std::ostringstream os;
  os << "{\"cost\": " << snap.cost << ", \"elapsed_ms\": " << snap.elapsed_ms
     << ", \"schedule\": ";
  engine::write_json_string(os, snap.schedule);
  os << "}\n";
  return os.str();
}

std::string render_double_flag(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

}  // namespace

Server::Server(const core::SolverRegistry& registry, ServiceConfig config)
    : registry_(registry),
      config_(std::move(config)),
      cache_(config_.cache_entries, config_.cache_bytes) {
  if (config_.dispatchers < 2) config_.dispatchers = 2;
  if (config_.queue_cap < 1) config_.queue_cap = 1;
  if (config_.queue_soft < 0) config_.queue_soft = 0;
  if (config_.queue_soft > config_.queue_cap) {
    config_.queue_soft = config_.queue_cap;
  }
  if (config_.min_budget_factor <= 0.0 || config_.min_budget_factor > 1.0) {
    config_.min_budget_factor = 0.1;
  }
  if (config_.max_progress < 1) config_.max_progress = 1;
}

Server::~Server() { stop(); }

bool Server::running() const {
  return running_.load(std::memory_order_acquire);
}

Address Server::address() const {
  Address out;
  if (!config_.socket_path.empty()) {
    out.socket_path = config_.socket_path;
  } else {
    out.host = "127.0.0.1";
    out.port = resolved_port_;
  }
  return out;
}

double Server::admission_factor(int load) const {
  if (load <= config_.queue_soft) return 1.0;
  const double span =
      config_.queue_cap > config_.queue_soft
          ? static_cast<double>(config_.queue_cap - config_.queue_soft)
          : 1.0;
  const double factor =
      1.0 - static_cast<double>(load - config_.queue_soft) / span;
  return factor < config_.min_budget_factor ? config_.min_budget_factor
                                            : factor;
}

int Server::listen_unix(std::string* error) {
  sockaddr_un sun{};
  sun.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof sun.sun_path) {
    if (error != nullptr) *error = "unix socket path too long";
    return -1;
  }
  std::memcpy(sun.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(config_.socket_path.c_str());  // stale path from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sun), sizeof sun) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "bind " + config_.socket_path + ": " + std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  return fd;
}

int Server::listen_tcp(std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, on purpose
  sin.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof sin) != 0 ||
      ::listen(fd, 64) != 0) {
    if (error != nullptr) {
      *error = "bind 127.0.0.1:" + std::to_string(config_.tcp_port) + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    resolved_port_ = ntohs(bound.sin_port);
  }
  return fd;
}

bool Server::start(std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  if (config_.socket_path.empty() && config_.tcp_port < 0) {
    if (error != nullptr) *error = "no listener configured";
    return false;
  }
  stopping_.store(false, std::memory_order_release);
  if (!config_.socket_path.empty()) {
    const int fd = listen_unix(error);
    if (fd < 0) return false;
    listen_fds_.push_back(fd);
  }
  if (config_.tcp_port >= 0) {
    const int fd = listen_tcp(error);
    if (fd < 0) {
      stop();
      return false;
    }
    listen_fds_.push_back(fd);
  }
  running_.store(true, std::memory_order_release);
  for (const int fd : listen_fds_) {
    acceptors_.emplace_back([this, fd] { accept_loop(fd); });
  }
  for (int i = 0; i < config_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatch_loop(); });
  }
  return true;
}

void Server::stop() {
  stopping_.store(true, std::memory_order_release);
  stop_source_.cancel();  // in-flight runs return their incumbents
  queue_cv_.notify_all();
  for (std::thread& t : acceptors_) t.join();
  acceptors_.clear();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
  for (const int fd : listen_fds_) ::close(fd);
  listen_fds_.clear();
  // Shed whatever the dispatchers left queued: an explicit overloaded
  // frame beats a silently dropped connection.
  std::deque<Pending> leftover;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    send_overloaded(pending.conn, static_cast<int>(leftover.size()));
  }
  if (!config_.socket_path.empty()) {
    ::unlink(config_.socket_path.c_str());
  }
  running_.store(false, std::memory_order_release);
}

void Server::accept_loop(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;  // timeout, EINTR, or spurious wakeup
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    Connection conn(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);

    // Admission, sampled under the queue lock: load counts queued AND
    // executing requests, so a server with every dispatcher busy starts
    // shrinking before the queue is deep.
    double factor = 1.0;
    bool shed = false;
    int queued = 0;
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      queued = static_cast<int>(queue_.size());
      if (queued >= config_.queue_cap) {
        shed = true;
      } else {
        factor = admission_factor(queued + in_flight_);
        queue_.push_back({std::move(conn), factor});
        audit_queue_locked();
      }
    }
    if (shed) {
      send_overloaded(conn, queued);
      continue;
    }
    queue_cv_.notify_one();
  }
}

void Server::dispatch_loop() {
  while (true) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) return;  // stopping, nothing left to serve
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      audit_queue_locked();
    }
    serve(pending.conn, pending.factor);
    pending.conn.close();
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
      audit_queue_locked();
    }
  }
}

void Server::send_overloaded(Connection& conn, int queued) {
  Frame frame;
  frame.type = FrameType::kOverloaded;
  frame.payload = "{\"queue_depth\": " + std::to_string(queued) +
                  ", \"queue_cap\": " + std::to_string(config_.queue_cap) +
                  "}\n";
  std::string ignored;
  (void)conn.write_frame(frame, &ignored);
  conn.close();
  shed_.fetch_add(1, std::memory_order_relaxed);
}

void Server::send_error(Connection& conn, const std::string& message) {
  Frame frame;
  frame.type = FrameType::kError;
  frame.payload = message;
  if (!frame.payload.empty() && frame.payload.back() != '\n') {
    frame.payload += '\n';
  }
  std::string ignored;
  (void)conn.write_frame(frame, &ignored);
  errors_.fetch_add(1, std::memory_order_relaxed);
}

void Server::serve(Connection& conn, double factor) {
  Frame request;
  std::string error;
  if (!conn.read_frame(&request, &error)) {
    if (!error.empty()) send_error(conn, error);
    return;  // clean EOF: client connected and left
  }
  switch (request.type) {
    case FrameType::kStats:
      handle_stats(conn);
      return;
    case FrameType::kCancel:
      handle_cancel(conn, request);
      return;
    case FrameType::kSolve:
    case FrameType::kRace: {
      SolveRequest parsed;
      if (!parse_solve_payload(request.payload, &parsed, &error)) {
        send_error(conn, error);
        return;
      }
      parsed.race = request.type == FrameType::kRace;
      handle_solve(conn, parsed, factor);
      return;
    }
    default:
      send_error(conn, "frame type '" +
                           std::string(frame_type_name(request.type)) +
                           "' is not a request");
      return;
  }
}

void Server::handle_cancel(Connection& conn, const Frame& frame) {
  std::istringstream ls(frame.payload);
  std::string keyword;
  std::string id;
  if (!(ls >> keyword) || keyword != "id" || !(ls >> id)) {
    send_error(conn, "line 1: cancel payload must be 'id <token>'");
    return;
  }
  bool found = false;
  {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    const auto it = active_.find(id);
    if (it != active_.end()) {
      it->second.cancel();
      found = true;
    }
  }
  if (found) cancelled_.fetch_add(1, std::memory_order_relaxed);
  Frame reply;
  reply.type = FrameType::kOk;
  reply.payload = std::string("{\"cancelled\": ") +
                  (found ? "true" : "false") + ", \"id\": \"" + id + "\"}\n";
  std::string ignored;
  if (conn.write_frame(reply, &ignored)) {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_stats(Connection& conn) {
  const ServiceStats stats = this->stats();
  std::ostringstream os;
  os << "{\"accepted\": " << stats.accepted << ", \"served\": " << stats.served
     << ", \"errors\": " << stats.errors << ", \"shed\": " << stats.shed
     << ", \"shrunk\": " << stats.shrunk
     << ", \"cancelled\": " << stats.cancelled
     << ", \"queue_depth\": " << stats.queue_depth
     << ", \"in_flight\": " << stats.in_flight
     << ", \"queue_soft\": " << config_.queue_soft
     << ", \"queue_cap\": " << config_.queue_cap << ", \"cache\": {"
     << "\"entries\": " << stats.cache.entries
     << ", \"bytes\": " << stats.cache.bytes
     << ", \"hits\": " << stats.cache.hits
     << ", \"misses\": " << stats.cache.misses
     << ", \"insertions\": " << stats.cache.insertions
     << ", \"evictions\": " << stats.cache.evictions << "}}\n";
  Frame reply;
  reply.type = FrameType::kOk;
  reply.payload = os.str();
  std::string ignored;
  if (conn.write_frame(reply, &ignored)) {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_solve(Connection& conn, const SolveRequest& request,
                          double factor) {
  // Effective budget under admission control: a shrunk request keeps its
  // anytime semantics (rows carry timed_out + best_bound/gap), it just
  // gets less clock. "Unlimited" cannot survive overload — it shrinks
  // from the configured default budget instead.
  double budget_ms = request.budget_ms;
  const bool is_shrunk = factor < 1.0;
  if (is_shrunk) {
    const double base =
        budget_ms > 0.0 ? budget_ms : config_.default_budget_ms;
    budget_ms = base * factor;
    if (budget_ms < 1.0) budget_ms = 1.0;
    shrunk_.fetch_add(1, std::memory_order_relaxed);
  }

  // Cache: keyed by the canonical request (original budget — the key
  // describes what was ASKED, not what admission granted), so a shrunk
  // request can still be answered bit-identically from a full-budget
  // entry. Shrunk responses are never inserted.
  const std::string key = cache_key(request);
  if (auto hit = cache_.lookup(key)) {
    Frame reply;
    reply.type = FrameType::kOk;
    reply.flags.emplace_back("exit", std::to_string(hit->exit_code));
    reply.flags.emplace_back("cached", "1");
    reply.payload = std::move(hit->payload);
    std::string ignored;
    if (conn.write_frame(reply, &ignored)) {
      served_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Per-request context: its own cancel source (the `cancel` verb's
  // target when the request carries an id) chained with the server's
  // shutdown source, the effective budget, and — when asked — an
  // incumbent ring for `progress` frames.
  core::CancelSource request_source;
  core::RunContext ctx = core::RunContext::with_budget_ms(budget_ms);
  ctx.set_cancel_token(request_source.token().chained(stop_source_.token()));
  std::shared_ptr<core::IncumbentRing> ring;
  if (request.progress > 0) {
    const int capacity = request.progress < config_.max_progress
                             ? request.progress
                             : config_.max_progress;
    ring = std::make_shared<core::IncumbentRing>(capacity);
    ctx.set_schedule_ring(ring);
  }
  if (!request.id.empty()) {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    active_[request.id] = request_source;  // last writer wins on id reuse
  }

  std::ostringstream body;
  int exit_code = 0;
  if (request.race) {
    std::vector<engine::RaceEntry> entries;
    if (request.solvers.empty()) {
      entries = engine::auto_entries(registry_, request.instance, nullptr, 3,
                                     ctx);
    } else {
      entries.reserve(request.solvers.size());
      for (const std::string& name : request.solvers) {
        entries.push_back({name, 0.0});
      }
    }
    engine::RaceOptions options;
    options.threads = config_.threads;
    options.accept_gap = request.accept_gap;
    const engine::RaceReport report =
        engine::race(registry_, request.instance, entries, ctx, options);
    if (request.format == "json") {
      engine::write_race_json(body, request.instance, report);
    } else if (request.format == "csv") {
      engine::write_race_csv(body, report);
    } else {
      engine::print_race(body, report);
    }
    exit_code = race_exit_code(report);
  } else {
    // A one-instance run_sweep: the registry owns selection, the cells
    // fan out over the shared pool, a tripped token drains the rest.
    engine::RunOptions options;
    options.solvers = request.solvers;
    options.budget_ms = budget_ms;
    options.cancel = ctx.cancel_token();
    const std::vector<const core::Solver*> plan =
        registry_.selection(request.instance, request.solvers, ctx);
    std::vector<core::Solution> rows(plan.size());
    engine::ParallelOptions parallel_options;
    parallel_options.cancel = ctx.cancel_token();
    parallel_options.eager_dispatch = true;
    parallel_options.on_cancelled = [&](std::size_t i) {
      rows[i] = engine::cancelled_cell_row(*plan[i], budget_ms);
    };
    engine::parallel_for(
        config_.threads, plan.size(),
        [&](std::size_t i) {
          rows[i] = registry_.run(*plan[i], request.instance, ctx.restarted());
        },
        parallel_options);
    engine::RunReport report;
    report.instance = request.instance;
    report.solutions = std::move(rows);
    engine::append_unknown_solver_rows(registry_, request.solvers, report);
    report.lower_bound =
        engine::derive_lower_bound(report.instance, report.solutions, options);
    if (request.format == "json") {
      engine::write_json(body, report);
    } else if (request.format == "csv") {
      engine::write_csv(body, report);
    } else {
      engine::print_report(body, report);
    }
    exit_code = solve_exit_code(report.solutions);
  }

  if (!request.id.empty()) {
    const std::lock_guard<std::mutex> lock(active_mutex_);
    active_.erase(request.id);
  }

  // Progress frames: the ring retained the last K improving incumbents;
  // replay them (oldest first) ahead of the final frame.
  std::string ignored;
  if (ring != nullptr) {
    for (const core::IncumbentRing::Snapshot& snap : ring->snapshots()) {
      Frame progress;
      progress.type = FrameType::kProgress;
      progress.payload = progress_payload(snap);
      if (!conn.write_frame(progress, &ignored)) break;
    }
  }

  Frame reply;
  reply.type = FrameType::kOk;
  reply.flags.emplace_back("exit", std::to_string(exit_code));
  if (is_shrunk) {
    reply.flags.emplace_back("budget-ms", render_double_flag(budget_ms));
  }
  reply.payload = body.str();

  // Cache only full-budget, undisturbed responses: a shrunk or cancelled
  // run's payload is a degraded answer and must never shadow a full one.
  if (!is_shrunk && !request_source.cancelled() &&
      !stop_source_.cancelled()) {
    cache_.insert(key, {reply.payload, exit_code});
  }
  if (conn.write_frame(reply, &ignored)) {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

ServiceStats Server::stats() const {
  ServiceStats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.served = served_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.shrunk = shrunk_.load(std::memory_order_relaxed);
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    out.queue_depth = static_cast<int>(queue_.size());
    out.in_flight = in_flight_;
  }
  out.cache = cache_.stats();
  return out;
}

void Server::audit_queue_locked() const {
  if constexpr (!core::kAuditEnabled) return;
  ABT_DBG_ASSERT(static_cast<int>(queue_.size()) <= config_.queue_cap,
                 "request queue must never exceed the hard cap");
  ABT_DBG_ASSERT(in_flight_ >= 0 && in_flight_ <= config_.dispatchers,
                 "in-flight count must stay within the dispatcher crew");
  for (const Pending& pending : queue_) {
    ABT_DBG_ASSERT(pending.conn.valid(),
                   "queued connections must hold a live fd");
    ABT_DBG_ASSERT(pending.factor >= config_.min_budget_factor &&
                       pending.factor <= 1.0,
                   "admission factor must lie in [min_budget_factor, 1]");
  }
}

void Server::audit_invariants() const {
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    audit_queue_locked();
  }
  cache_.audit_invariants();
}

}  // namespace abt::service
