#include "service/cache.hpp"

#include <functional>
#include <utility>

#include "core/assert.hpp"

namespace abt::service {

SolutionCache::SolutionCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_per_shard_((max_entries + kShards - 1) / kShards),
      max_bytes_per_shard_((max_bytes + kShards - 1) / kShards) {
  if (max_entries_per_shard_ == 0) max_entries_per_shard_ = 1;
  if (max_bytes_per_shard_ == 0) max_bytes_per_shard_ = 1;
}

SolutionCache::Shard& SolutionCache::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

std::optional<SolutionCache::Entry> SolutionCache::lookup(
    const std::string& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->entry;
}

void SolutionCache::evict_over_caps(Shard& shard) {
  while (!shard.lru.empty() && (shard.lru.size() > max_entries_per_shard_ ||
                                shard.bytes > max_bytes_per_shard_)) {
    const Node& victim = shard.lru.back();
    shard.bytes -= entry_bytes(victim);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void SolutionCache::insert(const std::string& key, Entry entry) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place: same canonical request, (re)computed response.
    shard.bytes -= entry_bytes(*it->second);
    it->second->entry = std::move(entry);
    shard.bytes += entry_bytes(*it->second);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    if (key.size() + entry.payload.size() > max_bytes_per_shard_) {
      return;  // Could never fit; inserting would just evict everything.
    }
    shard.lru.push_front({key, std::move(entry)});
    shard.bytes += entry_bytes(shard.lru.front());
    shard.index.emplace(key, shard.lru.begin());
    ++shard.insertions;
  }
  evict_over_caps(shard);
  audit_shard(shard);
}

CacheStats SolutionCache::stats() const {
  CacheStats out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
  }
  return out;
}

void SolutionCache::audit_shard(const Shard& shard) const {
  // Caller holds the shard lock.
  if constexpr (!core::kAuditEnabled) return;
  ABT_DBG_ASSERT(shard.index.size() == shard.lru.size(),
                 "cache index must mirror the LRU list one-to-one");
  ABT_DBG_ASSERT(shard.lru.size() <= max_entries_per_shard_,
                 "cache shard over its entry cap after eviction");
  std::size_t bytes = 0;
  for (auto it = shard.lru.begin(); it != shard.lru.end(); ++it) {
    bytes += entry_bytes(*it);
    const auto mirror = shard.index.find(it->key);
    ABT_DBG_ASSERT(mirror != shard.index.end(),
                   "every LRU node must be indexed");
    ABT_DBG_ASSERT(mirror->second == it,
                   "index iterator must point at its own LRU node");
  }
  ABT_DBG_ASSERT(bytes == shard.bytes,
                 "cache byte accounting must match the live entries");
  ABT_DBG_ASSERT(shard.bytes <= max_bytes_per_shard_ || shard.lru.size() <= 1,
                 "cache shard over its byte cap with evictable entries");
}

void SolutionCache::audit_invariants() const {
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    audit_shard(shard);
  }
}

}  // namespace abt::service
