#pragma once

// Solution cache for the abtd service. Keys are the CANONICAL form of a
// request — the instance's write_instance v2 serialization plus every
// parameter that shapes the response payload (protocol.hpp::cache_key) —
// so two textually different spellings of the same instance (comment
// lines, blank lines, directive spacing) collapse onto one entry. Values
// are the fully serialized response payload: a hit replays the original
// response BIT-IDENTICALLY; only the response header says it was cached.
//
// Sharded: each shard owns a mutex, an LRU list and an index mirroring
// the list (unordered_map name -> list iterator). Capacity is enforced
// per shard on both entry count and payload bytes, evicting least
// recently used entries first. Under ABT_AUDIT, audit_invariants() walks
// every shard and cross-checks the list/index mirror and the byte
// accounting.

#include <cstddef>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace abt::service {

/// Point-in-time counters aggregated over every shard.
struct CacheStats {
  std::size_t entries = 0;
  std::size_t bytes = 0;  ///< Sum of key + payload bytes of live entries.
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
};

class SolutionCache {
 public:
  /// One cached response: the exact payload bytes the first run produced
  /// plus the exit code the response header carried.
  struct Entry {
    std::string payload;
    int exit_code = 0;
  };

  /// Capacities are totals across the cache; each of the kShards shards
  /// enforces its 1/kShards slice (rounded up, never below one entry).
  SolutionCache(std::size_t max_entries, std::size_t max_bytes);

  /// Copies the entry out under the shard lock and marks it most
  /// recently used. nullopt on miss.
  [[nodiscard]] std::optional<Entry> lookup(const std::string& key);

  /// Inserts (or refreshes) `key`, then evicts LRU entries until the
  /// shard is back under both caps. An entry too large to ever fit its
  /// shard's byte cap is not inserted at all.
  void insert(const std::string& key, Entry entry);

  [[nodiscard]] CacheStats stats() const;

  /// Walks every shard and ABT_DBG_ASSERTs the LRU-list/index mirror
  /// (equal sizes, every index iterator resolves to a node with that
  /// key) and the byte accounting. Compiled to a no-op without
  /// ABT_AUDIT, like every audit in this codebase.
  void audit_invariants() const;

 private:
  struct Node {
    std::string key;
    Entry entry;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::list<Node> lru;  ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Node>::iterator> index;
    std::size_t bytes = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t insertions = 0;
    std::size_t evictions = 0;
  };

  static constexpr std::size_t kShards = 8;

  [[nodiscard]] static std::size_t entry_bytes(const Node& node) {
    return node.key.size() + node.entry.payload.size();
  }
  [[nodiscard]] Shard& shard_for(const std::string& key);
  void evict_over_caps(Shard& shard);
  void audit_shard(const Shard& shard) const;

  std::size_t max_entries_per_shard_;
  std::size_t max_bytes_per_shard_;
  Shard shards_[kShards];
};

}  // namespace abt::service
