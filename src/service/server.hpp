#pragma once

// abtd: the persistent solver daemon. An acceptor thread per listener
// (Unix-domain socket and/or loopback TCP) performs admission control at
// accept time and enqueues accepted connections into a bounded queue; a
// small crew of dispatcher threads pops requests and drives each one
// through the existing engine — solver cells fan out over the shared
// work-stealing pool exactly like a one-instance run_sweep, races go
// through engine::race — under a per-request core::RunContext carrying
// the (possibly shrunk) budget and a per-request cancel token chained
// with the server's shutdown source.
//
// Admission policy (accept-fast / shed-fast):
//   load = queued + executing requests, sampled at accept.
//   load <= queue_soft          -> full requested budget.
//   queue_soft < load           -> budget scaled by
//       max(min_budget_factor, 1 - (load - soft) / (cap - soft));
//       the response carries the effective budget in a `budget-ms` header
//       flag and its rows are anytime incumbents with certified
//       best_bound / gap.
//   queued >= queue_cap         -> the connection is answered with one
//       `overloaded` frame and closed without reading the request.
// The queue is therefore never unbounded, and a client can always tell
// which of the three regimes served it.
//
// Responses for identical canonical requests are served bit-identically
// from the SolutionCache (flag `cached=1`); shrunk-budget responses are
// never inserted, so degraded answers cannot shadow full ones.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "core/run_context.hpp"
#include "core/solver.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace abt::service {

struct ServiceConfig {
  std::string socket_path;  ///< Unix-domain listener ("" = off).
  int tcp_port = -1;        ///< Loopback TCP listener (-1 = off, 0 = any).
  int dispatchers = 2;      ///< Request workers (>= 2, so `cancel` can
                            ///< always reach an in-flight solve).
  int threads = 0;          ///< Per-request solver fan-out (0 = hardware).
  int queue_soft = 4;       ///< Load beyond this shrinks budgets.
  int queue_cap = 16;       ///< Queued beyond this sheds `overloaded`.
  double default_budget_ms = 500.0;  ///< Stands in for "unlimited" when
                                     ///< admission control must shrink.
  double min_budget_factor = 0.1;    ///< Shrink floor.
  int max_progress = 16;             ///< Cap on per-request `progress` K.
  std::size_t cache_entries = 512;
  std::size_t cache_bytes = std::size_t{16} << 20;
};

/// Point-in-time service counters (the `stats` verb serializes these).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;    ///< Final ok frames written.
  std::uint64_t errors = 0;    ///< Final error frames written.
  std::uint64_t shed = 0;      ///< Overloaded frames written.
  std::uint64_t shrunk = 0;    ///< Requests served under a shrunk budget.
  std::uint64_t cancelled = 0; ///< Cancel verbs that found their target.
  int queue_depth = 0;
  int in_flight = 0;
  CacheStats cache;
};

class Server {
 public:
  Server(const core::SolverRegistry& registry, ServiceConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts the acceptor/dispatcher
  /// threads. False (with `error`) when no listener is configured or a
  /// bind fails; the server is then fully stopped.
  [[nodiscard]] bool start(std::string* error);

  /// Stops accepting, cancels in-flight runs (they return their anytime
  /// incumbents), sheds still-queued connections with `overloaded` and
  /// joins every thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const;
  /// Resolved TCP port (meaningful after start when tcp_port >= 0).
  [[nodiscard]] int tcp_port() const { return resolved_port_; }
  /// The primary client address: the Unix socket when configured, the
  /// resolved TCP endpoint otherwise.
  [[nodiscard]] Address address() const;
  [[nodiscard]] ServiceStats stats() const;

  /// ABT_AUDIT walk over the request queue bounds and the cache's
  /// LRU/index mirror. No-op in release builds.
  void audit_invariants() const;

 private:
  struct Pending {
    Connection conn;
    double factor = 1.0;  ///< Admission budget factor, sampled at accept.
  };

  [[nodiscard]] double admission_factor(int load) const;
  [[nodiscard]] int listen_unix(std::string* error);
  [[nodiscard]] int listen_tcp(std::string* error);
  void accept_loop(int listen_fd);
  void dispatch_loop();
  void serve(Connection& conn, double factor);
  void handle_solve(Connection& conn, const SolveRequest& request,
                    double factor);
  void handle_cancel(Connection& conn, const Frame& frame);
  void handle_stats(Connection& conn);
  void send_overloaded(Connection& conn, int queued);
  void send_error(Connection& conn, const std::string& message);
  void audit_queue_locked() const;

  const core::SolverRegistry& registry_;
  ServiceConfig config_;
  SolutionCache cache_;

  std::vector<int> listen_fds_;
  int resolved_port_ = -1;
  std::vector<std::thread> acceptors_;
  std::vector<std::thread> dispatchers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  core::CancelSource stop_source_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  int in_flight_ = 0;

  mutable std::mutex active_mutex_;
  std::map<std::string, core::CancelSource> active_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shrunk_{0};
  std::atomic<std::uint64_t> cancelled_{0};
};

}  // namespace abt::service
