#include "busy/proper_cover.hpp"

#include <algorithm>
#include <limits>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::JobId;

std::vector<JobId> proper_cover(const ContinuousInstance& inst,
                                const std::vector<JobId>& candidates) {
  struct Item {
    double start;
    double end;
    JobId job;
  };
  std::vector<Item> items;
  items.reserve(candidates.size());
  for (JobId j : candidates) {
    const core::ContinuousJob& job = inst.job(j);
    items.push_back({job.release, job.release + job.length, j});
  }

  // Drop dominated execution intervals (contained in another candidate's).
  // Sort by (start asc, end desc): an item is dominated iff some earlier
  // item in this order has end >= its end. Ties (identical intervals) keep
  // the first occurrence only.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end > b.end;
    return a.job < b.job;
  });
  std::vector<Item> proper;
  double max_end = -std::numeric_limits<double>::infinity();
  for (const Item& it : items) {
    if (it.end <= max_end) continue;  // contained in an earlier interval
    proper.push_back(it);
    max_end = it.end;
  }
  // `proper` is sorted by start, and by construction also by end
  // (strictly increasing), i.e. a proper instance.

  // Sweep: maintain the frontier (max deadline of Q so far). Among the
  // remaining jobs live at the frontier, keep the furthest-reaching one and
  // discard the rest; when none is live (a gap), start a new component.
  std::vector<JobId> q;
  double frontier = -std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  while (i < proper.size()) {
    if (proper[i].start >= frontier) {
      // Gap (or first job): the next component starts here.
      q.push_back(proper[i].job);
      frontier = proper[i].end;
      ++i;
      continue;
    }
    // Jobs live at the frontier form a contiguous run [i, last]: starts are
    // increasing, so all with start < frontier. Ends are increasing, so the
    // furthest-reaching live job is the last of the run.
    std::size_t last = i;
    while (last + 1 < proper.size() && proper[last + 1].start < frontier) {
      ++last;
    }
    q.push_back(proper[last].job);
    ABT_ASSERT(proper[last].end > frontier,
               "proper set: later start implies later end");
    frontier = proper[last].end;
    i = last + 1;  // everything in between is discarded (already covered)
  }
  return q;
}

LevelPeeler::LevelPeeler(const ContinuousInstance& inst,
                         const std::vector<JobId>& candidates) {
  items_.reserve(candidates.size());
  for (JobId j : candidates) {
    const core::ContinuousJob& job = inst.job(j);
    items_.push_back({job.release, job.release + job.length, j});
  }
  // Same order as proper_cover's per-call sort; maintained across peels by
  // stable compaction, so no later call ever sorts again.
  std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end > b.end;
    return a.job < b.job;
  });
}

std::vector<JobId> LevelPeeler::extract_level() {
  // Pass 1: the domination filter of proper_cover — an item survives iff no
  // earlier item (in (start asc, end desc) order) reaches at least as far.
  // Dominated items are NOT consumed; they stay in the pool for later
  // levels, exactly as when proper_cover is re-run on the remaining set.
  proper_.clear();
  double max_end = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].end <= max_end) continue;
    proper_.push_back(i);
    max_end = items_[i].end;
  }

  // Pass 2: the frontier sweep over the proper subsequence (starts and ends
  // both strictly increasing along `proper_`).
  std::vector<JobId> level;
  std::vector<char> taken(items_.size(), 0);
  double frontier = -std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  while (i < proper_.size()) {
    if (items_[proper_[i]].start >= frontier) {
      level.push_back(items_[proper_[i]].job);
      taken[proper_[i]] = 1;
      frontier = items_[proper_[i]].end;
      ++i;
      continue;
    }
    std::size_t last = i;
    while (last + 1 < proper_.size() &&
           items_[proper_[last + 1]].start < frontier) {
      ++last;
    }
    level.push_back(items_[proper_[last]].job);
    taken[proper_[last]] = 1;
    ABT_ASSERT(items_[proper_[last]].end > frontier,
               "proper set: later start implies later end");
    frontier = items_[proper_[last]].end;
    i = last + 1;
  }

  // Stable compaction keeps the survivors sorted for the next peel.
  std::size_t w = 0;
  for (std::size_t r = 0; r < items_.size(); ++r) {
    if (taken[r] == 0) items_[w++] = items_[r];
  }
  items_.resize(w);
  return level;
}

}  // namespace abt::busy
