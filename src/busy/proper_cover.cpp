#include "busy/proper_cover.hpp"

#include <algorithm>
#include <limits>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::JobId;

std::vector<JobId> proper_cover(const ContinuousInstance& inst,
                                const std::vector<JobId>& candidates) {
  struct Item {
    double start;
    double end;
    JobId job;
  };
  std::vector<Item> items;
  items.reserve(candidates.size());
  for (JobId j : candidates) {
    const core::ContinuousJob& job = inst.job(j);
    items.push_back({job.release, job.release + job.length, j});
  }

  // Drop dominated execution intervals (contained in another candidate's).
  // Sort by (start asc, end desc): an item is dominated iff some earlier
  // item in this order has end >= its end. Ties (identical intervals) keep
  // the first occurrence only.
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end > b.end;
    return a.job < b.job;
  });
  std::vector<Item> proper;
  double max_end = -std::numeric_limits<double>::infinity();
  for (const Item& it : items) {
    if (it.end <= max_end) continue;  // contained in an earlier interval
    proper.push_back(it);
    max_end = it.end;
  }
  // `proper` is sorted by start, and by construction also by end
  // (strictly increasing), i.e. a proper instance.

  // Sweep: maintain the frontier (max deadline of Q so far). Among the
  // remaining jobs live at the frontier, keep the furthest-reaching one and
  // discard the rest; when none is live (a gap), start a new component.
  std::vector<JobId> q;
  double frontier = -std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  while (i < proper.size()) {
    if (proper[i].start >= frontier) {
      // Gap (or first job): the next component starts here.
      q.push_back(proper[i].job);
      frontier = proper[i].end;
      ++i;
      continue;
    }
    // Jobs live at the frontier form a contiguous run [i, last]: starts are
    // increasing, so all with start < frontier. Ends are increasing, so the
    // furthest-reaching live job is the last of the run.
    std::size_t last = i;
    while (last + 1 < proper.size() && proper[last + 1].start < frontier) {
      ++last;
    }
    q.push_back(proper[last].job);
    ABT_ASSERT(proper[last].end > frontier,
               "proper set: later start implies later end");
    frontier = proper[last].end;
    i = last + 1;  // everything in between is discarded (already covered)
  }
  return q;
}

}  // namespace abt::busy
