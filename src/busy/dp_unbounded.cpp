#include "busy/dp_unbounded.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

/// Search key: (position, interned id of the unsatisfied stragglers in
/// canonical (release, id) order). Positions come from a finite derived
/// set, so exact double equality is safe. Pending sets are hash-consed into
/// a pool — many states share the same straggler set, so the memo key is 16
/// bytes and each distinct set is stored (and hashed) once.
struct StateKey {
  double t;
  int pending_id;

  bool operator==(const StateKey& o) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(key.t));
    std::memcpy(&bits, &key.t, sizeof(bits));
    mix(bits);
    mix(static_cast<std::uint64_t>(key.pending_id) + 0x9e3779b9ULL);
    return static_cast<std::size_t>(h);
  }
};

struct PendingVecHash {
  std::size_t operator()(const std::vector<JobId>& v) const {
    std::uint64_t h = 1469598103934665603ULL;
    for (JobId j : v) {
      h ^= static_cast<std::uint64_t>(j) + 0x9e3779b9ULL;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

struct StateValue {
  double cost = std::numeric_limits<double>::infinity();
  double chosen_x = 0.0;
  double chosen_y = 0.0;
  bool terminal = false;
};

class UnboundedSolver {
 public:
  UnboundedSolver(const ContinuousInstance& inst,
                  const UnboundedOptions& options)
      : inst_(inst), options_(options) {
    const int n = inst_.size();
    r_.resize(static_cast<std::size_t>(n));
    p_.resize(static_cast<std::size_t>(n));
    k_.resize(static_cast<std::size_t>(n));
    for (JobId j = 0; j < n; ++j) {
      const core::ContinuousJob& job = inst_.job(j);
      r_[static_cast<std::size_t>(j)] = job.release;
      p_[static_cast<std::size_t>(j)] = job.length;
      k_[static_cast<std::size_t>(j)] = job.latest_start();
    }
    // Candidate window starts: releases and latest starts. An exchange
    // argument (push each window's anchor right, merging on collision)
    // shows some optimal solution anchors every window at one of these.
    anchors_ = r_;
    anchors_.insert(anchors_.end(), k_.begin(), k_.end());
    std::sort(anchors_.begin(), anchors_.end());
    anchors_.erase(std::unique(anchors_.begin(), anchors_.end()),
                   anchors_.end());
    // Jobs indexed by release once, so unsatisfied_at binary-searches the
    // released-at-or-after-t suffix instead of scanning and sorting all n
    // jobs per memoized state.
    by_release_.resize(static_cast<std::size_t>(n));
    std::iota(by_release_.begin(), by_release_.end(), JobId{0});
    std::sort(by_release_.begin(), by_release_.end(), [this](JobId a, JobId b) {
      const double ra = r_[static_cast<std::size_t>(a)];
      const double rb = r_[static_cast<std::size_t>(b)];
      return ra < rb || (ra == rb && a < b);
    });
    release_sorted_.reserve(by_release_.size());
    for (JobId j : by_release_) {
      release_sorted_.push_back(r_[static_cast<std::size_t>(j)]);
    }
  }

  UnboundedSolution run() {
    UnboundedSolution out;
    const int n = inst_.size();
    out.starts.assign(static_cast<std::size_t>(n), 0.0);
    if (n == 0) return out;

    const double t0 = -std::numeric_limits<double>::infinity();
    const int empty_id = intern({});
    const double best = solve(t0, empty_id);
    if (exploded_) {
      // Fallback: push-left at release (valid upper bound; never triggered
      // by the test/bench workloads, which assert `exact`).
      for (JobId j = 0; j < n; ++j) {
        out.starts[static_cast<std::size_t>(j)] = r_[static_cast<std::size_t>(j)];
      }
      out.exact = false;
      out.timed_out = timed_out_;
    } else {
      reconstruct(t0, empty_id, out.starts);
      out.exact = true;
      (void)best;
    }
    std::vector<Interval> runs;
    runs.reserve(static_cast<std::size_t>(n));
    for (JobId j = 0; j < n; ++j) {
      const double s = out.starts[static_cast<std::size_t>(j)];
      runs.push_back({s, s + p_[static_cast<std::size_t>(j)]});
    }
    out.windows = core::interval_union(runs);
    out.busy_time = core::span_of(out.windows);
    out.nodes = static_cast<long>(memo_.size());
    out.interned = static_cast<long>(interner_.size());
    return out;
  }

 private:
  /// Obligation of job j for a window anchored at x: the earliest end a
  /// window starting at x must have to satisfy j (push-left position).
  [[nodiscard]] double obligation(JobId j, double x) const {
    return std::max(r_[static_cast<std::size_t>(j)], x) +
           p_[static_cast<std::size_t>(j)];
  }

  /// All jobs not yet satisfied at state (t, pending): the carried
  /// stragglers plus every job released at or after t. Pending jobs are all
  /// released strictly before t and kept in (release, id) order, and the
  /// suffix of `by_release_` from the binary-searched cut is in the same
  /// order, so concatenation yields the canonical ordering with no sort.
  [[nodiscard]] std::vector<JobId> unsatisfied_at(
      double t, const std::vector<JobId>& pending) const {
    const auto cut =
        std::lower_bound(release_sorted_.begin(), release_sorted_.end(), t);
    const auto first =
        by_release_.begin() + (cut - release_sorted_.begin());
    std::vector<JobId> out;
    out.reserve(pending.size() +
                static_cast<std::size_t>(by_release_.end() - first));
    out.insert(out.end(), pending.begin(), pending.end());
    out.insert(out.end(), first, by_release_.end());
    return out;
  }

  /// Interns a pending vector, returning its pool id (hash-consing: equal
  /// vectors share one id and one stored copy). Lookup-first: the common
  /// hit path allocates nothing — emplace would build and discard a map
  /// node per call.
  int intern(std::vector<JobId> pending) {
    if (const auto it = interner_.find(pending); it != interner_.end()) {
      return it->second;
    }
    const auto it =
        interner_.emplace(std::move(pending), static_cast<int>(pool_.size()))
            .first;
    pool_.push_back(&it->first);
    return it->second;
  }

  [[nodiscard]] const std::vector<JobId>& pending_set(int id) const {
    return *pool_[static_cast<std::size_t>(id)];
  }

  double solve(double t, int pending_id) {
    if (exploded_) return std::numeric_limits<double>::infinity();
    StateKey key{t, pending_id};
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second.cost;
    }
    if (static_cast<long>(memo_.size()) >= options_.state_limit) {
      exploded_ = true;
      return std::numeric_limits<double>::infinity();
    }
    if ((++polls_ & 1023) == 0 && options_.context != nullptr &&
        options_.context->should_stop()) {
      exploded_ = true;
      timed_out_ = true;
      return std::numeric_limits<double>::infinity();
    }

    const std::vector<JobId> todo = unsatisfied_at(t, pending_set(pending_id));
    StateValue value;
    if (todo.empty()) {
      value.cost = 0.0;
      value.terminal = true;
      memo_.emplace(std::move(key), value);
      return 0.0;
    }

    // The next window is the earliest remaining, so it must start no later
    // than every unsatisfied job's latest start.
    double limit = std::numeric_limits<double>::infinity();
    for (JobId j : todo) {
      limit = std::min(limit, k_[static_cast<std::size_t>(j)]);
    }

    for (double x : anchors_) {
      if (x < t || x > limit + 1e-12) continue;
      // Candidate ends: obligations of the unsatisfied jobs.
      std::vector<double> ends;
      ends.reserve(todo.size());
      for (JobId j : todo) ends.push_back(obligation(j, x));
      std::sort(ends.begin(), ends.end());
      ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
      for (double y : ends) {
        // Jobs satisfied by window [x, y]; the rest roll forward.
        std::vector<JobId> next_pending;
        next_pending.reserve(todo.size());
        bool dead = false;
        for (JobId j : todo) {
          if (obligation(j, x) <= y + 1e-12) continue;  // satisfied
          if (r_[static_cast<std::size_t>(j)] >= y) continue;  // future
          if (k_[static_cast<std::size_t>(j)] < y) {
            dead = true;  // straggler expired; a longer window may save it
            break;
          }
          next_pending.push_back(j);
        }
        if (dead) continue;
        const double sub = solve(y, intern(std::move(next_pending)));
        if (exploded_) return std::numeric_limits<double>::infinity();
        const double total = (y - x) + sub;
        if (total < value.cost - 1e-12) {
          value.cost = total;
          value.chosen_x = x;
          value.chosen_y = y;
        }
      }
    }
    ABT_ASSERT(value.cost < std::numeric_limits<double>::infinity(),
               "structurally valid instance always has a schedule");
    const double cost = value.cost;
    memo_.emplace(std::move(key), value);
    return cost;
  }

  void reconstruct(double t, int pending_id, std::vector<double>& starts) {
    while (true) {
      const auto it = memo_.find(StateKey{t, pending_id});
      ABT_ASSERT(it != memo_.end(), "state missing during reconstruction");
      const StateValue& value = it->second;
      if (value.terminal) return;
      const double x = value.chosen_x;
      const double y = value.chosen_y;
      const std::vector<JobId> todo = unsatisfied_at(t, pending_set(pending_id));
      std::vector<JobId> next_pending;
      for (JobId j : todo) {
        if (obligation(j, x) <= y + 1e-12) {
          starts[static_cast<std::size_t>(j)] =
              std::max(r_[static_cast<std::size_t>(j)], x);
        } else if (r_[static_cast<std::size_t>(j)] < y) {
          next_pending.push_back(j);
        }
      }
      t = y;
      pending_id = intern(std::move(next_pending));
    }
  }

  const ContinuousInstance& inst_;
  UnboundedOptions options_;
  std::vector<double> r_;
  std::vector<double> p_;
  std::vector<double> k_;
  std::vector<double> anchors_;
  std::vector<JobId> by_release_;        ///< Ids in (release, id) order.
  std::vector<double> release_sorted_;   ///< r_ values along by_release_.
  std::unordered_map<StateKey, StateValue, StateKeyHash> memo_;
  /// Hash-consing pool: content -> id, plus id -> content pointers (stable
  /// across rehash because unordered_map nodes never move).
  std::unordered_map<std::vector<JobId>, int, PendingVecHash> interner_;
  std::vector<const std::vector<JobId>*> pool_;
  long polls_ = 0;
  bool exploded_ = false;
  bool timed_out_ = false;
};

}  // namespace

UnboundedSolution solve_unbounded(const ContinuousInstance& inst,
                                  UnboundedOptions options) {
  ABT_ASSERT(inst.structurally_valid(), "invalid instance");
  UnboundedSolver solver(inst, options);
  return solver.run();
}

ContinuousInstance freeze_to_interval_instance(
    const ContinuousInstance& inst, const UnboundedSolution& solution) {
  std::vector<core::ContinuousJob> jobs;
  jobs.reserve(static_cast<std::size_t>(inst.size()));
  for (JobId j = 0; j < inst.size(); ++j) {
    const double s = solution.starts[static_cast<std::size_t>(j)];
    const double p = inst.job(j).length;
    jobs.push_back({s, s + p, p});
  }
  return ContinuousInstance(std::move(jobs), inst.capacity());
}

}  // namespace abt::busy
