#pragma once

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Online busy-time scheduling of interval jobs (the setting of Shalom et
/// al. [13], discussed in the paper's related work): jobs arrive in release
/// order and must be assigned to a machine immediately and irrevocably.
/// Deterministic algorithms cannot beat Omega(g)-competitive in general;
/// these are the natural baselines an offline improvement is measured
/// against.
enum class OnlinePolicy {
  kFirstFit,  ///< First machine whose capacity survives.
  kBestFit,   ///< Machine whose busy time grows the least (ties: first).
  kNextFit,   ///< Last opened machine, else a new one.
};

/// Runs the online simulation: jobs are presented sorted by release time
/// (ties by id) and placed according to `policy`. Output is feasible for
/// every policy; cost varies.
[[nodiscard]] core::BusySchedule schedule_online(
    const core::ContinuousInstance& inst, OnlinePolicy policy);

}  // namespace abt::busy
