#include "busy/demand_profile.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::Interval;
using core::RealTime;

DemandProfile::DemandProfile(const ContinuousInstance& inst) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "demand profile is defined for interval jobs");
  const std::vector<Interval> runs = inst.forced_intervals();
  const std::vector<RealTime> points = core::event_points(runs);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const RealTime lo = points[i];
    const RealTime hi = points[i + 1];
    const int raw = core::coverage_at(runs, lo, hi);
    if (raw == 0) continue;
    const int demand = (raw + inst.capacity() - 1) / inst.capacity();
    segments_.push_back({{lo, hi}, raw, demand});
  }
}

RealTime DemandProfile::cost() const {
  RealTime total = 0.0;
  for (const ProfileSegment& s : segments_) {
    total += s.demand * s.interval.length();
  }
  return total;
}

int DemandProfile::max_demand() const {
  int best = 0;
  for (const ProfileSegment& s : segments_) best = std::max(best, s.demand);
  return best;
}

int DemandProfile::max_raw_demand() const {
  int best = 0;
  for (const ProfileSegment& s : segments_) best = std::max(best, s.raw_demand);
  return best;
}

ContinuousInstance pad_to_capacity_multiple(const ContinuousInstance& inst,
                                            int* dummy_count) {
  const DemandProfile profile(inst);
  std::vector<core::ContinuousJob> jobs = inst.jobs();
  int added = 0;
  for (const ProfileSegment& s : profile.segments()) {
    const int target = s.demand * inst.capacity();
    for (int k = s.raw_demand; k < target; ++k) {
      jobs.push_back({s.interval.lo, s.interval.hi, s.interval.length()});
      ++added;
    }
  }
  if (dummy_count != nullptr) *dummy_count = added;
  return ContinuousInstance(std::move(jobs), inst.capacity());
}

}  // namespace abt::busy
