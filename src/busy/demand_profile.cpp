#include "busy/demand_profile.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "core/sweep.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::Interval;
using core::RealTime;

DemandProfile::DemandProfile(const ContinuousInstance& inst) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "demand profile is defined for interval jobs");
  // One O(n log n) sweep yields every interesting interval with its raw
  // demand; only the rounding to D(t) = ceil(|A(t)|/g) is ours.
  const core::CoverageProfile profile(inst.forced_intervals());
  segments_.reserve(profile.segments().size());
  for (const core::CoverageSegment& s : profile.segments()) {
    const int demand = (s.count + inst.capacity() - 1) / inst.capacity();
    segments_.push_back({s.interval, s.count, demand});
  }
}

RealTime DemandProfile::cost() const {
  RealTime total = 0.0;
  for (const ProfileSegment& s : segments_) {
    total += s.demand * s.interval.length();
  }
  return total;
}

int DemandProfile::max_demand() const {
  int best = 0;
  for (const ProfileSegment& s : segments_) best = std::max(best, s.demand);
  return best;
}

int DemandProfile::max_raw_demand() const {
  int best = 0;
  for (const ProfileSegment& s : segments_) best = std::max(best, s.raw_demand);
  return best;
}

ContinuousInstance pad_to_capacity_multiple(const ContinuousInstance& inst,
                                            int* dummy_count) {
  const DemandProfile profile(inst);
  std::vector<core::ContinuousJob> jobs = inst.jobs();
  int added = 0;
  for (const ProfileSegment& s : profile.segments()) {
    const int target = s.demand * inst.capacity();
    for (int k = s.raw_demand; k < target; ++k) {
      jobs.push_back({s.interval.lo, s.interval.hi, s.interval.length()});
      ++added;
    }
  }
  if (dummy_count != nullptr) *dummy_count = added;
  return ContinuousInstance(std::move(jobs), inst.capacity());
}

}  // namespace abt::busy
