#pragma once

#include <vector>

#include "core/continuous_instance.hpp"

namespace abt::busy {

/// One interesting interval with its demand (Definitions 11-13): no job
/// begins or ends strictly inside it, so both the raw demand |A(t)| and the
/// demand ceil(|A(t)|/g) are constant over it.
struct ProfileSegment {
  core::Interval interval;
  int raw_demand = 0;  ///< |A(t)| for t inside.
  int demand = 0;      ///< D(t) = ceil(raw/g).
};

/// The demand profile DeP(J) of an instance of interval jobs.
class DemandProfile {
 public:
  /// Builds the profile from the forced execution intervals of an
  /// interval-job instance.
  explicit DemandProfile(const core::ContinuousInstance& inst);

  [[nodiscard]] const std::vector<ProfileSegment>& segments() const {
    return segments_;
  }

  /// The lower bound of Observation 4: sum over interesting intervals of
  /// demand * length. Any feasible solution keeps ceil(|A(I)|/g) machines
  /// busy throughout I.
  [[nodiscard]] core::RealTime cost() const;

  /// Max demand over the profile (the profile's "height" in levels of g).
  [[nodiscard]] int max_demand() const;

  /// Max raw demand.
  [[nodiscard]] int max_raw_demand() const;

 private:
  std::vector<ProfileSegment> segments_;
};

/// Adds dummy interval jobs spanning each interesting interval until every
/// raw demand is a multiple of g; the demand profile cost is unchanged
/// (Appendix A.1). Returns the padded instance; `dummy_count` (optional)
/// receives the number of jobs added. Dummy jobs are appended after the
/// original jobs, so ids < inst.size() are preserved.
[[nodiscard]] core::ContinuousInstance pad_to_capacity_multiple(
    const core::ContinuousInstance& inst, int* dummy_count = nullptr);

}  // namespace abt::busy
