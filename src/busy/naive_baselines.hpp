#pragma once

// Pre-sweep (PR 1) implementations of the busy-time hot paths, kept
// verbatim as the single source of truth for (a) the equivalence suite in
// tests/test_sweep.cpp, which asserts the sweep-backed algorithms reproduce
// these placement-for-placement, and (b) the BM_*Naive baselines in
// bench/bench_perf.cpp, which record the speedup in every BENCH_PR<k>.json.
// Do not optimize this header; its value is staying frozen.

#include <algorithm>
#include <numeric>
#include <vector>

#include "busy/demand_profile.hpp"
#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy::naive {

/// busy/first_fit's original MachineState: per-job interval list with an
/// O(k^2) probe per candidate (rescan all k jobs at every event point).
class NaiveMachineState {
 public:
  explicit NaiveMachineState(int capacity) : capacity_(capacity) {}

  [[nodiscard]] bool fits(const core::Interval& candidate) const {
    int max_overlap = 0;
    std::vector<double> probes = {candidate.lo};
    for (const core::Interval& iv : jobs_) {
      if (iv.lo > candidate.lo && iv.lo < candidate.hi) probes.push_back(iv.lo);
    }
    for (double p : probes) {
      int overlap = 0;
      for (const core::Interval& iv : jobs_) {
        if (iv.lo <= p && p < iv.hi) ++overlap;
      }
      max_overlap = std::max(max_overlap, overlap);
    }
    return max_overlap + 1 <= capacity_;
  }

  void add(const core::Interval& iv) { jobs_.push_back(iv); }

 private:
  int capacity_;
  std::vector<core::Interval> jobs_;
};

/// busy/first_fit's original driver (non-increasing length order).
inline core::BusySchedule first_fit(const core::ContinuousInstance& inst) {
  std::vector<core::JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), core::JobId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](core::JobId a, core::JobId b) {
                     return inst.job(a).length > inst.job(b).length;
                   });
  core::BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<NaiveMachineState> machines;
  for (core::JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const core::Interval run{job.release, job.release + job.length};
    int chosen = -1;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m].fits(run)) {
        chosen = static_cast<int>(m);
        break;
      }
    }
    if (chosen < 0) {
      machines.emplace_back(inst.capacity());
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].add(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

/// busy/demand_profile's original constructor body: one naive O(n)
/// coverage count per event-point gap.
inline std::vector<ProfileSegment> demand_profile(
    const core::ContinuousInstance& inst) {
  const std::vector<core::Interval> runs = inst.forced_intervals();
  const std::vector<core::RealTime> points = core::event_points(runs);
  std::vector<ProfileSegment> segments;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const int raw = core::coverage_at(runs, points[i], points[i + 1]);
    if (raw == 0) continue;
    const int demand = (raw + inst.capacity() - 1) / inst.capacity();
    segments.push_back({{points[i], points[i + 1]}, raw, demand});
  }
  return segments;
}

/// busy/track's original one-shot max-weight track: sorts the candidates
/// by end on every call (the per-peel re-sort TrackPeeler eliminates).
inline std::vector<core::JobId> max_weight_track(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates,
    const std::vector<double>& weights) {
  const auto m = candidates.size();
  if (m == 0) return {};

  struct Item {
    double start;
    double end;
    double weight;
    core::JobId job;
  };
  std::vector<Item> items;
  items.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const core::ContinuousJob& job = inst.job(candidates[i]);
    items.push_back(
        {job.release, job.release + job.length, weights[i], candidates[i]});
  }
  // The original used std::sort, leaving tie order among equal ends
  // unspecified; the frozen reference pins it stably (candidate order) so
  // placement-for-placement equivalence with TrackPeeler — which also
  // stable-sorts its initial pool — is well-defined even under ties.
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.end < b.end; });

  std::vector<int> pred(m, -1);
  std::vector<double> ends(m);
  for (std::size_t i = 0; i < m; ++i) ends[i] = items[i].end;
  for (std::size_t i = 0; i < m; ++i) {
    const auto it = std::upper_bound(
        ends.begin(), ends.begin() + static_cast<std::ptrdiff_t>(i),
        items[i].start + 1e-12);
    pred[i] = static_cast<int>(it - ends.begin()) - 1;
  }

  std::vector<double> best(m + 1, 0.0);
  std::vector<char> take(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const double with_item =
        items[i].weight + best[static_cast<std::size_t>(pred[i] + 1)];
    if (with_item > best[i]) {
      best[i + 1] = with_item;
      take[i] = 1;
    } else {
      best[i + 1] = best[i];
    }
  }

  std::vector<core::JobId> out;
  for (auto i = static_cast<std::ptrdiff_t>(m) - 1; i >= 0;) {
    if (take[static_cast<std::size_t>(i)] != 0) {
      out.push_back(items[static_cast<std::size_t>(i)].job);
      i = pred[static_cast<std::size_t>(i)];
    } else {
      --i;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// busy/greedy_tracking's original loop: re-extract a longest track from
/// the remaining pool with a fresh sort per peel.
inline core::BusySchedule greedy_tracking(
    const core::ContinuousInstance& inst) {
  core::BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<core::JobId> remaining(static_cast<std::size_t>(inst.size()));
  std::iota(remaining.begin(), remaining.end(), core::JobId{0});
  int track_index = 0;
  while (!remaining.empty()) {
    std::vector<double> weights;
    weights.reserve(remaining.size());
    for (core::JobId j : remaining) weights.push_back(inst.job(j).length);
    const std::vector<core::JobId> track =
        max_weight_track(inst, remaining, weights);
    const int bundle = track_index / inst.capacity();
    for (core::JobId j : track) {
      sched.placements[static_cast<std::size_t>(j)] = {bundle,
                                                       inst.job(j).release};
    }
    std::vector<char> in_track(static_cast<std::size_t>(inst.size()), 0);
    for (core::JobId j : track) in_track[static_cast<std::size_t>(j)] = 1;
    std::erase_if(remaining, [&](core::JobId j) {
      return in_track[static_cast<std::size_t>(j)] != 0;
    });
    ++track_index;
  }
  return sched;
}

}  // namespace abt::busy::naive
