#pragma once

// Pre-optimization implementations of the busy-time hot paths (first_fit /
// demand_profile / track peeling from PR 1, online / preemptive from
// PR 4, the std::map-backed OccupancyIndex / OpenSet from PR 6's flat
// data-layout pass), kept verbatim as the single source of truth for
// (a) the equivalence suites (tests/test_sweep.cpp, tests/test_online.cpp,
// tests/test_preemptive.cpp, tests/test_flat_layout.cpp), which assert the
// optimized algorithms reproduce these placement-for-placement, and
// (b) the BM_*Naive baselines in bench/bench_perf.cpp, which record the
// speedup in every BENCH_PR<k>.json. Do not optimize this header; its
// value is staying frozen.

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>
#include <vector>

#include "busy/demand_profile.hpp"
#include "busy/online.hpp"
#include "busy/preemptive.hpp"
#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy::naive {

/// core/sweep's original (PR 1 - PR 5) OccupancyIndex: a std::map endpoint
/// map from coordinate to coverage level on [key, next key). Node-based,
/// so every probe chases allocator pointers; frozen here as the bit-exact
/// reference for core::FlatOccupancyIndex (tests/test_flat_layout.cpp).
class MapOccupancyIndex {
 public:
  [[nodiscard]] int max_coverage_in(core::RealTime lo,
                                    core::RealTime hi) const {
    if (hi <= lo || steps_.empty()) return 0;
    auto it = steps_.upper_bound(lo);
    int best = (it == steps_.begin()) ? 0 : std::prev(it)->second;
    for (; it != steps_.end() && it->first < hi; ++it) {
      best = std::max(best, it->second);
    }
    return best;
  }

  [[nodiscard]] core::RealTime covered_measure_in(core::RealTime lo,
                                                  core::RealTime hi) const {
    if (hi <= lo || steps_.empty()) return 0.0;
    auto it = steps_.upper_bound(lo);
    int level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
    core::RealTime covered = 0.0;
    core::RealTime cursor = lo;
    for (; it != steps_.end() && it->first < hi; ++it) {
      if (level > 0) covered += it->first - cursor;
      cursor = it->first;
      level = it->second;
    }
    if (level > 0) covered += hi - cursor;
    return covered;
  }

  void insert(const core::Interval& iv) {
    if (iv.empty()) return;
    const auto split = [this](core::RealTime t) {
      auto it = steps_.lower_bound(t);
      if (it == steps_.end() || it->first != t) {
        const int level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
        it = steps_.emplace_hint(it, t, level);
      }
      return it;
    };
    const auto it_hi = split(iv.hi);
    for (auto it = split(iv.lo); it != it_hi; ++it) ++it->second;
    ++count_;
  }

  [[nodiscard]] int size() const { return count_; }

  /// The (coordinate, level) steps, ascending — lets the equivalence suite
  /// compare internal state, not just query answers.
  [[nodiscard]] std::vector<std::pair<core::RealTime, int>> steps() const {
    return {steps_.begin(), steps_.end()};
  }

 private:
  std::map<core::RealTime, int> steps_;
  int count_ = 0;
};

/// busy/preemptive's original (PR 4 - PR 5) OpenSet: a std::map from lo to
/// hi over disjoint open intervals. Frozen as the bit-exact reference for
/// core::FlatIntervalSet (tests/test_flat_layout.cpp).
class MapOpenSet {
 public:
  static constexpr double kMergeEps = 1e-12;
  static constexpr double kSliverEps = 1e-9;

  [[nodiscard]] double measure_in(const core::Interval& window) const {
    double total = 0.0;
    for (auto it = first_overlapping(window);
         it != set_.end() && it->first < window.hi; ++it) {
      const double lo = std::max(it->first, window.lo);
      const double hi = std::min(it->second, window.hi);
      if (hi > lo) total += hi - lo;
    }
    return total;
  }

  [[nodiscard]] std::vector<core::Interval> covered_in(
      const core::Interval& window) const {
    std::vector<core::Interval> out;
    for (auto it = first_overlapping(window);
         it != set_.end() && it->first < window.hi; ++it) {
      const double lo = std::max(it->first, window.lo);
      const double hi = std::min(it->second, window.hi);
      if (hi > lo + kSliverEps) out.push_back({lo, hi});
    }
    return out;
  }

  [[nodiscard]] std::vector<core::Interval> free_in(
      const core::Interval& window) const {
    std::vector<core::Interval> out;
    double cursor = window.lo;
    for (auto it = first_overlapping(window);
         it != set_.end() && it->first < window.hi; ++it) {
      if (it->first > cursor) {
        out.push_back({cursor, std::min(it->first, window.hi)});
      }
      cursor = std::max(cursor, it->second);
      if (cursor >= window.hi) break;
    }
    if (cursor < window.hi) out.push_back({cursor, window.hi});
    std::erase_if(out, [](const core::Interval& iv) {
      return iv.length() <= kSliverEps;
    });
    return out;
  }

  void insert(core::Interval iv) {
    auto it = set_.upper_bound(iv.lo);
    if (it != set_.begin()) {
      const auto prev = std::prev(it);
      if (iv.lo <= prev->second + kMergeEps) {
        iv.lo = prev->first;
        iv.hi = std::max(iv.hi, prev->second);
        it = set_.erase(prev);
      }
    }
    while (it != set_.end() && it->first <= iv.hi + kMergeEps) {
      iv.hi = std::max(iv.hi, it->second);
      it = set_.erase(it);
    }
    set_.emplace(iv.lo, iv.hi);
  }

  [[nodiscard]] std::vector<core::Interval> intervals() const {
    std::vector<core::Interval> out;
    out.reserve(set_.size());
    for (const auto& [lo, hi] : set_) out.push_back({lo, hi});
    return out;
  }

 private:
  [[nodiscard]] std::map<double, double>::const_iterator first_overlapping(
      const core::Interval& w) const {
    auto it = set_.upper_bound(w.lo);
    if (it != set_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second > w.lo) return prev;
    }
    return it;
  }

  std::map<double, double> set_;
};

/// busy/first_fit's original MachineState: per-job interval list with an
/// O(k^2) probe per candidate (rescan all k jobs at every event point).
class NaiveMachineState {
 public:
  explicit NaiveMachineState(int capacity) : capacity_(capacity) {}

  [[nodiscard]] bool fits(const core::Interval& candidate) const {
    int max_overlap = 0;
    std::vector<double> probes = {candidate.lo};
    for (const core::Interval& iv : jobs_) {
      if (iv.lo > candidate.lo && iv.lo < candidate.hi) probes.push_back(iv.lo);
    }
    for (double p : probes) {
      int overlap = 0;
      for (const core::Interval& iv : jobs_) {
        if (iv.lo <= p && p < iv.hi) ++overlap;
      }
      max_overlap = std::max(max_overlap, overlap);
    }
    return max_overlap + 1 <= capacity_;
  }

  void add(const core::Interval& iv) { jobs_.push_back(iv); }

 private:
  int capacity_;
  std::vector<core::Interval> jobs_;
};

/// busy/first_fit's original driver (non-increasing length order).
inline core::BusySchedule first_fit(const core::ContinuousInstance& inst) {
  std::vector<core::JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), core::JobId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](core::JobId a, core::JobId b) {
                     return inst.job(a).length > inst.job(b).length;
                   });
  core::BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<NaiveMachineState> machines;
  for (core::JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const core::Interval run{job.release, job.release + job.length};
    int chosen = -1;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m].fits(run)) {
        chosen = static_cast<int>(m);
        break;
      }
    }
    if (chosen < 0) {
      machines.emplace_back(inst.capacity());
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].add(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

/// busy/demand_profile's original constructor body: one naive O(n)
/// coverage count per event-point gap.
inline std::vector<ProfileSegment> demand_profile(
    const core::ContinuousInstance& inst) {
  const std::vector<core::Interval> runs = inst.forced_intervals();
  const std::vector<core::RealTime> points = core::event_points(runs);
  std::vector<ProfileSegment> segments;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const int raw = core::coverage_at(runs, points[i], points[i + 1]);
    if (raw == 0) continue;
    const int demand = (raw + inst.capacity() - 1) / inst.capacity();
    segments.push_back({{points[i], points[i + 1]}, raw, demand});
  }
  return segments;
}

/// busy/track's original one-shot max-weight track: sorts the candidates
/// by end on every call (the per-peel re-sort TrackPeeler eliminates).
inline std::vector<core::JobId> max_weight_track(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates,
    const std::vector<double>& weights) {
  const auto m = candidates.size();
  if (m == 0) return {};

  struct Item {
    double start;
    double end;
    double weight;
    core::JobId job;
  };
  std::vector<Item> items;
  items.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const core::ContinuousJob& job = inst.job(candidates[i]);
    items.push_back(
        {job.release, job.release + job.length, weights[i], candidates[i]});
  }
  // The original used std::sort, leaving tie order among equal ends
  // unspecified; the frozen reference pins it stably (candidate order) so
  // placement-for-placement equivalence with TrackPeeler — which also
  // stable-sorts its initial pool — is well-defined even under ties.
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.end < b.end; });

  std::vector<int> pred(m, -1);
  std::vector<double> ends(m);
  for (std::size_t i = 0; i < m; ++i) ends[i] = items[i].end;
  for (std::size_t i = 0; i < m; ++i) {
    const auto it = std::upper_bound(
        ends.begin(), ends.begin() + static_cast<std::ptrdiff_t>(i),
        items[i].start + 1e-12);
    pred[i] = static_cast<int>(it - ends.begin()) - 1;
  }

  std::vector<double> best(m + 1, 0.0);
  std::vector<char> take(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const double with_item =
        items[i].weight + best[static_cast<std::size_t>(pred[i] + 1)];
    if (with_item > best[i]) {
      best[i + 1] = with_item;
      take[i] = 1;
    } else {
      best[i + 1] = best[i];
    }
  }

  std::vector<core::JobId> out;
  for (auto i = static_cast<std::ptrdiff_t>(m) - 1; i >= 0;) {
    if (take[static_cast<std::size_t>(i)] != 0) {
      out.push_back(items[static_cast<std::size_t>(i)].job);
      i = pred[static_cast<std::size_t>(i)];
    } else {
      --i;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

/// busy/greedy_tracking's original loop: re-extract a longest track from
/// the remaining pool with a fresh sort per peel.
inline core::BusySchedule greedy_tracking(
    const core::ContinuousInstance& inst) {
  core::BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<core::JobId> remaining(static_cast<std::size_t>(inst.size()));
  std::iota(remaining.begin(), remaining.end(), core::JobId{0});
  int track_index = 0;
  while (!remaining.empty()) {
    std::vector<double> weights;
    weights.reserve(remaining.size());
    for (core::JobId j : remaining) weights.push_back(inst.job(j).length);
    const std::vector<core::JobId> track =
        max_weight_track(inst, remaining, weights);
    const int bundle = track_index / inst.capacity();
    for (core::JobId j : track) {
      sched.placements[static_cast<std::size_t>(j)] = {bundle,
                                                       inst.job(j).release};
    }
    std::vector<char> in_track(static_cast<std::size_t>(inst.size()), 0);
    for (core::JobId j : track) in_track[static_cast<std::size_t>(j)] = 1;
    std::erase_if(remaining, [&](core::JobId j) {
      return in_track[static_cast<std::size_t>(j)] != 0;
    });
    ++track_index;
  }
  return sched;
}

/// busy/online's original (PR 4) machine view: flat interval list with an
/// O(k^2) capacity probe, an O(k log k) union re-span per best-fit growth
/// probe and another per commit.
class NaiveOnlineMachine {
 public:
  explicit NaiveOnlineMachine(int capacity) : capacity_(capacity) {}

  [[nodiscard]] bool fits(const core::Interval& candidate) const {
    std::vector<double> probes = {candidate.lo};
    for (const core::Interval& iv : jobs_) {
      if (iv.lo > candidate.lo && iv.lo < candidate.hi) probes.push_back(iv.lo);
    }
    for (double p : probes) {
      int overlap = 1;
      for (const core::Interval& iv : jobs_) {
        if (iv.lo <= p && p < iv.hi) ++overlap;
      }
      if (overlap > capacity_) return false;
    }
    return true;
  }

  [[nodiscard]] double growth(const core::Interval& candidate) const {
    std::vector<core::Interval> with = jobs_;
    with.push_back(candidate);
    return core::span_of(with) - busy_;
  }

  void add(const core::Interval& iv) {
    jobs_.push_back(iv);
    busy_ = core::span_of(jobs_);
  }

 private:
  int capacity_;
  std::vector<core::Interval> jobs_;
  double busy_ = 0.0;
};

/// busy/online's original driver (identical placement logic; only the
/// machine probes changed in the sweep-backed version).
inline core::BusySchedule schedule_online(const core::ContinuousInstance& inst,
                                          OnlinePolicy policy) {
  std::vector<core::JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), core::JobId{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](core::JobId a, core::JobId b) {
                     return inst.job(a).release < inst.job(b).release;
                   });

  core::BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<NaiveOnlineMachine> machines;

  for (core::JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const core::Interval run{job.release, job.release + job.length};
    int chosen = -1;
    switch (policy) {
      case OnlinePolicy::kFirstFit:
        for (std::size_t m = 0; m < machines.size(); ++m) {
          if (machines[m].fits(run)) {
            chosen = static_cast<int>(m);
            break;
          }
        }
        break;
      case OnlinePolicy::kBestFit: {
        double best_growth = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < machines.size(); ++m) {
          if (!machines[m].fits(run)) continue;
          const double g = machines[m].growth(run);
          if (g < best_growth - 1e-12) {
            best_growth = g;
            chosen = static_cast<int>(m);
          }
        }
        break;
      }
      case OnlinePolicy::kNextFit:
        if (!machines.empty() && machines.back().fits(run)) {
          chosen = static_cast<int>(machines.size()) - 1;
        }
        break;
    }
    if (chosen < 0) {
      machines.emplace_back(inst.capacity());
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].add(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

/// busy/preemptive's original helpers: full scans over the open set.
inline double preemptive_measure_in(const std::vector<core::Interval>& open,
                                    const core::Interval& window) {
  double total = 0.0;
  for (const core::Interval& iv : open) {
    const double lo = std::max(iv.lo, window.lo);
    const double hi = std::min(iv.hi, window.hi);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

inline std::vector<core::Interval> preemptive_free_in(
    const std::vector<core::Interval>& open, const core::Interval& window) {
  constexpr double kEps = 1e-9;
  std::vector<core::Interval> out;
  double cursor = window.lo;
  for (const core::Interval& iv : open) {
    if (iv.hi <= window.lo || iv.lo >= window.hi) continue;
    if (iv.lo > cursor) out.push_back({cursor, std::min(iv.lo, window.hi)});
    cursor = std::max(cursor, iv.hi);
    if (cursor >= window.hi) break;
  }
  if (cursor < window.hi) out.push_back({cursor, window.hi});
  std::erase_if(out, [](const core::Interval& iv) {
    return iv.length() <= kEps;
  });
  return out;
}

/// busy/preemptive's original unbounded algorithm: flat open vector with a
/// full re-union per job (O(n^2 log n) end to end).
inline PreemptiveUnboundedSolution solve_preemptive_unbounded(
    const core::ContinuousInstance& inst) {
  constexpr double kEps = 1e-9;
  PreemptiveUnboundedSolution out;

  std::vector<core::JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), core::JobId{0});
  std::sort(order.begin(), order.end(), [&](core::JobId a, core::JobId b) {
    return inst.job(a).deadline < inst.job(b).deadline;
  });

  std::vector<core::Interval> open;
  for (core::JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const core::Interval window{job.release, job.deadline};
    double deficit = job.length - preemptive_measure_in(open, window);
    if (deficit <= kEps) continue;
    std::vector<core::Interval> gaps = preemptive_free_in(open, window);
    for (auto it = gaps.rbegin(); it != gaps.rend() && deficit > kEps; ++it) {
      const double take = std::min(deficit, it->length());
      open.push_back({it->hi - take, it->hi});
      deficit -= take;
    }
    open = core::interval_union(std::move(open));
  }

  out.open = open;
  out.busy_time = core::span_of(open);

  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});
  for (core::JobId j = 0; j < inst.size(); ++j) {
    const core::ContinuousJob& job = inst.job(j);
    double need = job.length;
    std::vector<core::Interval> available;
    for (const core::Interval& iv : open) {
      const double lo = std::max(iv.lo, job.release);
      const double hi = std::min(iv.hi, job.deadline);
      if (hi > lo + kEps) available.push_back({lo, hi});
    }
    for (auto it = available.rbegin(); it != available.rend() && need > kEps;
         ++it) {
      const double take = std::min(need, it->length());
      out.schedule.pieces[static_cast<std::size_t>(j)].push_back(
          {0, {it->hi - take, it->hi}});
      need -= take;
    }
    std::reverse(out.schedule.pieces[static_cast<std::size_t>(j)].begin(),
                 out.schedule.pieces[static_cast<std::size_t>(j)].end());
  }
  return out;
}

/// busy/preemptive's original bounded algorithm: rescans every job's piece
/// list for each interesting interval (O(cells * pieces)).
inline PreemptiveBoundedSolution solve_preemptive_bounded(
    const core::ContinuousInstance& inst) {
  constexpr double kEps = 1e-9;
  const PreemptiveUnboundedSolution unbounded =
      solve_preemptive_unbounded(inst);

  PreemptiveBoundedSolution out;
  out.opt_infinity = unbounded.busy_time;
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});

  std::vector<double> points;
  for (core::JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece :
         unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
      points.push_back(piece.run.lo);
      points.push_back(piece.run.hi);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(
      std::unique(points.begin(), points.end(),
                  [](double a, double b) { return std::abs(a - b) < kEps; }),
      points.end());

  for (std::size_t c = 0; c + 1 < points.size(); ++c) {
    const core::Interval cell{points[c], points[c + 1]};
    if (cell.length() <= kEps) continue;
    const double mid = cell.lo + cell.length() / 2;
    std::vector<core::JobId> running;
    for (core::JobId j = 0; j < inst.size(); ++j) {
      for (const auto& piece :
           unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
        if (piece.run.lo <= mid && mid < piece.run.hi) {
          running.push_back(j);
          break;
        }
      }
    }
    if (running.empty()) continue;
    for (std::size_t idx = 0; idx < running.size(); ++idx) {
      const int machine = static_cast<int>(idx) / inst.capacity();
      out.schedule.pieces[static_cast<std::size_t>(running[idx])].push_back(
          {machine, cell});
    }
  }

  for (core::JobId j = 0; j < inst.size(); ++j) {
    auto& pieces = out.schedule.pieces[static_cast<std::size_t>(j)];
    std::sort(pieces.begin(), pieces.end(),
              [](const core::PreemptiveBusySchedule::Piece& a,
                 const core::PreemptiveBusySchedule::Piece& b) {
                return a.run.lo < b.run.lo;
              });
    std::vector<core::PreemptiveBusySchedule::Piece> merged;
    for (const auto& piece : pieces) {
      if (!merged.empty() && merged.back().machine == piece.machine &&
          std::abs(merged.back().run.hi - piece.run.lo) < kEps) {
        merged.back().run.hi = piece.run.hi;
      } else {
        merged.push_back(piece);
      }
    }
    pieces = std::move(merged);
  }

  out.busy_time = core::busy_cost(inst, out.schedule);
  return out;
}

}  // namespace abt::busy::naive
