#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"
#include "core/run_context.hpp"

namespace abt::busy {

/// The width generalization of busy time studied by Khandekar et al. [9]
/// and discussed in the paper's introduction: every job carries a demand
/// ("width") w_j and a machine may run any set of jobs whose *cumulative*
/// demand is at most g at every time. Unit widths recover the standard
/// model.
struct WeightedJob {
  core::ContinuousJob job;
  int width = 1;

  friend bool operator==(const WeightedJob&, const WeightedJob&) = default;
};

class WeightedInstance {
 public:
  WeightedInstance() = default;
  WeightedInstance(std::vector<WeightedJob> jobs, int capacity);

  [[nodiscard]] const std::vector<WeightedJob>& jobs() const { return jobs_; }
  [[nodiscard]] const WeightedJob& job(core::JobId j) const {
    return jobs_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] int capacity() const { return capacity_; }

  /// Width-weighted mass lower bound: sum_j w_j p_j / g.
  [[nodiscard]] double mass_lower_bound() const;
  /// Span lower bound for interval jobs: projection of the forced runs.
  [[nodiscard]] double span_lower_bound() const;

  [[nodiscard]] bool all_interval_jobs(double eps = 1e-9) const;
  [[nodiscard]] bool structurally_valid(std::string* why = nullptr) const;

  /// The width-forgetting view (used by the g = infinity DP, where widths
  /// are irrelevant because capacity is unbounded).
  [[nodiscard]] core::ContinuousInstance unweighted() const;

 private:
  std::vector<WeightedJob> jobs_;
  int capacity_ = 1;
};

/// Feasibility: on every machine, the cumulative width of concurrently
/// running jobs never exceeds g (plus the usual window constraints).
[[nodiscard]] bool check_weighted_schedule(const WeightedInstance& inst,
                                           const core::BusySchedule& sched,
                                           std::string* why = nullptr,
                                           double eps = 1e-9);

/// Width-aware FIRSTFIT for interval jobs: non-increasing length order,
/// first machine where the cumulative-width constraint survives.
[[nodiscard]] core::BusySchedule weighted_first_fit(
    const WeightedInstance& inst);

/// The narrow/wide split of Khandekar et al. [9] (5-approximation for
/// interval jobs): jobs with w > g/2 ("wide") are packed by FIRSTFIT among
/// themselves with at most one running at a time per machine; narrow jobs
/// (w <= g/2) go through width-aware FIRSTFIT on separate machines.
[[nodiscard]] core::BusySchedule narrow_wide_split(
    const WeightedInstance& inst);

/// Exact solver for weighted interval instances (partition search). A free
/// run refuses instances over `max_jobs`; under a RunContext budget the
/// search runs anytime-style and returns its best incumbent with
/// `proven_optimal = false` when the deadline interrupts it.
/// The gate is measured, not guessed (docs/ALGORITHMS.md): worst observed
/// ~240 ms at n = 14 over random moderate-density and near-clique families
/// (n = 16 already risks ~5 s — the width dimension weakens pruning, so the
/// gate sits below the unweighted oracle's n = 18).
struct WeightedExactOptions {
  int max_jobs = 14;
  /// Deadline / cancellation polled by the search (nullptr = free run).
  /// The first full assignment always completes, so an interrupted run
  /// still returns a feasible schedule.
  const core::RunContext* context = nullptr;
};

struct WeightedExactResult {
  core::BusySchedule schedule;
  bool proven_optimal = true;  ///< False when the context stopped the search.
  long nodes = 0;              ///< Search nodes expanded.
};

/// Anytime entry point; nullopt only for instances over the `max_jobs`
/// gate (raise it when a budget bounds the run).
[[nodiscard]] std::optional<WeightedExactResult> solve_exact_weighted_anytime(
    const WeightedInstance& inst, WeightedExactOptions options = {});

/// Legacy gate-or-nothing entry point (schedule only).
[[nodiscard]] std::optional<core::BusySchedule> solve_exact_weighted(
    const WeightedInstance& inst, WeightedExactOptions options = {});

/// Flexible weighted jobs: freeze positions with the (width-oblivious,
/// exact for g = infinity) unbounded DP, then run the interval algorithm —
/// Khandekar et al.'s recipe, mirrored from section 4.3.
[[nodiscard]] core::BusySchedule schedule_weighted_flexible(
    const WeightedInstance& inst);

}  // namespace abt::busy
