#include "busy/greedy_tracking.hpp"

#include <numeric>

#include "busy/track.hpp"
#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::JobId;

BusySchedule greedy_tracking(const ContinuousInstance& inst,
                             GreedyTrackingTrace* trace) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "GREEDYTRACKING expects interval jobs; flexible instances go "
             "through the g=infinity DP first (busy/flexible_pipeline)");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});

  std::vector<JobId> remaining(static_cast<std::size_t>(inst.size()));
  std::iota(remaining.begin(), remaining.end(), JobId{0});

  int track_index = 0;
  while (!remaining.empty()) {
    const std::vector<JobId> track = longest_track(inst, remaining);
    ABT_ASSERT(!track.empty(), "nonempty job set yields nonempty track");
    const int bundle = track_index / inst.capacity();
    for (JobId j : track) {
      sched.placements[static_cast<std::size_t>(j)] = {bundle,
                                                       inst.job(j).release};
    }
    // Remove the track from the remaining set.
    std::vector<char> in_track(static_cast<std::size_t>(inst.size()), 0);
    for (JobId j : track) in_track[static_cast<std::size_t>(j)] = 1;
    std::erase_if(remaining,
                  [&](JobId j) { return in_track[static_cast<std::size_t>(j)] != 0; });
    if (trace != nullptr) trace->tracks.push_back(track);
    ++track_index;
  }
  return sched;
}

}  // namespace abt::busy
