#include "busy/greedy_tracking.hpp"

#include <numeric>

#include "busy/track.hpp"
#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::JobId;

BusySchedule greedy_tracking(const ContinuousInstance& inst,
                             GreedyTrackingTrace* trace) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "GREEDYTRACKING expects interval jobs; flexible instances go "
             "through the g=infinity DP first (busy/flexible_pipeline)");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});

  std::vector<JobId> all(static_cast<std::size_t>(inst.size()));
  std::iota(all.begin(), all.end(), JobId{0});
  std::vector<double> lengths;
  lengths.reserve(all.size());
  for (JobId j : all) lengths.push_back(inst.job(j).length);

  // The peeler sorts by end once and keeps survivors in end order, so the
  // whole peel loop never re-sorts.
  TrackPeeler peeler(inst, all, lengths);
  int track_index = 0;
  while (!peeler.empty()) {
    std::vector<JobId> track = peeler.extract_max_weight_track();
    ABT_ASSERT(!track.empty(), "nonempty job set yields nonempty track");
    const int bundle = track_index / inst.capacity();
    for (JobId j : track) {
      sched.placements[static_cast<std::size_t>(j)] = {bundle,
                                                       inst.job(j).release};
    }
    if (trace != nullptr) trace->tracks.push_back(std::move(track));
    ++track_index;
  }
  return sched;
}

}  // namespace abt::busy
