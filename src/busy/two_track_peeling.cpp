#include "busy/two_track_peeling.hpp"

#include <algorithm>
#include <numeric>

#include "busy/proper_cover.hpp"
#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::JobId;

BusySchedule two_track_peeling(const ContinuousInstance& inst,
                               PeelingTrace* trace, PairSplit split) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "TwoTrackPeeling expects interval jobs");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});

  std::vector<JobId> pool(static_cast<std::size_t>(inst.size()));
  std::iota(pool.begin(), pool.end(), JobId{0});

  // Sort-once peeling: LevelPeeler keeps the pool in cover order across
  // levels, replacing the per-level proper_cover re-sort + rescan.
  LevelPeeler peeler(inst, pool);
  std::vector<std::vector<JobId>> levels;
  while (!peeler.empty()) {
    std::vector<JobId> level = peeler.extract_level();
    ABT_ASSERT(!level.empty(), "cover of a nonempty set is nonempty");
    levels.push_back(std::move(level));
  }

  // Each group of g consecutive levels shares a machine pair. Within a
  // level, 2-color the (clique number <= 2) interval graph by a sweep and
  // split the classes across the pair.
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const int group = static_cast<int>(l) / inst.capacity();
    const int machine_a = 2 * group;
    const int machine_b = 2 * group + 1;

    std::vector<JobId>& level = levels[l];
    std::sort(level.begin(), level.end(), [&](JobId a, JobId b) {
      return inst.job(a).release < inst.job(b).release;
    });
    if (split == PairSplit::kConsolidate) {
      double busy_until_a = -1e300;
      double busy_until_b = -1e300;
      for (JobId j : level) {
        const core::ContinuousJob& job = inst.job(j);
        int machine = -1;
        if (job.release >= busy_until_a - 1e-12) {
          machine = machine_a;
          busy_until_a = job.release + job.length;
        } else {
          ABT_ASSERT(job.release >= busy_until_b - 1e-12,
                     "level overlap exceeds 2; proper_cover invariant broken");
          machine = machine_b;
          busy_until_b = job.release + job.length;
        }
        sched.placements[static_cast<std::size_t>(j)] = {machine, job.release};
      }
    } else {
      // Parity split: overlapping level jobs are adjacent in release order
      // (the level has clique number <= 2), so alternating machines keeps
      // each machine's share of the level conflict-free.
      for (std::size_t idx = 0; idx < level.size(); ++idx) {
        const JobId j = level[idx];
        const int machine = (idx % 2 == 0) ? machine_a : machine_b;
        sched.placements[static_cast<std::size_t>(j)] = {machine,
                                                         inst.job(j).release};
      }
    }
  }

  if (trace != nullptr) trace->levels = std::move(levels);
  return sched;
}

}  // namespace abt::busy
