#include "busy/flexible_pipeline.hpp"

#include "busy/first_fit.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::JobId;

FlexiblePipelineResult schedule_flexible(const ContinuousInstance& inst,
                                         IntervalAlgorithm algorithm,
                                         UnboundedOptions dp_options) {
  const UnboundedSolution unbounded = solve_unbounded(inst, dp_options);
  const ContinuousInstance frozen =
      freeze_to_interval_instance(inst, unbounded);

  BusySchedule interval_schedule;
  switch (algorithm) {
    case IntervalAlgorithm::kGreedyTracking:
      interval_schedule = greedy_tracking(frozen);
      break;
    case IntervalAlgorithm::kTwoTrackPeeling:
      interval_schedule = two_track_peeling(frozen);
      break;
    case IntervalAlgorithm::kFirstFit:
      interval_schedule = first_fit(frozen);
      break;
    case IntervalAlgorithm::kFirstFitByRelease:
      interval_schedule = first_fit_by_release(frozen);
      break;
  }

  // The frozen instance pins release = DP start, so each placement's start
  // is already the DP position; reuse machine assignments for the original
  // instance with those starts.
  FlexiblePipelineResult result;
  result.schedule.placements.assign(static_cast<std::size_t>(inst.size()), {});
  for (JobId j = 0; j < inst.size(); ++j) {
    result.schedule.placements[static_cast<std::size_t>(j)] = {
        interval_schedule.placements[static_cast<std::size_t>(j)].machine,
        unbounded.starts[static_cast<std::size_t>(j)]};
  }
  result.opt_infinity = unbounded.busy_time;
  result.dp_exact = unbounded.exact;
  return result;
}

}  // namespace abt::busy
