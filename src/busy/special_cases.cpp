#include "busy/special_cases.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::JobId;

bool is_proper_instance(const ContinuousInstance& inst, core::RealTime eps) {
  const auto runs = inst.forced_intervals();
  for (std::size_t a = 0; a < runs.size(); ++a) {
    for (std::size_t b = 0; b < runs.size(); ++b) {
      if (a == b) continue;
      // a strictly inside b.
      if (runs[a].lo > runs[b].lo + eps && runs[a].hi < runs[b].hi - eps) {
        return false;
      }
    }
  }
  return true;
}

bool is_clique_instance(const ContinuousInstance& inst, core::RealTime eps) {
  if (inst.size() == 0) return true;
  double latest_start = -std::numeric_limits<double>::infinity();
  double earliest_end = std::numeric_limits<double>::infinity();
  for (const auto& iv : inst.forced_intervals()) {
    latest_start = std::max(latest_start, iv.lo);
    earliest_end = std::min(earliest_end, iv.hi);
  }
  return latest_start < earliest_end + eps;
}

std::optional<BusySchedule> solve_proper_clique(
    const ContinuousInstance& inst) {
  if (!inst.all_interval_jobs(1e-6) || !is_proper_instance(inst) ||
      !is_clique_instance(inst)) {
    return std::nullopt;
  }
  const int n = inst.size();
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(n), {});
  if (n == 0) return sched;

  // Release order; in a proper instance this is also deadline order, so a
  // consecutive run's span is end(last) - start(first).
  std::vector<JobId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    if (inst.job(a).release != inst.job(b).release) {
      return inst.job(a).release < inst.job(b).release;
    }
    return inst.job(a).deadline < inst.job(b).deadline;
  });

  const auto start_of = [&](int i) {
    return inst.job(order[static_cast<std::size_t>(i)]).release;
  };
  const auto end_of = [&](int i) {
    const auto& job = inst.job(order[static_cast<std::size_t>(i)]);
    return job.release + job.length;
  };

  // f[i] = min busy time for the first i jobs in order; choice[i] = size of
  // the last bundle.
  std::vector<double> f(static_cast<std::size_t>(n) + 1,
                        std::numeric_limits<double>::infinity());
  std::vector<int> choice(static_cast<std::size_t>(n) + 1, 0);
  f[0] = 0.0;
  for (int i = 1; i <= n; ++i) {
    for (int k = 1; k <= std::min(i, inst.capacity()); ++k) {
      // Bundle holds jobs order[i-k .. i-1]. All jobs overlap the clique
      // point, so the bundle's span is one interval. Proper order makes
      // the latest end belong to the last job.
      const double span = end_of(i - 1) - start_of(i - k);
      if (f[static_cast<std::size_t>(i - k)] + span <
          f[static_cast<std::size_t>(i)]) {
        f[static_cast<std::size_t>(i)] =
            f[static_cast<std::size_t>(i - k)] + span;
        choice[static_cast<std::size_t>(i)] = k;
      }
    }
  }

  int machine = 0;
  for (int i = n; i > 0;) {
    const int k = choice[static_cast<std::size_t>(i)];
    ABT_ASSERT(k >= 1, "DP reconstruction broke");
    for (int j = i - k; j < i; ++j) {
      const JobId id = order[static_cast<std::size_t>(j)];
      sched.placements[static_cast<std::size_t>(id)] = {
          machine, inst.job(id).release};
    }
    ++machine;
    i -= k;
  }
  return sched;
}

}  // namespace abt::busy
