#include "busy/first_fit.hpp"

#include <algorithm>
#include <numeric>

#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

/// Per-machine occupancy tracked as per-job intervals; a candidate fits if
/// adding it keeps max concurrency <= g.
class MachineState {
 public:
  explicit MachineState(int capacity) : capacity_(capacity) {}

  [[nodiscard]] bool fits(const Interval& candidate) const {
    // Concurrency only changes at interval endpoints; count overlap of the
    // candidate against existing jobs at every event inside the candidate.
    int max_overlap = 0;
    std::vector<double> probes = {candidate.lo};
    for (const Interval& iv : jobs_) {
      if (iv.lo > candidate.lo && iv.lo < candidate.hi) probes.push_back(iv.lo);
    }
    for (double p : probes) {
      int overlap = 0;
      for (const Interval& iv : jobs_) {
        if (iv.lo <= p && p < iv.hi) ++overlap;
      }
      max_overlap = std::max(max_overlap, overlap);
    }
    return max_overlap + 1 <= capacity_;
  }

  void add(const Interval& iv) { jobs_.push_back(iv); }

 private:
  int capacity_;
  std::vector<Interval> jobs_;
};

BusySchedule first_fit_ordered(const ContinuousInstance& inst,
                               const std::vector<JobId>& order) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6), "FIRSTFIT expects interval jobs");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<MachineState> machines;
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    int chosen = -1;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m].fits(run)) {
        chosen = static_cast<int>(m);
        break;
      }
    }
    if (chosen < 0) {
      machines.emplace_back(inst.capacity());
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].add(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

}  // namespace

BusySchedule first_fit(const ContinuousInstance& inst) {
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).length > inst.job(b).length;
  });
  return first_fit_ordered(inst, order);
}

BusySchedule first_fit_by_release(const ContinuousInstance& inst) {
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).release < inst.job(b).release;
  });
  return first_fit_ordered(inst, order);
}

}  // namespace abt::busy
