#include "busy/first_fit.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

#include "core/assert.hpp"
#include "core/sweep.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

/// First-fit for an arbitrary job order. Machines carry two structures: the
/// occupancy endpoint map for the O(log k) capacity probe, and a
/// MachineFreeIndex keyed by each machine's earliest-free time (max endpoint
/// inserted so far). The first machine whose earliest-free time is <= the
/// candidate's start is idle across the whole run, so it fits without a
/// probe AND no machine past it can be the first fit — the scan is bounded
/// by that index instead of running over every open machine. Placements are
/// identical to the plain linear scan (asserted in tests/test_sweep.cpp).
BusySchedule first_fit_ordered(const ContinuousInstance& inst,
                               const std::vector<JobId>& order) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6), "FIRSTFIT expects interval jobs");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  // Per-worker machine pool: a cleared FlatOccupancyIndex keeps its flat
  // arrays, so every trial after a worker thread's first reuses the
  // allocations instead of rebuilding each machine from empty heap.
  thread_local std::vector<core::OccupancyIndex> pool;
  std::size_t active = 0;  ///< pool[0, active) are this run's machines.
  core::MachineFreeIndex free_at;  ///< Machine index by earliest-free time.
  const int capacity = inst.capacity();
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    // All machines from `idle` on are irrelevant: `idle` itself fits for
    // free, and first-fit never places beyond the first fitting machine.
    const int idle = free_at.first_at_most(run.lo);
    const int scan_end = idle >= 0 ? idle : static_cast<int>(active);
    int chosen = -1;
    for (int m = 0; m < scan_end; ++m) {
      if (pool[static_cast<std::size_t>(m)].max_coverage_in(run.lo, run.hi) +
              1 <=
          capacity) {
        chosen = m;
        break;
      }
    }
    if (chosen < 0) chosen = idle;
    if (chosen < 0) {
      if (active == pool.size()) {
        pool.emplace_back();
      } else {
        pool[active].clear();
      }
      ++active;
      chosen = free_at.push_back(run.hi);
    } else {
      free_at.set(chosen, std::max(free_at.key(chosen), run.hi));
    }
    pool[static_cast<std::size_t>(chosen)].insert(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

}  // namespace

BusySchedule first_fit(const ContinuousInstance& inst) {
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).length > inst.job(b).length;
  });
  return first_fit_ordered(inst, order);
}

BusySchedule first_fit_by_release(const ContinuousInstance& inst) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6), "FIRSTFIT expects interval jobs");
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).release < inst.job(b).release;
  });

  // Release order lets the probe collapse entirely: every interval already
  // on a machine starts at or before the candidate's release r, so machine
  // coverage is non-increasing on [r, inf) and the capacity probe over the
  // run reduces to "coverage at r < g". Maintain each machine's coverage at
  // the advancing frontier (a heap of interval endpoints retires expired
  // jobs) in a MachineFreeIndex, and the first fit is one first_at_most
  // query — O(log m) per job, no per-machine scan at all. Placements match
  // the probing scan exactly (asserted in tests/test_sweep.cpp).
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  core::MachineFreeIndex load;  ///< Machine index by frontier coverage.
  using Expiry = std::pair<double, int>;  ///< (endpoint, machine).
  std::priority_queue<Expiry, std::vector<Expiry>, std::greater<>> expiries;
  const double capacity = inst.capacity();
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    // Retire intervals that end at or before the frontier ([lo, hi) is
    // half-open, so an interval with hi == run.lo no longer covers run.lo).
    while (!expiries.empty() && expiries.top().first <= run.lo) {
      const int m = expiries.top().second;
      expiries.pop();
      load.set(m, load.key(m) - 1.0);
    }
    int chosen = load.first_at_most(capacity - 1.0);
    if (chosen < 0) chosen = load.push_back(0.0);
    load.set(chosen, load.key(chosen) + 1.0);
    expiries.emplace(run.hi, chosen);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

}  // namespace abt::busy
