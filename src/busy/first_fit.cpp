#include "busy/first_fit.hpp"

#include <algorithm>
#include <numeric>

#include "core/assert.hpp"
#include "core/sweep.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

BusySchedule first_fit_ordered(const ContinuousInstance& inst,
                               const std::vector<JobId>& order) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6), "FIRSTFIT expects interval jobs");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  // A candidate fits a machine iff adding it keeps max concurrency <= g,
  // i.e. the machine's occupancy over the candidate's run stays below g.
  std::vector<core::OccupancyIndex> machines;
  const int capacity = inst.capacity();
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    int chosen = -1;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m].max_coverage_in(run.lo, run.hi) + 1 <= capacity) {
        chosen = static_cast<int>(m);
        break;
      }
    }
    if (chosen < 0) {
      machines.emplace_back();
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].insert(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

}  // namespace

BusySchedule first_fit(const ContinuousInstance& inst) {
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).length > inst.job(b).length;
  });
  return first_fit_ordered(inst, order);
}

BusySchedule first_fit_by_release(const ContinuousInstance& inst) {
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).release < inst.job(b).release;
  });
  return first_fit_ordered(inst, order);
}

}  // namespace abt::busy
