#include "busy/lower_bounds.hpp"

#include <algorithm>

#include "busy/demand_profile.hpp"
#include "busy/dp_unbounded.hpp"

namespace abt::busy {

double BusyLowerBounds::best() const {
  return std::max({mass, span, profile});
}

BusyLowerBounds busy_lower_bounds(const core::ContinuousInstance& inst,
                                  bool compute_span_for_flexible) {
  BusyLowerBounds out;
  out.mass = inst.mass_lower_bound();
  if (inst.all_interval_jobs(1e-6)) {
    out.span = core::span_of(inst.forced_intervals());
    out.profile = DemandProfile(inst).cost();
  } else if (compute_span_for_flexible) {
    out.span = solve_unbounded(inst).busy_time;
  }
  return out;
}

}  // namespace abt::busy
