#pragma once

#include "busy/dp_unbounded.hpp"
#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Interval-job algorithm applied after the g = infinity conversion.
enum class IntervalAlgorithm {
  kGreedyTracking,   ///< Theorem 5 -> 3-approx end to end (section 4.3).
  kTwoTrackPeeling,  ///< Theorem 3 charging -> 4-approx end to end (Thm 10).
  kFirstFit,         ///< Flammini et al. baseline -> no better than 4.
  kFirstFitByRelease ///< Release-ordered FIRSTFIT baseline.
};

struct FlexiblePipelineResult {
  core::BusySchedule schedule;
  double opt_infinity = 0.0;  ///< Busy time of the g=infinity DP (span LB).
  bool dp_exact = true;       ///< g=infinity solve stayed within budget.
};

/// The paper's recipe for flexible jobs (section 4.3): solve g = infinity
/// optimally, freeze every job at its DP position (making the instance one
/// of interval jobs), then run an interval-job algorithm. GreedyTracking
/// yields the paper's headline 3-approximation; the profile-charging
/// algorithms yield 4 (Theorem 10, tight on the Fig 10 gadget).
[[nodiscard]] FlexiblePipelineResult schedule_flexible(
    const core::ContinuousInstance& inst,
    IntervalAlgorithm algorithm = IntervalAlgorithm::kGreedyTracking,
    UnboundedOptions dp_options = {});

}  // namespace abt::busy
