#pragma once

#include <vector>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Diagnostics of a GREEDYTRACKING run, exposing the tracks it extracted.
struct GreedyTrackingTrace {
  /// tracks[i] = job ids of the i-th extracted track (longest first);
  /// track i lands in bundle i / g.
  std::vector<std::vector<core::JobId>> tracks;
};

/// GREEDYTRACKING (Algorithm 1, Theorem 5): iteratively extract a longest
/// track (max total length set of disjoint interval jobs, via weighted
/// interval scheduling) and bundle g consecutive tracks per machine.
/// 3-approximate for interval jobs; the Fig 6/7 gadget drives it to 3.
[[nodiscard]] core::BusySchedule greedy_tracking(
    const core::ContinuousInstance& inst,
    GreedyTrackingTrace* trace = nullptr);

}  // namespace abt::busy
