#include "busy/exact_busy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

class PartitionSearch {
 public:
  PartitionSearch(const ContinuousInstance& inst,
                  const core::RunContext* context)
      : inst_(inst), context_(context) {
    runs_ = inst.forced_intervals();
    // Assign longer jobs first: better pruning.
    order_.resize(static_cast<std::size_t>(inst.size()));
    std::iota(order_.begin(), order_.end(), JobId{0});
    std::sort(order_.begin(), order_.end(), [&](JobId a, JobId b) {
      return inst_.job(a).length > inst_.job(b).length;
    });
    assignment_.assign(static_cast<std::size_t>(inst.size()), -1);
    best_assignment_ = assignment_;
  }

  ExactBusyResult run() {
    dfs(0, 0, 0.0);
    ExactBusyResult result;
    result.proven_optimal = !stopped_;
    result.nodes = nodes_;
    result.schedule.placements.assign(static_cast<std::size_t>(inst_.size()),
                                      {});
    for (JobId j = 0; j < inst_.size(); ++j) {
      result.schedule.placements[static_cast<std::size_t>(j)] = {
          best_assignment_[static_cast<std::size_t>(j)],
          inst_.job(j).release};
    }
    return result;
  }

 private:
  /// Busy time of bundle `b` under the current partial assignment.
  double bundle_span(int b) const {
    std::vector<Interval> ivs;
    for (JobId j = 0; j < inst_.size(); ++j) {
      if (assignment_[static_cast<std::size_t>(j)] == b) {
        ivs.push_back(runs_[static_cast<std::size_t>(j)]);
      }
    }
    return core::span_of(ivs);
  }

  bool fits(int b, JobId candidate) const {
    // Max concurrency check at candidate's start and at starts of bundle
    // members inside the candidate.
    const Interval& run = runs_[static_cast<std::size_t>(candidate)];
    std::vector<Interval> members;
    for (JobId j = 0; j < inst_.size(); ++j) {
      if (assignment_[static_cast<std::size_t>(j)] == b) {
        members.push_back(runs_[static_cast<std::size_t>(j)]);
      }
    }
    std::vector<double> probes = {run.lo};
    for (const Interval& iv : members) {
      if (iv.lo > run.lo && iv.lo < run.hi) probes.push_back(iv.lo);
    }
    for (double p : probes) {
      int overlap = 1;
      for (const Interval& iv : members) {
        if (iv.lo <= p && p < iv.hi) ++overlap;
      }
      if (overlap > inst_.capacity()) return false;
    }
    return true;
  }

  void dfs(std::size_t index, int bundles_used, double cost_so_far) {
    if (stopped_) return;
    // Poll the context on a node counter, but only once an incumbent
    // exists: the first depth-first descent always completes (n fresh
    // bundles worst case), so even an instantly-expired budget yields a
    // feasible schedule.
    if ((++nodes_ & 1023) == 0 && context_ != nullptr &&
        best_cost_ < std::numeric_limits<double>::infinity() &&
        context_->should_stop()) {
      stopped_ = true;
      return;
    }
    if (cost_so_far >= best_cost_ - 1e-12) return;
    if (index == order_.size()) {
      best_cost_ = cost_so_far;
      best_assignment_ = assignment_;
      if (context_ != nullptr) {
        // The render is lazy — only a context with a schedule ring
        // attached pays for the partition string.
        context_->report_incumbent(best_cost_, [&] {
          return core::render_partition("bundle", best_assignment_);
        });
      }
      return;
    }
    const JobId j = order_[index];
    // Existing bundles plus one fresh bundle (symmetry-broken).
    for (int b = 0; b <= bundles_used; ++b) {
      if (!fits(b, j)) continue;
      const double before = bundle_span(b);
      assignment_[static_cast<std::size_t>(j)] = b;
      const double after = bundle_span(b);
      dfs(index + 1, std::max(bundles_used, b + 1),
          cost_so_far - before + after);
      assignment_[static_cast<std::size_t>(j)] = -1;
    }
  }

  const ContinuousInstance& inst_;
  const core::RunContext* context_;
  std::vector<Interval> runs_;
  std::vector<JobId> order_;
  std::vector<int> assignment_;
  std::vector<int> best_assignment_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  long nodes_ = 0;
  bool stopped_ = false;
};

}  // namespace

std::optional<ExactBusyResult> solve_exact_interval_anytime(
    const ContinuousInstance& inst, ExactBusyOptions options) {
  if (inst.size() > options.max_jobs) return std::nullopt;
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "exact busy solver expects interval jobs");
  PartitionSearch search(inst, options.context);
  return search.run();
}

std::optional<BusySchedule> solve_exact_interval(const ContinuousInstance& inst,
                                                 ExactBusyOptions options) {
  auto result = solve_exact_interval_anytime(inst, options);
  if (!result.has_value()) return std::nullopt;
  return std::move(result->schedule);
}

}  // namespace abt::busy
