#pragma once

#include <optional>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// True when no job's execution interval is strictly contained in
/// another's (a "proper" instance — footnote 1 of the paper). FIRSTFIT by
/// release time is 2-approximate on these.
[[nodiscard]] bool is_proper_instance(const core::ContinuousInstance& inst,
                                      core::RealTime eps = 1e-9);

/// True when all execution intervals share a common time point (a "clique"
/// instance).
[[nodiscard]] bool is_clique_instance(const core::ContinuousInstance& inst,
                                      core::RealTime eps = 1e-9);

/// Exact solver for instances that are both proper and a clique, via the
/// simple dynamic program of Mertzios et al. [12] that the paper's
/// footnote 1 refers to: in a proper clique there is an optimal solution
/// whose bundles are consecutive runs of at most g jobs in release order,
/// so  f(i) = min over k in [1, g] of f(i-k) + (end_i - start_{i-k+1}).
///
/// Returns nullopt when the instance is not a proper clique (checked).
[[nodiscard]] std::optional<core::BusySchedule> solve_proper_clique(
    const core::ContinuousInstance& inst);

}  // namespace abt::busy
