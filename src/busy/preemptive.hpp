#pragma once

#include <vector>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Result of the exact preemptive g = infinity algorithm (Theorem 6).
struct PreemptiveUnboundedSolution {
  double busy_time = 0.0;               ///< |U|, optimal.
  std::vector<core::Interval> open;     ///< The busy set U (disjoint, sorted).
  core::PreemptiveBusySchedule schedule;  ///< Everything on machine 0.
};

/// Exact preemptive busy time for unbounded capacity (Theorem 6). With
/// preemption and g = infinity the problem is: choose a minimum-measure set
/// U with |U intersect [r_j, d_j)| >= p_j for every job. The earliest-
/// deadline greedy that opens time as late as possible is optimal (the
/// paper's iterative shrink formulation is equivalent).
[[nodiscard]] PreemptiveUnboundedSolution solve_preemptive_unbounded(
    const core::ContinuousInstance& inst);

/// Result of the 2-approximate preemptive algorithm for bounded g
/// (Theorem 7): cost <= span(U) + mass/g <= 2 OPT.
struct PreemptiveBoundedSolution {
  double busy_time = 0.0;
  double opt_infinity = 0.0;  ///< Lower bound used by the analysis.
  core::PreemptiveBusySchedule schedule;
};

/// 2-approximation for preemptive busy time with bounded g (Theorem 7):
/// solve g = infinity exactly, keep every job exactly where that solution
/// ran it, then inside each interesting interval deal the active jobs onto
/// ceil(count/g) machines so at most one machine per interval is not full.
[[nodiscard]] PreemptiveBoundedSolution solve_preemptive_bounded(
    const core::ContinuousInstance& inst);

}  // namespace abt::busy
