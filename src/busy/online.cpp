#include "busy/online.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

/// Online view of one machine: committed intervals plus cached busy time.
class Machine {
 public:
  explicit Machine(int capacity) : capacity_(capacity) {}

  [[nodiscard]] bool fits(const Interval& candidate) const {
    std::vector<double> probes = {candidate.lo};
    for (const Interval& iv : jobs_) {
      if (iv.lo > candidate.lo && iv.lo < candidate.hi) probes.push_back(iv.lo);
    }
    for (double p : probes) {
      int overlap = 1;
      for (const Interval& iv : jobs_) {
        if (iv.lo <= p && p < iv.hi) ++overlap;
      }
      if (overlap > capacity_) return false;
    }
    return true;
  }

  [[nodiscard]] double growth(const Interval& candidate) const {
    std::vector<Interval> with = jobs_;
    with.push_back(candidate);
    return core::span_of(with) - busy_;
  }

  void add(const Interval& iv) {
    jobs_.push_back(iv);
    busy_ = core::span_of(jobs_);
  }

 private:
  int capacity_;
  std::vector<Interval> jobs_;
  double busy_ = 0.0;
};

}  // namespace

BusySchedule schedule_online(const ContinuousInstance& inst,
                             OnlinePolicy policy) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "online model presents interval jobs in release order");
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).release < inst.job(b).release;
  });

  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<Machine> machines;

  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    int chosen = -1;
    switch (policy) {
      case OnlinePolicy::kFirstFit:
        for (std::size_t m = 0; m < machines.size(); ++m) {
          if (machines[m].fits(run)) {
            chosen = static_cast<int>(m);
            break;
          }
        }
        break;
      case OnlinePolicy::kBestFit: {
        double best_growth = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < machines.size(); ++m) {
          if (!machines[m].fits(run)) continue;
          const double g = machines[m].growth(run);
          if (g < best_growth - 1e-12) {
            best_growth = g;
            chosen = static_cast<int>(m);
          }
        }
        break;
      }
      case OnlinePolicy::kNextFit:
        if (!machines.empty() && machines.back().fits(run)) {
          chosen = static_cast<int>(machines.size()) - 1;
        }
        break;
    }
    if (chosen < 0) {
      machines.emplace_back(inst.capacity());
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].add(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

}  // namespace abt::busy
