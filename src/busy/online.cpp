#include "busy/online.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/assert.hpp"
#include "core/sweep.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousInstance;
using core::Interval;
using core::JobId;

namespace {

/// Online view of one machine, backed by the sweep-line OccupancyIndex.
/// The original stored a flat interval list and paid O(k^2) per capacity
/// probe (rescan all k jobs at every event point) plus an O(k log k)
/// union re-span per best-fit growth probe and per commit — the quadratic
/// scans the ROADMAP flagged. Both probes are now O(log k + steps
/// spanned). The capacity probe is exact integer logic, so first/next-fit
/// placements are identical at any scale; the best-fit growth formula is
/// mathematically equal to the old span difference but rounds
/// differently, so ties within the driver's 1e-12 margin could in
/// principle resolve differently at scales far beyond the sizes the
/// equivalence suite pins (tests/test_online.cpp, placement-for-placement
/// against the frozen originals up to n = 400).
class Machine {
 public:
  explicit Machine(int capacity) : capacity_(capacity) {}

  /// Pool-reuse hook: re-arms a recycled machine, keeping the occupancy
  /// index's flat-array capacity.
  void reset(int capacity) {
    capacity_ = capacity;
    occupancy_.clear();
  }

  [[nodiscard]] bool fits(const Interval& candidate) const {
    return occupancy_.max_coverage_in(candidate.lo, candidate.hi) + 1 <=
           capacity_;
  }

  /// Busy-time increase if `candidate` were committed: the part of the
  /// candidate not already covered by this machine's runs.
  [[nodiscard]] double growth(const Interval& candidate) const {
    return candidate.length() -
           occupancy_.covered_measure_in(candidate.lo, candidate.hi);
  }

  /// Fused fits + growth for best-fit: one locate pass answers both
  /// questions. Returns whether the candidate fits; `out_growth` gets the
  /// busy-time increase (same values as fits() + growth(), bit for bit).
  [[nodiscard]] bool fits_with_growth(const Interval& candidate,
                                      double* out_growth) const {
    core::RealTime covered = 0.0;
    const int cov = occupancy_.probe(candidate.lo, candidate.hi, &covered);
    *out_growth = candidate.length() - covered;
    return cov + 1 <= capacity_;
  }

  void add(const Interval& iv) { occupancy_.insert(iv); }

 private:
  int capacity_;
  core::OccupancyIndex occupancy_;
};

}  // namespace

BusySchedule schedule_online(const ContinuousInstance& inst,
                             OnlinePolicy policy) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "online model presents interval jobs in release order");
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).release < inst.job(b).release;
  });

  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  // Per-worker machine pool, recycled across trials (see first_fit.cpp).
  thread_local std::vector<Machine> pool;
  std::size_t active = 0;  ///< pool[0, active) are this run's machines.

  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    int chosen = -1;
    switch (policy) {
      case OnlinePolicy::kFirstFit:
        for (std::size_t m = 0; m < active; ++m) {
          if (pool[m].fits(run)) {
            chosen = static_cast<int>(m);
            break;
          }
        }
        break;
      case OnlinePolicy::kBestFit: {
        double best_growth = std::numeric_limits<double>::infinity();
        for (std::size_t m = 0; m < active; ++m) {
          double g = 0.0;
          if (!pool[m].fits_with_growth(run, &g)) continue;
          if (g < best_growth - 1e-12) {
            best_growth = g;
            chosen = static_cast<int>(m);
          }
        }
        break;
      }
      case OnlinePolicy::kNextFit:
        if (active > 0 && pool[active - 1].fits(run)) {
          chosen = static_cast<int>(active) - 1;
        }
        break;
    }
    if (chosen < 0) {
      if (active == pool.size()) {
        pool.emplace_back(inst.capacity());
      } else {
        pool[active].reset(inst.capacity());
      }
      chosen = static_cast<int>(active);
      ++active;
    }
    pool[static_cast<std::size_t>(chosen)].add(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

}  // namespace abt::busy
