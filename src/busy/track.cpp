#include "busy/track.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::JobId;

std::vector<JobId> max_weight_track(const ContinuousInstance& inst,
                                    const std::vector<JobId>& candidates,
                                    const std::vector<double>& weights) {
  ABT_ASSERT(candidates.size() == weights.size(), "weights size mismatch");
  const auto m = candidates.size();
  if (m == 0) return {};

  struct Item {
    double start;
    double end;
    double weight;
    JobId job;
  };
  std::vector<Item> items;
  items.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const core::ContinuousJob& job = inst.job(candidates[i]);
    items.push_back(
        {job.release, job.release + job.length, weights[i], candidates[i]});
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.end < b.end; });

  // pred[i] = largest index k < i with items[k].end <= items[i].start, or -1.
  std::vector<int> pred(m, -1);
  std::vector<double> ends(m);
  for (std::size_t i = 0; i < m; ++i) ends[i] = items[i].end;
  for (std::size_t i = 0; i < m; ++i) {
    const auto it =
        std::upper_bound(ends.begin(), ends.begin() + static_cast<std::ptrdiff_t>(i),
                         items[i].start + 1e-12);
    pred[i] = static_cast<int>(it - ends.begin()) - 1;
  }

  // best[i] = best weight using items[0..i]; take[i] = whether item i used.
  std::vector<double> best(m + 1, 0.0);
  std::vector<char> take(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    const double with_item =
        items[i].weight + best[static_cast<std::size_t>(pred[i] + 1)];
    if (with_item > best[i]) {
      best[i + 1] = with_item;
      take[i] = 1;
    } else {
      best[i + 1] = best[i];
    }
  }

  std::vector<JobId> out;
  for (auto i = static_cast<std::ptrdiff_t>(m) - 1; i >= 0;) {
    if (take[static_cast<std::size_t>(i)] != 0) {
      out.push_back(items[static_cast<std::size_t>(i)].job);
      i = pred[static_cast<std::size_t>(i)];
    } else {
      --i;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<JobId> longest_track(const ContinuousInstance& inst,
                                 const std::vector<JobId>& candidates) {
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (JobId j : candidates) weights.push_back(inst.job(j).length);
  return max_weight_track(inst, candidates, weights);
}

}  // namespace abt::busy
