#include "busy/track.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::JobId;

TrackPeeler::TrackPeeler(const ContinuousInstance& inst,
                         const std::vector<JobId>& candidates,
                         const std::vector<double>& weights) {
  ABT_ASSERT(candidates.size() == weights.size(), "weights size mismatch");
  items_.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const core::ContinuousJob& job = inst.job(candidates[i]);
    items_.push_back(
        {job.release, job.release + job.length, weights[i], candidates[i]});
  }
  std::stable_sort(items_.begin(), items_.end(),
                   [](const Item& a, const Item& b) { return a.end < b.end; });
}

std::vector<JobId> TrackPeeler::extract_max_weight_track() {
  const std::size_t m = items_.size();
  if (m == 0) return {};

  // Classic weighted-interval-scheduling DP over the end-sorted items.
  // pred[i] = largest index k < i with items[k].end <= items[i].start, or -1.
  ends_.resize(m);
  pred_.resize(m);
  best_.assign(m + 1, 0.0);
  take_.resize(m);
  take_.clear();
  for (std::size_t i = 0; i < m; ++i) ends_[i] = items_[i].end;
  for (std::size_t i = 0; i < m; ++i) {
    const auto it = std::upper_bound(
        ends_.begin(), ends_.begin() + static_cast<std::ptrdiff_t>(i),
        items_[i].start + 1e-12);
    pred_[i] = static_cast<int>(it - ends_.begin()) - 1;
  }

  // best[i] = best weight using items[0..i]; take[i] = whether item i used.
  for (std::size_t i = 0; i < m; ++i) {
    const double with_item =
        items_[i].weight + best_[static_cast<std::size_t>(pred_[i] + 1)];
    if (with_item > best_[i]) {
      best_[i + 1] = with_item;
      take_.set(i, 1);
    } else {
      best_[i + 1] = best_[i];
    }
  }

  std::vector<JobId> out;
  chosen_.resize(m);
  chosen_.clear();
  for (auto i = static_cast<std::ptrdiff_t>(m) - 1; i >= 0;) {
    if (take_.get(static_cast<std::size_t>(i)) != 0) {
      chosen_.set(static_cast<std::size_t>(i), 1);
      out.push_back(items_[static_cast<std::size_t>(i)].job);
      i = pred_[static_cast<std::size_t>(i)];
    } else {
      --i;
    }
  }
  std::reverse(out.begin(), out.end());

  // Compact the survivors in place; end order is preserved, so the next
  // peel needs no sort.
  std::size_t w = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (chosen_.get(i) == 0) items_[w++] = items_[i];
  }
  items_.resize(w);
  return out;
}

std::vector<JobId> max_weight_track(const ContinuousInstance& inst,
                                    const std::vector<JobId>& candidates,
                                    const std::vector<double>& weights) {
  TrackPeeler peeler(inst, candidates, weights);
  return peeler.extract_max_weight_track();
}

std::vector<JobId> longest_track(const ContinuousInstance& inst,
                                 const std::vector<JobId>& candidates) {
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (JobId j : candidates) weights.push_back(inst.job(j).length);
  return max_weight_track(inst, candidates, weights);
}

}  // namespace abt::busy
