#pragma once

#include <optional>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"
#include "core/run_context.hpp"

namespace abt::busy {

/// Exact busy-time solver for instances of interval jobs, by exhaustive
/// partition search (jobs assigned one at a time to an existing or fresh
/// bundle, with capacity pruning and a cost bound). The problem is NP-hard
/// even for g = 2 [Winkler-Zhang 14], so a free run refuses instances
/// larger than `max_jobs`; under a RunContext budget the search runs
/// anytime-style — it polls the context on a node counter and returns its
/// best incumbent with `proven_optimal = false` when interrupted.
///
/// The default gate is measured, not guessed: worst observed wall time on
/// one core is ~5 ms at n = 14, ~100 ms at n = 18 and ~0.6 s at n = 20
/// (random and adversarial clique instances, g = 3) — see
/// docs/ALGORITHMS.md for the curve.
struct ExactBusyOptions {
  int max_jobs = 18;
  /// Deadline / cancellation polled by the search (nullptr = free run).
  /// The first full assignment (reached after n descent steps) is always
  /// completed, so an interrupted run still returns a feasible schedule.
  const core::RunContext* context = nullptr;
};

struct ExactBusyResult {
  core::BusySchedule schedule;
  bool proven_optimal = true;  ///< False when the context stopped the search.
  long nodes = 0;              ///< Search nodes expanded.
};

/// Anytime entry point; nullopt only for instances over the `max_jobs`
/// gate (raise it — e.g. to inst.size() — when a budget bounds the run).
[[nodiscard]] std::optional<ExactBusyResult> solve_exact_interval_anytime(
    const core::ContinuousInstance& inst, ExactBusyOptions options = {});

/// Legacy gate-or-nothing entry point (schedule only, always optimal when
/// it returns and no context is configured).
[[nodiscard]] std::optional<core::BusySchedule> solve_exact_interval(
    const core::ContinuousInstance& inst, ExactBusyOptions options = {});

}  // namespace abt::busy
