#pragma once

#include <optional>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Exact busy-time solver for *small* instances of interval jobs, by
/// exhaustive partition search (jobs assigned one at a time to an existing
/// or fresh bundle, with capacity pruning and a cost bound). The problem is
/// NP-hard even for g = 2 [Winkler-Zhang 14], so this is strictly a test /
/// calibration oracle; it refuses instances larger than `max_jobs`.
///
/// The default gate is measured, not guessed: worst observed wall time on
/// one core is ~5 ms at n = 14, ~100 ms at n = 18 and ~0.6 s at n = 20
/// (random and adversarial clique instances, g = 3) — see
/// docs/ALGORITHMS.md for the curve. n = 18 keeps the oracle comfortably
/// interactive while doubling the calibration range of the old n = 14 gate.
struct ExactBusyOptions {
  int max_jobs = 18;
};

[[nodiscard]] std::optional<core::BusySchedule> solve_exact_interval(
    const core::ContinuousInstance& inst, ExactBusyOptions options = {});

}  // namespace abt::busy
