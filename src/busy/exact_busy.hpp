#pragma once

#include <optional>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Exact busy-time solver for *small* instances of interval jobs, by
/// exhaustive partition search (jobs assigned one at a time to an existing
/// or fresh bundle, with capacity pruning and a cost bound). The problem is
/// NP-hard even for g = 2 [Winkler-Zhang 14], so this is strictly a test /
/// calibration oracle; it refuses instances larger than `max_jobs`.
struct ExactBusyOptions {
  int max_jobs = 14;
};

[[nodiscard]] std::optional<core::BusySchedule> solve_exact_interval(
    const core::ContinuousInstance& inst, ExactBusyOptions options = {});

}  // namespace abt::busy
