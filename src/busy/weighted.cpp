#include "busy/weighted.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "busy/dp_unbounded.hpp"
#include "core/assert.hpp"

namespace abt::busy {

using core::BusySchedule;
using core::ContinuousJob;
using core::Interval;
using core::JobId;

WeightedInstance::WeightedInstance(std::vector<WeightedJob> jobs, int capacity)
    : jobs_(std::move(jobs)), capacity_(capacity) {
  ABT_ASSERT(capacity_ >= 1, "capacity must be positive");
}

double WeightedInstance::mass_lower_bound() const {
  double total = 0.0;
  for (const WeightedJob& wj : jobs_) total += wj.width * wj.job.length;
  return total / capacity_;
}

double WeightedInstance::span_lower_bound() const {
  std::vector<Interval> runs;
  runs.reserve(jobs_.size());
  for (const WeightedJob& wj : jobs_) {
    runs.push_back({wj.job.release, wj.job.release + wj.job.length});
  }
  return core::span_of(runs);
}

bool WeightedInstance::all_interval_jobs(double eps) const {
  for (const WeightedJob& wj : jobs_) {
    if (!wj.job.is_interval_job(eps)) return false;
  }
  return true;
}

bool WeightedInstance::structurally_valid(std::string* why) const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const WeightedJob& wj = jobs_[i];
    auto fail = [&](const char* reason) {
      if (why != nullptr) *why = "job " + std::to_string(i) + ": " + reason;
      return false;
    };
    if (!wj.job.window_fits()) return fail("window shorter than length");
    if (wj.width < 1) return fail("width must be >= 1");
    if (wj.width > capacity_) return fail("width exceeds capacity g");
  }
  return true;
}

core::ContinuousInstance WeightedInstance::unweighted() const {
  std::vector<ContinuousJob> jobs;
  jobs.reserve(jobs_.size());
  for (const WeightedJob& wj : jobs_) jobs.push_back(wj.job);
  return core::ContinuousInstance(std::move(jobs), capacity_);
}

namespace {

/// Peak cumulative width on one machine, by sweep over the committed runs.
struct WeightedRun {
  Interval run;
  int width;
};

int peak_width(const std::vector<WeightedRun>& runs) {
  int best = 0;
  for (const WeightedRun& probe : runs) {
    int at = 0;
    for (const WeightedRun& other : runs) {
      if (other.run.lo <= probe.run.lo && probe.run.lo < other.run.hi) {
        at += other.width;
      }
    }
    best = std::max(best, at);
  }
  return best;
}

/// Width-aware first fit over the given job order; `cap` is the machine
/// budget (g for the full model, 1x widths replaced by 1 for the wide
/// lane). Returns machine indices offset by `machine_base`.
void first_fit_into(const WeightedInstance& inst,
                    const std::vector<JobId>& order, int cap,
                    bool unit_widths, int machine_base,
                    BusySchedule& sched, int* machines_used) {
  std::vector<std::vector<WeightedRun>> machines;
  for (JobId j : order) {
    const WeightedJob& wj = inst.job(j);
    const WeightedRun candidate{
        {wj.job.release, wj.job.release + wj.job.length},
        unit_widths ? 1 : wj.width};
    int chosen = -1;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      std::vector<WeightedRun> trial = machines[m];
      trial.push_back(candidate);
      if (peak_width(trial) <= cap) {
        chosen = static_cast<int>(m);
        break;
      }
    }
    if (chosen < 0) {
      machines.emplace_back();
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].push_back(candidate);
    sched.placements[static_cast<std::size_t>(j)] = {machine_base + chosen,
                                                     wj.job.release};
  }
  *machines_used = static_cast<int>(machines.size());
}

std::vector<JobId> by_length_desc(const WeightedInstance& inst,
                                  const std::vector<JobId>& ids) {
  std::vector<JobId> order = ids;
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).job.length > inst.job(b).job.length;
  });
  return order;
}

}  // namespace

bool check_weighted_schedule(const WeightedInstance& inst,
                             const BusySchedule& sched, std::string* why,
                             double eps) {
  auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (static_cast<int>(sched.placements.size()) != inst.size()) {
    return fail("placement count mismatch");
  }
  int machines = 0;
  for (JobId j = 0; j < inst.size(); ++j) {
    const auto& p = sched.placements[static_cast<std::size_t>(j)];
    const ContinuousJob& job = inst.job(j).job;
    if (p.machine < 0) return fail("job " + std::to_string(j) + " unassigned");
    machines = std::max(machines, p.machine + 1);
    if (p.start < job.release - eps || p.start > job.latest_start() + eps) {
      return fail("job " + std::to_string(j) + " start outside window");
    }
  }
  for (int m = 0; m < machines; ++m) {
    std::vector<WeightedRun> runs;
    for (JobId j = 0; j < inst.size(); ++j) {
      const auto& p = sched.placements[static_cast<std::size_t>(j)];
      if (p.machine != m) continue;
      runs.push_back({{p.start, p.start + inst.job(j).job.length - eps},
                      inst.job(j).width});
    }
    if (peak_width(runs) > inst.capacity()) {
      return fail("machine " + std::to_string(m) + " exceeds width capacity");
    }
  }
  return true;
}

BusySchedule weighted_first_fit(const WeightedInstance& inst) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "weighted FIRSTFIT expects interval jobs");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<JobId> all(static_cast<std::size_t>(inst.size()));
  std::iota(all.begin(), all.end(), JobId{0});
  int used = 0;
  first_fit_into(inst, by_length_desc(inst, all), inst.capacity(),
                 /*unit_widths=*/false, /*machine_base=*/0, sched, &used);
  return sched;
}

BusySchedule narrow_wide_split(const WeightedInstance& inst) {
  ABT_ASSERT(inst.all_interval_jobs(1e-6),
             "narrow/wide split expects interval jobs");
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});

  std::vector<JobId> narrow;
  std::vector<JobId> wide;
  for (JobId j = 0; j < inst.size(); ++j) {
    (2 * inst.job(j).width > inst.capacity() ? wide : narrow).push_back(j);
  }
  // Wide jobs: at most one can share capacity with another wide job, so
  // pack them as a unit-capacity FIRSTFIT (disjoint wide jobs share a
  // machine).
  int wide_machines = 0;
  first_fit_into(inst, by_length_desc(inst, wide), /*cap=*/1,
                 /*unit_widths=*/true, /*machine_base=*/0, sched,
                 &wide_machines);
  // Narrow jobs: width-aware FIRSTFIT on fresh machines.
  int narrow_machines = 0;
  first_fit_into(inst, by_length_desc(inst, narrow), inst.capacity(),
                 /*unit_widths=*/false, /*machine_base=*/wide_machines, sched,
                 &narrow_machines);
  return sched;
}

std::optional<WeightedExactResult> solve_exact_weighted_anytime(
    const WeightedInstance& inst, WeightedExactOptions options) {
  if (inst.size() > options.max_jobs) return std::nullopt;
  ABT_ASSERT(inst.all_interval_jobs(1e-6), "exact expects interval jobs");

  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).job.length > inst.job(b).job.length;
  });

  std::vector<int> assignment(static_cast<std::size_t>(inst.size()), -1);
  std::vector<int> best_assignment = assignment;
  double best_cost = std::numeric_limits<double>::infinity();
  const core::RunContext* context = options.context;
  long nodes = 0;
  bool stopped = false;

  auto machine_runs = [&](int m) {
    std::vector<WeightedRun> runs;
    for (JobId j = 0; j < inst.size(); ++j) {
      if (assignment[static_cast<std::size_t>(j)] == m) {
        runs.push_back({{inst.job(j).job.release,
                         inst.job(j).job.release + inst.job(j).job.length},
                        inst.job(j).width});
      }
    }
    return runs;
  };
  auto machine_span = [&](int m) {
    std::vector<Interval> ivs;
    for (const WeightedRun& r : machine_runs(m)) ivs.push_back(r.run);
    return core::span_of(ivs);
  };

  std::function<void(std::size_t, int, double)> dfs = [&](std::size_t index,
                                                          int used,
                                                          double cost) {
    if (stopped) return;
    // Context poll on a node counter, only once an incumbent exists — the
    // first depth-first descent always completes, so even an
    // instantly-expired budget yields a feasible schedule.
    if ((++nodes & 1023) == 0 && context != nullptr &&
        best_cost < std::numeric_limits<double>::infinity() &&
        context->should_stop()) {
      stopped = true;
      return;
    }
    if (cost >= best_cost - 1e-12) return;
    if (index == order.size()) {
      best_cost = cost;
      best_assignment = assignment;
      if (context != nullptr) {
        // Snapshot render is lazy: the partition string is only built when
        // a schedule ring is attached (service `progress` events).
        context->report_incumbent(best_cost, [&] {
          return core::render_partition("machine", best_assignment);
        });
      }
      return;
    }
    const JobId j = order[index];
    for (int m = 0; m <= used; ++m) {
      std::vector<WeightedRun> trial = machine_runs(m);
      trial.push_back({{inst.job(j).job.release,
                        inst.job(j).job.release + inst.job(j).job.length},
                       inst.job(j).width});
      if (peak_width(trial) > inst.capacity()) continue;
      const double before = machine_span(m);
      assignment[static_cast<std::size_t>(j)] = m;
      const double after = machine_span(m);
      dfs(index + 1, std::max(used, m + 1), cost - before + after);
      assignment[static_cast<std::size_t>(j)] = -1;
    }
  };
  dfs(0, 0, 0.0);

  WeightedExactResult result;
  result.proven_optimal = !stopped;
  result.nodes = nodes;
  result.schedule.placements.assign(static_cast<std::size_t>(inst.size()), {});
  for (JobId j = 0; j < inst.size(); ++j) {
    result.schedule.placements[static_cast<std::size_t>(j)] = {
        best_assignment[static_cast<std::size_t>(j)], inst.job(j).job.release};
  }
  return result;
}

std::optional<BusySchedule> solve_exact_weighted(const WeightedInstance& inst,
                                                 WeightedExactOptions options) {
  auto result = solve_exact_weighted_anytime(inst, options);
  if (!result.has_value()) return std::nullopt;
  return std::move(result->schedule);
}

BusySchedule schedule_weighted_flexible(const WeightedInstance& inst) {
  const UnboundedSolution dp = solve_unbounded(inst.unweighted());
  std::vector<WeightedJob> frozen;
  frozen.reserve(static_cast<std::size_t>(inst.size()));
  for (JobId j = 0; j < inst.size(); ++j) {
    const double s = dp.starts[static_cast<std::size_t>(j)];
    frozen.push_back(
        {{s, s + inst.job(j).job.length, inst.job(j).job.length},
         inst.job(j).width});
  }
  const WeightedInstance frozen_inst(std::move(frozen), inst.capacity());
  BusySchedule sched = narrow_wide_split(frozen_inst);
  // Report starts of the original (flexible) jobs.
  for (JobId j = 0; j < inst.size(); ++j) {
    sched.placements[static_cast<std::size_t>(j)].start =
        dp.starts[static_cast<std::size_t>(j)];
  }
  return sched;
}

}  // namespace abt::busy
