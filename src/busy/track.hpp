#pragma once

#include <vector>

#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Weighted interval scheduling over a subset of interval jobs: finds a
/// *track* (Definition 14: pairwise-disjoint jobs) maximizing total weight.
/// GreedyTracking uses weight = length so that each extracted track is a
/// longest track (Algorithm 1, step 3).
///
/// `candidates` are job ids into `inst`; `weight[i]` corresponds to
/// `candidates[i]`. Jobs are treated as their forced execution intervals
/// [r_j, r_j + p_j) — callers must pass interval jobs.
///
/// Classic O(m log m) dynamic program: sort by end, binary-search the latest
/// compatible predecessor.
[[nodiscard]] std::vector<core::JobId> max_weight_track(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates,
    const std::vector<double>& weights);

/// Convenience: maximum *length* track (weights = lengths).
[[nodiscard]] std::vector<core::JobId> longest_track(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates);

}  // namespace abt::busy
