#pragma once

#include <vector>

#include "core/continuous_instance.hpp"
#include "core/scratch.hpp"

namespace abt::busy {

/// Weighted interval scheduling over a subset of interval jobs: finds a
/// *track* (Definition 14: pairwise-disjoint jobs) maximizing total weight.
/// GreedyTracking uses weight = length so that each extracted track is a
/// longest track (Algorithm 1, step 3).
///
/// `candidates` are job ids into `inst`; `weight[i]` corresponds to
/// `candidates[i]`. Jobs are treated as their forced execution intervals
/// [r_j, r_j + p_j) — callers must pass interval jobs.
///
/// Classic O(m log m) dynamic program: sort by end, binary-search the latest
/// compatible predecessor.
[[nodiscard]] std::vector<core::JobId> max_weight_track(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates,
    const std::vector<double>& weights);

/// Convenience: maximum *length* track (weights = lengths).
[[nodiscard]] std::vector<core::JobId> longest_track(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates);

/// Incremental peeler for repeated track extraction over a shrinking pool
/// (GreedyTracking's loop): sorts the candidates by end once at
/// construction and keeps the surviving items in end order across peels, so
/// each extraction is a single pass with binary-searched predecessors —
/// no per-track re-sort.
class TrackPeeler {
 public:
  /// `weights[i]` corresponds to `candidates[i]`; jobs are treated as their
  /// forced execution intervals, so callers must pass interval jobs.
  TrackPeeler(const core::ContinuousInstance& inst,
              const std::vector<core::JobId>& candidates,
              const std::vector<double>& weights);

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t remaining() const { return items_.size(); }

  /// Extracts a max-weight track and removes its jobs from the pool.
  /// Returns the track's job ids in increasing end order.
  std::vector<core::JobId> extract_max_weight_track();

 private:
  struct Item {
    double start;
    double end;
    double weight;
    core::JobId job;
  };
  std::vector<Item> items_;  ///< Alive candidates, sorted by end.
  // Scratch buffers reused across peels to keep extraction allocation-light.
  // The marker arrays use O(1) epoch resets instead of a full refill per
  // peel (the refill dominated shallow peels over large pools).
  std::vector<double> ends_;
  std::vector<int> pred_;
  std::vector<double> best_;
  core::FastResetVector<char> take_;
  core::FastResetVector<char> chosen_;
};

}  // namespace abt::busy
