#pragma once

#include <vector>

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// Diagnostics: the peeled levels. Level l (0-based) is a <=2-overlap cover
/// of the span of the jobs remaining before it was peeled, so its span is
/// contained in {t : raw demand >= l+1} — the charging fact behind the
/// 2-approximation.
struct PeelingTrace {
  std::vector<std::vector<core::JobId>> levels;
};

/// How a level's (2-colorable) jobs are split across its machine pair.
/// Both policies satisfy the same 2x demand-profile guarantee; they differ
/// in constants on structured instances.
enum class PairSplit {
  /// Greedy interval coloring: reuse color 0 whenever free. Consolidates
  /// disjoint jobs onto one machine of the pair, often leaving the other
  /// nearly idle — this is what keeps the library's default far below the
  /// worst case on the Fig 10-12 family.
  kConsolidate,
  /// Alternate machines along each level in release order — the
  /// parity-based assignment of Kumar-Rudra [11] (and the flavor of
  /// Alicherry-Bhatia [1]). Spreads every level across both machines of
  /// the pair; exhibits the paper's factor-4 lower bound on the Fig 10-12
  /// family organically (Theorem 10).
  kParity,
};

/// TwoTrackPeeling: the library's 2-approximation for busy time on interval
/// jobs. It reimplements the charging scheme that makes the algorithms of
/// Kumar-Rudra [11] and Alicherry-Bhatia [1] 2-approximate (Theorem 3 /
/// Appendix A) with a direct combinatorial construction:
///
///   1. Repeatedly peel a level: a <=2-overlap subset covering the full
///      span of the remaining jobs (proper_cover's LevelPeeler, the Q of
///      Theorem 5, extracted sort-once across levels).
///      Level l's span is contained in {t : |A(t)| >= l}, so summing level
///      spans in groups of g charges the demand profile once.
///   2. Group g consecutive levels per machine *pair*; 2-color each level
///      (its interval graph has clique number <= 2) and send the color
///      classes to the two machines. Each machine holds at most one job
///      per level at any time, hence at most g.
///
/// Total cost <= 2 * demand-profile cost <= 2 * OPT (Observation 4). The
/// Fig 8 instance shows the factor 2 is tight.
[[nodiscard]] core::BusySchedule two_track_peeling(
    const core::ContinuousInstance& inst, PeelingTrace* trace = nullptr,
    PairSplit split = PairSplit::kConsolidate);

}  // namespace abt::busy
