#pragma once

#include <vector>

#include "core/continuous_instance.hpp"
#include "core/run_context.hpp"

namespace abt::busy {

/// Solution of the busy-time problem with unbounded capacity (g = infinity):
/// a set of disjoint busy windows plus one start time per job. The busy time
/// equals OPT_inf, the span lower bound of Observation 3.
struct UnboundedSolution {
  double busy_time = 0.0;
  std::vector<double> starts;            ///< Per job.
  std::vector<core::Interval> windows;   ///< Disjoint busy components.
  bool exact = true;                     ///< False if a limit/deadline hit.
  bool timed_out = false;                ///< The RunContext stopped the DP.
  long nodes = 0;                        ///< Search states expanded.
  /// Distinct pending-set vectors hash-consed by the memo. States share
  /// interned sets by id, so memo memory is O(nodes + interned * set size)
  /// instead of O(nodes * set size); the gap between `nodes` and `interned`
  /// is the sharing factor. Surfaced as dp_* stats in core::Solution.
  long interned = 0;
};

struct UnboundedOptions {
  /// Upper bound on memoized states; when exceeded the solver returns the
  /// push-left upper bound (every job at its release) with exact = false.
  /// The paper's workloads stay far below this.
  long state_limit = 2'000'000;
  /// Deadline / cancellation polled on the state counter (nullptr = free
  /// run). A stop takes the same push-left fallback as the state limit,
  /// with `timed_out = true` so callers can tell the two apart.
  const core::RunContext* context = nullptr;
};

/// Computes an optimal g = infinity schedule. This is the subroutine the
/// paper cites as Khandekar et al.'s dynamic program (Theorem 4): it fixes
/// every flexible job's position; the busy time of the output lower-bounds
/// OPT for any finite g, and freezing the positions turns the instance into
/// interval jobs (section 4.3).
///
/// Implementation: memoized search over states (t, pending) where t is the
/// next admissible window start and `pending` the unsatisfied jobs released
/// before t. Candidate window starts are {r_j} union {d_j - p_j} (an
/// exchange argument shows binding constraints are releases and latest
/// starts); a window [x, y] ends at the obligation e_j(x) = max(r_j, x) +
/// p_j of one of the jobs it satisfies. Jobs are pushed left within their
/// window. Identical jobs collapse in the state key, which keeps the state
/// space polynomial on the paper's gadget families; exactness is
/// cross-checked against brute force in the test suite.
[[nodiscard]] UnboundedSolution solve_unbounded(
    const core::ContinuousInstance& inst, UnboundedOptions options = {});

/// Freezes the starts of `solution` into an interval-job instance with the
/// same capacity (r'_j = start, d'_j = start + p_j) — the conversion step
/// of section 4.3.
[[nodiscard]] core::ContinuousInstance freeze_to_interval_instance(
    const core::ContinuousInstance& inst, const UnboundedSolution& solution);

}  // namespace abt::busy
