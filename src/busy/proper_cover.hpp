#pragma once

#include <vector>

#include "core/continuous_instance.hpp"

namespace abt::busy {

/// The Q-extraction from the proof of Theorem 5: from a set of interval
/// jobs, select a subset Q with
///   (1) Sp(Q) = Sp(set)   — same projection onto the time axis, and
///   (2) at most two jobs of Q overlap at any point in time.
///
/// Construction: drop every job whose execution interval is contained in
/// another's (the survivors form a "proper" set), sweep by release time and
/// repeatedly keep, among the jobs live at the current frontier deadline,
/// only the one reaching furthest.
///
/// Both properties are verified by the test suite; TwoTrackPeeling relies
/// on them for its 2-approximation charging.
[[nodiscard]] std::vector<core::JobId> proper_cover(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates);

/// Incremental level extractor for TwoTrackPeeling's peel loop, the
/// proper_cover sibling of core's TrackPeeler: sorts the candidate pool by
/// (start asc, end desc) ONCE at construction and keeps the survivors in
/// that order across peels, so each `extract_level()` is a single linear
/// sweep — domination filter and frontier selection fused — instead of the
/// per-level re-sort the one-shot `proper_cover` pays. Each extracted level
/// equals `proper_cover` of the current pool exactly (asserted by the
/// equivalence suite in tests/test_proper_cover.cpp).
class LevelPeeler {
 public:
  LevelPeeler(const core::ContinuousInstance& inst,
              const std::vector<core::JobId>& candidates);

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t remaining() const { return items_.size(); }

  /// Extracts the next level (== proper_cover of the remaining pool) and
  /// removes its jobs from the pool. O(remaining) per call.
  std::vector<core::JobId> extract_level();

 private:
  struct Item {
    double start;
    double end;
    core::JobId job;
  };
  std::vector<Item> items_;  ///< Alive pool, sorted (start asc, end desc).
  std::vector<std::size_t> proper_;  ///< Scratch: per-peel proper indices.
};

}  // namespace abt::busy
