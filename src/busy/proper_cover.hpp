#pragma once

#include <vector>

#include "core/continuous_instance.hpp"

namespace abt::busy {

/// The Q-extraction from the proof of Theorem 5: from a set of interval
/// jobs, select a subset Q with
///   (1) Sp(Q) = Sp(set)   — same projection onto the time axis, and
///   (2) at most two jobs of Q overlap at any point in time.
///
/// Construction: drop every job whose execution interval is contained in
/// another's (the survivors form a "proper" set), sweep by release time and
/// repeatedly keep, among the jobs live at the current frontier deadline,
/// only the one reaching furthest.
///
/// Both properties are verified by the test suite; TwoTrackPeeling relies
/// on them for its 2-approximation charging.
[[nodiscard]] std::vector<core::JobId> proper_cover(
    const core::ContinuousInstance& inst,
    const std::vector<core::JobId>& candidates);

}  // namespace abt::busy
