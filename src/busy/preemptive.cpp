#include "busy/preemptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/assert.hpp"
#include "core/scratch.hpp"
#include "core/sweep.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::Interval;
using core::JobId;
using core::PreemptiveBusySchedule;

namespace {

constexpr double kEps = 1e-9;

/// Sorted disjoint set of the machine-open time, on one flat sorted vector
/// (core::FlatIntervalSet). The std::map predecessor is frozen as
/// naive::MapOpenSet; outputs are bit-exact against it
/// (tests/test_flat_layout.cpp) and against the original full-rescan form
/// (tests/test_preemptive.cpp). kEps here equals FlatIntervalSet's default
/// sliver threshold, so covered_in / free_in filter exactly as before.
using OpenSet = core::FlatIntervalSet;
static_assert(OpenSet::kSliverEps == kEps);

}  // namespace

PreemptiveUnboundedSolution solve_preemptive_unbounded(
    const ContinuousInstance& inst) {
  ABT_ASSERT(inst.structurally_valid(), "invalid instance");
  PreemptiveUnboundedSolution out;

  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).deadline < inst.job(b).deadline;
  });

  OpenSet open;
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval window{job.release, job.deadline};
    double deficit = job.length - open.measure_in(window);
    if (deficit <= kEps) continue;
    // Open the *latest* free time inside the window (lazy activation: later
    // jobs all have later deadlines, so late time is most reusable).
    const std::vector<Interval> gaps = open.free_in(window);
    for (auto it = gaps.rbegin(); it != gaps.rend() && deficit > kEps; ++it) {
      const double take = std::min(deficit, it->length());
      open.insert({it->hi - take, it->hi});
      deficit -= take;
    }
    ABT_ASSERT(deficit <= kEps, "window shorter than job length");
  }

  out.open = open.intervals();
  out.busy_time = core::span_of(out.open);

  // Build the schedule: every job takes the latest `p_j` units of
  // U ∩ window; with unbounded capacity a single machine hosts everything.
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});
  for (JobId j = 0; j < inst.size(); ++j) {
    const core::ContinuousJob& job = inst.job(j);
    double need = job.length;
    const std::vector<Interval> available =
        open.covered_in({job.release, job.deadline});
    for (auto it = available.rbegin(); it != available.rend() && need > kEps;
         ++it) {
      const double take = std::min(need, it->length());
      out.schedule.pieces[static_cast<std::size_t>(j)].push_back(
          {0, {it->hi - take, it->hi}});
      need -= take;
    }
    ABT_ASSERT(need <= 1e-6, "open set must cover every job's demand");
    std::reverse(out.schedule.pieces[static_cast<std::size_t>(j)].begin(),
                 out.schedule.pieces[static_cast<std::size_t>(j)].end());
  }
  return out;
}

PreemptiveBoundedSolution solve_preemptive_bounded(
    const ContinuousInstance& inst) {
  const PreemptiveUnboundedSolution unbounded =
      solve_preemptive_unbounded(inst);

  PreemptiveBoundedSolution out;
  out.opt_infinity = unbounded.busy_time;
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});

  // Interesting intervals of the unbounded schedule: cut at every piece
  // endpoint; inside one cell the set of running jobs is fixed.
  std::vector<double> points;
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece :
         unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
      points.push_back(piece.run.lo);
      points.push_back(piece.run.hi);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) { return std::abs(a - b) < kEps; }),
               points.end());

  // Non-degenerate cells with their midpoints (ascending). A piece covers
  // a contiguous run of cells, so instead of rescanning every job's pieces
  // per cell (the old O(cells * pieces) loop), each piece locates its cell
  // range with two binary searches on the midpoints; iterating jobs in id
  // order keeps every cell's running list in ascending job order, exactly
  // as the per-cell scan produced it.
  std::vector<Interval> cells;
  std::vector<double> mids;
  for (std::size_t c = 0; c + 1 < points.size(); ++c) {
    const Interval cell{points[c], points[c + 1]};
    if (cell.length() <= kEps) continue;
    cells.push_back(cell);
    mids.push_back(cell.lo + cell.length() / 2);
  }
  // Per-cell running lists in CSR form on arena scratch (flat counts /
  // offsets / ids instead of a vector-of-vectors): the buffers are bump
  // allocations a worker thread reuses across trials, and the fill order
  // (jobs ascending, pieces in order) reproduces the per-cell lists of the
  // nested-vector predecessor element for element.
  core::MonotonicArena& arena = core::thread_arena();
  const core::ArenaScope scope(arena);
  std::size_t num_pieces = 0;
  for (JobId j = 0; j < inst.size(); ++j) {
    num_pieces += unbounded.schedule.pieces[static_cast<std::size_t>(j)].size();
  }
  struct PieceCells {
    std::size_t first;
    std::size_t last;
    JobId job;
  };
  const std::span<PieceCells> ranges = arena.alloc<PieceCells>(num_pieces);
  const std::span<int> counts = arena.alloc<int>(cells.size());
  std::fill(counts.begin(), counts.end(), 0);
  std::size_t nr = 0;
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece :
         unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
      // Cells whose midpoint lies in [run.lo, run.hi) — the same predicate
      // the per-cell scan evaluated.
      const std::size_t first = core::flat_lower_bound(
          mids.data(), mids.size(), piece.run.lo);
      const std::size_t last = core::flat_lower_bound(
          mids.data(), mids.size(), piece.run.hi);
      ranges[nr++] = {first, last, j};
      for (std::size_t c = first; c < last; ++c) ++counts[c];
    }
  }
  const std::span<std::size_t> offsets =
      arena.alloc<std::size_t>(cells.size() + 1);
  offsets[0] = 0;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    offsets[c + 1] = offsets[c] + static_cast<std::size_t>(counts[c]);
  }
  const std::span<JobId> ids = arena.alloc<JobId>(offsets[cells.size()]);
  const std::span<std::size_t> cursor =
      arena.alloc<std::size_t>(cells.size());
  std::copy(offsets.begin(), offsets.end() - 1, cursor.begin());
  for (std::size_t r = 0; r < nr; ++r) {
    for (std::size_t c = ranges[r].first; c < ranges[r].last; ++c) {
      ids[cursor[c]++] = ranges[r].job;
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    // Deal onto ceil(count/g) machines, filling g at a time: at most one
    // machine per cell is below capacity (charged to the span bound).
    for (std::size_t idx = 0; idx + offsets[c] < offsets[c + 1]; ++idx) {
      const int machine = static_cast<int>(idx) / inst.capacity();
      out.schedule.pieces[static_cast<std::size_t>(ids[offsets[c] + idx])]
          .push_back({machine, cells[c]});
    }
  }

  // Merge adjacent same-machine pieces per job (cosmetic; keeps piece
  // counts linear).
  for (JobId j = 0; j < inst.size(); ++j) {
    auto& pieces = out.schedule.pieces[static_cast<std::size_t>(j)];
    std::sort(pieces.begin(), pieces.end(),
              [](const PreemptiveBusySchedule::Piece& a,
                 const PreemptiveBusySchedule::Piece& b) {
                return a.run.lo < b.run.lo;
              });
    std::vector<PreemptiveBusySchedule::Piece> merged;
    for (const auto& piece : pieces) {
      if (!merged.empty() && merged.back().machine == piece.machine &&
          std::abs(merged.back().run.hi - piece.run.lo) < kEps) {
        merged.back().run.hi = piece.run.hi;
      } else {
        merged.push_back(piece);
      }
    }
    pieces = std::move(merged);
  }

  out.busy_time = core::busy_cost(inst, out.schedule);
  return out;
}

}  // namespace abt::busy
