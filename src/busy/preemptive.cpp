#include "busy/preemptive.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::Interval;
using core::JobId;
using core::PreemptiveBusySchedule;

namespace {

constexpr double kEps = 1e-9;

/// Measure of window ∩ union(open).
double measure_in(const std::vector<Interval>& open, const Interval& window) {
  double total = 0.0;
  for (const Interval& iv : open) {
    const double lo = std::max(iv.lo, window.lo);
    const double hi = std::min(iv.hi, window.hi);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

/// Free sub-intervals of `window` not covered by `open` (sorted, disjoint).
std::vector<Interval> free_in(const std::vector<Interval>& open,
                              const Interval& window) {
  std::vector<Interval> out;
  double cursor = window.lo;
  for (const Interval& iv : open) {
    if (iv.hi <= window.lo || iv.lo >= window.hi) continue;
    if (iv.lo > cursor) out.push_back({cursor, std::min(iv.lo, window.hi)});
    cursor = std::max(cursor, iv.hi);
    if (cursor >= window.hi) break;
  }
  if (cursor < window.hi) out.push_back({cursor, window.hi});
  std::erase_if(out, [](const Interval& iv) { return iv.length() <= kEps; });
  return out;
}

}  // namespace

PreemptiveUnboundedSolution solve_preemptive_unbounded(
    const ContinuousInstance& inst) {
  ABT_ASSERT(inst.structurally_valid(), "invalid instance");
  PreemptiveUnboundedSolution out;

  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).deadline < inst.job(b).deadline;
  });

  std::vector<Interval> open;
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval window{job.release, job.deadline};
    double deficit = job.length - measure_in(open, window);
    if (deficit <= kEps) continue;
    // Open the *latest* free time inside the window (lazy activation: later
    // jobs all have later deadlines, so late time is most reusable).
    std::vector<Interval> gaps = free_in(open, window);
    for (auto it = gaps.rbegin(); it != gaps.rend() && deficit > kEps; ++it) {
      const double take = std::min(deficit, it->length());
      open.push_back({it->hi - take, it->hi});
      deficit -= take;
    }
    ABT_ASSERT(deficit <= kEps, "window shorter than job length");
    open = core::interval_union(std::move(open));
  }

  out.open = open;
  out.busy_time = core::span_of(open);

  // Build the schedule: every job takes the latest `p_j` units of
  // U ∩ window; with unbounded capacity a single machine hosts everything.
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});
  for (JobId j = 0; j < inst.size(); ++j) {
    const core::ContinuousJob& job = inst.job(j);
    double need = job.length;
    std::vector<Interval> available;
    for (const Interval& iv : open) {
      const double lo = std::max(iv.lo, job.release);
      const double hi = std::min(iv.hi, job.deadline);
      if (hi > lo + kEps) available.push_back({lo, hi});
    }
    for (auto it = available.rbegin(); it != available.rend() && need > kEps;
         ++it) {
      const double take = std::min(need, it->length());
      out.schedule.pieces[static_cast<std::size_t>(j)].push_back(
          {0, {it->hi - take, it->hi}});
      need -= take;
    }
    ABT_ASSERT(need <= 1e-6, "open set must cover every job's demand");
    std::reverse(out.schedule.pieces[static_cast<std::size_t>(j)].begin(),
                 out.schedule.pieces[static_cast<std::size_t>(j)].end());
  }
  return out;
}

PreemptiveBoundedSolution solve_preemptive_bounded(
    const ContinuousInstance& inst) {
  const PreemptiveUnboundedSolution unbounded =
      solve_preemptive_unbounded(inst);

  PreemptiveBoundedSolution out;
  out.opt_infinity = unbounded.busy_time;
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});

  // Interesting intervals of the unbounded schedule: cut at every piece
  // endpoint; inside one cell the set of running jobs is fixed.
  std::vector<double> points;
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece :
         unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
      points.push_back(piece.run.lo);
      points.push_back(piece.run.hi);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) { return std::abs(a - b) < kEps; }),
               points.end());

  for (std::size_t c = 0; c + 1 < points.size(); ++c) {
    const Interval cell{points[c], points[c + 1]};
    if (cell.length() <= kEps) continue;
    const double mid = cell.lo + cell.length() / 2;
    // Jobs running throughout this cell in the unbounded solution.
    std::vector<JobId> running;
    for (JobId j = 0; j < inst.size(); ++j) {
      for (const auto& piece :
           unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
        if (piece.run.lo <= mid && mid < piece.run.hi) {
          running.push_back(j);
          break;
        }
      }
    }
    if (running.empty()) continue;
    // Deal onto ceil(count/g) machines, filling g at a time: at most one
    // machine per cell is below capacity (charged to the span bound).
    for (std::size_t idx = 0; idx < running.size(); ++idx) {
      const int machine = static_cast<int>(idx) / inst.capacity();
      out.schedule.pieces[static_cast<std::size_t>(running[idx])].push_back(
          {machine, cell});
    }
  }

  // Merge adjacent same-machine pieces per job (cosmetic; keeps piece
  // counts linear).
  for (JobId j = 0; j < inst.size(); ++j) {
    auto& pieces = out.schedule.pieces[static_cast<std::size_t>(j)];
    std::sort(pieces.begin(), pieces.end(),
              [](const PreemptiveBusySchedule::Piece& a,
                 const PreemptiveBusySchedule::Piece& b) {
                return a.run.lo < b.run.lo;
              });
    std::vector<PreemptiveBusySchedule::Piece> merged;
    for (const auto& piece : pieces) {
      if (!merged.empty() && merged.back().machine == piece.machine &&
          std::abs(merged.back().run.hi - piece.run.lo) < kEps) {
        merged.back().run.hi = piece.run.hi;
      } else {
        merged.push_back(piece);
      }
    }
    pieces = std::move(merged);
  }

  out.busy_time = core::busy_cost(inst, out.schedule);
  return out;
}

}  // namespace abt::busy
