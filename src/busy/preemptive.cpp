#include "busy/preemptive.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "core/assert.hpp"

namespace abt::busy {

using core::ContinuousInstance;
using core::Interval;
using core::JobId;
using core::PreemptiveBusySchedule;

namespace {

constexpr double kEps = 1e-9;

/// Sorted disjoint set of open intervals (lo -> hi), the incremental form
/// of core::interval_union: neighbours closer than `kMergeEps` coalesce on
/// insert, exactly as the batch union would merge them. The original kept
/// a flat vector and paid a full O(n) scan per measure/free query plus an
/// O(n log n) re-union per job — the quadratic scans the ROADMAP flagged.
/// Every operation here costs O(log n) to locate the window plus one step
/// per intersected interval; outputs are unchanged (asserted against the
/// frozen original in tests/test_preemptive.cpp).
class OpenSet {
 public:
  /// interval_union's merge tolerance (treats touching as merged).
  static constexpr double kMergeEps = 1e-12;

  /// Measure of window ∩ union(open).
  [[nodiscard]] double measure_in(const Interval& window) const {
    double total = 0.0;
    for (auto it = first_overlapping(window);
         it != set_.end() && it->first < window.hi; ++it) {
      const double lo = std::max(it->first, window.lo);
      const double hi = std::min(it->second, window.hi);
      if (hi > lo) total += hi - lo;
    }
    return total;
  }

  /// Clipped covered sub-intervals of `window` (sorted, disjoint, slivers
  /// <= kEps dropped) — union(open) ∩ window.
  [[nodiscard]] std::vector<Interval> covered_in(const Interval& window) const {
    std::vector<Interval> out;
    for (auto it = first_overlapping(window);
         it != set_.end() && it->first < window.hi; ++it) {
      const double lo = std::max(it->first, window.lo);
      const double hi = std::min(it->second, window.hi);
      if (hi > lo + kEps) out.push_back({lo, hi});
    }
    return out;
  }

  /// Free sub-intervals of `window` not covered by the set (sorted,
  /// disjoint, slivers <= kEps dropped).
  [[nodiscard]] std::vector<Interval> free_in(const Interval& window) const {
    std::vector<Interval> out;
    double cursor = window.lo;
    for (auto it = first_overlapping(window);
         it != set_.end() && it->first < window.hi; ++it) {
      if (it->first > cursor) {
        out.push_back({cursor, std::min(it->first, window.hi)});
      }
      cursor = std::max(cursor, it->second);
      if (cursor >= window.hi) break;
    }
    if (cursor < window.hi) out.push_back({cursor, window.hi});
    std::erase_if(out, [](const Interval& iv) { return iv.length() <= kEps; });
    return out;
  }

  /// Adds one interval, coalescing with every neighbour within kMergeEps.
  void insert(Interval iv) {
    auto it = set_.upper_bound(iv.lo);
    if (it != set_.begin()) {
      const auto prev = std::prev(it);
      if (iv.lo <= prev->second + kMergeEps) {
        iv.lo = prev->first;
        iv.hi = std::max(iv.hi, prev->second);
        it = set_.erase(prev);
      }
    }
    while (it != set_.end() && it->first <= iv.hi + kMergeEps) {
      iv.hi = std::max(iv.hi, it->second);
      it = set_.erase(it);
    }
    set_.emplace(iv.lo, iv.hi);
  }

  [[nodiscard]] std::vector<Interval> intervals() const {
    std::vector<Interval> out;
    out.reserve(set_.size());
    for (const auto& [lo, hi] : set_) out.push_back({lo, hi});
    return out;
  }

 private:
  /// First stored interval intersecting `w` (or the first starting past
  /// it). O(log n).
  [[nodiscard]] std::map<double, double>::const_iterator first_overlapping(
      const Interval& w) const {
    auto it = set_.upper_bound(w.lo);
    if (it != set_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second > w.lo) return prev;
    }
    return it;
  }

  std::map<double, double> set_;  ///< lo -> hi, disjoint, gaps > kMergeEps.
};

}  // namespace

PreemptiveUnboundedSolution solve_preemptive_unbounded(
    const ContinuousInstance& inst) {
  ABT_ASSERT(inst.structurally_valid(), "invalid instance");
  PreemptiveUnboundedSolution out;

  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).deadline < inst.job(b).deadline;
  });

  OpenSet open;
  for (JobId j : order) {
    const core::ContinuousJob& job = inst.job(j);
    const Interval window{job.release, job.deadline};
    double deficit = job.length - open.measure_in(window);
    if (deficit <= kEps) continue;
    // Open the *latest* free time inside the window (lazy activation: later
    // jobs all have later deadlines, so late time is most reusable).
    const std::vector<Interval> gaps = open.free_in(window);
    for (auto it = gaps.rbegin(); it != gaps.rend() && deficit > kEps; ++it) {
      const double take = std::min(deficit, it->length());
      open.insert({it->hi - take, it->hi});
      deficit -= take;
    }
    ABT_ASSERT(deficit <= kEps, "window shorter than job length");
  }

  out.open = open.intervals();
  out.busy_time = core::span_of(out.open);

  // Build the schedule: every job takes the latest `p_j` units of
  // U ∩ window; with unbounded capacity a single machine hosts everything.
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});
  for (JobId j = 0; j < inst.size(); ++j) {
    const core::ContinuousJob& job = inst.job(j);
    double need = job.length;
    const std::vector<Interval> available =
        open.covered_in({job.release, job.deadline});
    for (auto it = available.rbegin(); it != available.rend() && need > kEps;
         ++it) {
      const double take = std::min(need, it->length());
      out.schedule.pieces[static_cast<std::size_t>(j)].push_back(
          {0, {it->hi - take, it->hi}});
      need -= take;
    }
    ABT_ASSERT(need <= 1e-6, "open set must cover every job's demand");
    std::reverse(out.schedule.pieces[static_cast<std::size_t>(j)].begin(),
                 out.schedule.pieces[static_cast<std::size_t>(j)].end());
  }
  return out;
}

PreemptiveBoundedSolution solve_preemptive_bounded(
    const ContinuousInstance& inst) {
  const PreemptiveUnboundedSolution unbounded =
      solve_preemptive_unbounded(inst);

  PreemptiveBoundedSolution out;
  out.opt_infinity = unbounded.busy_time;
  out.schedule.pieces.assign(static_cast<std::size_t>(inst.size()), {});

  // Interesting intervals of the unbounded schedule: cut at every piece
  // endpoint; inside one cell the set of running jobs is fixed.
  std::vector<double> points;
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece :
         unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
      points.push_back(piece.run.lo);
      points.push_back(piece.run.hi);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) { return std::abs(a - b) < kEps; }),
               points.end());

  // Non-degenerate cells with their midpoints (ascending). A piece covers
  // a contiguous run of cells, so instead of rescanning every job's pieces
  // per cell (the old O(cells * pieces) loop), each piece locates its cell
  // range with two binary searches on the midpoints; iterating jobs in id
  // order keeps every cell's running list in ascending job order, exactly
  // as the per-cell scan produced it.
  std::vector<Interval> cells;
  std::vector<double> mids;
  for (std::size_t c = 0; c + 1 < points.size(); ++c) {
    const Interval cell{points[c], points[c + 1]};
    if (cell.length() <= kEps) continue;
    cells.push_back(cell);
    mids.push_back(cell.lo + cell.length() / 2);
  }
  std::vector<std::vector<JobId>> running(cells.size());
  for (JobId j = 0; j < inst.size(); ++j) {
    for (const auto& piece :
         unbounded.schedule.pieces[static_cast<std::size_t>(j)]) {
      // Cells whose midpoint lies in [run.lo, run.hi) — the same predicate
      // the per-cell scan evaluated.
      const auto first =
          std::lower_bound(mids.begin(), mids.end(), piece.run.lo);
      const auto last =
          std::lower_bound(mids.begin(), mids.end(), piece.run.hi);
      for (auto it = first; it != last; ++it) {
        running[static_cast<std::size_t>(it - mids.begin())].push_back(j);
      }
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    // Deal onto ceil(count/g) machines, filling g at a time: at most one
    // machine per cell is below capacity (charged to the span bound).
    const std::vector<JobId>& here = running[c];
    for (std::size_t idx = 0; idx < here.size(); ++idx) {
      const int machine = static_cast<int>(idx) / inst.capacity();
      out.schedule.pieces[static_cast<std::size_t>(here[idx])].push_back(
          {machine, cells[c]});
    }
  }

  // Merge adjacent same-machine pieces per job (cosmetic; keeps piece
  // counts linear).
  for (JobId j = 0; j < inst.size(); ++j) {
    auto& pieces = out.schedule.pieces[static_cast<std::size_t>(j)];
    std::sort(pieces.begin(), pieces.end(),
              [](const PreemptiveBusySchedule::Piece& a,
                 const PreemptiveBusySchedule::Piece& b) {
                return a.run.lo < b.run.lo;
              });
    std::vector<PreemptiveBusySchedule::Piece> merged;
    for (const auto& piece : pieces) {
      if (!merged.empty() && merged.back().machine == piece.machine &&
          std::abs(merged.back().run.hi - piece.run.lo) < kEps) {
        merged.back().run.hi = piece.run.hi;
      } else {
        merged.push_back(piece);
      }
    }
    pieces = std::move(merged);
  }

  out.busy_time = core::busy_cost(inst, out.schedule);
  return out;
}

}  // namespace abt::busy
