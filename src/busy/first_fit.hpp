#pragma once

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// FIRSTFIT of Flammini et al. [5], the 4-approximate baseline for interval
/// jobs: consider jobs in non-increasing order of length and pack each into
/// the first machine whose capacity constraint survives; open a new machine
/// when none fits. The paper's Fig 6-style instances drive it to ratio 3+.
[[nodiscard]] core::BusySchedule first_fit(
    const core::ContinuousInstance& inst);

/// FIRSTFIT ordered by release time instead of length: 2-approximate on
/// proper instances (Flammini et al., footnote 1 of the paper).
[[nodiscard]] core::BusySchedule first_fit_by_release(
    const core::ContinuousInstance& inst);

}  // namespace abt::busy
