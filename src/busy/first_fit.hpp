#pragma once

#include "core/busy_schedule.hpp"
#include "core/continuous_instance.hpp"

namespace abt::busy {

/// FIRSTFIT of Flammini et al. [5], the 4-approximate baseline for interval
/// jobs: consider jobs in non-increasing order of length and pack each into
/// the first machine whose capacity constraint survives; open a new machine
/// when none fits. The paper's Fig 6-style instances drive it to ratio 3+.
///
/// Machines are indexed by earliest-free time (core::MachineFreeIndex), so
/// the per-job scan stops at the first machine that is idle across the
/// candidate's run instead of probing every open machine.
[[nodiscard]] core::BusySchedule first_fit(
    const core::ContinuousInstance& inst);

/// FIRSTFIT ordered by release time instead of length: 2-approximate on
/// proper instances (Flammini et al., footnote 1 of the paper).
///
/// In release order the capacity probe degenerates to the machine's
/// coverage at the job's release, so the whole scan collapses to one
/// O(log m) first-fit query against a frontier-coverage index — no
/// per-machine probing at all.
[[nodiscard]] core::BusySchedule first_fit_by_release(
    const core::ContinuousInstance& inst);

}  // namespace abt::busy
