#pragma once

#include "core/continuous_instance.hpp"

namespace abt::busy {

/// The three lower bounds on optimal busy time used throughout section 4.
struct BusyLowerBounds {
  double mass = 0.0;    ///< l(J)/g (Observation 2).
  double span = 0.0;    ///< OPT_inf (Observation 3).
  double profile = 0.0; ///< Demand-profile cost (Observation 4); interval
                        ///< jobs only, 0 otherwise.

  [[nodiscard]] double best() const;
};

/// Computes all applicable lower bounds. For interval jobs the span is the
/// projection Sp(J); for flexible jobs it is the g = infinity optimum
/// (computed by the DP; pass `compute_span_for_flexible = false` to skip
/// that cost on large instances).
[[nodiscard]] BusyLowerBounds busy_lower_bounds(
    const core::ContinuousInstance& inst,
    bool compute_span_for_flexible = true);

}  // namespace abt::busy
