#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/assert.hpp"

namespace abt::flow {

Dinic::Dinic(int num_nodes)
    : graph_(static_cast<std::size_t>(num_nodes)),
      level_(static_cast<std::size_t>(num_nodes)),
      iter_(static_cast<std::size_t>(num_nodes)) {
  ABT_ASSERT(num_nodes >= 0, "negative node count");
}

Dinic::EdgeRef Dinic::add_edge(int u, int v, Cap cap) {
  ABT_ASSERT(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes(),
             "edge endpoint out of range");
  ABT_ASSERT(cap >= 0, "negative capacity");
  auto& fwd_list = graph_[static_cast<std::size_t>(u)];
  auto& rev_list = graph_[static_cast<std::size_t>(v)];
  const auto fwd_idx = static_cast<std::int32_t>(fwd_list.size());
  auto rev_idx = static_cast<std::int32_t>(rev_list.size());
  if (u == v) ++rev_idx;  // self loop: the two edges share the list
  fwd_list.push_back({v, cap, cap, rev_idx});
  graph_[static_cast<std::size_t>(v)].push_back({u, 0, 0, fwd_idx});
  edge_locator_.emplace_back(u, fwd_idx);
  return EdgeRef{static_cast<std::int32_t>(edge_locator_.size()) - 1};
}

bool Dinic::bfs(int s, int t) {
  std::fill(level_.begin(), level_.end(), -1);
  std::queue<int> queue;
  level_[static_cast<std::size_t>(s)] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(u)]) {
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

Dinic::Cap Dinic::dfs(int u, int t, Cap pushed) {
  if (u == t) return pushed;
  for (std::size_t& i = iter_[static_cast<std::size_t>(u)];
       i < graph_[static_cast<std::size_t>(u)].size(); ++i) {
    Edge& e = graph_[static_cast<std::size_t>(u)][i];
    if (e.cap <= 0 || level_[static_cast<std::size_t>(e.to)] !=
                          level_[static_cast<std::size_t>(u)] + 1) {
      continue;
    }
    const Cap got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      graph_[static_cast<std::size_t>(e.to)][static_cast<std::size_t>(e.rev)]
          .cap += got;
      return got;
    }
  }
  return 0;
}

Dinic::Cap Dinic::max_flow(int s, int t) { return max_flow(s, t, {}); }

Dinic::Cap Dinic::max_flow(int s, int t, const Options& options,
                           bool* cancelled) {
  ABT_ASSERT(s != t, "source equals sink");
  if (cancelled != nullptr) *cancelled = false;
  const auto stopped = [&options] {
    return options.should_stop && options.should_stop();
  };
  Cap total = 0;
  int paths_since_poll = 0;
  for (;;) {
    if (stopped()) {  // per-phase poll: before paying the next BFS
      if (cancelled != nullptr) *cancelled = true;
      return total;
    }
    if (!bfs(s, t)) break;
    std::fill(iter_.begin(), iter_.end(), 0);
    while (true) {
      if (++paths_since_poll >= kStopPollPaths) {
        paths_since_poll = 0;
        if (stopped()) {
          if (cancelled != nullptr) *cancelled = true;
          return total;
        }
      }
      const Cap got = dfs(s, t, std::numeric_limits<Cap>::max());
      if (got == 0) break;
      total += got;
    }
  }
  return total;
}

Dinic::Cap Dinic::flow_on(EdgeRef e) const {
  const auto& [node, idx] = edge_locator_[static_cast<std::size_t>(e.index)];
  const Edge& edge =
      graph_[static_cast<std::size_t>(node)][static_cast<std::size_t>(idx)];
  return edge.original - edge.cap;
}

Dinic::Cap Dinic::residual_on(EdgeRef e) const {
  const auto& [node, idx] = edge_locator_[static_cast<std::size_t>(e.index)];
  return graph_[static_cast<std::size_t>(node)][static_cast<std::size_t>(idx)]
      .cap;
}

std::vector<bool> Dinic::min_cut_side(int s) const {
  std::vector<bool> seen(graph_.size(), false);
  std::queue<int> queue;
  seen[static_cast<std::size_t>(s)] = true;
  queue.push(s);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (const Edge& e : graph_[static_cast<std::size_t>(u)]) {
      if (e.cap > 0 && !seen[static_cast<std::size_t>(e.to)]) {
        seen[static_cast<std::size_t>(e.to)] = true;
        queue.push(e.to);
      }
    }
  }
  return seen;
}

}  // namespace abt::flow
