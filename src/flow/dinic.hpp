#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace abt::flow {

/// Integer max-flow via Dinic's algorithm (O(V^2 E), much faster on the
/// unit-capacity-heavy bipartite networks the active-time feasibility check
/// produces — Fig 2 of the paper).
///
/// Usage:
///   Dinic d(n);
///   auto e = d.add_edge(u, v, cap);
///   d.max_flow(s, t);
///   d.flow_on(e);  // flow routed through that edge
class Dinic {
 public:
  using Cap = std::int64_t;

  /// Handle to an edge, stable across max_flow calls.
  struct EdgeRef {
    std::int32_t index = -1;
  };

  explicit Dinic(int num_nodes);

  /// Adds a directed edge u -> v with capacity `cap`; returns a handle that
  /// can be queried for the routed flow after max_flow().
  EdgeRef add_edge(int u, int v, Cap cap);

  /// Cooperative-stop knobs for long flow computations. A plain callback
  /// (same pattern as lp::SimplexSolver::Options::should_stop) keeps the
  /// flow layer free of engine/core types.
  struct Options {
    /// Polled once per BFS phase and every kStopPollPaths augmenting
    /// paths; returning true abandons the computation.
    std::function<bool()> should_stop;
  };

  /// How many augmenting paths run between should_stop polls inside one
  /// phase. Phases on the feasibility networks route many unit paths, so
  /// phase-boundary polling alone could let a cancelled budget run for a
  /// whole phase.
  static constexpr int kStopPollPaths = 64;

  /// Computes the maximum s-t flow. May be called once per network; add no
  /// edges afterwards. Calling again re-runs on residual capacities (i.e.,
  /// returns 0 the second time for the same s, t).
  Cap max_flow(int s, int t);

  /// Cancellable variant: polls `options.should_stop` and, when it trips,
  /// stops early, sets `*cancelled` (when non-null) and returns the flow
  /// routed so far — a LOWER bound on the max flow. Callers must not read
  /// a cancelled value as "the max flow is this small" (in particular, a
  /// cancelled feasibility check is not "infeasible").
  Cap max_flow(int s, int t, const Options& options,
               bool* cancelled = nullptr);

  /// Flow currently routed on edge `e` (meaningful after max_flow).
  [[nodiscard]] Cap flow_on(EdgeRef e) const;

  /// Remaining capacity of edge `e`.
  [[nodiscard]] Cap residual_on(EdgeRef e) const;

  [[nodiscard]] int num_nodes() const { return static_cast<int>(graph_.size()); }

  /// Nodes reachable from `s` in the residual graph (the min-cut's source
  /// side after max_flow).
  [[nodiscard]] std::vector<bool> min_cut_side(int s) const;

 private:
  struct Edge {
    int to;
    Cap cap;        // remaining capacity
    Cap original;   // capacity at construction
    std::int32_t rev;  // index of reverse edge in graph_[to]
  };

  bool bfs(int s, int t);
  Cap dfs(int u, int t, Cap pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<int, std::int32_t>> edge_locator_;  // EdgeRef -> (node, idx)
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace abt::flow
