#include "active/minimal_feasible.hpp"

#include <algorithm>
#include <numeric>

#include "active/feasibility.hpp"
#include "core/rng.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::SlotTime;
using core::SlottedInstance;

namespace {

std::vector<std::size_t> closing_order(const SlottedInstance& inst,
                                       const std::vector<SlotTime>& slots,
                                       const MinimalFeasibleOptions& options) {
  std::vector<std::size_t> order(slots.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (options.order) {
    case CloseOrder::kLeftToRight:
      break;  // already ascending
    case CloseOrder::kRightToLeft:
      std::reverse(order.begin(), order.end());
      break;
    case CloseOrder::kSparsestFirst:
    case CloseOrder::kDensestFirst: {
      std::vector<int> live_count(slots.size(), 0);
      for (std::size_t i = 0; i < slots.size(); ++i) {
        live_count[i] = static_cast<int>(inst.live_jobs(slots[i]).size());
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return options.order == CloseOrder::kSparsestFirst
                                    ? live_count[a] < live_count[b]
                                    : live_count[a] > live_count[b];
                       });
      break;
    }
    case CloseOrder::kRandom: {
      core::Rng rng(options.seed);
      std::shuffle(order.begin(), order.end(), rng.engine());
      break;
    }
  }
  return order;
}

}  // namespace

std::optional<ActiveSchedule> solve_minimal_feasible(
    const SlottedInstance& inst, MinimalFeasibleOptions options) {
  std::vector<SlotTime> slots = candidate_slots(inst);
  if (!is_feasible_with_slots(inst, slots)) return std::nullopt;

  const std::vector<std::size_t> order = closing_order(inst, slots, options);
  std::vector<char> open(slots.size(), 1);

  // One pass suffices: closing slots only shrinks the feasible set, so a
  // slot that could not be closed earlier can never be closed later.
  for (std::size_t idx : order) {
    open[idx] = 0;
    std::vector<SlotTime> trial;
    trial.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (open[i] != 0) trial.push_back(slots[i]);
    }
    if (!is_feasible_with_slots(inst, trial)) open[idx] = 1;
  }

  std::vector<SlotTime> final_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (open[i] != 0) final_slots.push_back(slots[i]);
  }
  return extract_assignment(inst, std::move(final_slots));
}

}  // namespace abt::active
