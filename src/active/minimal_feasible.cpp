#include "active/minimal_feasible.hpp"

#include <algorithm>
#include <numeric>

#include "active/feasibility.hpp"
#include "core/rng.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::SlotTime;
using core::SlottedInstance;

namespace {

std::vector<std::size_t> closing_order(const SlottedInstance& inst,
                                       const std::vector<SlotTime>& slots,
                                       const MinimalFeasibleOptions& options) {
  std::vector<std::size_t> order(slots.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (options.order) {
    case CloseOrder::kLeftToRight:
      break;  // already ascending
    case CloseOrder::kRightToLeft:
      std::reverse(order.begin(), order.end());
      break;
    case CloseOrder::kSparsestFirst:
    case CloseOrder::kDensestFirst: {
      std::vector<int> live_count(slots.size(), 0);
      for (std::size_t i = 0; i < slots.size(); ++i) {
        live_count[i] = static_cast<int>(inst.live_jobs(slots[i]).size());
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return options.order == CloseOrder::kSparsestFirst
                                    ? live_count[a] < live_count[b]
                                    : live_count[a] > live_count[b];
                       });
      break;
    }
    case CloseOrder::kRandom: {
      core::Rng rng(options.seed);
      std::shuffle(order.begin(), order.end(), rng.engine());
      break;
    }
  }
  return order;
}

}  // namespace

std::optional<ActiveSchedule> solve_minimal_feasible(
    const SlottedInstance& inst, MinimalFeasibleOptions options,
    bool* cancelled) {
  if (cancelled != nullptr) *cancelled = false;
  // Cancellation only — never the budget. A deadline must not change what
  // this polynomial solver returns; a hard cancel may stop the closing
  // pass early because any prefix of it leaves a feasible set.
  const std::function<bool()> cancel_poll =
      options.context == nullptr
          ? std::function<bool()>{}
          : [ctx = options.context] { return ctx->cancelled(); };

  std::vector<SlotTime> slots = candidate_slots(inst);
  switch (feasibility_with_slots(inst, slots, cancel_poll)) {
    case FeasStatus::kInfeasible:
      return std::nullopt;
    case FeasStatus::kCancelled:
      if (cancelled != nullptr) *cancelled = true;
      return std::nullopt;
    case FeasStatus::kFeasible:
      break;
  }

  const std::vector<std::size_t> order = closing_order(inst, slots, options);
  std::vector<char> open(slots.size(), 1);

  // One pass suffices: closing slots only shrinks the feasible set, so a
  // slot that could not be closed earlier can never be closed later.
  for (std::size_t idx : order) {
    open[idx] = 0;
    std::vector<SlotTime> trial;
    trial.reserve(slots.size());
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (open[i] != 0) trial.push_back(slots[i]);
    }
    const FeasStatus status = feasibility_with_slots(inst, trial, cancel_poll);
    if (status != FeasStatus::kFeasible) open[idx] = 1;
    if (status == FeasStatus::kCancelled) break;  // keep the feasible set
  }

  std::vector<SlotTime> final_slots;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (open[i] != 0) final_slots.push_back(slots[i]);
  }
  // The final extraction must complete to return anything at all — it is
  // one flow on an already-feasible set, so it is not worth interrupting.
  return extract_assignment(inst, std::move(final_slots));
}

}  // namespace abt::active
