#pragma once

#include <cstdint>
#include <optional>

#include "core/active_schedule.hpp"
#include "core/run_context.hpp"
#include "core/slotted_instance.hpp"

namespace abt::active {

/// Order in which the minimal-feasible solver attempts to close slots.
/// Any order yields a minimal feasible solution (Definition 4) and hence a
/// 3-approximation (Theorem 1); the order is the adversarial knob that the
/// Fig 3 tight example exploits.
enum class CloseOrder {
  kLeftToRight,   ///< Close earliest slots first (keeps late slots; "lazy").
  kRightToLeft,   ///< Close latest slots first (keeps early slots).
  kSparsestFirst, ///< Close slots with fewest live jobs first.
  kDensestFirst,  ///< Close slots with most live jobs first.
  kRandom,        ///< Uniformly random order (seeded).
};

struct MinimalFeasibleOptions {
  CloseOrder order = CloseOrder::kLeftToRight;
  std::uint64_t seed = 1;  ///< Used by kRandom.
  /// Polled for CANCELLATION ONLY (never the budget — this is a polynomial
  /// solver whose output must not depend on the wall clock; an expired
  /// budget must produce the same schedule as a free run). On cancellation
  /// mid-pass the closing stops early: the set kept is still feasible,
  /// merely not minimal, and is returned as the anytime result.
  const core::RunContext* context = nullptr;
};

/// Computes a minimal feasible solution: starts from all candidate slots
/// active, closes slots one at a time in the given order, keeping a closure
/// whenever the remaining set is still feasible (checked by max-flow).
/// Feasibility is monotone in the slot set, so one pass yields minimality.
///
/// Returns nullopt when the instance itself is infeasible — or when
/// cancellation tripped before feasibility was established, in which case
/// `*cancelled` (when non-null) is set so callers can tell the two apart.
///
/// Cost of the result is at most 3 * OPT (Theorem 1), and the bound is
/// tight (Fig 3).
[[nodiscard]] std::optional<core::ActiveSchedule> solve_minimal_feasible(
    const core::SlottedInstance& inst, MinimalFeasibleOptions options = {},
    bool* cancelled = nullptr);

}  // namespace abt::active
