#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "active/feasibility.hpp"
#include "core/active_schedule.hpp"
#include "core/job.hpp"
#include "core/run_context.hpp"

namespace abt::active {

/// The generalization studied by Chang, Gabow and Khuller [2] and recalled
/// in the paper's related work: a job may be scheduled in a *union of time
/// intervals* instead of one window. Minimizing active time under this
/// model is NP-hard once g >= 3 (reduction from 3-EXACT-COVER), so the
/// library offers feasibility, extraction, a minimal-feasible heuristic
/// (no approximation guarantee carries over — Theorem 1's charging needs
/// single windows) and a brute-force optimum for calibration.
struct MultiWindowJob {
  /// Disjoint (release, deadline) pairs; the job may run in slots
  /// {r+1..d} of any of them.
  std::vector<std::pair<core::SlotTime, core::SlotTime>> windows;
  core::SlotTime length = 0;

  [[nodiscard]] bool live_in_slot(core::SlotTime t) const {
    for (const auto& [r, d] : windows) {
      if (t > r && t <= d) return true;
    }
    return false;
  }
  /// Total number of slots across windows.
  [[nodiscard]] core::SlotTime window_slots() const {
    core::SlotTime total = 0;
    for (const auto& [r, d] : windows) total += d - r;
    return total;
  }

  friend bool operator==(const MultiWindowJob&,
                         const MultiWindowJob&) = default;
};

class MultiWindowInstance {
 public:
  MultiWindowInstance() = default;
  MultiWindowInstance(std::vector<MultiWindowJob> jobs, int capacity);

  [[nodiscard]] const std::vector<MultiWindowJob>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] const MultiWindowJob& job(core::JobId j) const {
    return jobs_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] int size() const { return static_cast<int>(jobs_.size()); }
  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] core::SlotTime horizon() const { return horizon_; }
  [[nodiscard]] core::SlotTime total_work() const { return total_work_; }

  /// Sanity: windows sorted, disjoint, nonempty; length positive and at
  /// most the union of windows.
  [[nodiscard]] bool structurally_valid(std::string* why = nullptr) const;

 private:
  std::vector<MultiWindowJob> jobs_;
  int capacity_ = 1;
  core::SlotTime horizon_ = 0;
  core::SlotTime total_work_ = 0;
};

/// Slots where at least one job is live, ascending.
[[nodiscard]] std::vector<core::SlotTime> mw_candidate_slots(
    const MultiWindowInstance& inst);

/// Max-flow feasibility with the given active slots (the Fig 2 network
/// with one job->slot edge per live (job, slot) pair).
[[nodiscard]] bool mw_is_feasible_with_slots(
    const MultiWindowInstance& inst,
    const std::vector<core::SlotTime>& active_slots);

/// Cancellable tri-state variant: `should_stop` (may be empty) is polled
/// inside the max-flow; a trip yields FeasStatus::kCancelled, which must
/// never be read as infeasible.
[[nodiscard]] FeasStatus mw_feasibility_with_slots(
    const MultiWindowInstance& inst,
    const std::vector<core::SlotTime>& active_slots,
    const std::function<bool()>& should_stop);

/// Integral assignment into the given slots, or nullopt.
[[nodiscard]] std::optional<core::ActiveSchedule> mw_extract_assignment(
    const MultiWindowInstance& inst,
    std::vector<core::SlotTime> active_slots);

/// Verifies a multi-window active schedule (counterpart of
/// core::check_active_schedule).
[[nodiscard]] bool mw_check_schedule(const MultiWindowInstance& inst,
                                     const core::ActiveSchedule& sched,
                                     std::string* why = nullptr);

/// Minimal feasible solution by left-to-right closing. Heuristic: minimal,
/// feasible, but no 3-approximation guarantee in this model.
[[nodiscard]] std::optional<core::ActiveSchedule> mw_solve_minimal_feasible(
    const MultiWindowInstance& inst);

/// Brute-force optimum (subset enumeration); candidate slot count <= 22.
/// Returns -1 when infeasible.
[[nodiscard]] long mw_brute_force_opt(const MultiWindowInstance& inst);

/// Brute-force optimum with an extracted integral assignment (same subset
/// enumeration as mw_brute_force_opt); nullopt when infeasible. This is the
/// calibration oracle the solver registry exposes as
/// `active/multi-window-exact`.
[[nodiscard]] std::optional<core::ActiveSchedule> mw_solve_exact(
    const MultiWindowInstance& inst);

/// Anytime variant of the subset enumeration: seeds its incumbent with the
/// minimal-feasible solution, then polls the context on a mask counter —
/// an interrupted run returns the best subset seen so far with
/// `proven_optimal = false`. The 22-candidate structural cap (64-bit mask
/// enumeration) still applies regardless of budget.
struct MultiWindowExactOptions {
  const core::RunContext* context = nullptr;
};

struct MultiWindowExactResult {
  core::ActiveSchedule schedule;
  bool proven_optimal = true;  ///< False when the context stopped it.
};

[[nodiscard]] std::optional<MultiWindowExactResult> mw_solve_exact_anytime(
    const MultiWindowInstance& inst, MultiWindowExactOptions options = {});

}  // namespace abt::active
