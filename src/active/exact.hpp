#pragma once

#include <optional>

#include "core/active_schedule.hpp"
#include "core/run_context.hpp"
#include "core/slotted_instance.hpp"

namespace abt::active {

/// Exact active-time solver by branch-and-bound over slot open/close
/// decisions with max-flow feasibility pruning and a Hall-style window
/// lower bound. Exponential worst case; intended for the small instances
/// that calibrate the approximation experiments (the paper conjectures the
/// problem is NP-hard, so no polynomial exact algorithm is expected).
/// The search is anytime: it seeds its incumbent with a minimal-feasible
/// solution before branching, so an interrupted run (node limit or
/// RunContext deadline/cancellation) still returns a feasible schedule.
struct ExactOptions {
  /// Abort the search after this many branch nodes (0 = unlimited). On
  /// abort the best incumbent found so far is returned with `proven_optimal
  /// = false`.
  long node_limit = 0;
  /// Deadline / cancellation polled per branch node (nullptr = free run).
  const core::RunContext* context = nullptr;
};

struct ExactResult {
  core::ActiveSchedule schedule;
  bool proven_optimal = true;
  bool timed_out = false;  ///< The RunContext (not node_limit) stopped it.
  /// Cancelled before an incumbent existed (during the root feasibility
  /// flow or the incumbent seeding) — `schedule` is empty and must not be
  /// read. Distinct from timed_out-with-incumbent, where the anytime
  /// guarantee still delivers a feasible schedule.
  bool cancelled = false;
  long nodes_explored = 0;
};

/// Returns nullopt when the instance is infeasible.
[[nodiscard]] std::optional<ExactResult> solve_exact(
    const core::SlottedInstance& inst, ExactOptions options = {});

/// Greedy for unit-length jobs: closes slots left to right (keeping every
/// slot as late as possible), which is the lazy-activation strategy of
/// Chang, Gabow and Khuller [2] for the unit case. Produces a minimal
/// feasible solution for arbitrary instances; exact when all p_j = 1
/// (cross-validated against solve_exact in the test suite).
[[nodiscard]] std::optional<core::ActiveSchedule> solve_unit_greedy(
    const core::SlottedInstance& inst);

}  // namespace abt::active
