#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/active_schedule.hpp"
#include "core/slotted_instance.hpp"

namespace abt::active {

/// Tri-state verdict of a cancellable feasibility check. The third state
/// exists so an abandoned flow computation can never be misread as
/// "infeasible" — Dinic returns only a lower bound on the max flow when
/// stopped early.
enum class FeasStatus {
  kFeasible,
  kInfeasible,
  kCancelled,
};

/// Flow-based feasibility for the active-time model (the network G_feas of
/// Fig 2): source -> job (cap p_j), job -> live active slot (cap 1),
/// active slot -> sink (cap g). The instance restricted to `active_slots`
/// is feasible iff max-flow == total work.
///
/// `should_stop` (may be empty) is polled inside the max-flow — per BFS
/// phase and every Dinic::kStopPollPaths augmenting paths; when it trips
/// the check returns kCancelled. A plain callback (the simplex / Dinic
/// pattern) so callers decide whether "stop" means cancellation only
/// (polynomial solvers, whose output a budget must not change) or
/// cancellation + budget (budgeted exact search).
///
/// `jobs_subset` (optional) restricts the check to those job ids; used by
/// the LP rounding which checks prefixes "all jobs with deadline <= t_di".
[[nodiscard]] FeasStatus feasibility_with_slots(
    const core::SlottedInstance& inst,
    const std::vector<core::SlotTime>& active_slots,
    const std::function<bool()>& should_stop,
    const std::vector<core::JobId>* jobs_subset = nullptr);

/// Boolean convenience wrapper (no cancellation): kFeasible => true.
[[nodiscard]] bool is_feasible_with_slots(
    const core::SlottedInstance& inst,
    const std::vector<core::SlotTime>& active_slots,
    const std::vector<core::JobId>* jobs_subset = nullptr);

/// True when the instance is feasible with every slot 1..T active.
[[nodiscard]] bool is_feasible(const core::SlottedInstance& inst);

/// Computes an integral assignment of all jobs into `active_slots` via
/// max-flow (integrality of flow gives an integral schedule, paper sec. 2).
/// Returns nullopt when infeasible — or when `should_stop` tripped, in
/// which case `*cancelled` (when non-null) is set so the caller can tell
/// the two apart.
[[nodiscard]] std::optional<core::ActiveSchedule> extract_assignment(
    const core::SlottedInstance& inst,
    std::vector<core::SlotTime> active_slots,
    const std::function<bool()>& should_stop = {}, bool* cancelled = nullptr);

/// Slots in which at least one job is live — the only candidates worth
/// opening. Sorted ascending.
[[nodiscard]] std::vector<core::SlotTime> candidate_slots(
    const core::SlottedInstance& inst);

}  // namespace abt::active
