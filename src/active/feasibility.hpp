#pragma once

#include <optional>
#include <vector>

#include "core/active_schedule.hpp"
#include "core/slotted_instance.hpp"

namespace abt::active {

/// Flow-based feasibility for the active-time model (the network G_feas of
/// Fig 2): source -> job (cap p_j), job -> live active slot (cap 1),
/// active slot -> sink (cap g). The instance restricted to `active_slots`
/// is feasible iff max-flow == total work.
///
/// `jobs_subset` (optional) restricts the check to those job ids; used by
/// the LP rounding which checks prefixes "all jobs with deadline <= t_di".
[[nodiscard]] bool is_feasible_with_slots(
    const core::SlottedInstance& inst,
    const std::vector<core::SlotTime>& active_slots,
    const std::vector<core::JobId>* jobs_subset = nullptr);

/// True when the instance is feasible with every slot 1..T active.
[[nodiscard]] bool is_feasible(const core::SlottedInstance& inst);

/// Computes an integral assignment of all jobs into `active_slots` via
/// max-flow (integrality of flow gives an integral schedule, paper sec. 2).
/// Returns nullopt when infeasible.
[[nodiscard]] std::optional<core::ActiveSchedule> extract_assignment(
    const core::SlottedInstance& inst,
    std::vector<core::SlotTime> active_slots);

/// Slots in which at least one job is live — the only candidates worth
/// opening. Sorted ascending.
[[nodiscard]] std::vector<core::SlotTime> candidate_slots(
    const core::SlottedInstance& inst);

}  // namespace abt::active
