#pragma once

#include <vector>

#include "core/run_context.hpp"
#include "core/slotted_instance.hpp"
#include "lp/simplex.hpp"

namespace abt::active {

/// The LP relaxation LP1 of the paper's IP (section 3):
///   min sum_t y_t
///   x_{t,j} <= y_t                 (open slot to use it)
///   sum_j x_{t,j} <= g y_t        (capacity)
///   sum_t x_{t,j} >= p_j          (demand)
///   0 <= y_t <= 1, x_{t,j} >= 0, x only inside job windows.
///
/// Variables are created only where meaningful: y_t for candidate slots,
/// x_{t,j} for slots in job j's window.
class ActiveTimeLp {
 public:
  /// Builds the model. When `ctx` is given, `should_stop()` is polled
  /// between row batches during construction (the build is O(n * horizon)
  /// rows and used to be the last uninterruptible stretch on the LP
  /// path); a trip abandons the build promptly — the partial model is
  /// unusable and `build_cancelled()` reports it, which solve_active_lp
  /// surfaces as lp::SolveStatus::kCancelled without touching the model.
  explicit ActiveTimeLp(const core::SlottedInstance& inst,
                        const core::RunContext* ctx = nullptr);

  /// True when `ctx` cancelled the build mid-construction.
  [[nodiscard]] bool build_cancelled() const { return build_cancelled_; }

  [[nodiscard]] const lp::LinearProblem& problem() const { return problem_; }

  /// Candidate slots, ascending; y variables correspond 1:1.
  [[nodiscard]] const std::vector<core::SlotTime>& slots() const {
    return slots_;
  }

  /// LP variable index of y_t; t must be a candidate slot.
  [[nodiscard]] int y_index(core::SlotTime t) const;
  /// LP variable index of x_{t,j}, or -1 when t is outside j's window.
  [[nodiscard]] int x_index(core::JobId j, core::SlotTime t) const;

  /// The y_t values of an LP solution vector, indexed like slots().
  [[nodiscard]] std::vector<double> y_values(
      const std::vector<double>& x) const;

 private:
  lp::LinearProblem problem_;
  bool build_cancelled_ = false;
  std::vector<core::SlotTime> slots_;
  std::vector<int> slot_position_;               // slot -> index in slots_
  std::vector<int> y_vars_;                      // per slot index
  std::vector<std::vector<int>> x_vars_;         // per job, per window offset
  std::vector<core::SlotTime> window_begin_;     // per job: release + 1
};

/// Solves LP1 to optimality; convenience wrapper.
struct ActiveLpSolution {
  lp::SolveStatus status = lp::SolveStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> y;            ///< y_t per candidate slot.
  std::vector<double> raw;          ///< full LP variable vector
};

/// When `ctx` is given, its should_stop() is polled inside the simplex
/// iteration loop; a trip surfaces as lp::SolveStatus::kCancelled, so a
/// budget-capped campaign can abandon a long LP solve mid-flight instead
/// of only between solver calls.
[[nodiscard]] ActiveLpSolution solve_active_lp(
    const ActiveTimeLp& model, const core::RunContext* ctx = nullptr);

}  // namespace abt::active
