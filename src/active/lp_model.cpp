#include "active/lp_model.hpp"

#include <algorithm>

#include "active/feasibility.hpp"
#include "core/assert.hpp"

namespace abt::active {

using core::JobId;
using core::SlotTime;
using core::SlottedInstance;

ActiveTimeLp::ActiveTimeLp(const SlottedInstance& inst,
                           const core::RunContext* ctx) {
  // Cancellation polls are amortized per outer-loop iteration (one job or
  // one slot's worth of rows between checks) — cheap next to the row
  // construction, frequent enough that a mid-build cancel returns within
  // one window's work.
  const auto stop = [ctx] { return ctx != nullptr && ctx->should_stop(); };
  slots_ = candidate_slots(inst);
  slot_position_.assign(static_cast<std::size_t>(inst.horizon()) + 1, -1);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    slot_position_[static_cast<std::size_t>(slots_[i])] = static_cast<int>(i);
  }

  // y variables, objective 1.
  y_vars_.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    y_vars_.push_back(problem_.add_variable(1.0));
  }
  // x variables, objective 0.
  x_vars_.resize(static_cast<std::size_t>(inst.size()));
  window_begin_.resize(static_cast<std::size_t>(inst.size()));
  for (JobId j = 0; j < inst.size(); ++j) {
    if (stop()) {
      build_cancelled_ = true;
      return;
    }
    const core::SlottedJob& job = inst.job(j);
    window_begin_[static_cast<std::size_t>(j)] = job.release + 1;
    auto& vars = x_vars_[static_cast<std::size_t>(j)];
    vars.reserve(static_cast<std::size_t>(job.window_size()));
    for (SlotTime t = job.release + 1; t <= job.deadline; ++t) {
      vars.push_back(problem_.add_variable(0.0));
    }
  }

  // x_{t,j} <= y_t.
  for (JobId j = 0; j < inst.size(); ++j) {
    if (stop()) {
      build_cancelled_ = true;
      return;
    }
    const core::SlottedJob& job = inst.job(j);
    for (SlotTime t = job.release + 1; t <= job.deadline; ++t) {
      problem_.add_row({{x_index(j, t), 1.0}, {y_index(t), -1.0}},
                       lp::Sense::kLessEqual, 0.0);
    }
  }
  // sum_j x_{t,j} <= g y_t.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (stop()) {
      build_cancelled_ = true;
      return;
    }
    const SlotTime t = slots_[i];
    std::vector<std::pair<int, double>> coeffs;
    for (JobId j = 0; j < inst.size(); ++j) {
      const int xv = x_index(j, t);
      if (xv >= 0) coeffs.emplace_back(xv, 1.0);
    }
    if (coeffs.empty()) continue;
    coeffs.emplace_back(y_vars_[i], -static_cast<double>(inst.capacity()));
    problem_.add_row(std::move(coeffs), lp::Sense::kLessEqual, 0.0);
  }
  // sum_t x_{t,j} >= p_j.
  for (JobId j = 0; j < inst.size(); ++j) {
    if (stop()) {
      build_cancelled_ = true;
      return;
    }
    const core::SlottedJob& job = inst.job(j);
    std::vector<std::pair<int, double>> coeffs;
    for (SlotTime t = job.release + 1; t <= job.deadline; ++t) {
      coeffs.emplace_back(x_index(j, t), 1.0);
    }
    problem_.add_row(std::move(coeffs), lp::Sense::kGreaterEqual,
                     static_cast<double>(job.length));
  }
  // y_t <= 1.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    problem_.add_row({{y_vars_[i], 1.0}}, lp::Sense::kLessEqual, 1.0);
  }
}

int ActiveTimeLp::y_index(SlotTime t) const {
  ABT_ASSERT(t >= 0 &&
                 t < static_cast<SlotTime>(slot_position_.size()) &&
                 slot_position_[static_cast<std::size_t>(t)] >= 0,
             "not a candidate slot");
  return y_vars_[static_cast<std::size_t>(
      slot_position_[static_cast<std::size_t>(t)])];
}

int ActiveTimeLp::x_index(JobId j, SlotTime t) const {
  const auto& vars = x_vars_[static_cast<std::size_t>(j)];
  const SlotTime begin = window_begin_[static_cast<std::size_t>(j)];
  const SlotTime offset = t - begin;
  if (offset < 0 || offset >= static_cast<SlotTime>(vars.size())) return -1;
  return vars[static_cast<std::size_t>(offset)];
}

std::vector<double> ActiveTimeLp::y_values(const std::vector<double>& x) const {
  std::vector<double> y(slots_.size(), 0.0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    y[i] = x[static_cast<std::size_t>(y_vars_[i])];
  }
  return y;
}

ActiveLpSolution solve_active_lp(const ActiveTimeLp& model,
                                 const core::RunContext* ctx) {
  if (model.build_cancelled()) {
    ActiveLpSolution out;
    out.status = lp::SolveStatus::kCancelled;
    return out;
  }
  lp::SimplexSolver::Options options;
  if (ctx != nullptr) {
    options.should_stop = [ctx] { return ctx->should_stop(); };
  }
  const lp::SimplexSolver solver(options);
  const lp::Solution sol = solver.solve(model.problem());
  ActiveLpSolution out;
  out.status = sol.status;
  if (sol.status == lp::SolveStatus::kOptimal) {
    out.objective = sol.objective;
    out.y = model.y_values(sol.x);
    out.raw = sol.x;
  }
  return out;
}

}  // namespace abt::active
