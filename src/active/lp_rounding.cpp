#include "active/lp_rounding.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "active/feasibility.hpp"
#include "active/lp_model.hpp"
#include "core/assert.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::JobId;
using core::SlotTime;
using core::SlottedInstance;

RightShiftedLp right_shift(const SlottedInstance& inst,
                           const std::vector<SlotTime>& slots,
                           const std::vector<double>& y) {
  RightShiftedLp out;
  std::set<SlotTime> deadline_set;
  for (const core::SlottedJob& job : inst.jobs()) {
    deadline_set.insert(job.deadline);
  }
  out.deadlines.assign(deadline_set.begin(), deadline_set.end());
  out.segment_mass.assign(out.deadlines.size(), 0.0);

  // Y_i = sum of y_t over slots in (td_{i-1}, td_i]. Right-shifting within a
  // segment preserves feasibility (Lemma 3): every job live strictly inside
  // segment i has deadline >= td_i, so its mass can move right.
  std::size_t seg = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    while (seg < out.deadlines.size() && slots[i] > out.deadlines[seg]) ++seg;
    if (seg >= out.deadlines.size()) break;  // slots past last deadline: y=0
    out.segment_mass[seg] += y[i];
    out.objective += y[i];
  }
  return out;
}

namespace {

/// Bookkeeping for the rounding pass: candidate slots with an open/closed
/// bit, supporting "open the latest closed candidate slot <= limit".
class SlotLedger {
 public:
  explicit SlotLedger(std::vector<SlotTime> slots)
      : slots_(std::move(slots)), open_(slots_.size(), 0) {}

  /// Opens up to `count` latest closed slots in (lo, hi]; returns how many
  /// were opened.
  int open_latest(int count, SlotTime lo, SlotTime hi) {
    int opened = 0;
    for (auto i = static_cast<std::ptrdiff_t>(slots_.size()) - 1;
         i >= 0 && opened < count; --i) {
      const auto idx = static_cast<std::size_t>(i);
      if (slots_[idx] > hi || open_[idx] != 0) continue;
      if (slots_[idx] <= lo) break;
      open_[idx] = 1;
      ++opened;
    }
    return opened;
  }

  [[nodiscard]] std::vector<SlotTime> open_slots() const {
    std::vector<SlotTime> out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (open_[i] != 0) out.push_back(slots_[i]);
    }
    return out;
  }

  [[nodiscard]] int open_count() const {
    return static_cast<int>(
        std::count(open_.begin(), open_.end(), char{1}));
  }

 private:
  std::vector<SlotTime> slots_;
  std::vector<char> open_;
};

}  // namespace

std::optional<LpRoundingResult> solve_lp_rounding(const SlottedInstance& inst,
                                                  const core::RunContext* ctx) {
  // Same stop predicate the LP solve uses, now also polled inside every
  // feasibility max-flow — the rounding's flow checks used to be the one
  // place a cancelled cell could keep grinding.
  const std::function<bool()> stop =
      ctx == nullptr ? std::function<bool()>{}
                     : [ctx] { return ctx->should_stop(); };
  const auto cancelled_result = [] {
    LpRoundingResult cancelled;
    cancelled.cancelled = true;
    return cancelled;
  };

  std::vector<SlotTime> candidates = candidate_slots(inst);
  switch (feasibility_with_slots(inst, candidates, stop)) {
    case FeasStatus::kInfeasible:
      return std::nullopt;
    case FeasStatus::kCancelled:
      return cancelled_result();
    case FeasStatus::kFeasible:
      break;
  }

  const ActiveTimeLp model(inst, ctx);
  const ActiveLpSolution lp = solve_active_lp(model, ctx);
  if (lp.status == lp::SolveStatus::kCancelled) {
    LpRoundingResult cancelled;
    cancelled.cancelled = true;
    return cancelled;
  }
  ABT_ASSERT(lp.status == lp::SolveStatus::kOptimal,
             "LP must be solvable for a feasible instance");

  const RightShiftedLp rs = right_shift(inst, model.slots(), lp.y);

  SlotLedger ledger(candidates);
  LpRoundingResult result;
  result.lp_objective = lp.objective;

  constexpr double kEps = 1e-7;
  double carry = 0.0;  // the paper's proxy value, always < 1/2
  SlotTime prev_deadline = 0;

  for (std::size_t i = 0; i < rs.deadlines.size(); ++i) {
    const SlotTime td = rs.deadlines[i];
    const double total = rs.segment_mass[i] + carry;
    carry = 0.0;
    auto full = static_cast<int>(std::floor(total + kEps));
    double frac = total - full;
    if (frac < kEps) frac = 0.0;

    // Jobs of the current prefix: everything due by td.
    std::vector<JobId> prefix_jobs;
    for (JobId j = 0; j < inst.size(); ++j) {
      if (inst.job(j).deadline <= td) prefix_jobs.push_back(j);
    }
    bool prefix_cancelled = false;
    auto prefix_feasible = [&]() {
      const FeasStatus status = feasibility_with_slots(
          inst, ledger.open_slots(), stop, &prefix_jobs);
      if (status == FeasStatus::kCancelled) prefix_cancelled = true;
      return status == FeasStatus::kFeasible;
    };

    // Fully open slots: the last floor(total) slots of the segment; overflow
    // (possible when the carried proxy tips the sum past the segment size)
    // spills into the latest closed slots of earlier segments, which is
    // where the proxy's actual slot lives.
    const int in_segment = ledger.open_latest(full, prev_deadline, td);
    if (in_segment < full) {
      const int spilled = ledger.open_latest(full - in_segment, 0, td);
      ABT_ASSERT(in_segment + spilled == full,
                 "LP mass exceeds available candidate slots");
    }

    if (frac >= 0.5 - kEps && frac > 0.0) {
      // Half-open slot: round up unconditionally (charges itself twice).
      if (ledger.open_latest(1, prev_deadline, td) == 0) {
        ledger.open_latest(1, 0, td);
      }
    } else if (frac > 0.0) {
      // Barely open slot: close it when the prefix stays feasible and carry
      // its value as a proxy; otherwise open it.
      if (prefix_feasible()) {
        carry = frac;
      } else if (prefix_cancelled) {
        return cancelled_result();
      } else {
        if (ledger.open_latest(1, prev_deadline, td) == 0) {
          ledger.open_latest(1, 0, td);
        }
      }
    }

    // Defensive repair: the paper's Lemmas 4-6 prove this never fires; it
    // keeps the implementation safe against numerical edge cases and is
    // reported so tests can assert it stayed at zero.
    while (!prefix_feasible()) {
      if (prefix_cancelled) return cancelled_result();
      if (ledger.open_latest(1, 0, td) == 0) {
        ABT_ASSERT(false,
                   "prefix infeasible with all candidate slots open; "
                   "instance feasibility was checked earlier");
      }
      ++result.repair_opens;
    }

    prev_deadline = td;
  }

  bool extract_cancelled = false;
  auto schedule =
      extract_assignment(inst, ledger.open_slots(), stop, &extract_cancelled);
  if (extract_cancelled) return cancelled_result();
  ABT_ASSERT(schedule.has_value(), "final rounded slot set must be feasible");
  result.schedule = std::move(*schedule);
  return result;
}

}  // namespace abt::active
