#include "active/multi_window.hpp"

#include <algorithm>
#include <map>

#include "core/assert.hpp"
#include "flow/dinic.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::JobId;
using core::SlotTime;

MultiWindowInstance::MultiWindowInstance(std::vector<MultiWindowJob> jobs,
                                         int capacity)
    : jobs_(std::move(jobs)), capacity_(capacity) {
  ABT_ASSERT(capacity_ >= 1, "capacity must be positive");
  for (const MultiWindowJob& job : jobs_) {
    total_work_ += job.length;
    for (const auto& [r, d] : job.windows) {
      horizon_ = std::max(horizon_, d);
    }
  }
}

bool MultiWindowInstance::structurally_valid(std::string* why) const {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const MultiWindowJob& job = jobs_[i];
    auto fail = [&](const char* reason) {
      if (why != nullptr) *why = "job " + std::to_string(i) + ": " + reason;
      return false;
    };
    if (job.length < 1) return fail("length must be >= 1");
    if (job.windows.empty()) return fail("no windows");
    SlotTime prev_end = -1;
    for (const auto& [r, d] : job.windows) {
      if (r < 0) return fail("negative release");
      if (d <= r) return fail("empty window");
      if (r < prev_end) return fail("windows overlap or unsorted");
      prev_end = d;
    }
    if (job.window_slots() < job.length) return fail("windows too small");
  }
  return true;
}

std::vector<SlotTime> mw_candidate_slots(const MultiWindowInstance& inst) {
  std::vector<char> live(static_cast<std::size_t>(inst.horizon()) + 1, 0);
  for (const MultiWindowJob& job : inst.jobs()) {
    for (const auto& [r, d] : job.windows) {
      for (SlotTime t = r + 1; t <= d; ++t) {
        live[static_cast<std::size_t>(t)] = 1;
      }
    }
  }
  std::vector<SlotTime> out;
  for (SlotTime t = 1; t <= inst.horizon(); ++t) {
    if (live[static_cast<std::size_t>(t)] != 0) out.push_back(t);
  }
  return out;
}

namespace {

/// Deficit (total work minus max flow) of the Fig 2-style network over the
/// given slots. `should_stop` is forwarded into the max-flow; when it trips
/// the returned deficit is meaningless (`*cancelled` is set) and no
/// assignment is extracted.
flow::Dinic::Cap mw_flow_deficit(
    const MultiWindowInstance& inst, const std::vector<SlotTime>& slots,
    std::vector<std::vector<SlotTime>>* assignment_out,
    const std::function<bool()>& should_stop = {},
    bool* cancelled = nullptr) {
  if (cancelled != nullptr) *cancelled = false;
  const int num_jobs = inst.size();
  const int num_slots = static_cast<int>(slots.size());
  const int source = 0;
  const int sink = 1 + num_jobs + num_slots;
  flow::Dinic dinic(sink + 1);

  std::map<SlotTime, int> slot_node;
  for (int s = 0; s < num_slots; ++s) {
    slot_node[slots[static_cast<std::size_t>(s)]] = 1 + num_jobs + s;
  }

  struct JobSlotEdge {
    JobId job;
    SlotTime slot;
    flow::Dinic::EdgeRef edge;
  };
  std::vector<JobSlotEdge> edges;

  flow::Dinic::Cap total_work = 0;
  for (JobId j = 0; j < num_jobs; ++j) {
    const MultiWindowJob& job = inst.job(j);
    dinic.add_edge(source, 1 + j, job.length);
    total_work += job.length;
    for (const auto& [r, d] : job.windows) {
      const auto lo = std::lower_bound(slots.begin(), slots.end(), r + 1);
      for (auto it = lo; it != slots.end() && *it <= d; ++it) {
        const auto edge = dinic.add_edge(1 + j, slot_node.at(*it), 1);
        if (assignment_out != nullptr) edges.push_back({j, *it, edge});
      }
    }
  }
  for (int s = 0; s < num_slots; ++s) {
    dinic.add_edge(1 + num_jobs + s, sink, inst.capacity());
  }
  flow::Dinic::Options flow_options;
  flow_options.should_stop = should_stop;
  bool flow_cancelled = false;
  const auto flow_value =
      dinic.max_flow(source, sink, flow_options, &flow_cancelled);
  if (flow_cancelled) {
    if (cancelled != nullptr) *cancelled = true;
    return total_work;  // deficit meaningless; caller must check the flag
  }
  if (assignment_out != nullptr && flow_value == total_work) {
    assignment_out->assign(static_cast<std::size_t>(num_jobs), {});
    for (const JobSlotEdge& e : edges) {
      if (dinic.flow_on(e.edge) > 0) {
        (*assignment_out)[static_cast<std::size_t>(e.job)].push_back(e.slot);
      }
    }
  }
  return total_work - flow_value;
}

}  // namespace

bool mw_is_feasible_with_slots(const MultiWindowInstance& inst,
                               const std::vector<SlotTime>& active_slots) {
  return mw_flow_deficit(inst, active_slots, nullptr) == 0;
}

FeasStatus mw_feasibility_with_slots(const MultiWindowInstance& inst,
                                     const std::vector<SlotTime>& active_slots,
                                     const std::function<bool()>& should_stop) {
  bool cancelled = false;
  const auto deficit =
      mw_flow_deficit(inst, active_slots, nullptr, should_stop, &cancelled);
  if (cancelled) return FeasStatus::kCancelled;
  return deficit == 0 ? FeasStatus::kFeasible : FeasStatus::kInfeasible;
}

std::optional<ActiveSchedule> mw_extract_assignment(
    const MultiWindowInstance& inst, std::vector<SlotTime> active_slots) {
  std::vector<std::vector<SlotTime>> assignment;
  if (mw_flow_deficit(inst, active_slots, &assignment) != 0) {
    return std::nullopt;
  }
  ActiveSchedule sched;
  sched.active_slots = std::move(active_slots);
  sched.job_slots = std::move(assignment);
  for (auto& s : sched.job_slots) std::sort(s.begin(), s.end());
  return sched;
}

bool mw_check_schedule(const MultiWindowInstance& inst,
                       const ActiveSchedule& sched, std::string* why) {
  auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (static_cast<int>(sched.job_slots.size()) != inst.size()) {
    return fail("job_slots size mismatch");
  }
  std::map<SlotTime, int> load;
  for (JobId j = 0; j < inst.size(); ++j) {
    const MultiWindowJob& job = inst.job(j);
    const auto& slots = sched.job_slots[static_cast<std::size_t>(j)];
    if (static_cast<SlotTime>(slots.size()) != job.length) {
      return fail("job " + std::to_string(j) + " wrong unit count");
    }
    SlotTime prev = -1;
    for (SlotTime t : slots) {
      if (t == prev) return fail("duplicate slot for job " + std::to_string(j));
      prev = t;
      if (!job.live_in_slot(t)) {
        return fail("job " + std::to_string(j) + " outside windows at " +
                    std::to_string(t));
      }
      if (!std::binary_search(sched.active_slots.begin(),
                              sched.active_slots.end(), t)) {
        return fail("inactive slot used");
      }
      ++load[t];
    }
  }
  for (const auto& [t, count] : load) {
    if (count > inst.capacity()) {
      return fail("slot " + std::to_string(t) + " over capacity");
    }
  }
  return true;
}

std::optional<ActiveSchedule> mw_solve_minimal_feasible(
    const MultiWindowInstance& inst) {
  std::vector<SlotTime> slots = mw_candidate_slots(inst);
  if (!mw_is_feasible_with_slots(inst, slots)) return std::nullopt;
  for (std::size_t i = 0; i < slots.size();) {
    std::vector<SlotTime> trial = slots;
    trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
    if (mw_is_feasible_with_slots(inst, trial)) {
      slots = std::move(trial);
    } else {
      ++i;
    }
  }
  return mw_extract_assignment(inst, std::move(slots));
}

namespace {

struct SubsetSearchResult {
  std::vector<SlotTime> open;
  bool proven_optimal = true;
};

/// Best (fewest-bits) feasible candidate-slot subset, or nullopt when
/// infeasible. With a context, seeds the incumbent from the
/// minimal-feasible solution and polls every 4096 masks; an interrupted
/// enumeration returns the best subset seen with proven_optimal = false.
std::optional<SubsetSearchResult> mw_best_slot_subset(
    const MultiWindowInstance& inst,
    const core::RunContext* context = nullptr) {
  const std::vector<SlotTime> candidates = mw_candidate_slots(inst);
  const std::size_t m = candidates.size();
  ABT_ASSERT(m <= 22, "brute force limited to 22 candidate slots");
  SubsetSearchResult result;
  long best = -1;
  if (context != nullptr) {
    // Anytime seed: a feasible (if non-minimal-cost) incumbent before the
    // enumeration starts, so even an instantly-expired budget returns one.
    // No seed means the FULL candidate set is infeasible, which proves
    // every subset infeasible — conclude immediately instead of letting
    // the enumeration run past the budget with nothing to return.
    auto minimal = mw_solve_minimal_feasible(inst);
    if (!minimal.has_value()) return std::nullopt;
    best = static_cast<long>(minimal->active_slots.size());
    result.open = std::move(minimal->active_slots);
    context->report_incumbent(static_cast<double>(best),
                              [&] { return core::render_slots(result.open); });
  }
  // Per-flow stop predicate: only armed once a feasible incumbent exists,
  // so an interrupted flow never leaves the search with nothing to return.
  const std::function<bool()> stop =
      context == nullptr ? std::function<bool()>{}
                         : [context] { return context->should_stop(); };
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    if ((mask & 4095ULL) == 0 && context != nullptr && best >= 0 &&
        context->should_stop()) {
      result.proven_optimal = false;
      break;
    }
    const int bits = __builtin_popcountll(mask);
    if (best >= 0 && bits >= best) continue;
    std::vector<SlotTime> open;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1ULL) open.push_back(candidates[i]);
    }
    const FeasStatus status = mw_feasibility_with_slots(
        inst, open, best >= 0 ? stop : std::function<bool()>{});
    if (status == FeasStatus::kCancelled) {
      // An abandoned flow proves nothing about this mask — keep the
      // incumbent and stop enumerating instead of misreading it.
      result.proven_optimal = false;
      break;
    }
    if (status == FeasStatus::kFeasible) {
      best = bits;
      result.open = std::move(open);
      if (context != nullptr) {
        context->report_incumbent(
            static_cast<double>(best),
            [&] { return core::render_slots(result.open); });
      }
    }
  }
  if (best < 0) return std::nullopt;
  return result;
}

}  // namespace

long mw_brute_force_opt(const MultiWindowInstance& inst) {
  const auto best = mw_best_slot_subset(inst);
  return best.has_value() ? static_cast<long>(best->open.size()) : -1;
}

std::optional<ActiveSchedule> mw_solve_exact(const MultiWindowInstance& inst) {
  auto best = mw_best_slot_subset(inst);
  if (!best.has_value()) return std::nullopt;
  return mw_extract_assignment(inst, std::move(best->open));
}

std::optional<MultiWindowExactResult> mw_solve_exact_anytime(
    const MultiWindowInstance& inst, MultiWindowExactOptions options) {
  auto best = mw_best_slot_subset(inst, options.context);
  if (!best.has_value()) return std::nullopt;
  MultiWindowExactResult result;
  result.proven_optimal = best->proven_optimal;
  auto schedule = mw_extract_assignment(inst, std::move(best->open));
  if (!schedule.has_value()) return std::nullopt;
  result.schedule = std::move(*schedule);
  return result;
}

}  // namespace abt::active
