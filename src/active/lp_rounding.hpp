#pragma once

#include <optional>
#include <vector>

#include "core/active_schedule.hpp"
#include "core/run_context.hpp"
#include "core/slotted_instance.hpp"

namespace abt::active {

/// Per-deadline-segment view of the right-shifted LP solution (Lemma 3 /
/// LP2): Y_i is the LP mass inside segment i = (td_{i-1}, td_i].
struct RightShiftedLp {
  std::vector<core::SlotTime> deadlines;  ///< Distinct deadlines, ascending.
  std::vector<double> segment_mass;       ///< Y_i per segment (same length).
  double objective = 0.0;                 ///< Sum of Y_i = LP optimum.
};

/// Result of the LP-rounding 2-approximation (Theorem 2).
struct LpRoundingResult {
  core::ActiveSchedule schedule;
  double lp_objective = 0.0;  ///< Optimal LP1 value (lower bound on OPT).
  /// Slots opened by the defensive repair loop; the paper's analysis
  /// guarantees this stays 0, and tests assert it.
  int repair_opens = 0;
  /// True when the run context cancelled the LP solve mid-iteration; the
  /// rest of the result is empty and must not be interpreted.
  bool cancelled = false;
};

/// Right-shifts an optimal LP solution: LP mass within each deadline segment
/// is pushed to the latest slots of the segment (Lemma 3 proves feasibility
/// is preserved because every job live inside segment i has deadline
/// >= td_i).
[[nodiscard]] RightShiftedLp right_shift(const core::SlottedInstance& inst,
                                         const std::vector<core::SlotTime>& slots,
                                         const std::vector<double>& y);

/// The LP rounding algorithm of section 3: solve LP1, right-shift, then per
/// deadline open floor(Y_i) slots from the right; round a fractional
/// remainder >= 1/2 up; for a remainder < 1/2 ("barely open") try to close
/// it — verified by a max-flow prefix-feasibility check — else open it.
/// Closed remainders are carried to the next deadline as the paper's proxy.
///
/// Guarantees (asserted in tests): feasible output, cost <= 2 * LP optimum
/// <= 2 * OPT.
///
/// Returns nullopt when the instance is infeasible. When `ctx` is given,
/// the LP solve polls its should_stop(); on cancellation the result is
/// engaged with `cancelled = true` and no schedule.
[[nodiscard]] std::optional<LpRoundingResult> solve_lp_rounding(
    const core::SlottedInstance& inst, const core::RunContext* ctx = nullptr);

}  // namespace abt::active
