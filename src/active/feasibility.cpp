#include "active/feasibility.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "flow/dinic.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::JobId;
using core::SlotTime;
using core::SlottedInstance;

namespace {

/// Builds G_feas and runs max-flow. Returns the deficit (0 iff feasible),
/// plus (optionally) the per-(job, slot) routed units through
/// `assignment_out`. When `should_stop` trips mid-flow, sets `*cancelled`
/// and the returned deficit is meaningless.
flow::Dinic::Cap run_feasibility_flow(
    const SlottedInstance& inst, const std::vector<SlotTime>& active_slots,
    const std::function<bool()>& should_stop, bool* cancelled,
    const std::vector<JobId>* jobs_subset,
    std::vector<std::vector<SlotTime>>* assignment_out) {
  std::vector<JobId> jobs;
  if (jobs_subset != nullptr) {
    jobs = *jobs_subset;
  } else {
    jobs.resize(static_cast<std::size_t>(inst.size()));
    for (JobId j = 0; j < inst.size(); ++j) {
      jobs[static_cast<std::size_t>(j)] = j;
    }
  }

  const int num_jobs = static_cast<int>(jobs.size());
  const int num_slots = static_cast<int>(active_slots.size());
  // Node layout: 0 = source, 1..num_jobs = jobs, then slots, then sink.
  const int source = 0;
  const int sink = 1 + num_jobs + num_slots;
  flow::Dinic dinic(sink + 1);

  struct JobSlotEdge {
    JobId job;
    SlotTime slot;
    flow::Dinic::EdgeRef edge;
  };
  std::vector<JobSlotEdge> job_slot_edges;

  flow::Dinic::Cap total_work = 0;
  for (int ji = 0; ji < num_jobs; ++ji) {
    const core::SlottedJob& job =
        inst.job(jobs[static_cast<std::size_t>(ji)]);
    dinic.add_edge(source, 1 + ji, job.length);
    total_work += job.length;
    // Job -> live slot edges. active_slots is sorted; restrict to window.
    const auto lo = std::upper_bound(active_slots.begin(), active_slots.end(),
                                     job.release);
    for (auto it = lo; it != active_slots.end() && *it <= job.deadline; ++it) {
      const int slot_node =
          1 + num_jobs + static_cast<int>(it - active_slots.begin());
      const auto edge = dinic.add_edge(1 + ji, slot_node, 1);
      if (assignment_out != nullptr) {
        job_slot_edges.push_back(
            {jobs[static_cast<std::size_t>(ji)], *it, edge});
      }
    }
  }
  for (int si = 0; si < num_slots; ++si) {
    dinic.add_edge(1 + num_jobs + si, sink, inst.capacity());
  }

  flow::Dinic::Options flow_options;
  flow_options.should_stop = should_stop;
  bool flow_cancelled = false;
  const auto flow_value =
      dinic.max_flow(source, sink, flow_options, &flow_cancelled);
  if (cancelled != nullptr) *cancelled = flow_cancelled;
  if (flow_cancelled) return total_work;  // deficit is meaningless here
  if (assignment_out != nullptr && flow_value == total_work) {
    assignment_out->assign(static_cast<std::size_t>(inst.size()), {});
    for (const JobSlotEdge& e : job_slot_edges) {
      if (dinic.flow_on(e.edge) > 0) {
        (*assignment_out)[static_cast<std::size_t>(e.job)].push_back(e.slot);
      }
    }
  }
  return total_work - flow_value;  // deficit: 0 iff feasible
}

}  // namespace

FeasStatus feasibility_with_slots(const SlottedInstance& inst,
                                  const std::vector<SlotTime>& active_slots,
                                  const std::function<bool()>& should_stop,
                                  const std::vector<JobId>* jobs_subset) {
  ABT_ASSERT(std::is_sorted(active_slots.begin(), active_slots.end()),
             "active slots must be sorted");
  bool cancelled = false;
  const auto deficit = run_feasibility_flow(inst, active_slots, should_stop,
                                            &cancelled, jobs_subset, nullptr);
  if (cancelled) return FeasStatus::kCancelled;
  return deficit == 0 ? FeasStatus::kFeasible : FeasStatus::kInfeasible;
}

bool is_feasible_with_slots(const SlottedInstance& inst,
                            const std::vector<SlotTime>& active_slots,
                            const std::vector<JobId>* jobs_subset) {
  return feasibility_with_slots(inst, active_slots, {}, jobs_subset) ==
         FeasStatus::kFeasible;
}

bool is_feasible(const SlottedInstance& inst) {
  return is_feasible_with_slots(inst, candidate_slots(inst));
}

std::optional<ActiveSchedule> extract_assignment(
    const SlottedInstance& inst, std::vector<SlotTime> active_slots,
    const std::function<bool()>& should_stop, bool* cancelled) {
  ABT_ASSERT(std::is_sorted(active_slots.begin(), active_slots.end()),
             "active slots must be sorted");
  if (cancelled != nullptr) *cancelled = false;
  std::vector<std::vector<SlotTime>> assignment;
  if (run_feasibility_flow(inst, active_slots, should_stop, cancelled,
                           nullptr, &assignment) != 0) {
    return std::nullopt;
  }
  ActiveSchedule sched;
  sched.active_slots = std::move(active_slots);
  sched.job_slots = std::move(assignment);
  for (auto& slots : sched.job_slots) std::sort(slots.begin(), slots.end());
  return sched;
}

std::vector<SlotTime> candidate_slots(const SlottedInstance& inst) {
  std::vector<char> live(static_cast<std::size_t>(inst.horizon()) + 1, 0);
  for (const core::SlottedJob& job : inst.jobs()) {
    for (SlotTime t = job.release + 1; t <= job.deadline; ++t) {
      live[static_cast<std::size_t>(t)] = 1;
    }
  }
  std::vector<SlotTime> out;
  for (SlotTime t = 1; t <= inst.horizon(); ++t) {
    if (live[static_cast<std::size_t>(t)] != 0) out.push_back(t);
  }
  return out;
}

}  // namespace abt::active
