#include "active/exact.hpp"

#include <algorithm>

#include "active/feasibility.hpp"
#include "active/minimal_feasible.hpp"
#include "core/assert.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::SlotTime;
using core::SlottedInstance;

namespace {

/// Hall-style lower bound helper: work(a, b) = total length of jobs whose
/// window lies inside [a, b]; any feasible solution opens at least
/// ceil(work / g) slots there.
class WindowWork {
 public:
  explicit WindowWork(const SlottedInstance& inst) : inst_(&inst) {
    windows_.reserve(static_cast<std::size_t>(inst.size()));
    for (const core::SlottedJob& job : inst.jobs()) {
      windows_.push_back({job.release + 1, job.deadline, job.length});
    }
  }

  /// Lower bound on extra open slots needed, given per-slot state:
  /// state[t] in {kOpen, kClosed, kUndecided}. The deficit of window (a,b)
  /// is ceil(work/g) - open_in(a,b); it must be paid by undecided slots in
  /// (a,b), each of which also adds 1 to the final cost.
  struct Deficit {
    int extra = 0;       ///< max window deficit (extra slots beyond open)
    bool infeasible = false;  ///< deficit exceeds undecided capacity
  };

  enum class SlotState : char { kOpen, kClosed, kUndecided };

  [[nodiscard]] Deficit deficit(const std::vector<SlotState>& state,
                                const std::vector<SlotTime>& slots) const {
    // Enumerate windows by distinct (a, b) pairs from job windows.
    Deficit out;
    for (const Window& wa : windows_) {
      for (const Window& wb : windows_) {
        const SlotTime a = wa.begin;
        const SlotTime b = wb.end;
        if (a > b) continue;
        std::int64_t work = 0;
        for (const Window& w : windows_) {
          if (w.begin >= a && w.end <= b) work += w.length;
        }
        const auto need = static_cast<int>(
            (work + inst_->capacity() - 1) / inst_->capacity());
        int open = 0;
        int undecided = 0;
        for (std::size_t i = 0; i < slots.size(); ++i) {
          if (slots[i] < a || slots[i] > b) continue;
          if (state[i] == SlotState::kOpen) ++open;
          if (state[i] == SlotState::kUndecided) ++undecided;
        }
        const int deficit = need - open;
        if (deficit > undecided) {
          out.infeasible = true;
          return out;
        }
        out.extra = std::max(out.extra, deficit);
      }
    }
    return out;
  }

 private:
  struct Window {
    SlotTime begin;
    SlotTime end;
    SlotTime length;
  };
  const SlottedInstance* inst_;
  std::vector<Window> windows_;
};

class BranchAndBound {
 public:
  BranchAndBound(const SlottedInstance& inst, const ExactOptions& options)
      : inst_(inst),
        options_(options),
        slots_(candidate_slots(inst)),
        work_(inst) {}

  std::optional<ExactResult> run() {
    // The root check polls CANCELLATION only: completing it (and the
    // incumbent seed below) even on an expired budget is what makes the
    // search anytime — a budgeted cell always gets a feasible schedule.
    switch (feasibility_with_slots(inst_, slots_, cancel_poll())) {
      case FeasStatus::kInfeasible:
        return std::nullopt;
      case FeasStatus::kCancelled: {
        ExactResult cancelled;
        cancelled.proven_optimal = false;
        cancelled.timed_out = true;
        cancelled.cancelled = true;
        return cancelled;
      }
      case FeasStatus::kFeasible:
        break;
    }

    // Incumbent: a minimal feasible solution (3-approx) seeds the bound,
    // which is also what makes the search anytime — any interruption
    // still has this (or better) to return.
    MinimalFeasibleOptions minimal_options;
    minimal_options.context = options_.context;
    bool seed_cancelled = false;
    auto incumbent =
        solve_minimal_feasible(inst_, minimal_options, &seed_cancelled);
    if (!incumbent.has_value()) {
      // The root check above proved feasibility, so a missing incumbent
      // can only mean cancellation struck during the seeding pass.
      ABT_ASSERT(seed_cancelled, "feasible instance has minimal solution");
      ExactResult cancelled;
      cancelled.proven_optimal = false;
      cancelled.timed_out = true;
      cancelled.cancelled = true;
      return cancelled;
    }
    best_cost_ = static_cast<int>(incumbent->active_slots.size());
    best_slots_ = incumbent->active_slots;
    if (options_.context != nullptr) {
      options_.context->report_incumbent(
          static_cast<double>(best_cost_),
          [&] { return core::render_slots(best_slots_); });
    }

    state_.assign(slots_.size(), WindowWork::SlotState::kUndecided);
    aborted_ = false;
    dfs(0, 0);

    ExactResult result;
    auto schedule = extract_assignment(inst_, best_slots_);
    ABT_ASSERT(schedule.has_value(), "incumbent must stay feasible");
    result.schedule = std::move(*schedule);
    result.proven_optimal = !aborted_;
    result.timed_out = timed_out_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  /// Stop predicate for the flow checks INSIDE the search: budget and
  /// cancellation both count, since aborting mid-search still returns the
  /// incumbent.
  [[nodiscard]] std::function<bool()> stop_poll() const {
    if (options_.context == nullptr) return {};
    return [ctx = options_.context] { return ctx->should_stop(); };
  }

  /// Stop predicate for the pre-search phase: cancellation only, so an
  /// expired budget cannot rob the run of its incumbent.
  [[nodiscard]] std::function<bool()> cancel_poll() const {
    if (options_.context == nullptr) return {};
    return [ctx = options_.context] { return ctx->cancelled(); };
  }

  void dfs(std::size_t index, int open_count) {
    if (aborted_) return;
    ++nodes_;
    if (options_.node_limit > 0 && nodes_ > options_.node_limit) {
      aborted_ = true;
      return;
    }
    // Every node pays a Hall-deficit scan and possibly a max-flow check,
    // so an amortized clock poll every 64 nodes is noise.
    if ((nodes_ & 63) == 0 && options_.context != nullptr &&
        options_.context->should_stop()) {
      aborted_ = true;
      timed_out_ = true;
      return;
    }
    if (open_count >= best_cost_) return;  // cannot strictly improve

    const auto deficit = work_.deficit(state_, slots_);
    if (deficit.infeasible) return;
    if (open_count + deficit.extra >= best_cost_) return;

    if (index == slots_.size()) {
      // All decided; verify with the flow check (Hall bound on single
      // windows is necessary but not sufficient).
      std::vector<SlotTime> open;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (state_[i] == WindowWork::SlotState::kOpen) open.push_back(slots_[i]);
      }
      switch (feasibility_with_slots(inst_, open, stop_poll())) {
        case FeasStatus::kFeasible:
          best_cost_ = open_count;
          best_slots_ = std::move(open);
          if (options_.context != nullptr) {
            options_.context->report_incumbent(
                static_cast<double>(best_cost_),
                [&] { return core::render_slots(best_slots_); });
          }
          break;
        case FeasStatus::kCancelled:
          // An abandoned flow proves nothing — do not accept, stop search.
          aborted_ = true;
          timed_out_ = true;
          break;
        case FeasStatus::kInfeasible:
          break;
      }
      return;
    }

    // Quick feasibility pruning: treat undecided as open; if even that is
    // infeasible, the subtree is dead.
    {
      std::vector<SlotTime> optimistic;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (state_[i] != WindowWork::SlotState::kClosed) {
          optimistic.push_back(slots_[i]);
        }
      }
      switch (feasibility_with_slots(inst_, optimistic, stop_poll())) {
        case FeasStatus::kInfeasible:
          return;  // subtree is dead
        case FeasStatus::kCancelled:
          aborted_ = true;
          timed_out_ = true;
          return;
        case FeasStatus::kFeasible:
          break;
      }
    }

    // Try closing first: finds cheap solutions early.
    state_[index] = WindowWork::SlotState::kClosed;
    dfs(index + 1, open_count);
    state_[index] = WindowWork::SlotState::kOpen;
    dfs(index + 1, open_count + 1);
    state_[index] = WindowWork::SlotState::kUndecided;
  }

  const SlottedInstance& inst_;
  ExactOptions options_;
  std::vector<SlotTime> slots_;
  WindowWork work_;
  std::vector<WindowWork::SlotState> state_;
  int best_cost_ = 0;
  std::vector<SlotTime> best_slots_;
  long nodes_ = 0;
  bool aborted_ = false;
  bool timed_out_ = false;
};

}  // namespace

std::optional<ExactResult> solve_exact(const SlottedInstance& inst,
                                       ExactOptions options) {
  BranchAndBound bnb(inst, options);
  return bnb.run();
}

std::optional<ActiveSchedule> solve_unit_greedy(const SlottedInstance& inst) {
  MinimalFeasibleOptions options;
  options.order = CloseOrder::kLeftToRight;
  return solve_minimal_feasible(inst, options);
}

}  // namespace abt::active
