#include "active/exact.hpp"

#include <algorithm>

#include "active/feasibility.hpp"
#include "active/minimal_feasible.hpp"
#include "core/assert.hpp"

namespace abt::active {

using core::ActiveSchedule;
using core::SlotTime;
using core::SlottedInstance;

namespace {

/// Hall-style lower bound helper: work(a, b) = total length of jobs whose
/// window lies inside [a, b]; any feasible solution opens at least
/// ceil(work / g) slots there.
class WindowWork {
 public:
  explicit WindowWork(const SlottedInstance& inst) : inst_(&inst) {
    windows_.reserve(static_cast<std::size_t>(inst.size()));
    for (const core::SlottedJob& job : inst.jobs()) {
      windows_.push_back({job.release + 1, job.deadline, job.length});
    }
  }

  /// Lower bound on extra open slots needed, given per-slot state:
  /// state[t] in {kOpen, kClosed, kUndecided}. The deficit of window (a,b)
  /// is ceil(work/g) - open_in(a,b); it must be paid by undecided slots in
  /// (a,b), each of which also adds 1 to the final cost.
  struct Deficit {
    int extra = 0;       ///< max window deficit (extra slots beyond open)
    bool infeasible = false;  ///< deficit exceeds undecided capacity
  };

  enum class SlotState : char { kOpen, kClosed, kUndecided };

  [[nodiscard]] Deficit deficit(const std::vector<SlotState>& state,
                                const std::vector<SlotTime>& slots) const {
    // Enumerate windows by distinct (a, b) pairs from job windows.
    Deficit out;
    for (const Window& wa : windows_) {
      for (const Window& wb : windows_) {
        const SlotTime a = wa.begin;
        const SlotTime b = wb.end;
        if (a > b) continue;
        std::int64_t work = 0;
        for (const Window& w : windows_) {
          if (w.begin >= a && w.end <= b) work += w.length;
        }
        const auto need = static_cast<int>(
            (work + inst_->capacity() - 1) / inst_->capacity());
        int open = 0;
        int undecided = 0;
        for (std::size_t i = 0; i < slots.size(); ++i) {
          if (slots[i] < a || slots[i] > b) continue;
          if (state[i] == SlotState::kOpen) ++open;
          if (state[i] == SlotState::kUndecided) ++undecided;
        }
        const int deficit = need - open;
        if (deficit > undecided) {
          out.infeasible = true;
          return out;
        }
        out.extra = std::max(out.extra, deficit);
      }
    }
    return out;
  }

 private:
  struct Window {
    SlotTime begin;
    SlotTime end;
    SlotTime length;
  };
  const SlottedInstance* inst_;
  std::vector<Window> windows_;
};

class BranchAndBound {
 public:
  BranchAndBound(const SlottedInstance& inst, const ExactOptions& options)
      : inst_(inst),
        options_(options),
        slots_(candidate_slots(inst)),
        work_(inst) {}

  std::optional<ExactResult> run() {
    if (!is_feasible_with_slots(inst_, slots_)) return std::nullopt;

    // Incumbent: a minimal feasible solution (3-approx) seeds the bound,
    // which is also what makes the search anytime — any interruption
    // still has this (or better) to return.
    auto incumbent = solve_minimal_feasible(inst_);
    ABT_ASSERT(incumbent.has_value(), "feasible instance has minimal solution");
    best_cost_ = static_cast<int>(incumbent->active_slots.size());
    best_slots_ = incumbent->active_slots;
    if (options_.context != nullptr) {
      options_.context->report_incumbent(static_cast<double>(best_cost_));
    }

    state_.assign(slots_.size(), WindowWork::SlotState::kUndecided);
    aborted_ = false;
    dfs(0, 0);

    ExactResult result;
    auto schedule = extract_assignment(inst_, best_slots_);
    ABT_ASSERT(schedule.has_value(), "incumbent must stay feasible");
    result.schedule = std::move(*schedule);
    result.proven_optimal = !aborted_;
    result.timed_out = timed_out_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  void dfs(std::size_t index, int open_count) {
    if (aborted_) return;
    ++nodes_;
    if (options_.node_limit > 0 && nodes_ > options_.node_limit) {
      aborted_ = true;
      return;
    }
    // Every node pays a Hall-deficit scan and possibly a max-flow check,
    // so an amortized clock poll every 64 nodes is noise.
    if ((nodes_ & 63) == 0 && options_.context != nullptr &&
        options_.context->should_stop()) {
      aborted_ = true;
      timed_out_ = true;
      return;
    }
    if (open_count >= best_cost_) return;  // cannot strictly improve

    const auto deficit = work_.deficit(state_, slots_);
    if (deficit.infeasible) return;
    if (open_count + deficit.extra >= best_cost_) return;

    if (index == slots_.size()) {
      // All decided; verify with the flow check (Hall bound on single
      // windows is necessary but not sufficient).
      std::vector<SlotTime> open;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (state_[i] == WindowWork::SlotState::kOpen) open.push_back(slots_[i]);
      }
      if (is_feasible_with_slots(inst_, open)) {
        best_cost_ = open_count;
        best_slots_ = std::move(open);
        if (options_.context != nullptr) {
          options_.context->report_incumbent(static_cast<double>(best_cost_));
        }
      }
      return;
    }

    // Quick feasibility pruning: treat undecided as open; if even that is
    // infeasible, the subtree is dead.
    {
      std::vector<SlotTime> optimistic;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (state_[i] != WindowWork::SlotState::kClosed) {
          optimistic.push_back(slots_[i]);
        }
      }
      if (!is_feasible_with_slots(inst_, optimistic)) return;
    }

    // Try closing first: finds cheap solutions early.
    state_[index] = WindowWork::SlotState::kClosed;
    dfs(index + 1, open_count);
    state_[index] = WindowWork::SlotState::kOpen;
    dfs(index + 1, open_count + 1);
    state_[index] = WindowWork::SlotState::kUndecided;
  }

  const SlottedInstance& inst_;
  ExactOptions options_;
  std::vector<SlotTime> slots_;
  WindowWork work_;
  std::vector<WindowWork::SlotState> state_;
  int best_cost_ = 0;
  std::vector<SlotTime> best_slots_;
  long nodes_ = 0;
  bool aborted_ = false;
  bool timed_out_ = false;
};

}  // namespace

std::optional<ExactResult> solve_exact(const SlottedInstance& inst,
                                       ExactOptions options) {
  BranchAndBound bnb(inst, options);
  return bnb.run();
}

std::optional<ActiveSchedule> solve_unit_greedy(const SlottedInstance& inst) {
  MinimalFeasibleOptions options;
  options.order = CloseOrder::kLeftToRight;
  return solve_minimal_feasible(inst, options);
}

}  // namespace abt::active
