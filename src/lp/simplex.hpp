#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace abt::lp {

/// Row sense of a linear constraint.
enum class Sense { kLessEqual, kGreaterEqual, kEqual };

/// A linear program in the natural form used by the paper's IP/LP1:
///   minimize  c'x   subject to   rows,  x >= 0.
/// Upper bounds (e.g. y_t <= 1) are expressed as ordinary rows.
struct LinearProblem {
  struct Row {
    std::vector<std::pair<int, double>> coeffs;  ///< (variable, coefficient)
    Sense sense = Sense::kLessEqual;
    double rhs = 0.0;
  };

  int num_vars = 0;
  std::vector<double> objective;  ///< size num_vars, minimized
  std::vector<Row> rows;

  /// Adds a variable with objective coefficient `cost`; returns its index.
  int add_variable(double cost);
  /// Adds a constraint; returns its row index.
  int add_row(std::vector<std::pair<int, double>> coeffs, Sense sense,
              double rhs);
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterLimit,
  /// options.should_stop returned true mid-solve (budget exhausted or an
  /// external cancel); the tableau state is abandoned.
  kCancelled,
};

struct Solution {
  SolveStatus status = SolveStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< Values of the original variables.
};

/// Dense two-phase primal simplex. GLPK/CBC are not available in this
/// environment, so the library carries its own solver (see DESIGN.md,
/// substitutions). Dantzig pricing with a Bland fallback for degeneracy;
/// row-elimination pivots are OpenMP-parallel.
class SimplexSolver {
 public:
  struct Options {
    long max_iterations = 500000;
    double eps = 1e-9;
    /// Switch to Bland's rule after this many non-improving iterations.
    int degeneracy_patience = 256;
    /// Cooperative cancellation hook, polled once every 64 simplex
    /// iterations (cheap relative to a pivot, responsive relative to the
    /// half-second solves budget-capped campaigns interrupt). Kept as a
    /// plain callable so the lp layer stays free of core:: types; callers
    /// typically wrap core::RunContext::should_stop.
    std::function<bool()> should_stop;
  };

  SimplexSolver() : options_() {}
  explicit SimplexSolver(Options options) : options_(options) {}

  [[nodiscard]] Solution solve(const LinearProblem& problem) const;

 private:
  Options options_;
};

/// Checks x against all rows and bounds of `problem` within `tol`;
/// explains the first violation in `why` when provided. Test helper and
/// post-solve guard.
[[nodiscard]] bool is_feasible(const LinearProblem& problem,
                               const std::vector<double>& x, double tol = 1e-6,
                               std::string* why = nullptr);

/// Objective value c'x.
[[nodiscard]] double objective_value(const LinearProblem& problem,
                                     const std::vector<double>& x);

}  // namespace abt::lp
