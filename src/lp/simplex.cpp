#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/assert.hpp"

namespace abt::lp {

int LinearProblem::add_variable(double cost) {
  objective.push_back(cost);
  return num_vars++;
}

int LinearProblem::add_row(std::vector<std::pair<int, double>> coeffs,
                           Sense sense, double rhs) {
  for (const auto& [var, coeff] : coeffs) {
    ABT_ASSERT(var >= 0 && var < num_vars, "row references unknown variable");
    (void)coeff;
  }
  rows.push_back({std::move(coeffs), sense, rhs});
  return static_cast<int>(rows.size()) - 1;
}

namespace {

/// Dense simplex tableau. Column layout: [structural | slack/surplus |
/// artificial]; the last entry of each row is the rhs.
class Tableau {
 public:
  Tableau(const LinearProblem& problem, double eps) : eps_(eps) {
    const int m = static_cast<int>(problem.rows.size());
    num_structural_ = problem.num_vars;

    // One slack/surplus column per inequality row; one artificial per row
    // that needs one (>= rows and = rows, and <= rows with negative rhs
    // after normalization -- handled uniformly below by normalizing rhs
    // to be nonnegative first).
    struct RowPlan {
      std::vector<std::pair<int, double>> coeffs;
      double rhs;
      Sense sense;
    };
    std::vector<RowPlan> plan;
    plan.reserve(static_cast<std::size_t>(m));
    for (const auto& row : problem.rows) {
      RowPlan rp{row.coeffs, row.rhs, row.sense};
      if (rp.rhs < 0) {  // normalize to rhs >= 0 by negating the row
        rp.rhs = -rp.rhs;
        for (auto& [var, coeff] : rp.coeffs) {
          (void)var;
          coeff = -coeff;
        }
        if (rp.sense == Sense::kLessEqual) {
          rp.sense = Sense::kGreaterEqual;
        } else if (rp.sense == Sense::kGreaterEqual) {
          rp.sense = Sense::kLessEqual;
        }
      }
      plan.push_back(std::move(rp));
    }

    int num_slack = 0;
    int num_artificial = 0;
    for (const auto& rp : plan) {
      if (rp.sense != Sense::kEqual) ++num_slack;
      if (rp.sense != Sense::kLessEqual) ++num_artificial;
    }
    num_cols_ = num_structural_ + num_slack + num_artificial;
    stride_ = num_cols_ + 1;  // + rhs
    data_.assign(static_cast<std::size_t>(m) * static_cast<std::size_t>(stride_),
                 0.0);
    basis_.assign(static_cast<std::size_t>(m), -1);
    artificial_start_ = num_structural_ + num_slack;

    int next_slack = num_structural_;
    int next_artificial = artificial_start_;
    for (int i = 0; i < m; ++i) {
      const RowPlan& rp = plan[static_cast<std::size_t>(i)];
      double* row = row_ptr(i);
      for (const auto& [var, coeff] : rp.coeffs) {
        row[var] += coeff;  // accumulate duplicated variable entries
      }
      row[num_cols_] = rp.rhs;
      switch (rp.sense) {
        case Sense::kLessEqual:
          row[next_slack] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_slack++;
          break;
        case Sense::kGreaterEqual:
          row[next_slack++] = -1.0;
          row[next_artificial] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
        case Sense::kEqual:
          row[next_artificial] = 1.0;
          basis_[static_cast<std::size_t>(i)] = next_artificial++;
          break;
      }
    }
    num_rows_ = m;
  }

  [[nodiscard]] int num_rows() const { return num_rows_; }
  [[nodiscard]] int num_cols() const { return num_cols_; }
  [[nodiscard]] int artificial_start() const { return artificial_start_; }
  [[nodiscard]] int num_structural() const { return num_structural_; }
  [[nodiscard]] const std::vector<int>& basis() const { return basis_; }

  [[nodiscard]] double* row_ptr(int i) {
    return data_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(stride_);
  }
  [[nodiscard]] const double* row_ptr(int i) const {
    return data_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(stride_);
  }
  [[nodiscard]] double rhs(int i) const { return row_ptr(i)[num_cols_]; }

  /// Gauss pivot on (row, col): row scaled so pivot element becomes 1 and
  /// eliminated from every other row and from the objective row `z`.
  void pivot(int prow, int pcol, std::vector<double>& z) {
    double* pr = row_ptr(prow);
    const double pivot_value = pr[pcol];
    ABT_ASSERT(std::abs(pivot_value) > eps_, "pivot on (near-)zero element");
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c <= num_cols_; ++c) pr[c] *= inv;
    pr[pcol] = 1.0;  // avoid drift

#ifdef _OPENMP
    // Parallel elimination only pays off on large tableaus; on the small
    // LPs of the test suite the fork/join overhead dominates badly.
    const bool parallel_worthwhile =
        static_cast<long>(num_rows_) * num_cols_ > 200000;
#pragma omp parallel for schedule(static) if (parallel_worthwhile)
#endif
    for (int i = 0; i < num_rows_; ++i) {
      if (i == prow) continue;
      double* row = row_ptr(i);
      const double factor = row[pcol];
      if (std::abs(factor) <= eps_ * 1e-3) continue;
      for (int c = 0; c <= num_cols_; ++c) row[c] -= factor * pr[c];
      row[pcol] = 0.0;
    }
    const double zfactor = z[static_cast<std::size_t>(pcol)];
    if (std::abs(zfactor) > 0.0) {
      for (int c = 0; c <= num_cols_; ++c) {
        z[static_cast<std::size_t>(c)] -= zfactor * pr[c];
      }
      z[static_cast<std::size_t>(pcol)] = 0.0;
    }
    basis_[static_cast<std::size_t>(prow)] = pcol;
  }

  [[nodiscard]] std::vector<double> extract_structural() const {
    std::vector<double> x(static_cast<std::size_t>(num_structural_), 0.0);
    for (int i = 0; i < num_rows_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b < num_structural_) x[static_cast<std::size_t>(b)] = rhs(i);
    }
    return x;
  }

 private:
  double eps_;
  int num_rows_ = 0;
  int num_cols_ = 0;
  int stride_ = 0;
  int num_structural_ = 0;
  int artificial_start_ = 0;
  std::vector<double> data_;
  std::vector<int> basis_;
};

/// Ratio test: the leaving row for entering column `col`, or -1 when the
/// column is unbounded. Ties broken by smallest basis index (Bland-safe).
int ratio_test(const Tableau& tab, int col, double eps) {
  int best_row = -1;
  double best_ratio = std::numeric_limits<double>::infinity();
  int best_basis = std::numeric_limits<int>::max();
  for (int i = 0; i < tab.num_rows(); ++i) {
    const double a = tab.row_ptr(i)[col];
    if (a <= eps) continue;
    const double ratio = tab.rhs(i) / a;
    const int b = tab.basis()[static_cast<std::size_t>(i)];
    if (ratio < best_ratio - eps ||
        (ratio < best_ratio + eps && b < best_basis)) {
      best_ratio = ratio;
      best_row = i;
      best_basis = b;
    }
  }
  return best_row;
}

enum class PhaseResult { kOptimal, kUnbounded, kIterLimit, kCancelled };

/// Runs simplex iterations on `tab` minimizing the objective encoded in the
/// reduced-cost row `z` (z[num_cols] holds minus the objective value).
/// `allowed_cols` restricts entering columns (phase 2 forbids artificials).
PhaseResult run_phase(Tableau& tab, std::vector<double>& z, int allowed_cols,
                      const SimplexSolver::Options& options,
                      long& iterations_left) {
  const double eps = options.eps;
  int stall = 0;
  double last_obj = std::numeric_limits<double>::infinity();
  while (iterations_left-- > 0) {
    if ((iterations_left & 63) == 0 && options.should_stop &&
        options.should_stop()) {
      return PhaseResult::kCancelled;
    }
    const bool bland = stall >= options.degeneracy_patience;
    int entering = -1;
    double most_negative = -eps;
    for (int c = 0; c < allowed_cols; ++c) {
      const double rc = z[static_cast<std::size_t>(c)];
      if (rc < -eps) {
        if (bland) {
          entering = c;  // first (smallest-index) negative column
          break;
        }
        if (rc < most_negative) {
          most_negative = rc;
          entering = c;
        }
      }
    }
    if (entering < 0) return PhaseResult::kOptimal;

    const int leaving = ratio_test(tab, entering, eps);
    if (leaving < 0) return PhaseResult::kUnbounded;
    tab.pivot(leaving, entering, z);

    const double obj = -z[static_cast<std::size_t>(tab.num_cols())];
    if (obj < last_obj - eps) {
      last_obj = obj;
      stall = 0;
    } else {
      ++stall;
    }
  }
  return PhaseResult::kIterLimit;
}

/// Builds the reduced-cost row for objective `cost` (size num_cols) given
/// the current basis: z = cost - sum over basic rows of cost[basic] * row.
std::vector<double> reduced_costs(const Tableau& tab,
                                  const std::vector<double>& cost) {
  std::vector<double> z(static_cast<std::size_t>(tab.num_cols()) + 1, 0.0);
  std::copy(cost.begin(), cost.end(), z.begin());
  for (int i = 0; i < tab.num_rows(); ++i) {
    const int b = tab.basis()[static_cast<std::size_t>(i)];
    const double cb = cost[static_cast<std::size_t>(b)];
    if (cb == 0.0) continue;
    const double* row = tab.row_ptr(i);
    for (int c = 0; c <= tab.num_cols(); ++c) {
      z[static_cast<std::size_t>(c)] -= cb * row[c];
    }
  }
  return z;
}

}  // namespace

Solution SimplexSolver::solve(const LinearProblem& problem) const {
  ABT_ASSERT(static_cast<int>(problem.objective.size()) == problem.num_vars,
             "objective size mismatch");
  Solution result;
  if (problem.num_vars == 0) {
    // Vacuous problem: feasible iff every row with no variables is satisfied
    // by zero.
    for (const auto& row : problem.rows) {
      const bool ok = (row.sense == Sense::kLessEqual && 0.0 <= row.rhs) ||
                      (row.sense == Sense::kGreaterEqual && 0.0 >= row.rhs) ||
                      (row.sense == Sense::kEqual && row.rhs == 0.0);
      if (!ok) {
        result.status = SolveStatus::kInfeasible;
        return result;
      }
    }
    result.status = SolveStatus::kOptimal;
    return result;
  }

  Tableau tab(problem, options_.eps);
  long iterations_left = options_.max_iterations;

  // Phase 1: minimize the sum of artificial variables.
  const int total_cols = tab.num_cols();
  const bool has_artificials = tab.artificial_start() < total_cols;
  if (has_artificials) {
    std::vector<double> phase1_cost(static_cast<std::size_t>(total_cols), 0.0);
    for (int c = tab.artificial_start(); c < total_cols; ++c) {
      phase1_cost[static_cast<std::size_t>(c)] = 1.0;
    }
    std::vector<double> z = reduced_costs(tab, phase1_cost);
    const PhaseResult pr =
        run_phase(tab, z, total_cols, options_, iterations_left);
    if (pr == PhaseResult::kIterLimit) {
      result.status = SolveStatus::kIterLimit;
      return result;
    }
    if (pr == PhaseResult::kCancelled) {
      result.status = SolveStatus::kCancelled;
      return result;
    }
    ABT_ASSERT(pr != PhaseResult::kUnbounded,
               "phase-1 objective is bounded below by zero");
    const double phase1_obj = -z[static_cast<std::size_t>(total_cols)];
    if (phase1_obj > 1e-6) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    // Drive any residual basic artificials out of the basis when possible.
    for (int i = 0; i < tab.num_rows(); ++i) {
      if (tab.basis()[static_cast<std::size_t>(i)] < tab.artificial_start()) {
        continue;
      }
      const double* row = tab.row_ptr(i);
      int pivot_col = -1;
      for (int c = 0; c < tab.artificial_start(); ++c) {
        if (std::abs(row[c]) > 1e-7) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col >= 0) tab.pivot(i, pivot_col, z);
      // Otherwise the row is redundant (all-zero over real columns); the
      // artificial stays basic at value ~0, which is harmless in phase 2 as
      // artificial columns are excluded from entering.
    }
  }

  // Phase 2: minimize the real objective over non-artificial columns.
  std::vector<double> phase2_cost(static_cast<std::size_t>(total_cols), 0.0);
  std::copy(problem.objective.begin(), problem.objective.end(),
            phase2_cost.begin());
  std::vector<double> z = reduced_costs(tab, phase2_cost);
  const PhaseResult pr =
      run_phase(tab, z, tab.artificial_start(), options_, iterations_left);
  if (pr == PhaseResult::kIterLimit) {
    result.status = SolveStatus::kIterLimit;
    return result;
  }
  if (pr == PhaseResult::kCancelled) {
    result.status = SolveStatus::kCancelled;
    return result;
  }
  if (pr == PhaseResult::kUnbounded) {
    result.status = SolveStatus::kUnbounded;
    return result;
  }

  result.status = SolveStatus::kOptimal;
  result.x = tab.extract_structural();
  result.objective = objective_value(problem, result.x);
  return result;
}

bool is_feasible(const LinearProblem& problem, const std::vector<double>& x,
                 double tol, std::string* why) {
  auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (static_cast<int>(x.size()) != problem.num_vars) {
    return fail("solution vector size mismatch");
  }
  for (int v = 0; v < problem.num_vars; ++v) {
    if (x[static_cast<std::size_t>(v)] < -tol) {
      return fail("variable " + std::to_string(v) + " negative");
    }
  }
  for (std::size_t r = 0; r < problem.rows.size(); ++r) {
    const auto& row = problem.rows[r];
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) {
      lhs += coeff * x[static_cast<std::size_t>(var)];
    }
    const bool ok =
        (row.sense == Sense::kLessEqual && lhs <= row.rhs + tol) ||
        (row.sense == Sense::kGreaterEqual && lhs >= row.rhs - tol) ||
        (row.sense == Sense::kEqual && std::abs(lhs - row.rhs) <= tol);
    if (!ok) {
      return fail("row " + std::to_string(r) + " violated: lhs=" +
                  std::to_string(lhs) + " rhs=" + std::to_string(row.rhs));
    }
  }
  return true;
}

double objective_value(const LinearProblem& problem,
                       const std::vector<double>& x) {
  double obj = 0.0;
  for (int v = 0; v < problem.num_vars; ++v) {
    obj += problem.objective[static_cast<std::size_t>(v)] *
           x[static_cast<std::size_t>(v)];
  }
  return obj;
}

}  // namespace abt::lp
