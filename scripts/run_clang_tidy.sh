#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over every
# translation unit in the compile database, failing on any finding
# (WarningsAsErrors: '*' in the config).
#
# Usage: scripts/run_clang_tidy.sh [BUILD_DIR]
#   BUILD_DIR defaults to build/ and must contain compile_commands.json
#   (exported unconditionally by the top-level CMakeLists).
#
# Exits 0 with a notice when no clang-tidy binary is on PATH: the local
# container images ship only the GCC toolchain, so the authoritative run is
# the CI static-analysis job. Local sessions still get the -Werror build
# and scripts/abt_lint.py, which cover the highest-value rules.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

tidy_bin="${CLANG_TIDY:-}"
if [[ -z "${tidy_bin}" ]]; then
  for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy_bin="${candidate}"
      break
    fi
  done
fi
if [[ -z "${tidy_bin}" ]]; then
  echo "run_clang_tidy: no clang-tidy on PATH; skipping (CI runs it)" >&2
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_clang_tidy: ${db} not found; configure first:" >&2
  echo "  cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

# Every first-party TU in the database (drop third-party / generated TUs if
# any ever land there).
mapfile -t sources < <(python3 - "$db" <<'EOF'
import json, sys
db = json.load(open(sys.argv[1]))
seen = []
for entry in db:
    f = entry["file"]
    if any(f"/{d}/" in f for d in ("src", "bench", "tests", "examples")):
        if f not in seen:
            seen.append(f)
print("\n".join(seen))
EOF
)

if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "run_clang_tidy: no first-party sources in ${db}" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 4)"
echo "run_clang_tidy: ${tidy_bin} over ${#sources[@]} TUs (${jobs} jobs)"

# run-clang-tidy (the LLVM parallel driver) when present, else xargs.
driver="${tidy_bin/clang-tidy/run-clang-tidy}"
if command -v "${driver}" >/dev/null 2>&1; then
  "${driver}" -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" \
    -quiet -j "${jobs}" "${sources[@]}"
else
  printf '%s\0' "${sources[@]}" |
    xargs -0 -n 1 -P "${jobs}" "${tidy_bin}" -p "${build_dir}" --quiet
fi
echo "run_clang_tidy: clean"
