#!/usr/bin/env bash
# Fails on dead relative links in README.md and docs/*.md. External
# (http/https/mailto) links and pure #anchors are skipped; a relative
# link's target is resolved against the file that contains it.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  dir="$(dirname "$doc")"
  # Markdown inline links: capture the (...) target of [...](...).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"           # strip an anchor suffix
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in ${doc#"$root"/}: $target" >&2
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*](\([^)]*\))/\1/')
done

if [ "$status" -eq 0 ]; then
  echo "docs link check: OK"
fi
exit "$status"
