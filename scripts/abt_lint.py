#!/usr/bin/env python3
"""abt_lint: project-specific lint rules for the active/busy-time repo.

Enforces the written-but-previously-unchecked conventions:

  atomic-memory-order   Every std::atomic load/store/RMW in the concurrency
                        layers (src/engine/, src/service/,
                        src/core/run_context.hpp) name
                        an explicit std::memory_order. Defaulted seq_cst is
                        almost always an accident there, and an accidental
                        relaxed-to-seq_cst change hides real races.
  solver-registration   Every Solver registered in engine/builtin_solvers.cpp
                        assigns both `.applicable` and `.check`. PR 8's
                        portfolio auto-probe crashed with bad_function_call
                        on a registration that skipped `applicable`; the
                        registry validates schedules through `.check`, and
                        "the standard checker, on purpose" must be spelled
                        out (core::check_standard_solution), never implied.
  bare-assert           No `assert(` / `abort(` outside core/assert.hpp.
                        ABT_ASSERT aborts with file:line + message in every
                        build type; NDEBUG-stripped asserts are banned.
  hot-path-containers   The headers PR 6 flattened (busy/first_fit,
                        busy/preemptive, core/sweep) must not reintroduce
                        #include <map>/<set>; node-based containers belong
                        only in busy/naive_baselines.hpp.
  wall-clock            No date-like wall-clock reads (system_clock,
                        time(), localtime, ...) outside core/run_context.
                        Monotonic steady_clock timing is allowed; calendar
                        time would make runs non-reproducible.

Usage: abt_lint.py [REPO_ROOT]   (default: the repo containing this script)
Exits non-zero iff findings were reported.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, NamedTuple


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------- utilities


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines
    and column positions so finding offsets map back to the source."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                if i < n:
                    if text[i] != "\n":
                        out[i] = " "
                    i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def balanced_paren_span(text: str, open_idx: int) -> str:
    """Returns the text inside the parenthesis opening at open_idx
    (exclusive of the parens themselves); empty string if unbalanced."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_idx + 1 : j]
    return ""


def cxx_sources(root: Path, subdirs: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for sub in subdirs:
        base = root / sub
        if not base.is_dir():
            continue
        for ext in ("*.hpp", "*.cpp", "*.h", "*.cc"):
            files.extend(sorted(base.rglob(ext)))
    return files


def rel(root: Path, path: Path) -> str:
    return path.relative_to(root).as_posix()


# -------------------------------------------------------------------- rules

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(load|store|exchange|compare_exchange_weak|compare_exchange_strong"
    r"|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|test_and_set)"
    r"\s*(\()"
)


def check_atomic_memory_order(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    targets = cxx_sources(root, ["src/engine", "src/service"])
    rc = root / "src" / "core" / "run_context.hpp"
    if rc.is_file():
        targets.append(rc)
    for path in targets:
        text = path.read_text(encoding="utf-8")
        clean = strip_comments_and_strings(text)
        for m in ATOMIC_CALL_RE.finditer(clean):
            args = balanced_paren_span(clean, m.start(2))
            if "memory_order" in args:
                continue
            findings.append(
                Finding(
                    rel(root, path),
                    line_of(clean, m.start()),
                    "atomic-memory-order",
                    f".{m.group(1)}() call without an explicit "
                    "std::memory_order argument",
                )
            )
    return findings


SOLVER_DECL_RE = re.compile(r"\bSolver\s+(\w+)\s*;")


def check_solver_registration(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    path = root / "src" / "engine" / "builtin_solvers.cpp"
    if not path.is_file():
        return findings
    clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
    decls = list(SOLVER_DECL_RE.finditer(clean))
    for idx, decl in enumerate(decls):
        var = decl.group(1)
        start = decl.end()
        # The registration span ends where the Solver leaves this scope:
        # handed to the registry, returned from a builder helper, or (as a
        # backstop) at the next declaration of the same variable name.
        ends = []
        for pat in (
            rf"registry\s*\.\s*add\s*\(\s*std::move\s*\(\s*{var}\s*\)\s*\)",
            rf"\breturn\s+{var}\s*;",
        ):
            m = re.search(pat, clean[start:])
            if m:
                ends.append(start + m.end())
        for later in decls[idx + 1 :]:
            if later.group(1) == var:
                ends.append(later.start())
                break
        end = min(ends) if ends else len(clean)
        span = clean[start:end]
        where = line_of(clean, decl.start())
        for field, hint in (
            (
                "applicable",
                "every registered solver needs an applicability predicate "
                "(use always_applicable when it truly accepts anything)",
            ),
            (
                "check",
                "every registered solver needs a schedule checker (name "
                "core::check_standard_solution for the built-in one)",
            ),
        ):
            if not re.search(rf"\b{var}\s*\.\s*{field}\s*=", span):
                findings.append(
                    Finding(
                        rel(root, path),
                        where,
                        "solver-registration",
                        f"Solver '{var}' registered without .{field}: {hint}",
                    )
                )
    return findings


BARE_ASSERT_RE = re.compile(r"(?<![\w])(assert|abort)\s*\(")


def check_bare_assert(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for path in cxx_sources(root, ["src", "bench", "tests", "examples"]):
        if rel(root, path) == "src/core/assert.hpp":
            continue
        clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in BARE_ASSERT_RE.finditer(clean):
            findings.append(
                Finding(
                    rel(root, path),
                    line_of(clean, m.start()),
                    "bare-assert",
                    f"use ABT_ASSERT (core/assert.hpp) instead of "
                    f"{m.group(1)}(): it survives NDEBUG and reports "
                    "file:line plus a message",
                )
            )
    return findings


HOT_PATH_FILES = (
    "src/busy/first_fit.hpp",
    "src/busy/first_fit.cpp",
    "src/busy/preemptive.hpp",
    "src/busy/preemptive.cpp",
    "src/core/sweep.hpp",
    "src/core/sweep.cpp",
)
NODE_CONTAINER_INCLUDE_RE = re.compile(r"#\s*include\s*<(map|set)>")


def check_hot_path_containers(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for relpath in HOT_PATH_FILES:
        path = root / relpath
        if not path.is_file():
            continue
        clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in NODE_CONTAINER_INCLUDE_RE.finditer(clean):
            findings.append(
                Finding(
                    relpath,
                    line_of(clean, m.start()),
                    "hot-path-containers",
                    f"<{m.group(1)}> include in a flattened hot-path file; "
                    "node-based containers live only in "
                    "busy/naive_baselines.hpp",
                )
            )
    return findings


WALL_CLOCK_RE = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\blocaltime(_r)?\s*\(|"
    r"\bgmtime(_r)?\s*\(|\bstrftime\s*\(|\bput_time\s*\(|"
    r"\bclock_gettime\s*\(|(?<![\w:])time\s*\(\s*(nullptr|NULL|0)\s*\)"
)
WALL_CLOCK_EXEMPT = ("src/core/run_context.hpp", "src/core/run_context.cpp")


def check_wall_clock(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for path in cxx_sources(root, ["src", "bench", "tests", "examples"]):
        if rel(root, path) in WALL_CLOCK_EXEMPT:
            continue
        clean = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for m in WALL_CLOCK_RE.finditer(clean):
            findings.append(
                Finding(
                    rel(root, path),
                    line_of(clean, m.start()),
                    "wall-clock",
                    "date-like wall-clock call outside core/run_context; "
                    "runs must be reproducible (steady_clock is fine)",
                )
            )
    return findings


RULES = (
    check_atomic_memory_order,
    check_solver_registration,
    check_bare_assert,
    check_hot_path_containers,
    check_wall_clock,
)


def run_lint(root: Path) -> List[Finding]:
    findings: List[Finding] = []
    for rule in RULES:
        findings.extend(rule(root))
    findings.sort()
    return findings


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    root = root.resolve()
    if not root.is_dir():
        print(f"abt_lint: no such directory: {root}", file=sys.stderr)
        return 2
    findings = run_lint(root)
    for f in findings:
        print(f.render())
    if findings:
        print(f"abt_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("abt_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
