#!/usr/bin/env python3
"""Unit tests for abt_lint.py: each rule must catch a seeded violation in a
synthetic repo tree and stay quiet on the conforming twin of the same code.

Run directly (python3 scripts/test_abt_lint.py) or via ctest (abt_lint_selftest).
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import abt_lint  # noqa: E402


_TMP_HANDLES = []  # keeps every test tree alive until interpreter exit


def make_tree(files):
    """Materializes {relpath: content} into a temp dir; returns its Path."""
    tmp = tempfile.TemporaryDirectory(prefix="abt_lint_test_")
    _TMP_HANDLES.append(tmp)
    root = Path(tmp.name)
    for relpath, content in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return root


def rules_of(findings):
    return sorted({f.rule for f in findings})


class AtomicMemoryOrderTest(unittest.TestCase):
    def test_unordered_store_is_flagged(self):
        root = make_tree({
            "src/engine/pool.cpp": (
                "#include <atomic>\n"
                "std::atomic<int> g;\n"
                "void f() { g.store(1); }\n"
            ),
        })
        findings = abt_lint.check_atomic_memory_order(root)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "atomic-memory-order")
        self.assertEqual(findings[0].path, "src/engine/pool.cpp")
        self.assertEqual(findings[0].line, 3)

    def test_explicit_order_passes(self):
        root = make_tree({
            "src/engine/pool.cpp": (
                "#include <atomic>\n"
                "std::atomic<int> g;\n"
                "void f() { g.store(1, std::memory_order_release); }\n"
                "int r() { return g.load(std::memory_order_acquire); }\n"
            ),
        })
        self.assertEqual(abt_lint.check_atomic_memory_order(root), [])

    def test_multiline_cas_with_orders_passes(self):
        root = make_tree({
            "src/engine/pool.cpp": (
                "#include <atomic>\n"
                "std::atomic<unsigned long> packed;\n"
                "bool f(unsigned long& want, unsigned long next) {\n"
                "  return packed.compare_exchange_weak(\n"
                "      want, next, std::memory_order_acq_rel,\n"
                "      std::memory_order_relaxed);\n"
                "}\n"
            ),
        })
        self.assertEqual(abt_lint.check_atomic_memory_order(root), [])

    def test_unordered_fetch_add_in_service_is_flagged(self):
        root = make_tree({
            "src/service/server.cpp": (
                "#include <atomic>\n"
                "std::atomic<unsigned> served;\n"
                "void f() { served.fetch_add(1); }\n"
            ),
        })
        findings = abt_lint.check_atomic_memory_order(root)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "atomic-memory-order")
        self.assertEqual(findings[0].path, "src/service/server.cpp")

    def test_ordered_service_counters_pass(self):
        root = make_tree({
            "src/service/server.cpp": (
                "#include <atomic>\n"
                "std::atomic<unsigned> served;\n"
                "void f() { served.fetch_add(1, std::memory_order_relaxed); }\n"
            ),
        })
        self.assertEqual(abt_lint.check_atomic_memory_order(root), [])

    def test_unordered_cas_in_run_context_is_flagged(self):
        root = make_tree({
            "src/core/run_context.hpp": (
                "#include <atomic>\n"
                "std::atomic<bool> cancelled;\n"
                "bool trip() { bool f = false;\n"
                "  return cancelled.compare_exchange_strong(f, true); }\n"
            ),
        })
        findings = abt_lint.check_atomic_memory_order(root)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 4)

    def test_outside_concurrency_layer_ignored(self):
        root = make_tree({
            "src/busy/misc.cpp": (
                "#include <atomic>\n"
                "std::atomic<int> g;\n"
                "void f() { g.store(1); }\n"
            ),
        })
        self.assertEqual(abt_lint.check_atomic_memory_order(root), [])

    def test_commented_call_ignored(self):
        root = make_tree({
            "src/engine/pool.cpp": (
                "// g.store(1); would be a violation if live\n"
                "/* also g.load() here */\n"
            ),
        })
        self.assertEqual(abt_lint.check_atomic_memory_order(root), [])


class SolverRegistrationTest(unittest.TestCase):
    def test_checker_less_registration_is_flagged(self):
        root = make_tree({
            "src/engine/builtin_solvers.cpp": (
                "void reg(SolverRegistry& registry) {\n"
                "  {\n"
                "    Solver s;\n"
                "    s.name = \"busy/bad\";\n"
                "    s.applicable = always_applicable;\n"
                "    s.run = run_bad;\n"
                "    registry.add(std::move(s));\n"
                "  }\n"
                "}\n"
            ),
        })
        findings = abt_lint.check_solver_registration(root)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "solver-registration")
        self.assertIn(".check", findings[0].message)
        self.assertEqual(findings[0].line, 3)

    def test_applicable_less_registration_is_flagged(self):
        root = make_tree({
            "src/engine/builtin_solvers.cpp": (
                "Solver build() {\n"
                "  Solver s;\n"
                "  s.check = core::check_standard_solution;\n"
                "  s.run = run_ok;\n"
                "  return s;\n"
                "}\n"
            ),
        })
        findings = abt_lint.check_solver_registration(root)
        self.assertEqual(len(findings), 1)
        self.assertIn(".applicable", findings[0].message)

    def test_complete_registrations_pass(self):
        root = make_tree({
            "src/engine/builtin_solvers.cpp": (
                "Solver build() {\n"
                "  Solver s;\n"
                "  s.applicable = always_applicable;\n"
                "  s.check = core::check_standard_solution;\n"
                "  s.run = run_ok;\n"
                "  return s;\n"
                "}\n"
                "void reg(SolverRegistry& registry) {\n"
                "  {\n"
                "    Solver s;\n"
                "    s.applicable = is_weighted;\n"
                "    s.check = check_weighted;\n"
                "    s.run = run_w;\n"
                "    registry.add(std::move(s));\n"
                "  }\n"
                "}\n"
            ),
        })
        self.assertEqual(abt_lint.check_solver_registration(root), [])

    def test_reused_variable_spans_stay_separate(self):
        # Two blocks both declare `Solver s;` — completeness of the first
        # must not bleed into (or mask) the second's missing fields.
        root = make_tree({
            "src/engine/builtin_solvers.cpp": (
                "void reg(SolverRegistry& registry) {\n"
                "  {\n"
                "    Solver s;\n"
                "    s.applicable = always_applicable;\n"
                "    s.check = core::check_standard_solution;\n"
                "    s.run = a;\n"
                "    registry.add(std::move(s));\n"
                "  }\n"
                "  {\n"
                "    Solver s;\n"
                "    s.run = b;\n"
                "    registry.add(std::move(s));\n"
                "  }\n"
                "}\n"
            ),
        })
        findings = abt_lint.check_solver_registration(root)
        self.assertEqual(len(findings), 2)
        self.assertTrue(all(f.line == 10 for f in findings))


class BareAssertTest(unittest.TestCase):
    def test_bare_assert_and_abort_are_flagged(self):
        root = make_tree({
            "src/busy/x.cpp": (
                "#include <cassert>\n"
                "void f(int n) { assert(n > 0); }\n"
                "void g() { std::abort(); }\n"
            ),
        })
        findings = abt_lint.check_bare_assert(root)
        self.assertEqual(len(findings), 2)
        self.assertEqual({f.line for f in findings}, {2, 3})

    def test_assert_hpp_itself_is_exempt(self):
        root = make_tree({
            "src/core/assert.hpp": "inline void die() { std::abort(); }\n",
        })
        self.assertEqual(abt_lint.check_bare_assert(root), [])

    def test_uppercase_and_static_assert_pass(self):
        root = make_tree({
            "src/busy/x.cpp": (
                "static_assert(sizeof(int) == 4);\n"
                "void f(int n) { ABT_ASSERT(n > 0, \"positive\"); }\n"
                "void t() { ASSERT_TRUE(true); }\n"
            ),
        })
        self.assertEqual(abt_lint.check_bare_assert(root), [])


class HotPathContainersTest(unittest.TestCase):
    def test_map_include_in_sweep_is_flagged(self):
        root = make_tree({
            "src/core/sweep.hpp": "#include <map>\n#include <vector>\n",
        })
        findings = abt_lint.check_hot_path_containers(root)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "hot-path-containers")
        self.assertEqual(findings[0].line, 1)

    def test_naive_baselines_keeps_its_maps(self):
        root = make_tree({
            "src/busy/naive_baselines.hpp": "#include <map>\n#include <set>\n",
            "src/busy/first_fit.hpp": "#include <vector>\n",
        })
        self.assertEqual(abt_lint.check_hot_path_containers(root), [])

    def test_unordered_map_is_allowed(self):
        root = make_tree({
            "src/core/sweep.hpp": "#include <unordered_map>\n",
        })
        self.assertEqual(abt_lint.check_hot_path_containers(root), [])


class WallClockTest(unittest.TestCase):
    def test_system_clock_is_flagged(self):
        root = make_tree({
            "src/engine/y.cpp": (
                "#include <chrono>\n"
                "auto t() { return std::chrono::system_clock::now(); }\n"
            ),
        })
        findings = abt_lint.check_wall_clock(root)
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "wall-clock")
        self.assertEqual(findings[0].line, 2)

    def test_time_nullptr_is_flagged(self):
        root = make_tree({
            "bench/seed.cpp": "long seed() { return time(nullptr); }\n",
        })
        self.assertEqual(len(abt_lint.check_wall_clock(root)), 1)

    def test_steady_clock_passes(self):
        root = make_tree({
            "src/engine/y.cpp": (
                "#include <chrono>\n"
                "auto t() { return std::chrono::steady_clock::now(); }\n"
            ),
        })
        self.assertEqual(abt_lint.check_wall_clock(root), [])

    def test_run_context_is_exempt(self):
        root = make_tree({
            "src/core/run_context.hpp": (
                "auto wall() { return std::chrono::system_clock::now(); }\n"
            ),
        })
        self.assertEqual(abt_lint.check_wall_clock(root), [])


class DriverTest(unittest.TestCase):
    def test_run_lint_aggregates_and_sorts(self):
        root = make_tree({
            "src/engine/pool.cpp": "std::atomic<int> g;\nvoid f() { g.store(1); }\n",
            "src/busy/x.cpp": "void f(int n) { assert(n > 0); }\n",
        })
        findings = abt_lint.run_lint(root)
        self.assertEqual(rules_of(findings), ["atomic-memory-order", "bare-assert"])
        self.assertEqual(findings, sorted(findings))

    def test_main_exit_codes(self):
        clean = make_tree({"src/core/ok.cpp": "int x = 0;\n"})
        self.assertEqual(abt_lint.main(["abt_lint.py", str(clean)]), 0)
        dirty = make_tree({"src/busy/x.cpp": "void f() { abort(); }\n"})
        self.assertEqual(abt_lint.main(["abt_lint.py", str(dirty)]), 1)
        self.assertEqual(abt_lint.main(["abt_lint.py", str(clean / "nope")]), 2)


if __name__ == "__main__":
    unittest.main()
