#!/usr/bin/env bash
# Replay-corpus smoke (Instance I/O v2): every golden file under data/
# must (a) parse and solve with a solver of its kind and (b) re-emit
# byte-identically through `abt_solve <file> --emit` — the serializers are
# a lossless inverse pair for all four instance kinds, so a diff here
# means instance data was silently dropped. Every file under
# data/malformed/ must be REJECTED with a parse error.
#
# Usage: scripts/replay_corpus.sh [path/to/abt_solve]
set -euo pipefail
cd "$(dirname "$0")/.."

ABT=${1:-build/abt_solve}
if [[ ! -x "$ABT" ]]; then
  echo "abt_solve binary not found at '$ABT'" >&2
  exit 1
fi

# Solver selection is per FILE, not just per model: a file's shape can
# rule out the model's default solver (flexible weighted jobs decline
# `busy/weighted-exact`, which wants interval jobs). Files with an
# override are listed explicitly; everything else falls back to one
# registered solver per `model` directive.
solver_for_file() {
  case "$(basename "$1")" in
    weighted_flexible.txt)   echo "busy/weighted-flexible"; return ;;
    fig6_tracking_tight.txt) echo "busy/pipeline-greedy-tracking"; return ;;
  esac
  case "$2" in
    slotted)      echo "active/minimal-feasible" ;;
    continuous)   echo "busy/first-fit" ;;
    weighted)     echo "busy/weighted-exact" ;;
    multi-window) echo "active/multi-window-exact" ;;
    *)            return 1 ;;
  esac
}

failures=0

for f in data/*.txt; do
  model=$(awk '$1 == "model" { print $2; exit }' "$f")
  solver=$(solver_for_file "$f" "$model") || {
    echo "FAIL $f: unknown model '$model'" >&2
    failures=$((failures + 1))
    continue
  }

  if ! "$ABT" "$f" --solvers "$solver" > /dev/null; then
    echo "FAIL $f: solve with $solver failed" >&2
    failures=$((failures + 1))
  fi

  if ! "$ABT" "$f" --emit | diff -u "$f" - > /dev/null; then
    echo "FAIL $f: parse -> re-emit is not the identity" >&2
    "$ABT" "$f" --emit | diff -u "$f" - >&2 || true
    failures=$((failures + 1))
  fi
done

for f in data/malformed/*.txt; do
  if out=$("$ABT" "$f" 2>&1); then
    echo "FAIL $f: malformed input was accepted" >&2
    failures=$((failures + 1))
  elif ! grep -q "parse error: line" <<< "$out"; then
    echo "FAIL $f: rejected, but not with a line-numbered parse error:" >&2
    echo "$out" >&2
    failures=$((failures + 1))
  fi
done

if [[ $failures -gt 0 ]]; then
  echo "replay corpus: $failures failure(s)" >&2
  exit 1
fi
echo "replay corpus: all golden files round-trip, all malformed files rejected"
