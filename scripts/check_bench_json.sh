#!/usr/bin/env bash
# Guards the perf-trajectory contract (ROADMAP: every PR commits a
# BENCH_PR<N>.json and keeps the naive denominator families alive):
#
#   1. bench/CMakeLists.txt's ABT_BENCH_JSON default points at the NEWEST
#      committed BENCH_PR*.json — a stale default silently overwrites an
#      old trajectory point on the next `make bench_json`.
#   2. That file still contains all six BM_*Naive denominator families the
#      speedup tables divide by; dropping one orphans every historical
#      ratio.
#
# Usage: scripts/check_bench_json.sh [REPO_ROOT]
set -euo pipefail

repo_root="$(cd "${1:-$(dirname "${BASH_SOURCE[0]}")/..}" && pwd)"
cmake_file="${repo_root}/bench/CMakeLists.txt"

fail() {
  echo "check_bench_json: $*" >&2
  exit 1
}

[[ -f "${cmake_file}" ]] || fail "missing ${cmake_file}"

newest=""
newest_n=-1
for f in "${repo_root}"/BENCH_PR*.json; do
  [[ -e "$f" ]] || fail "no BENCH_PR*.json committed at the repo root"
  base="$(basename "$f")"
  n="${base#BENCH_PR}"
  n="${n%.json}"
  [[ "$n" =~ ^[0-9]+$ ]] || fail "unparseable trajectory file name: ${base}"
  if (( n > newest_n )); then
    newest_n="$n"
    newest="$base"
  fi
done

configured="$(sed -n \
  's/.*set(ABT_BENCH_JSON *\${CMAKE_SOURCE_DIR}\/\(BENCH_PR[0-9]*\.json\).*/\1/p' \
  "${cmake_file}" | head -n 1)"
[[ -n "${configured}" ]] ||
  fail "could not find the ABT_BENCH_JSON default in bench/CMakeLists.txt"

if [[ "${configured}" != "${newest}" ]]; then
  fail "ABT_BENCH_JSON defaults to ${configured} but the newest committed" \
       "trajectory file is ${newest}; bump the default (a stale default" \
       "overwrites history on the next bench_json run)"
fi

python3 - "${repo_root}/${newest}" <<'EOF'
import json
import sys

required = [
    "BM_FirstFitNaive",
    "BM_DemandProfileNaive",
    "BM_LevelPeelNaive",
    "BM_OnlineFirstFitNaive",
    "BM_OnlineBestFitNaive",
    "BM_PreemptiveBoundedNaive",
]
path = sys.argv[1]
with open(path, encoding="utf-8") as f:
    data = json.load(f)
families = {b["name"].split("/")[0] for b in data.get("benchmarks", [])}
missing = [r for r in required if r not in families]
if missing:
    print(
        f"check_bench_json: {path} lost naive denominator families: "
        + ", ".join(missing),
        file=sys.stderr,
    )
    sys.exit(1)
EOF

echo "check_bench_json: ${configured} is current and keeps all six naive families"
