// The budget-aware RunContext API: budget expiry returns a feasible
// incumbent with a certified gap instead of a refusal, cancellation
// declines work promptly, incumbent hooks observe improving costs, and a
// budget lifts the exact solvers' measured size gates.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "active/exact.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "active/multi_window.hpp"
#include "core/run_context.hpp"
#include "core/solver.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/runner.hpp"

namespace abt {
namespace {

using core::CancelSource;
using core::ProblemInstance;
using core::RunContext;
using core::Solution;

ProblemInstance scenario_instance(const std::string& name, int n, int g,
                                  std::uint64_t seed = 7) {
  engine::ScenarioSpec spec;
  spec.name = name;
  spec.n = n;
  spec.g = g;
  spec.seed = seed;
  std::string error;
  const auto inst = engine::make_scenario(spec, &error);
  EXPECT_TRUE(inst.has_value()) << error;
  return *inst;
}

TEST(RunContext, DefaultIsUnlimitedAndNeverStops) {
  const RunContext ctx;
  EXPECT_FALSE(ctx.has_budget());
  EXPECT_EQ(ctx.budget_ms(), 0.0);
  EXPECT_FALSE(ctx.cancelled());
  EXPECT_FALSE(ctx.out_of_budget());
  EXPECT_FALSE(ctx.should_stop());
  EXPECT_EQ(ctx.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(RunContext, BudgetExpiresAndRestartRearmsIt) {
  const RunContext ctx = RunContext::with_budget_ms(1e-6);
  EXPECT_TRUE(ctx.has_budget());
  // The budget is far below any measurable elapsed time, so by the time
  // the assertion runs it has expired.
  while (!ctx.out_of_budget()) {
  }
  EXPECT_TRUE(ctx.should_stop());
  // A generous re-armed deadline is live again.
  const RunContext fresh = RunContext::with_budget_ms(60'000).restarted();
  EXPECT_FALSE(fresh.out_of_budget());
  EXPECT_GT(fresh.remaining_ms(), 0.0);
}

TEST(RunContext, CancelSourceReachesEveryToken) {
  CancelSource source;
  const RunContext ctx = RunContext().set_cancel_token(source.token());
  EXPECT_FALSE(ctx.should_stop());
  source.cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(ctx.should_stop());
}

TEST(RunContext, GapSemantics) {
  Solution sol;
  sol.cost = 12.0;
  EXPECT_TRUE(std::isinf(sol.gap()));  // no bound certified
  sol.best_bound = 10.0;
  EXPECT_NEAR(sol.gap(), 0.2, 1e-12);
  sol.exact = true;
  EXPECT_EQ(sol.gap(), 0.0);  // proven optimum, whatever the bound says
  sol.exact = false;
  sol.best_bound = 15.0;  // bound above cost clamps to 0, never negative
  EXPECT_EQ(sol.gap(), 0.0);
}

// The acceptance criterion verbatim: n = 24 is past the measured gate
// (14), so a free run refuses; with a budget the oracle runs anytime and
// returns a checker-validated incumbent with timed_out and a gap.
TEST(RunContext, BudgetExpiryReturnsFeasibleIncumbentWithGap) {
  const ProblemInstance inst = scenario_instance("weighted", 24, 3);
  const core::SolverRegistry& registry = engine::shared_registry();

  const Solution refused = registry.run("busy/weighted-exact", inst);
  EXPECT_FALSE(refused.ok);
  EXPECT_NE(refused.message.find("too large"), std::string::npos)
      << refused.message;

  const RunContext ctx = RunContext::with_budget_ms(100).restarted();
  const Solution sol = registry.run("busy/weighted-exact", inst, ctx);
  ASSERT_TRUE(sol.ok) << sol.message;
  EXPECT_TRUE(sol.feasible) << sol.message;
  EXPECT_TRUE(sol.timed_out);
  EXPECT_FALSE(sol.exact);
  EXPECT_EQ(sol.budget_ms, 100.0);
  EXPECT_GT(sol.best_bound, 0.0);
  EXPECT_GE(sol.cost, sol.best_bound - 1e-9);
  EXPECT_GE(sol.gap(), 0.0);
  EXPECT_TRUE(std::isfinite(sol.gap()));
}

TEST(RunContext, BudgetLiftsExactGatesInSelection) {
  const ProblemInstance inst = scenario_instance("weighted", 24, 3);
  const core::SolverRegistry& registry = engine::shared_registry();
  const auto has_exact = [](const std::vector<const core::Solver*>& plan) {
    for (const core::Solver* s : plan) {
      if (s->name == "busy/weighted-exact") return true;
    }
    return false;
  };
  EXPECT_FALSE(has_exact(registry.selection(inst)));
  EXPECT_TRUE(has_exact(
      registry.selection(inst, {}, RunContext::with_budget_ms(50))));
}

TEST(RunContext, ActiveExactRunsAnytimePastItsGate) {
  // n = 30 at horizon 60 is far past the free-run gate (n 20, horizon 24);
  // the branch & bound seeds a minimal-feasible incumbent and must return
  // it (or better) at the deadline.
  const ProblemInstance inst = scenario_instance("slotted", 30, 3);
  const core::SolverRegistry& registry = engine::shared_registry();

  EXPECT_FALSE(registry.run("active/exact", inst).ok);

  const RunContext ctx = RunContext::with_budget_ms(100).restarted();
  const Solution sol = registry.run("active/exact", inst, ctx);
  ASSERT_TRUE(sol.ok) << sol.message;
  EXPECT_TRUE(sol.feasible) << sol.message;
  // Either the search finished inside the budget (proven optimum) or it
  // was interrupted with a certified mass bound.
  if (!sol.exact) {
    EXPECT_TRUE(sol.timed_out);
    EXPECT_GT(sol.best_bound, 0.0);
    EXPECT_GE(sol.cost, sol.best_bound - 1e-9);
  }
}

TEST(RunContext, CancelledContextDeclinesEverySolver) {
  const ProblemInstance inst = scenario_instance("interval", 10, 3);
  const core::SolverRegistry& registry = engine::shared_registry();
  CancelSource source;
  source.cancel();
  const RunContext ctx = RunContext().set_cancel_token(source.token());
  const Solution sol = registry.run("busy/first-fit", inst, ctx);
  EXPECT_FALSE(sol.ok);
  EXPECT_TRUE(sol.timed_out);
  EXPECT_EQ(sol.message, "cancelled");
}

TEST(RunContext, CancellationSurfacesThroughFlowBasedSolvers) {
  // A cancel that fires inside a solver (past the registry's entry check)
  // must surface as an explicit cancelled verdict, never be misread as
  // "instance infeasible" — the flow checks are now cancellation-aware.
  const ProblemInstance inst = scenario_instance("slotted", 12, 2, 11);
  CancelSource source;
  source.cancel();
  const RunContext ctx = RunContext().set_cancel_token(source.token());
  ASSERT_TRUE(ctx.cancelled());

  bool cancelled = false;
  active::MinimalFeasibleOptions minimal_options;
  minimal_options.context = &ctx;
  EXPECT_FALSE(active::solve_minimal_feasible(inst.slotted, minimal_options,
                                              &cancelled)
                   .has_value());
  EXPECT_TRUE(cancelled);

  active::ExactOptions exact_options;
  exact_options.context = &ctx;
  const auto exact = active::solve_exact(inst.slotted, exact_options);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(exact->cancelled);
  EXPECT_TRUE(exact->timed_out);
  EXPECT_FALSE(exact->proven_optimal);

  const auto rounded = active::solve_lp_rounding(inst.slotted, &ctx);
  ASSERT_TRUE(rounded.has_value());
  EXPECT_TRUE(rounded->cancelled);
}

TEST(RunContext, IncumbentHookObservesImprovingCosts) {
  const ProblemInstance inst = scenario_instance("slotted", 12, 2, 11);
  const core::SolverRegistry& registry = engine::shared_registry();
  std::mutex mutex;
  std::vector<double> costs;
  RunContext ctx;
  ctx.set_incumbent_hook([&](const core::Incumbent& incumbent) {
    const std::lock_guard<std::mutex> lock(mutex);
    costs.push_back(incumbent.cost);
    EXPECT_GE(incumbent.elapsed_ms, 0.0);
  });
  const Solution sol = registry.run("active/exact", inst, ctx);
  ASSERT_TRUE(sol.ok) << sol.message;
  ASSERT_FALSE(costs.empty());
  for (std::size_t i = 1; i < costs.size(); ++i) {
    EXPECT_LE(costs[i], costs[i - 1]) << "incumbents must improve";
  }
  // The final reported incumbent is the returned cost.
  EXPECT_EQ(costs.back(), sol.cost);
}

TEST(RunContext, MultiWindowInfeasibleConcludesWithoutEnumerating) {
  // Two 2-slot jobs, one shared single-slot window, g = 1: infeasible.
  // The anytime path must conclude from the failed all-slots check —
  // never burn the budget enumerating subsets that cannot succeed.
  const active::MultiWindowInstance infeasible(
      {{{{0, 2}}, 2}, {{{0, 2}}, 2}}, 1);
  const RunContext ctx = RunContext::with_budget_ms(5).restarted();
  active::MultiWindowExactOptions options;
  options.context = &ctx;
  EXPECT_FALSE(active::mw_solve_exact_anytime(infeasible, options)
                   .has_value());
}

TEST(RunContext, PolynomialSolversIgnoreExpiredBudgets) {
  // An (effectively) expired budget must not stop a polynomial solver:
  // it runs to completion and reports a full, untimed-out solution.
  const ProblemInstance inst = scenario_instance("interval", 20, 3);
  const core::SolverRegistry& registry = engine::shared_registry();
  const RunContext ctx = RunContext::with_budget_ms(1e-6);
  const Solution sol = registry.run("busy/first-fit", inst, ctx);
  ASSERT_TRUE(sol.ok) << sol.message;
  EXPECT_TRUE(sol.feasible);
  EXPECT_FALSE(sol.timed_out);
}

TEST(RunContext, RunInstanceCarriesBudgetIntoEveryCell) {
  const ProblemInstance inst = scenario_instance("weighted", 20, 3);
  engine::RunOptions options;
  options.budget_ms = 60;
  const engine::RunReport report =
      engine::run_instance(engine::shared_registry(), inst, options);
  bool saw_exact = false;
  for (const Solution& sol : report.solutions) {
    EXPECT_EQ(sol.budget_ms, 60.0) << sol.solver;
    if (sol.solver == "busy/weighted-exact") {
      saw_exact = true;
      ASSERT_TRUE(sol.ok) << sol.message;
      EXPECT_TRUE(sol.feasible);
      // Completed inside the budget or timed out with an incumbent —
      // either way the cell reports, never refuses.
      EXPECT_TRUE(sol.exact || sol.timed_out);
    }
  }
  EXPECT_TRUE(saw_exact) << "budget must lift the n=20 gate";
}

// ---------------------------------------------------------------------------
// Child contexts and chained tokens (the portfolio race's substrate).

TEST(RunContext, ChainedTokenTripsWhenEitherSourceDoes) {
  CancelSource a;
  CancelSource b;
  const core::CancelToken both = a.token().chained(b.token());
  EXPECT_FALSE(both.cancelled());
  b.cancel();
  EXPECT_TRUE(both.cancelled()) << "upstream trip must surface";
  CancelSource c;
  const core::CancelToken other = c.token().chained(a.token());
  EXPECT_FALSE(other.cancelled());
  c.cancel();
  EXPECT_TRUE(other.cancelled()) << "own trip must surface";
  // Chaining with an empty token is the identity in both directions.
  CancelSource d;
  EXPECT_FALSE(d.token().chained(core::CancelToken()).cancelled());
  EXPECT_FALSE(core::CancelToken().chained(d.token()).cancelled());
  d.cancel();
  EXPECT_TRUE(d.token().chained(core::CancelToken()).cancelled());
  EXPECT_TRUE(core::CancelToken().chained(d.token()).cancelled());
  EXPECT_TRUE(core::CancelToken().empty());
  EXPECT_FALSE(d.token().empty());
}

TEST(RunContext, ChildInheritsBudgetCancellationAndCap) {
  // Budget: a child of a budgeted parent never outlives the parent's
  // remaining allowance, and a per-child cap tightens but never extends.
  const RunContext parent = RunContext::with_budget_ms(60'000);
  const RunContext child = parent.child();
  EXPECT_TRUE(child.has_budget());
  EXPECT_LE(child.budget_ms(), 60'000.0);
  const RunContext capped = parent.child({}, 5.0);
  EXPECT_EQ(capped.budget_ms(), 5.0);
  // An unlimited parent with a cap yields exactly the cap; without one,
  // the child is unlimited too.
  EXPECT_EQ(RunContext().child({}, 7.0).budget_ms(), 7.0);
  EXPECT_FALSE(RunContext().child().has_budget());
  // An exhausted parent yields an immediately-expiring child, never a
  // fresh unlimited one.
  const RunContext expired = RunContext::with_budget_ms(1e-6);
  while (!expired.out_of_budget()) {
  }
  const RunContext drained = expired.child();
  EXPECT_TRUE(drained.has_budget());
  while (!drained.out_of_budget()) {
  }
  EXPECT_TRUE(drained.should_stop());

  // Cancellation: the child observes BOTH the parent's token and the
  // extra one, and the parent never observes the child's extra source.
  CancelSource parent_stop;
  CancelSource child_stop;
  const RunContext root = RunContext().set_cancel_token(parent_stop.token());
  const RunContext derived = root.child(child_stop.token());
  EXPECT_FALSE(derived.cancelled());
  child_stop.cancel();
  EXPECT_TRUE(derived.cancelled());
  EXPECT_FALSE(root.cancelled()) << "cancellation must not flow upward";
  CancelSource other_stop;
  const RunContext sibling = root.child(other_stop.token());
  EXPECT_FALSE(sibling.cancelled()) << "siblings are independent";
  parent_stop.cancel();
  EXPECT_TRUE(sibling.cancelled()) << "parent trip reaches every child";
  EXPECT_TRUE(root.cancelled());
}

TEST(RunContext, GrandchildSeesEveryAncestorToken) {
  CancelSource top;
  CancelSource mid;
  CancelSource leaf;
  const RunContext root = RunContext().set_cancel_token(top.token());
  const RunContext middle = root.child(mid.token());
  const RunContext bottom = middle.child(leaf.token());
  EXPECT_FALSE(bottom.cancelled());
  top.cancel();
  EXPECT_TRUE(bottom.cancelled()) << "a root trip drains the whole tree";
}

}  // namespace
}  // namespace abt
