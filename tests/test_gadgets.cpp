// Sanity checks for the paper-gadget generators: sizes, structure and the
// claimed optimal costs (verified with exact solvers where tractable).
#include "gen/gadgets.hpp"

#include <gtest/gtest.h>

#include "active/feasibility.hpp"
#include "busy/demand_profile.hpp"
#include "busy/exact_busy.hpp"
#include "core/busy_schedule.hpp"

namespace abt::gen {
namespace {

TEST(Gadgets, Fig1HasSevenJobsCapacityThree) {
  const auto inst = fig1_example();
  EXPECT_EQ(inst.size(), 7);
  EXPECT_EQ(inst.capacity(), 3);
  EXPECT_TRUE(inst.all_interval_jobs());
  const auto exact = abt::busy::solve_exact_interval(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(core::busy_cost(inst, *exact), 6.0, 1e-9);
  EXPECT_EQ(exact->machine_count(), 2);
}

TEST(Gadgets, Fig3JobCountAndFeasibility) {
  for (int g = 3; g <= 6; ++g) {
    const auto inst = fig3_instance(g);
    EXPECT_EQ(inst.size(), 2 + 3 * (g - 2));
    EXPECT_EQ(inst.capacity(), g);
    std::string why;
    EXPECT_TRUE(inst.structurally_valid(&why)) << why;
    EXPECT_TRUE(abt::active::is_feasible(inst));
    EXPECT_TRUE(
        abt::active::is_feasible_with_slots(inst, fig3_optimal_slots(g)));
    EXPECT_TRUE(
        abt::active::is_feasible_with_slots(inst, fig3_adversarial_slots(g)));
    EXPECT_EQ(static_cast<int>(fig3_optimal_slots(g).size()), g);
  }
}

TEST(Gadgets, LpGapInstanceShape) {
  const int g = 3;
  const auto inst = lp_gap_instance(g);
  EXPECT_EQ(inst.size(), g * (g + 1));
  EXPECT_TRUE(abt::active::is_feasible(inst));
}

TEST(Gadgets, Fig6CountsAndOptimalCost) {
  const int g = 3;
  const double eps = 0.1;
  const auto inst = fig6_instance(g, eps);
  EXPECT_EQ(inst.size(), 2 * g * g + 2 * g);
  EXPECT_FALSE(inst.all_interval_jobs()) << "flexible jobs present";
  EXPECT_NEAR(fig6_optimal_cost(g, eps), 2.0 * g + 2 - eps, 1e-12);

  const auto frozen = fig7_adversarial_freeze(g, eps);
  EXPECT_EQ(frozen.size(), inst.size());
  EXPECT_TRUE(frozen.all_interval_jobs());
}

TEST(Gadgets, Fig8DemandIsTwoEverywhere) {
  const auto inst = fig8_instance(0.1, 0.04);
  EXPECT_EQ(inst.size(), 5);
  EXPECT_EQ(inst.capacity(), 2);
  const abt::busy::DemandProfile prof(inst);
  for (const auto& seg : prof.segments()) {
    EXPECT_EQ(seg.raw_demand, 2) << "at [" << seg.interval.lo << ", "
                                 << seg.interval.hi << ")";
  }
  EXPECT_NEAR(prof.cost(), 1.1, 1e-9);
}

TEST(Gadgets, Fig9FreezesShareSpanStructure) {
  const int g = 3;
  const double eps = 0.05;
  const auto flexible = fig9_instance(g, eps);
  const auto adversarial = fig9_adversarial_freeze(g, eps);
  const auto optimal = fig9_optimal_freeze(g, eps);
  EXPECT_EQ(flexible.size(), 1 + g * (g - 1) + (g - 1));
  EXPECT_EQ(adversarial.size(), flexible.size());
  EXPECT_EQ(optimal.size(), flexible.size());
  EXPECT_TRUE(adversarial.all_interval_jobs());
  EXPECT_TRUE(optimal.all_interval_jobs());
  // The adversarial freeze hides flexible jobs inside blocks: its span is
  // strictly smaller.
  EXPECT_LT(core::span_of(adversarial.forced_intervals()),
            core::span_of(optimal.forced_intervals()));
}

TEST(Gadgets, Fig9ProfileRatioApproachesTwo) {
  const int g = 5;
  const double eps = 0.01;
  const double adv =
      abt::busy::DemandProfile(fig9_adversarial_freeze(g, eps)).cost();
  const double opt =
      abt::busy::DemandProfile(fig9_optimal_freeze(g, eps)).cost();
  EXPECT_GT(adv / opt, 1.7) << "Lemma 7's factor approaches 2";
  EXPECT_LE(adv / opt, 2.0 + 1e-9);
}

TEST(Gadgets, Fig10SideDemandExactlyG) {
  const int g = 3;
  const auto frozen = fig10_adversarial_freeze(g, 0.1, 0.04);
  const abt::busy::DemandProfile prof(frozen);
  for (const auto& seg : prof.segments()) {
    const double len = seg.interval.length();
    if (len < 0.2) {  // flank segments
      EXPECT_EQ(seg.raw_demand % g, 0)
          << "flank demand must be exactly g at [" << seg.interval.lo << ")";
    }
  }
}

TEST(Gadgets, Fig7PaperPackingFeasibleAndCostsSixG) {
  for (int g = 2; g <= 5; ++g) {
    const double eps = 0.5 / g;
    const PackedInstance fig7 = fig7_paper_packing(g, eps);
    std::string why;
    ASSERT_TRUE(core::check_busy_schedule(fig7.instance, fig7.schedule, &why))
        << why;
    const double cost = core::busy_cost(fig7.instance, fig7.schedule);
    // 2 bundles of span (2 - eps) per gadget + 2 flexible bundles of
    // span (1 - eps/2) per gadget = (6 - 3 eps) g.
    EXPECT_NEAR(cost, (6.0 - 3 * eps) * g, 1e-9);
    // A valid greedy outcome never violates Theorem 5.
    EXPECT_LE(cost, 3 * fig6_optimal_cost(g, eps) + 1e-9);
  }
}

TEST(Gadgets, Fig12PaperPackingFeasibleAndApproachesFour) {
  for (int g = 3; g <= 6; ++g) {
    const double eps = 0.05 / g;
    const PackedInstance fig12 = fig12_paper_packing(g, eps, eps / 3);
    std::string why;
    ASSERT_TRUE(core::check_busy_schedule(fig12.instance, fig12.schedule, &why))
        << why;
    const double cost = core::busy_cost(fig12.instance, fig12.schedule);
    const double opt = 1.0 + (g - 1) * (1.0 + 2 * eps);
    EXPECT_GT(cost / opt, 4.0 * (g - 1.0) / g - 0.35)
        << "pair-opening run approaches 1 + 4(g-1) vs OPT ~ g";
    EXPECT_LE(cost / opt, 4.0 + 1e-9) << "Theorem 10's ceiling";
  }
}

TEST(Gadgets, Fig10JobCounts) {
  const int g = 4;
  const auto inst = fig10_instance(g, 0.1, 0.04);
  // 1 standalone + (g-1) gadgets * (g units + 2(g-1) eps + 2 eps' + ...)
  const int per_gadget = g + 2 * (g - 1) + 4;
  EXPECT_EQ(inst.size(), 1 + (g - 1) * per_gadget + (g - 1));
}

}  // namespace
}  // namespace abt::gen
