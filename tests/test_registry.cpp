// The solver registry and scenario engine: every registered solver, run
// over random slotted + continuous instances, must produce checker-valid
// schedules whose costs respect the solver's declared guarantee against
// the exact / LP lower bounds.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "busy/lower_bounds.hpp"
#include "core/rng.hpp"
#include "core/solver.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/runner.hpp"
#include "gen/random_instances.hpp"

namespace abt {
namespace {

using core::Family;
using core::ProblemInstance;
using core::Solution;

constexpr double kEps = 1e-6;

core::ProblemInstance random_interval_instance(core::Rng& rng, int n, int g) {
  gen::ContinuousParams params;
  params.num_jobs = n;
  params.capacity = g;
  params.horizon = 12.0;
  return core::make_instance(gen::random_continuous(rng, params));
}

core::ProblemInstance random_flexible_instance(core::Rng& rng, int n, int g) {
  gen::ContinuousParams params;
  params.num_jobs = n;
  params.capacity = g;
  params.horizon = 14.0;
  params.max_slack = 1.5;
  return core::make_instance(gen::random_continuous(rng, params));
}

core::ProblemInstance random_slotted_instance(core::Rng& rng, int n, int g) {
  gen::SlottedParams params;
  params.num_jobs = n;
  params.capacity = g;
  params.horizon = 12;
  params.max_length = 3;
  params.max_slack = 5;
  return core::make_instance(gen::random_feasible_slotted(rng, params));
}

TEST(Registry, HasTheFullSolverCatalog) {
  const core::SolverRegistry& registry = engine::shared_registry();
  EXPECT_GE(registry.size(), 12u);

  std::set<std::string> names;
  int busy = 0;
  int active = 0;
  for (const core::Solver& solver : registry.all()) {
    EXPECT_TRUE(names.insert(solver.name).second)
        << "duplicate name " << solver.name;
    EXPECT_FALSE(solver.guarantee.empty()) << solver.name;
    (solver.family == Family::kBusy ? busy : active) += 1;
    EXPECT_EQ(registry.find(solver.name), &solver);
  }
  EXPECT_GE(busy, 8);
  EXPECT_GE(active, 4);
  EXPECT_EQ(registry.find("no/such-solver"), nullptr);

  const Solution unknown = registry.run("no/such-solver", ProblemInstance{});
  EXPECT_FALSE(unknown.ok);
}

TEST(Registry, EveryScenarioInstantiatesWithItsFamily) {
  for (const engine::ScenarioInfo& info : engine::scenarios()) {
    engine::ScenarioSpec spec;
    spec.name = info.name;
    spec.n = 8;
    spec.g = 3;
    spec.seed = 7;
    std::string error;
    const auto inst = engine::make_scenario(spec, &error);
    ASSERT_TRUE(inst.has_value()) << info.name << ": " << error;
    EXPECT_EQ(inst->family, info.family) << info.name;
    if (inst->kind != core::InstanceKind::kStandard) {
      ASSERT_NE(inst->extension, nullptr) << info.name;
      EXPECT_GT(inst->extension->size(), 0) << info.name;
    } else if (inst->family == Family::kBusy) {
      EXPECT_GT(inst->continuous.size(), 0) << info.name;
    } else {
      EXPECT_GT(inst->slotted.size(), 0) << info.name;
    }
  }
  engine::ScenarioSpec bogus;
  bogus.name = "no-such-scenario";
  std::string error;
  EXPECT_FALSE(engine::make_scenario(bogus, &error).has_value());
  EXPECT_FALSE(error.empty());
}

class RegistryGuarantees : public ::testing::TestWithParam<int> {};

TEST_P(RegistryGuarantees, BusySolversRespectGuaranteesOnIntervalInstances) {
  const core::SolverRegistry& registry = engine::shared_registry();
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 10));
    const int g = static_cast<int>(rng.uniform_int(2, 3));
    const ProblemInstance inst = random_interval_instance(rng, n, g);

    const Solution exact = registry.run("busy/exact", inst);
    ASSERT_TRUE(exact.ok && exact.feasible) << exact.message;
    ASSERT_TRUE(exact.exact);
    const double opt = exact.cost;

    for (const core::Solver& solver : registry.all()) {
      if (solver.family != Family::kBusy) continue;
      if (solver.kind != core::InstanceKind::kStandard) continue;
      std::string why;
      if (solver.applicable && !solver.applicable(inst, {}, &why)) continue;
      const Solution sol = registry.run(solver, inst);
      if (!sol.ok) continue;  // dp-unbounded may decline after the fact.
      EXPECT_TRUE(sol.feasible) << solver.name << ": " << sol.message;
      if (sol.preemptive.has_value()) {
        // Preemptive guarantee is against its own lower bound; preemption
        // may legitimately beat the non-preemptive OPT.
        const double lb = sol.stat("lb");
        EXPECT_GT(lb, 0.0) << solver.name;
        EXPECT_GE(sol.cost, lb - kEps) << solver.name;
        EXPECT_LE(sol.cost, solver.guarantee_factor * lb + kEps)
            << solver.name;
        continue;
      }
      EXPECT_GE(sol.cost, opt - kEps)
          << solver.name << " beat the exact optimum";
      if (solver.guarantee_factor > 0.0) {
        EXPECT_LE(sol.cost, solver.guarantee_factor * opt + kEps)
            << solver.name << " violates its declared guarantee";
      }
      if (sol.exact) {
        EXPECT_NEAR(sol.cost, opt, kEps) << solver.name;
      }
    }
  }
}

TEST_P(RegistryGuarantees, BusySolversStayFeasibleOnFlexibleInstances) {
  const core::SolverRegistry& registry = engine::shared_registry();
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 15013ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 10));
    const int g = static_cast<int>(rng.uniform_int(2, 3));
    const ProblemInstance inst = random_flexible_instance(rng, n, g);
    ASSERT_FALSE(inst.continuous.all_interval_jobs(1e-6));

    const busy::BusyLowerBounds bounds =
        busy::busy_lower_bounds(inst.continuous);
    int ran = 0;
    for (const Solution& sol : registry.run_applicable(inst)) {
      if (!sol.ok) continue;
      ++ran;
      EXPECT_TRUE(sol.feasible) << sol.solver << ": " << sol.message;
      if (sol.preemptive.has_value()) continue;
      EXPECT_GE(sol.cost, bounds.best() - kEps)
          << sol.solver << " beat the busy-time lower bound";
    }
    EXPECT_GE(ran, 3) << "pipelines + preemptive should all run";
  }
}

TEST_P(RegistryGuarantees, ActiveSolversRespectGuaranteesVsExactAndLp) {
  const core::SolverRegistry& registry = engine::shared_registry();
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 91193ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 9));
    const int g = static_cast<int>(rng.uniform_int(1, 3));
    const ProblemInstance inst = random_slotted_instance(rng, n, g);

    const Solution exact = registry.run("active/exact", inst);
    ASSERT_TRUE(exact.ok && exact.feasible) << exact.message;
    ASSERT_TRUE(exact.exact);
    const double opt = exact.cost;
    if (opt == 0.0) continue;

    for (const Solution& sol : registry.run_applicable(inst)) {
      ASSERT_TRUE(sol.ok) << sol.solver << ": " << sol.message;
      EXPECT_TRUE(sol.feasible) << sol.solver << ": " << sol.message;
      EXPECT_GE(sol.cost, opt - kEps)
          << sol.solver << " beat the exact optimum";
      const core::Solver* solver = registry.find(sol.solver);
      ASSERT_NE(solver, nullptr);
      if (solver->guarantee_factor > 0.0) {
        EXPECT_LE(sol.cost, solver->guarantee_factor * opt + kEps)
            << sol.solver << " violates its declared guarantee";
      }
      const double lp = sol.stat("lp_objective", -1.0);
      if (lp >= 0.0) {
        EXPECT_LE(lp, opt + kEps)
            << "LP relaxation above the integral optimum";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryGuarantees, ::testing::Range(1, 5));

TEST(Registry, InfeasibleActiveInstanceIsReportedNotCrashed) {
  // Two rigid 2-slot jobs in the same 2 slots, capacity 1: flow-infeasible.
  const core::SlottedInstance infeasible({{0, 2, 2}, {0, 2, 2}}, 1);
  const ProblemInstance inst = core::make_instance(infeasible);
  for (const Solution& sol : engine::shared_registry().run_applicable(inst)) {
    EXPECT_FALSE(sol.ok) << sol.solver;
    EXPECT_FALSE(sol.message.empty()) << sol.solver;
  }
}

TEST(Runner, ReportCarriesLowerBoundAndWriters) {
  engine::ScenarioSpec spec;
  spec.name = "interval";
  spec.n = 10;
  spec.g = 3;
  spec.seed = 11;
  const auto inst = engine::make_scenario(spec);
  ASSERT_TRUE(inst.has_value());

  const engine::RunReport report =
      engine::run_instance(engine::shared_registry(), *inst);
  ASSERT_FALSE(report.solutions.empty());
  EXPECT_GT(report.lower_bound.value, 0.0);
  EXPECT_EQ(report.lower_bound.kind, "exact");  // n=10 is inside the oracle.
  for (const Solution& sol : report.solutions) {
    if (sol.ok && !sol.preemptive.has_value()) {
      EXPECT_GE(sol.cost, report.lower_bound.value - kEps) << sol.solver;
    }
  }

  std::ostringstream table;
  engine::print_report(table, report);
  EXPECT_NE(table.str().find("busy/greedy-tracking"), std::string::npos);

  std::ostringstream csv;
  engine::write_csv(csv, report);
  EXPECT_NE(csv.str().find("solver,cost"), std::string::npos);

  std::ostringstream json;
  engine::write_json(json, report);
  EXPECT_NE(json.str().find("\"solutions\""), std::string::npos);
  EXPECT_NE(json.str().find("\"lower_bound\""), std::string::npos);
  EXPECT_NE(json.str().find("\"feasible\": true"), std::string::npos);
}

TEST(Runner, SolverSubsetSelectionIsHonored) {
  engine::ScenarioSpec spec;
  spec.name = "slotted";
  spec.n = 6;
  spec.g = 2;
  spec.seed = 3;
  const auto inst = engine::make_scenario(spec);
  ASSERT_TRUE(inst.has_value());

  engine::RunOptions options;
  options.solvers = {"active/lp-rounding", "active/minimal-feasible"};
  const engine::RunReport report =
      engine::run_instance(engine::shared_registry(), *inst, options);
  ASSERT_EQ(report.solutions.size(), 2u);
  EXPECT_EQ(report.solutions[0].solver, "active/minimal-feasible");
  EXPECT_EQ(report.solutions[1].solver, "active/lp-rounding");

  // An explicitly requested solver that cannot run still gets a (declined)
  // row — never a silent drop.
  options.solvers = {"busy/first-fit", "active/lp-rounding"};
  const engine::RunReport mixed =
      engine::run_instance(engine::shared_registry(), *inst, options);
  ASSERT_EQ(mixed.solutions.size(), 2u);
  EXPECT_EQ(mixed.solutions[0].solver, "busy/first-fit");
  EXPECT_FALSE(mixed.solutions[0].ok);
  EXPECT_FALSE(mixed.solutions[0].message.empty());
  EXPECT_TRUE(mixed.solutions[1].ok);

  // Unknown requested names surface as refusal rows, never a silent drop.
  options.solvers = {"active/no-such-solver"};
  const engine::RunReport unknown =
      engine::run_instance(engine::shared_registry(), *inst, options);
  ASSERT_EQ(unknown.solutions.size(), 1u);
  EXPECT_FALSE(unknown.solutions[0].ok);
  EXPECT_EQ(unknown.solutions[0].message, "unknown solver");
}

TEST(Registry, DpUnboundedReportsInternStats) {
  core::Rng rng(5);
  gen::ContinuousParams params;
  params.num_jobs = 8;
  params.capacity = 8;  // g >= n: the g=inf freeze always fits.
  params.horizon = 12.0;
  params.max_slack = 1.0;
  const ProblemInstance inst =
      core::make_instance(gen::random_continuous(rng, params));
  const Solution sol =
      engine::shared_registry().run("busy/dp-unbounded", inst);
  ASSERT_TRUE(sol.ok) << sol.message;
  EXPECT_TRUE(sol.feasible) << sol.message;
  EXPECT_TRUE(sol.exact);
  EXPECT_GT(sol.stat("dp_states"), 0.0);
  EXPECT_GT(sol.stat("dp_interned"), 0.0);
  // Hash-consing only pays when states share pending sets.
  EXPECT_LE(sol.stat("dp_interned"), sol.stat("dp_states"));
}

}  // namespace
}  // namespace abt
