#include "test_util.hpp"

#include <cmath>

#include "active/feasibility.hpp"
#include "core/assert.hpp"
#include "core/interval.hpp"

namespace abt::testutil {

long brute_force_active_opt(const core::SlottedInstance& inst) {
  const std::vector<core::SlotTime> candidates =
      abt::active::candidate_slots(inst);
  const std::size_t m = candidates.size();
  ABT_ASSERT(m <= 22, "brute force limited to 22 candidate slots");
  long best = -1;
  for (std::uint64_t mask = 0; mask < (1ULL << m); ++mask) {
    const int bits = __builtin_popcountll(mask);
    if (best >= 0 && bits >= best) continue;
    std::vector<core::SlotTime> open;
    for (std::size_t i = 0; i < m; ++i) {
      if ((mask >> i) & 1ULL) open.push_back(candidates[i]);
    }
    if (abt::active::is_feasible_with_slots(inst, open)) best = bits;
  }
  return best;
}

namespace {

void enumerate_starts(const core::ContinuousInstance& inst, std::size_t index,
                      std::vector<core::Interval>& runs, double& best) {
  if (index == static_cast<std::size_t>(inst.size())) {
    best = std::min(best, core::span_of(runs));
    return;
  }
  const core::ContinuousJob& job = inst.job(static_cast<core::JobId>(index));
  const auto lo = static_cast<long>(std::llround(job.release));
  const auto hi = static_cast<long>(std::llround(job.latest_start()));
  for (long s = lo; s <= hi; ++s) {
    runs.push_back({static_cast<double>(s), static_cast<double>(s) + job.length});
    enumerate_starts(inst, index + 1, runs, best);
    runs.pop_back();
  }
}

}  // namespace

double brute_force_unbounded(const core::ContinuousInstance& inst) {
  ABT_ASSERT(inst.size() <= 7, "brute force limited to 7 jobs");
  std::vector<core::Interval> runs;
  double best = 1e300;
  enumerate_starts(inst, 0, runs, best);
  return best;
}

int max_overlap(const std::vector<core::Interval>& ivs) {
  int best = 0;
  for (const core::Interval& iv : ivs) {
    const double probe = iv.lo;
    int count = 0;
    for (const core::Interval& other : ivs) {
      if (other.lo <= probe && probe < other.hi) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

}  // namespace abt::testutil
