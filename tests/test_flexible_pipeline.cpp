#include "busy/flexible_pipeline.hpp"

#include <gtest/gtest.h>

#include "busy/lower_bounds.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;

TEST(FlexiblePipeline, IntervalInstancePassesThrough) {
  core::Rng rng(17);
  gen::ContinuousParams params;
  params.num_jobs = 10;
  params.capacity = 2;
  const ContinuousInstance inst = gen::random_continuous(rng, params);
  const auto result = schedule_flexible(inst);
  ASSERT_TRUE(result.dp_exact);
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, result.schedule, &why)) << why;
  EXPECT_NEAR(result.opt_infinity, core::span_of(inst.forced_intervals()),
              1e-9);
}

TEST(FlexiblePipeline, StartsComeFromTheDp) {
  const ContinuousInstance inst({{0, 10, 5}, {8, 13, 5}}, 1);
  const auto result = schedule_flexible(inst);
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, result.schedule, &why)) << why;
  EXPECT_NEAR(result.opt_infinity, 8.0, 1e-9);
}

/// Property (section 4.3): the 3-approx pipeline stays within 3x the best
/// lower bound; the profile-charging variants within 4x.
class PipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineSweep, AllVariantsFeasibleAndBounded) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 50021ULL);
  for (int trial = 0; trial < 5; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 10));
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.horizon = 12;
    params.max_slack = 1.5;
    const ContinuousInstance inst = gen::random_continuous(rng, params);

    const BusyLowerBounds lb = busy_lower_bounds(inst);
    const double bound = std::max(lb.mass, lb.span);
    ASSERT_GT(bound, 0.0);

    for (const auto algo :
         {IntervalAlgorithm::kGreedyTracking, IntervalAlgorithm::kTwoTrackPeeling,
          IntervalAlgorithm::kFirstFit, IntervalAlgorithm::kFirstFitByRelease}) {
      const auto result = schedule_flexible(inst, algo);
      ASSERT_TRUE(result.dp_exact);
      std::string why;
      EXPECT_TRUE(core::check_busy_schedule(inst, result.schedule, &why))
          << why;
      const double cost = core::busy_cost(inst, result.schedule);
      EXPECT_GE(cost, bound - 1e-6);
      if (algo == IntervalAlgorithm::kGreedyTracking) {
        // Theorem 5 + exact DP: Sp(B1) <= OPT_inf and the rest <= 2 mass/g.
        EXPECT_LE(cost, result.opt_infinity + 2 * lb.mass + 1e-6)
            << "3-approximation accounting violated";
      } else {
        EXPECT_LE(cost, 4 * std::max(lb.mass, lb.span) + 1e-5)
            << "Theorem 10's factor-4 bound violated";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSweep, ::testing::Range(1, 9));

TEST(FlexiblePipeline, Fig6FamilyStaysWithinThree) {
  const int g = 3;
  const double eps = 0.1;
  const ContinuousInstance inst = gen::fig6_instance(g, eps);
  const auto result = schedule_flexible(inst);
  ASSERT_TRUE(result.dp_exact);
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, result.schedule, &why)) << why;
  const double opt = gen::fig6_optimal_cost(g, eps);
  const double cost = core::busy_cost(inst, result.schedule);
  EXPECT_LE(cost, 3 * opt + 1e-6);
}

}  // namespace
}  // namespace abt::busy
