// Instance I/O v2: write_instance ∘ parse_instance must be the identity
// for ALL FOUR instance kinds (the extended kinds used to be silently
// truncated to their standard-model view), and malformed input must fail
// with line-numbered errors instead of producing a partial instance.
#include <gtest/gtest.h>

#include <sstream>

#include "core/io.hpp"
#include "core/rng.hpp"
#include "engine/adapters.hpp"
#include "gen/extended_instances.hpp"
#include "gen/random_instances.hpp"

namespace abt {
namespace {

using core::ProblemInstance;

ProblemInstance round_trip(const ProblemInstance& inst) {
  std::ostringstream out;
  std::string why;
  EXPECT_TRUE(core::write_instance(out, inst, &why)) << why;
  std::istringstream in(out.str());
  std::string error;
  const auto parsed = core::parse_instance(in, &error);
  EXPECT_TRUE(parsed.has_value()) << error << "\n--- emitted:\n" << out.str();
  return parsed.value_or(ProblemInstance{});
}

// ---------------------------------------------------------------------------
// parse(write(x)) == x, randomized over every kind.

TEST(InstanceIoV2, RoundTripsRandomSlottedInstances) {
  core::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 30));
    params.capacity = static_cast<int>(rng.uniform_int(1, 5));
    const auto original = gen::random_slotted(rng, params);
    const ProblemInstance back = round_trip(core::make_instance(original));
    ASSERT_EQ(back.family, core::Family::kActive);
    ASSERT_EQ(back.kind, core::InstanceKind::kStandard);
    EXPECT_EQ(back.slotted.capacity(), original.capacity());
    EXPECT_EQ(back.slotted.jobs(), original.jobs());
  }
}

TEST(InstanceIoV2, RoundTripsRandomContinuousInstances) {
  core::Rng rng(4243);
  for (int trial = 0; trial < 25; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 30));
    params.capacity = static_cast<int>(rng.uniform_int(1, 5));
    params.max_slack = trial % 2 == 0 ? 0.0 : 1.7;
    const auto original = gen::random_continuous(rng, params);
    const ProblemInstance back = round_trip(core::make_instance(original));
    ASSERT_EQ(back.family, core::Family::kBusy);
    ASSERT_EQ(back.kind, core::InstanceKind::kStandard);
    EXPECT_EQ(back.continuous.capacity(), original.capacity());
    EXPECT_EQ(back.continuous.jobs(), original.jobs())
        << "precision-17 round trip must be exact";
  }
}

TEST(InstanceIoV2, RoundTripsRandomWeightedInstances) {
  core::Rng rng(4244);
  for (int trial = 0; trial < 25; ++trial) {
    gen::WeightedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 20));
    params.capacity = static_cast<int>(rng.uniform_int(1, 6));
    params.max_slack = trial % 2 == 0 ? 0.0 : 1.1;
    const auto original = gen::random_weighted(rng, params);
    const ProblemInstance back =
        round_trip(engine::make_weighted_instance(original));
    ASSERT_EQ(back.family, core::Family::kBusy);
    ASSERT_EQ(back.kind, core::InstanceKind::kWeighted);
    const busy::WeightedInstance& parsed = engine::weighted_of(back);
    EXPECT_EQ(parsed.capacity(), original.capacity());
    EXPECT_EQ(parsed.jobs(), original.jobs())
        << "weights and precision-17 doubles must survive the round trip";
  }
}

TEST(InstanceIoV2, RoundTripsRandomMultiWindowInstances) {
  core::Rng rng(4245);
  for (int trial = 0; trial < 25; ++trial) {
    gen::MultiWindowParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 14));
    params.capacity = static_cast<int>(rng.uniform_int(1, 4));
    const auto original = gen::random_multi_window(rng, params);
    const ProblemInstance back =
        round_trip(engine::make_multi_window_instance(original));
    ASSERT_EQ(back.family, core::Family::kActive);
    ASSERT_EQ(back.kind, core::InstanceKind::kMultiWindow);
    const active::MultiWindowInstance& parsed = engine::multi_window_of(back);
    EXPECT_EQ(parsed.capacity(), original.capacity());
    EXPECT_EQ(parsed.jobs(), original.jobs())
        << "window unions must survive the round trip";
  }
}

// ---------------------------------------------------------------------------
// Extended-model parsing specifics.

TEST(InstanceIoV2, WeightDefaultsToOne) {
  std::istringstream in(
      "model weighted\n"
      "capacity 3\n"
      "job 0 2 2\n"          // no weight line -> width 1
      "job 1 4 3\n"
      "weight 2\n");
  const auto parsed = core::parse_instance(in);
  ASSERT_TRUE(parsed.has_value());
  const busy::WeightedInstance& inst = engine::weighted_of(*parsed);
  EXPECT_EQ(inst.job(0).width, 1);
  EXPECT_EQ(inst.job(1).width, 2);
}

TEST(InstanceIoV2, ParsesMultiWindowUnions) {
  std::istringstream in(
      "model multi-window\n"
      "capacity 2\n"
      "job 3\n"
      "window 0 2\n"
      "window 4 7   # second fragment\n"
      "job 1\n"
      "window 1 2\n");
  const auto parsed = core::parse_instance(in);
  ASSERT_TRUE(parsed.has_value());
  const active::MultiWindowInstance& inst = engine::multi_window_of(*parsed);
  ASSERT_EQ(inst.size(), 2);
  EXPECT_EQ(inst.job(0).windows.size(), 2u);
  EXPECT_EQ(inst.job(0).window_slots(), 5);
  EXPECT_EQ(inst.horizon(), 7);
}

// ---------------------------------------------------------------------------
// Malformed input: line-numbered errors, never a partial instance.

struct MalformedCase {
  const char* text;
  const char* expect_line;     ///< "line N" substring.
  const char* expect_message;  ///< Diagnostic substring.
};

class InstanceIoV2Malformed
    : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(InstanceIoV2Malformed, FailsWithLineNumberedError) {
  std::istringstream in(GetParam().text);
  std::string error;
  EXPECT_FALSE(core::parse_instance(in, &error).has_value());
  EXPECT_NE(error.find(GetParam().expect_line), std::string::npos) << error;
  EXPECT_NE(error.find(GetParam().expect_message), std::string::npos)
      << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InstanceIoV2Malformed,
    ::testing::Values(
        MalformedCase{"model weighted\ncapacity 3\nweight 2\n", "line 3",
                      "weight before any job"},
        MalformedCase{"model weighted\ncapacity 3\njob 0 2 2\nweight 0\n",
                      "line 4", "weight needs a positive integer"},
        MalformedCase{"model weighted\ncapacity 3\njob 0 2\n", "line 3",
                      "job needs: release deadline length"},
        MalformedCase{"model weighted\ncapacity 3\nwindow 0 2\n", "line 3",
                      "unknown directive 'window' in model weighted"},
        // Structural validation happens at end of file: width 5 > g = 3.
        MalformedCase{"model weighted\ncapacity 3\njob 0 2 2\nweight 5\n",
                      "line 5", "width exceeds capacity"},
        MalformedCase{"model multi-window\ncapacity 2\nwindow 0 2\n",
                      "line 3", "window before any job"},
        MalformedCase{"model multi-window\ncapacity 2\njob x\n", "line 3",
                      "job needs: length"},
        MalformedCase{"model multi-window\ncapacity 2\njob 2\nwindow 3\n",
                      "line 4", "window needs: release deadline"},
        // Overlapping windows are a structural error, reported at EOF.
        MalformedCase{
            "model multi-window\ncapacity 2\njob 2\nwindow 0 3\nwindow 2 5\n",
            "line 6", "windows overlap"},
        MalformedCase{"model multi-window\ncapacity 2\njob 4\nwindow 0 2\n",
                      "line 5", "windows too small"},
        MalformedCase{"model weighted\njob 0 2 2\n", "line 3", "capacity"},
        MalformedCase{"model slotted\nmodel weighted\n", "line 2",
                      "duplicate model"},
        MalformedCase{"model slotted\ncapacity 3\njob 0 4 2\ncapacity 2\n",
                      "line 4", "duplicate capacity"},
        MalformedCase{"model teleport\n", "line 1", "unknown model"}));

// The unknown-model diagnostic names the registered extended models, so a
// binary missing the codecs is distinguishable from a typo.
TEST(InstanceIoV2, UnknownModelListsRegisteredModels) {
  std::istringstream in("model teleport\n");
  std::string error;
  EXPECT_FALSE(core::parse_instance(in, &error).has_value());
  EXPECT_NE(error.find("weighted"), std::string::npos) << error;
  EXPECT_NE(error.find("multi-window"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// Fail-loudly contract: an extension without serialization hooks must make
// write_instance return false, never a lossy standard-model emit.

class OpaqueExtension final : public core::InstanceExtension {
 public:
  [[nodiscard]] core::InstanceKind kind() const override {
    return core::InstanceKind::kWeighted;
  }
  [[nodiscard]] int size() const override { return 0; }
  [[nodiscard]] int capacity() const override { return 1; }
  [[nodiscard]] double lower_bound() const override { return 0.0; }
  [[nodiscard]] std::string describe() const override { return "opaque"; }
  // No model_name / write_body overrides: not serializable.
};

TEST(InstanceIoV2, UnserializableExtensionFailsLoudly) {
  const ProblemInstance inst = core::make_instance(
      core::Family::kBusy, std::make_shared<const OpaqueExtension>());
  std::ostringstream out;
  std::string why;
  EXPECT_FALSE(core::write_instance(out, inst, &why));
  EXPECT_TRUE(out.str().empty()) << "must not emit a partial instance";
  EXPECT_NE(why.find("no serialization support"), std::string::npos) << why;
}

}  // namespace
}  // namespace abt
