#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "busy/first_fit.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/naive_baselines.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"
#include "test_util.hpp"

namespace abt::core {
namespace {

std::vector<Interval> random_intervals(Rng& rng, int n, double horizon) {
  std::vector<Interval> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double lo = rng.uniform_real(0.0, horizon);
    const double len = rng.uniform_real(0.1, horizon / 4);
    out.push_back({lo, lo + len});
  }
  return out;
}

TEST(CoverageProfile, EmptyAndDegenerate) {
  const std::vector<Interval> none;
  EXPECT_TRUE(CoverageProfile(none).segments().empty());
  const std::vector<Interval> only_empty = {{2.0, 2.0}, {5.0, 3.0}};
  EXPECT_TRUE(CoverageProfile(only_empty).segments().empty());
  EXPECT_EQ(CoverageProfile(none).max(), 0);
  EXPECT_DOUBLE_EQ(CoverageProfile(none).cost(), 0.0);
}

TEST(CoverageProfile, HandBuiltStepFunction) {
  //   [0,4) and [1,2): counts 1,2,1 over [0,1), [1,2), [2,4).
  const std::vector<Interval> ivs = {{0, 4}, {1, 2}};
  const CoverageProfile profile(ivs);
  ASSERT_EQ(profile.segments().size(), 3u);
  EXPECT_EQ(profile.segments()[0], (CoverageSegment{{0, 1}, 1}));
  EXPECT_EQ(profile.segments()[1], (CoverageSegment{{1, 2}, 2}));
  EXPECT_EQ(profile.segments()[2], (CoverageSegment{{2, 4}, 1}));
  EXPECT_EQ(profile.max(), 2);
  EXPECT_DOUBLE_EQ(profile.cost(), 5.0) << "integral equals total mass";
  EXPECT_EQ(profile.coverage_at(0.5), 1);
  EXPECT_EQ(profile.coverage_at(1.0), 2);
  EXPECT_EQ(profile.coverage_at(2.0), 1) << "half-open: [1,2) closed at 2";
  EXPECT_EQ(profile.coverage_at(4.0), 0);
  EXPECT_EQ(profile.coverage_at(-1.0), 0);
  EXPECT_EQ(profile.max_coverage_in(0.0, 1.0), 1);
  EXPECT_EQ(profile.max_coverage_in(0.0, 4.0), 2);
  EXPECT_EQ(profile.max_coverage_in(2.0, 4.0), 1);
  EXPECT_EQ(profile.max_coverage_in(5.0, 6.0), 0);
  EXPECT_EQ(profile.max_coverage_in(3.0, 3.0), 0) << "empty query range";
}

TEST(CoverageProfile, SkipsZeroCoverageGaps) {
  const std::vector<Interval> ivs = {{0, 1}, {3, 4}};
  const CoverageProfile profile(ivs);
  ASSERT_EQ(profile.segments().size(), 2u);
  EXPECT_EQ(profile.coverage_at(2.0), 0);
  EXPECT_EQ(profile.max_coverage_in(1.0, 3.0), 0);
  EXPECT_EQ(profile.max_coverage_in(1.0, 3.5), 1);
}

/// Property: every segment's count matches the naive midpoint count, the
/// segment boundaries are exactly the event points, and the aggregates
/// match their independent definitions.
TEST(CoverageProfile, MatchesNaiveCoverageOnRandomSets) {
  Rng rng(20140623);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 60));
    const std::vector<Interval> ivs = random_intervals(rng, n, 20.0);
    const CoverageProfile profile(ivs);

    // Reference: the pre-sweep construction, one naive O(n) count per
    // event-point gap.
    const std::vector<RealTime> points = event_points(ivs);
    std::vector<CoverageSegment> expected;
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      const int raw = coverage_at(ivs, points[i], points[i + 1]);
      if (raw > 0) expected.push_back({{points[i], points[i + 1]}, raw});
    }
    EXPECT_EQ(profile.segments(), expected);

    EXPECT_NEAR(profile.cost(), mass_of(ivs), 1e-9);
    EXPECT_EQ(profile.max(), testutil::max_overlap(ivs));

    for (int q = 0; q < 20; ++q) {
      const double t = rng.uniform_real(-1.0, 21.0);
      int naive = 0;
      for (const Interval& iv : ivs) {
        if (iv.contains(t)) ++naive;
      }
      EXPECT_EQ(profile.coverage_at(t), naive) << "t=" << t;
    }
  }
}

TEST(MaxConcurrency, MatchesReferenceSweep) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(0, 40));
    const std::vector<Interval> ivs = random_intervals(rng, n, 10.0);
    EXPECT_EQ(max_concurrency(ivs), testutil::max_overlap(ivs));
  }
  const std::vector<Interval> touching = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(max_concurrency(touching), 1) << "half-open endpoints never meet";
}

/// Reference for OccupancyIndex queries: max coverage over [lo, hi) of a
/// plain interval list, probing every event point inside the range.
int naive_range_max(const std::vector<Interval>& ivs, double lo, double hi) {
  if (hi <= lo) return 0;
  std::vector<double> probes = {lo};
  for (const Interval& iv : ivs) {
    if (iv.lo > lo && iv.lo < hi) probes.push_back(iv.lo);
    if (iv.hi > lo && iv.hi < hi) probes.push_back(iv.hi);
  }
  int best = 0;
  for (double p : probes) {
    int count = 0;
    for (const Interval& iv : ivs) {
      if (iv.contains(p)) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

TEST(OccupancyIndex, EmptyIndexAndEmptyRanges) {
  OccupancyIndex occ;
  EXPECT_EQ(occ.size(), 0);
  EXPECT_EQ(occ.max_coverage_in(0.0, 10.0), 0);
  occ.insert({1.0, 1.0});
  EXPECT_EQ(occ.size(), 0) << "empty intervals are ignored";
  occ.insert({1.0, 3.0});
  EXPECT_EQ(occ.size(), 1);
  EXPECT_EQ(occ.max_coverage_in(2.0, 2.0), 0);
}

TEST(OccupancyIndex, HalfOpenBoundaries) {
  OccupancyIndex occ;
  occ.insert({0.0, 2.0});
  occ.insert({2.0, 4.0});
  EXPECT_EQ(occ.max_coverage_in(0.0, 4.0), 1) << "touching jobs never stack";
  EXPECT_EQ(occ.max_coverage_in(4.0, 9.0), 0) << "query starting at last end";
  occ.insert({1.0, 3.0});
  EXPECT_EQ(occ.max_coverage_in(0.0, 4.0), 2);
  EXPECT_EQ(occ.max_coverage_in(3.0, 4.0), 1);
  EXPECT_EQ(occ.max_coverage_in(1.5, 1.6), 2) << "query inside one step";
}

/// Property: after every insert, range-max queries agree with the naive
/// probe-every-event reference on random ranges.
TEST(OccupancyIndex, MatchesNaiveRangeMaxOnRandomWorkloads) {
  Rng rng(424242);
  for (int trial = 0; trial < 25; ++trial) {
    OccupancyIndex occ;
    std::vector<Interval> inserted;
    const int ops = static_cast<int>(rng.uniform_int(1, 60));
    for (int op = 0; op < ops; ++op) {
      const double lo = rng.uniform_real(0.0, 10.0);
      const Interval iv{lo, lo + rng.uniform_real(0.1, 3.0)};
      occ.insert(iv);
      inserted.push_back(iv);
      for (int q = 0; q < 5; ++q) {
        const double qlo = rng.uniform_real(-1.0, 11.0);
        const double qhi = qlo + rng.uniform_real(0.0, 4.0);
        EXPECT_EQ(occ.max_coverage_in(qlo, qhi),
                  naive_range_max(inserted, qlo, qhi))
            << "range [" << qlo << ", " << qhi << ") after " << op + 1
            << " inserts";
      }
    }
    EXPECT_EQ(occ.size(), static_cast<int>(inserted.size()));
  }
}

// ---------------------------------------------------------------------------
// Equivalence: the sweep-backed algorithms must reproduce the pre-refactor
// quadratic implementations (kept verbatim in busy/naive_baselines.hpp)
// placement-for-placement.

bool same_schedule(const BusySchedule& a, const BusySchedule& b) {
  if (a.placements.size() != b.placements.size()) return false;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    if (a.placements[i].machine != b.placements[i].machine ||
        a.placements[i].start != b.placements[i].start) {
      return false;
    }
  }
  return true;
}

class SweepEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SweepEquivalence, FirstFitIdenticalToNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003ULL);
  for (int trial = 0; trial < 8; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 120));
    params.capacity = static_cast<int>(rng.uniform_int(1, 5));
    params.horizon = params.num_jobs / 2.0 + 10;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    EXPECT_TRUE(
        same_schedule(busy::first_fit(inst), busy::naive::first_fit(inst)));
    std::string why;
    EXPECT_TRUE(check_busy_schedule(inst, busy::first_fit(inst), &why)) << why;
  }
}

TEST_P(SweepEquivalence, GreedyTrackingIdenticalToNaive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919ULL);
  for (int trial = 0; trial < 8; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 120));
    params.capacity = static_cast<int>(rng.uniform_int(1, 5));
    params.horizon = params.num_jobs / 2.0 + 10;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    EXPECT_TRUE(same_schedule(busy::greedy_tracking(inst),
                              busy::naive::greedy_tracking(inst)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepEquivalence, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// MachineFreeIndex: the positional first-fit index.

TEST(MachineFreeIndex, EmptyAndSingle) {
  MachineFreeIndex index;
  EXPECT_EQ(index.first_at_most(100.0), -1);
  EXPECT_EQ(index.push_back(5.0), 0);
  EXPECT_EQ(index.first_at_most(4.9), -1);
  EXPECT_EQ(index.first_at_most(5.0), 0);
}

TEST(MachineFreeIndex, ReturnsSmallestIndexNotSmallestKey) {
  MachineFreeIndex index;
  index.push_back(10.0);
  index.push_back(3.0);
  index.push_back(1.0);
  // Keys 3 and 1 both qualify at x=4; the smaller *index* wins.
  EXPECT_EQ(index.first_at_most(4.0), 1);
  index.set(0, 2.0);
  EXPECT_EQ(index.first_at_most(4.0), 0);
}

TEST(MachineFreeIndex, MatchesLinearScanOnRandomWorkloads) {
  Rng rng(424243);
  MachineFreeIndex index;
  std::vector<double> keys;
  for (int step = 0; step < 400; ++step) {
    if (keys.empty() || rng.flip(0.3)) {
      const double key = rng.uniform_real(0.0, 50.0);
      index.push_back(key);
      keys.push_back(key);
    } else {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(keys.size()) - 1));
      keys[i] = rng.uniform_real(0.0, 50.0);
      index.set(static_cast<int>(i), keys[i]);
    }
    const double x = rng.uniform_real(-5.0, 55.0);
    int expected = -1;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] <= x) {
        expected = static_cast<int>(i);
        break;
      }
    }
    ASSERT_EQ(index.first_at_most(x), expected) << "step " << step;
  }
}

// first_fit_by_release collapses the per-machine probe to a frontier
// coverage counter; placements must still match the plain probing scan.
BusySchedule reference_first_fit_by_release(const ContinuousInstance& inst) {
  std::vector<JobId> order(static_cast<std::size_t>(inst.size()));
  std::iota(order.begin(), order.end(), JobId{0});
  std::stable_sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    return inst.job(a).release < inst.job(b).release;
  });
  BusySchedule sched;
  sched.placements.assign(static_cast<std::size_t>(inst.size()), {});
  std::vector<OccupancyIndex> machines;
  for (JobId j : order) {
    const ContinuousJob& job = inst.job(j);
    const Interval run{job.release, job.release + job.length};
    int chosen = -1;
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m].max_coverage_in(run.lo, run.hi) + 1 <=
          inst.capacity()) {
        chosen = static_cast<int>(m);
        break;
      }
    }
    if (chosen < 0) {
      machines.emplace_back();
      chosen = static_cast<int>(machines.size()) - 1;
    }
    machines[static_cast<std::size_t>(chosen)].insert(run);
    sched.placements[static_cast<std::size_t>(j)] = {chosen, job.release};
  }
  return sched;
}

TEST_P(SweepEquivalence, FirstFitByReleaseIdenticalToProbingScan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729ULL);
  for (int trial = 0; trial < 8; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 120));
    params.capacity = static_cast<int>(rng.uniform_int(1, 5));
    params.horizon = params.num_jobs / 2.0 + 10;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    EXPECT_TRUE(same_schedule(busy::first_fit_by_release(inst),
                              reference_first_fit_by_release(inst)));
    std::string why;
    EXPECT_TRUE(
        check_busy_schedule(inst, busy::first_fit_by_release(inst), &why))
        << why;
  }
}

}  // namespace
}  // namespace abt::core
