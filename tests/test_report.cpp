#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace abt::report {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t({"g", "ratio"});
  t.add_row({"2", "1.500"});
  t.add_row({"16", "2.875"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("ratio"), std::string::npos);
  EXPECT_NE(out.find("2.875"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesQuotesAndCommas) {
  Table t({"name", "value"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "name,value\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 3), "2.000");
}

TEST(RatioStats, TracksMeanMinMax) {
  RatioStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_EQ(s.count(), 3);
}

TEST(RatioStats, EmptyMeanIsZero) {
  RatioStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace abt::report
