// Failure injection: take schedules produced by the real algorithms,
// corrupt them in targeted ways, and require the independent checkers to
// reject every corruption. This guards the guarantee that "checker accepts"
// is a meaningful oracle in all other tests.
#include <gtest/gtest.h>

#include "active/minimal_feasible.hpp"
#include "busy/greedy_tracking.hpp"
#include "core/active_schedule.hpp"
#include "core/busy_schedule.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt {
namespace {

class ActiveFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ActiveFuzz, CorruptedActiveSchedulesAreRejected) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919ULL);
  gen::SlottedParams params;
  params.num_jobs = 8;
  params.horizon = 12;
  params.capacity = 2;
  const auto inst = gen::random_feasible_slotted(rng, params);
  const auto base = active::solve_minimal_feasible(inst);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(core::check_active_schedule(inst, *base));

  // Corruption 1: deactivate an active slot that is in use.
  {
    core::ActiveSchedule bad = *base;
    ASSERT_FALSE(bad.active_slots.empty());
    bad.active_slots.erase(bad.active_slots.begin());
    EXPECT_FALSE(core::check_active_schedule(inst, bad));
  }
  // Corruption 2: drop one unit of some job.
  {
    core::ActiveSchedule bad = *base;
    for (auto& slots : bad.job_slots) {
      if (!slots.empty()) {
        slots.pop_back();
        break;
      }
    }
    EXPECT_FALSE(core::check_active_schedule(inst, bad));
  }
  // Corruption 3: push a unit outside the job's window.
  {
    core::ActiveSchedule bad = *base;
    for (core::JobId j = 0; j < inst.size(); ++j) {
      auto& slots = bad.job_slots[static_cast<std::size_t>(j)];
      if (slots.empty()) continue;
      slots.back() = inst.job(j).deadline + 1;
      std::sort(slots.begin(), slots.end());
      break;
    }
    EXPECT_FALSE(core::check_active_schedule(inst, bad));
  }
  // Corruption 4: duplicate a unit in the same slot.
  {
    core::ActiveSchedule bad = *base;
    for (auto& slots : bad.job_slots) {
      if (!slots.empty()) {
        slots.push_back(slots.back());
        break;
      }
    }
    EXPECT_FALSE(core::check_active_schedule(inst, bad));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActiveFuzz, ::testing::Range(1, 9));

class BusyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BusyFuzz, CorruptedBusySchedulesAreRejected) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729ULL);
  gen::ContinuousParams params;
  params.num_jobs = 12;
  params.capacity = 2;
  params.horizon = 10;
  const auto inst = gen::random_continuous(rng, params);
  const auto base = busy::greedy_tracking(inst);
  ASSERT_TRUE(core::check_busy_schedule(inst, base));

  // Corruption 1: start a job before its release.
  {
    core::BusySchedule bad = base;
    bad.placements[0].start = inst.job(0).release - 0.5;
    EXPECT_FALSE(core::check_busy_schedule(inst, bad));
  }
  // Corruption 2: start a job too late for its deadline.
  {
    core::BusySchedule bad = base;
    bad.placements[0].start = inst.job(0).latest_start() + 0.5;
    EXPECT_FALSE(core::check_busy_schedule(inst, bad));
  }
  // Corruption 3: unassign a job.
  {
    core::BusySchedule bad = base;
    bad.placements[0].machine = -1;
    EXPECT_FALSE(core::check_busy_schedule(inst, bad));
  }
  // Corruption 4: dump every job on machine 0 (overload with capacity 2 is
  // near-certain for 12 random jobs; skip the rare trial where it stays
  // feasible).
  {
    core::BusySchedule bad = base;
    for (auto& p : bad.placements) p.machine = 0;
    std::string why;
    const bool ok = core::check_busy_schedule(inst, bad, &why);
    if (ok) {
      GTEST_SKIP() << "random instance happened to fit one machine";
    }
    EXPECT_NE(why.find("machine 0"), std::string::npos) << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusyFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace abt
