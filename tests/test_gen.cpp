// Generator properties: every family must actually have the structure its
// name promises, deterministically per seed.
#include <gtest/gtest.h>

#include "active/feasibility.hpp"
#include "busy/special_cases.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::gen {
namespace {

TEST(Generators, SlottedRespectsParams) {
  core::Rng rng(1);
  SlottedParams params;
  params.num_jobs = 25;
  params.horizon = 30;
  params.capacity = 3;
  params.max_length = 5;
  params.max_slack = 4;
  const auto inst = random_slotted(rng, params);
  EXPECT_EQ(inst.size(), 25);
  EXPECT_TRUE(inst.structurally_valid());
  for (const auto& j : inst.jobs()) {
    EXPECT_GE(j.release, 0);
    EXPECT_LE(j.deadline, 30);
    EXPECT_LE(j.length, 5);
    EXPECT_LE(j.window_size(), j.length + 4);
  }
}

TEST(Generators, UnitJobsFlagForcesUnitLengths) {
  core::Rng rng(2);
  SlottedParams params;
  params.unit_jobs = true;
  params.num_jobs = 15;
  const auto inst = random_slotted(rng, params);
  for (const auto& j : inst.jobs()) EXPECT_EQ(j.length, 1);
}

TEST(Generators, FeasibleSlottedIsFeasible) {
  core::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 12));
    params.horizon = 10;
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    const auto inst = random_feasible_slotted(rng, params);
    EXPECT_TRUE(abt::active::is_feasible(inst));
  }
}

TEST(Generators, ContinuousSlackZeroGivesIntervalJobs) {
  core::Rng rng(4);
  ContinuousParams params;
  params.num_jobs = 30;
  const auto inst = random_continuous(rng, params);
  EXPECT_TRUE(inst.all_interval_jobs());
  EXPECT_TRUE(inst.structurally_valid());
}

TEST(Generators, ContinuousSlackGivesFlexibleJobs) {
  core::Rng rng(5);
  ContinuousParams params;
  params.num_jobs = 30;
  params.max_slack = 2.0;
  const auto inst = random_continuous(rng, params);
  EXPECT_TRUE(inst.structurally_valid());
  int flexible = 0;
  for (const auto& j : inst.jobs()) {
    if (!j.is_interval_job()) ++flexible;
  }
  EXPECT_GT(flexible, 0);
}

TEST(Generators, CliqueFamilyIsClique) {
  core::Rng rng(6);
  ContinuousParams params;
  params.num_jobs = 20;
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(abt::busy::is_clique_instance(random_clique(rng, params)));
  }
}

TEST(Generators, ProperFamilyIsProper) {
  core::Rng rng(7);
  ContinuousParams params;
  params.num_jobs = 20;
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(abt::busy::is_proper_instance(random_proper(rng, params)));
  }
}

TEST(Generators, ProperCliqueFamilyIsBoth) {
  core::Rng rng(8);
  ContinuousParams params;
  params.num_jobs = 15;
  for (int trial = 0; trial < 5; ++trial) {
    const auto inst = random_proper_clique(rng, params);
    EXPECT_TRUE(abt::busy::is_proper_instance(inst));
    EXPECT_TRUE(abt::busy::is_clique_instance(inst));
  }
}

TEST(Generators, LaminarFamilyIsLaminar) {
  core::Rng rng(9);
  ContinuousParams params;
  params.num_jobs = 18;
  const auto inst = random_laminar(rng, params);
  EXPECT_EQ(inst.size(), 18);
  const auto runs = inst.forced_intervals();
  for (std::size_t a = 0; a < runs.size(); ++a) {
    for (std::size_t b = 0; b < runs.size(); ++b) {
      if (a == b) continue;
      const bool disjoint = !runs[a].overlaps(runs[b]);
      const bool a_in_b =
          runs[a].lo >= runs[b].lo - 1e-9 && runs[a].hi <= runs[b].hi + 1e-9;
      const bool b_in_a =
          runs[b].lo >= runs[a].lo - 1e-9 && runs[b].hi <= runs[a].hi + 1e-9;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "[" << runs[a].lo << "," << runs[a].hi << ") vs [" << runs[b].lo
          << "," << runs[b].hi << ")";
    }
  }
}

TEST(Generators, SameSeedSameInstance) {
  ContinuousParams params;
  params.num_jobs = 10;
  core::Rng r1(123);
  core::Rng r2(123);
  const auto a = random_continuous(r1, params);
  const auto b = random_continuous(r2, params);
  for (int j = 0; j < a.size(); ++j) EXPECT_EQ(a.job(j), b.job(j));
}

}  // namespace
}  // namespace abt::gen
