#include "busy/demand_profile.hpp"

#include <gtest/gtest.h>

#include "busy/exact_busy.hpp"
#include "core/busy_schedule.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;

ContinuousInstance intervals(std::vector<std::pair<double, double>> spans,
                             int g) {
  std::vector<core::ContinuousJob> jobs;
  for (auto [lo, hi] : spans) jobs.push_back({lo, hi, hi - lo});
  return ContinuousInstance(std::move(jobs), g);
}

TEST(DemandProfile, SingleJob) {
  const DemandProfile prof(intervals({{1, 3}}, 2));
  ASSERT_EQ(prof.segments().size(), 1u);
  EXPECT_EQ(prof.segments()[0].raw_demand, 1);
  EXPECT_EQ(prof.segments()[0].demand, 1);
  EXPECT_DOUBLE_EQ(prof.cost(), 2.0);
}

TEST(DemandProfile, StackedJobsRoundUpByCapacity) {
  // Three identical jobs, g = 2: demand ceil(3/2) = 2.
  const DemandProfile prof(intervals({{0, 1}, {0, 1}, {0, 1}}, 2));
  ASSERT_EQ(prof.segments().size(), 1u);
  EXPECT_EQ(prof.segments()[0].raw_demand, 3);
  EXPECT_EQ(prof.segments()[0].demand, 2);
  EXPECT_DOUBLE_EQ(prof.cost(), 2.0);
}

TEST(DemandProfile, GapsProduceNoSegments) {
  const DemandProfile prof(intervals({{0, 1}, {5, 7}}, 1));
  ASSERT_EQ(prof.segments().size(), 2u);
  EXPECT_DOUBLE_EQ(prof.cost(), 3.0);
}

TEST(DemandProfile, StaircaseDemand) {
  // [0,3) one job, [1,3) second, [2,3) third; g=1: cost 1+2+3 = 6.
  const DemandProfile prof(intervals({{0, 3}, {1, 3}, {2, 3}}, 1));
  ASSERT_EQ(prof.segments().size(), 3u);
  EXPECT_EQ(prof.segments()[0].demand, 1);
  EXPECT_EQ(prof.segments()[1].demand, 2);
  EXPECT_EQ(prof.segments()[2].demand, 3);
  EXPECT_DOUBLE_EQ(prof.cost(), 6.0);
}

TEST(DemandProfile, MaxDemandAndRawDemand) {
  const DemandProfile prof(intervals({{0, 2}, {0, 2}, {0, 2}, {1, 2}}, 2));
  EXPECT_EQ(prof.max_raw_demand(), 4);
  EXPECT_EQ(prof.max_demand(), 2);
}

TEST(DemandProfile, PaddingMakesEverySegmentMultipleOfG) {
  core::Rng rng(3);
  gen::ContinuousParams params;
  params.num_jobs = 12;
  params.capacity = 3;
  const ContinuousInstance inst = gen::random_continuous(rng, params);
  int dummies = 0;
  const ContinuousInstance padded = pad_to_capacity_multiple(inst, &dummies);
  EXPECT_GE(dummies, 0);
  const DemandProfile before(inst);
  const DemandProfile after(padded);
  EXPECT_NEAR(before.cost(), after.cost(), 1e-9)
      << "padding must not change the demand profile cost (Appendix A.1)";
  for (const ProfileSegment& seg : after.segments()) {
    EXPECT_EQ(seg.raw_demand % padded.capacity(), 0);
  }
  // Original jobs keep their ids.
  for (int j = 0; j < inst.size(); ++j) {
    EXPECT_EQ(inst.job(j), padded.job(j));
  }
}

/// Property (Observation 4): the profile cost lower-bounds the exact
/// optimum on small interval instances.
class ProfileLowerBound : public ::testing::TestWithParam<int> {};

TEST_P(ProfileLowerBound, ProfileCostBelowExactOptimum) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 555ULL + 1);
  for (int trial = 0; trial < 8; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 8));
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.horizon = 10;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    const auto exact = solve_exact_interval(inst);
    ASSERT_TRUE(exact.has_value());
    const double opt = core::busy_cost(inst, *exact);
    EXPECT_LE(DemandProfile(inst).cost(), opt + 1e-6);
    EXPECT_LE(inst.mass_lower_bound(), opt + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileLowerBound, ::testing::Range(1, 7));

}  // namespace
}  // namespace abt::busy
