#include "busy/weighted.hpp"

#include <gtest/gtest.h>

#include "busy/first_fit.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousJob;

WeightedInstance make(std::vector<std::tuple<double, double, int>> spec,
                      int g) {
  std::vector<WeightedJob> jobs;
  for (const auto& [lo, hi, w] : spec) {
    jobs.push_back({{lo, hi, hi - lo}, w});
  }
  return WeightedInstance(std::move(jobs), g);
}

TEST(Weighted, StructuralValidation) {
  std::string why;
  EXPECT_FALSE(make({{0, 1, 5}}, 4).structurally_valid(&why))
      << "width above g";
  EXPECT_FALSE(make({{0, 1, 0}}, 4).structurally_valid());
  EXPECT_TRUE(make({{0, 1, 4}}, 4).structurally_valid());
}

TEST(Weighted, MassBoundWeighsByWidth) {
  const auto inst = make({{0, 2, 3}, {0, 2, 1}}, 4);
  EXPECT_DOUBLE_EQ(inst.mass_lower_bound(), (3 * 2 + 1 * 2) / 4.0);
  EXPECT_DOUBLE_EQ(inst.span_lower_bound(), 2.0);
}

TEST(Weighted, CheckerEnforcesCumulativeWidth) {
  const auto inst = make({{0, 1, 2}, {0, 1, 2}, {0, 1, 1}}, 4);
  core::BusySchedule sched;
  sched.placements = {{0, 0.0}, {0, 0.0}, {0, 0.0}};
  EXPECT_FALSE(check_weighted_schedule(inst, sched)) << "width 5 > 4";
  sched.placements = {{0, 0.0}, {0, 0.0}, {1, 0.0}};
  std::string why;
  EXPECT_TRUE(check_weighted_schedule(inst, sched, &why)) << why;
}

TEST(Weighted, UnitWidthFirstFitMatchesPlainFirstFit) {
  core::Rng rng(11);
  gen::ContinuousParams params;
  params.num_jobs = 20;
  params.capacity = 3;
  const auto plain = gen::random_continuous(rng, params);
  std::vector<WeightedJob> jobs;
  for (const auto& j : plain.jobs()) jobs.push_back({j, 1});
  const WeightedInstance weighted(std::move(jobs), plain.capacity());

  const double plain_cost = core::busy_cost(plain, first_fit(plain));
  const auto wsched = weighted_first_fit(weighted);
  EXPECT_TRUE(check_weighted_schedule(weighted, wsched));
  EXPECT_NEAR(core::busy_cost(plain, wsched), plain_cost, 1e-9)
      << "width-1 model must reduce to the standard one";
}

TEST(Weighted, WideJobsNeverShareCapacity) {
  // Three overlapping wide jobs (w = 3 of g = 4): three machines.
  const auto inst = make({{0, 2, 3}, {0, 2, 3}, {0, 2, 3}}, 4);
  const auto sched = narrow_wide_split(inst);
  EXPECT_TRUE(check_weighted_schedule(inst, sched));
  EXPECT_EQ(sched.machine_count(), 3);
}

TEST(Weighted, DisjointWideJobsShareAMachine) {
  const auto inst = make({{0, 1, 3}, {2, 3, 3}, {4, 5, 3}}, 4);
  const auto sched = narrow_wide_split(inst);
  EXPECT_TRUE(check_weighted_schedule(inst, sched));
  EXPECT_EQ(sched.machine_count(), 1);
}

TEST(Weighted, NarrowJobsPackByWidth) {
  // Four overlapping narrow jobs of width 2, g = 4: two per machine.
  const auto inst = make({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}}, 4);
  const auto sched = narrow_wide_split(inst);
  EXPECT_TRUE(check_weighted_schedule(inst, sched));
  EXPECT_EQ(sched.machine_count(), 2);
}

TEST(Weighted, ExactBeatsOrMatchesHeuristics) {
  const auto inst =
      make({{0, 2, 2}, {1, 3, 2}, {0, 3, 1}, {2, 4, 3}, {0, 1, 1}}, 4);
  const auto exact = solve_exact_weighted(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(check_weighted_schedule(inst, *exact));
  const double opt = core::busy_cost(inst.unweighted(), *exact);
  const double ff = core::busy_cost(inst.unweighted(), weighted_first_fit(inst));
  const double nw = core::busy_cost(inst.unweighted(), narrow_wide_split(inst));
  EXPECT_LE(opt, ff + 1e-9);
  EXPECT_LE(opt, nw + 1e-9);
  EXPECT_GE(opt, std::max(inst.mass_lower_bound(), 0.0) - 1e-9);
}

/// Property (Khandekar et al. [9]): the narrow/wide split stays within 5x
/// the exact optimum; width-aware FIRSTFIT stays feasible; both respect the
/// weighted lower bounds.
class WeightedRandom : public ::testing::TestWithParam<int> {};

TEST_P(WeightedRandom, FactorsAgainstExactOnSmallInstances) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 35742ULL + 3);
  for (int trial = 0; trial < 8; ++trial) {
    const int g = static_cast<int>(rng.uniform_int(2, 5));
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    std::vector<WeightedJob> jobs;
    for (int i = 0; i < n; ++i) {
      const double len = rng.uniform_real(0.5, 3.0);
      const double lo = rng.uniform_real(0.0, 8.0);
      jobs.push_back({{lo, lo + len, len},
                      static_cast<int>(rng.uniform_int(1, g))});
    }
    const WeightedInstance inst(std::move(jobs), g);
    ASSERT_TRUE(inst.structurally_valid());

    const auto exact = solve_exact_weighted(inst);
    ASSERT_TRUE(exact.has_value());
    const double opt = core::busy_cost(inst.unweighted(), *exact);

    const auto ff = weighted_first_fit(inst);
    const auto nw = narrow_wide_split(inst);
    std::string why;
    EXPECT_TRUE(check_weighted_schedule(inst, ff, &why)) << why;
    EXPECT_TRUE(check_weighted_schedule(inst, nw, &why)) << why;
    EXPECT_LE(core::busy_cost(inst.unweighted(), nw), 5 * opt + 1e-6)
        << "narrow/wide split is 5-approximate";
    EXPECT_GE(core::busy_cost(inst.unweighted(), ff), opt - 1e-6);
    const double lb =
        std::max(inst.mass_lower_bound(), inst.span_lower_bound());
    EXPECT_GE(opt, lb - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedRandom, ::testing::Range(1, 9));

TEST(Weighted, FlexiblePipelineFeasible) {
  core::Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const int g = 4;
    std::vector<WeightedJob> jobs;
    for (int i = 0; i < 10; ++i) {
      const double len = rng.uniform_real(0.5, 2.0);
      const double lo = rng.uniform_real(0.0, 8.0);
      const double slack = rng.uniform_real(0.0, 2.0);
      jobs.push_back({{lo, lo + len + slack, len},
                      static_cast<int>(rng.uniform_int(1, g))});
    }
    const WeightedInstance inst(std::move(jobs), g);
    const auto sched = schedule_weighted_flexible(inst);
    std::string why;
    EXPECT_TRUE(check_weighted_schedule(inst, sched, &why)) << why;
  }
}

}  // namespace
}  // namespace abt::busy
