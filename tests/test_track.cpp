#include "busy/track.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;
using core::JobId;

ContinuousInstance intervals(std::vector<std::pair<double, double>> spans,
                             int g = 1) {
  std::vector<core::ContinuousJob> jobs;
  for (auto [lo, hi] : spans) jobs.push_back({lo, hi, hi - lo});
  return ContinuousInstance(std::move(jobs), g);
}

double track_length(const ContinuousInstance& inst,
                    const std::vector<JobId>& track) {
  double total = 0;
  for (JobId j : track) total += inst.job(j).length;
  return total;
}

bool is_disjoint(const ContinuousInstance& inst,
                 const std::vector<JobId>& track) {
  for (std::size_t a = 0; a < track.size(); ++a) {
    for (std::size_t b = a + 1; b < track.size(); ++b) {
      const auto& ja = inst.job(track[a]);
      const auto& jb = inst.job(track[b]);
      const core::Interval ia{ja.release, ja.release + ja.length};
      const core::Interval ib{jb.release, jb.release + jb.length};
      if (ia.overlaps(ib)) return false;
    }
  }
  return true;
}

TEST(Track, EmptyInput) {
  const auto inst = intervals({});
  EXPECT_TRUE(longest_track(inst, {}).empty());
}

TEST(Track, SingleJob) {
  const auto inst = intervals({{0, 2}});
  const auto track = longest_track(inst, {0});
  EXPECT_EQ(track.size(), 1u);
}

TEST(Track, PicksLongerOfTwoOverlapping) {
  const auto inst = intervals({{0, 2}, {1, 5}});
  const auto track = longest_track(inst, {0, 1});
  ASSERT_EQ(track.size(), 1u);
  EXPECT_EQ(track[0], 1);
}

TEST(Track, ChainsDisjointJobs) {
  const auto inst = intervals({{0, 2}, {2, 4}, {4, 6}});
  const auto track = longest_track(inst, {0, 1, 2});
  EXPECT_EQ(track.size(), 3u) << "touching intervals are compatible";
}

TEST(Track, ClassicWeightedExample) {
  // Jobs: [0,3) w3, [2,5) w3, [4,7) w3: best = {0,2} weight 6.
  const auto inst = intervals({{0, 3}, {2, 5}, {4, 7}});
  const auto track = longest_track(inst, {0, 1, 2});
  EXPECT_DOUBLE_EQ(track_length(inst, track), 6.0);
  EXPECT_TRUE(is_disjoint(inst, track));
}

TEST(Track, RespectsCandidateSubset) {
  const auto inst = intervals({{0, 3}, {2, 5}, {4, 7}});
  const auto track = longest_track(inst, {1});
  ASSERT_EQ(track.size(), 1u);
  EXPECT_EQ(track[0], 1);
}

TEST(Track, CustomWeightsOverrideLengths) {
  // Short middle job with huge weight wins over the two long ones.
  const auto inst = intervals({{0, 3}, {2.5, 3.5}, {3, 6}});
  const auto track = max_weight_track(inst, {0, 1, 2}, {1.0, 100.0, 1.0});
  ASSERT_EQ(track.size(), 1u);
  EXPECT_EQ(track[0], 1);
}

/// Property: DP result matches bitmask brute force on random sets.
class TrackRandom : public ::testing::TestWithParam<int> {};

TEST_P(TrackRandom, MatchesBruteForce) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 99991ULL);
  for (int trial = 0; trial < 25; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 12));
    params.horizon = 15;
    params.max_slack = 0.0;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    std::vector<JobId> all(static_cast<std::size_t>(inst.size()));
    std::iota(all.begin(), all.end(), JobId{0});

    double brute = 0;
    for (std::uint32_t mask = 0; mask < (1U << inst.size()); ++mask) {
      std::vector<JobId> subset;
      for (int j = 0; j < inst.size(); ++j) {
        if ((mask >> j) & 1U) subset.push_back(j);
      }
      if (!is_disjoint(inst, subset)) continue;
      brute = std::max(brute, track_length(inst, subset));
    }
    const auto track = longest_track(inst, all);
    EXPECT_TRUE(is_disjoint(inst, track));
    EXPECT_NEAR(track_length(inst, track), brute, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackRandom, ::testing::Range(1, 7));

}  // namespace
}  // namespace abt::busy
