// Coverage for the assert layer itself (ISSUE 9 satellite): ABT_ASSERT and
// ABT_DBG_ASSERT must die loudly with file:line + the condition text + the
// message, ABT_DBG_ASSERT must vanish entirely (condition unevaluated)
// outside audit builds, and a deliberately corrupted FlatOccupancyIndex
// block maximum must trip audit_invariants() under ABT_AUDIT=ON. Death
// tests fork, so these run identically under the normal and audit builds.

#include <gtest/gtest.h>

#include "core/assert.hpp"
#include "core/interval.hpp"
#include "core/sweep.hpp"

namespace {

using abt::core::FlatOccupancyIndex;
using abt::core::Interval;
using abt::core::kAuditEnabled;

TEST(AbtAssertDeath, ReportsLocationConditionAndMessage) {
  // The abort banner carries this file's name, a line number, the literal
  // condition text and the free-form message — everything needed to act on
  // a production abort without a debugger.
  EXPECT_DEATH(
      ABT_ASSERT(1 + 1 == 3, "arithmetic drifted"),
      "ABT_ASSERT failed at .*test_assert_audit\\.cpp:[0-9]+: "
      "1 \\+ 1 == 3\n  -> arithmetic drifted");
}

TEST(AbtAssertDeath, PassingConditionIsSilent) {
  ABT_ASSERT(2 + 2 == 4, "never printed");
  SUCCEED();
}

TEST(AbtDbgAssertDeath, AuditBuildDiesLikeAbtAssert) {
  if (!kAuditEnabled) GTEST_SKIP() << "needs -DABT_AUDIT=ON";
  EXPECT_DEATH(ABT_DBG_ASSERT(false, "audit tripwire"),
               "ABT_ASSERT failed at .*test_assert_audit\\.cpp:[0-9]+: "
               "false\n  -> audit tripwire");
}

TEST(AbtDbgAssert, ConditionUnevaluatedOutsideAuditBuilds) {
  int evaluations = 0;
  auto probe = [&evaluations]() {
    ++evaluations;
    return true;
  };
  ABT_DBG_ASSERT(probe(), "side-effect probe");
  // Audit builds evaluate the condition (and pass); release builds compile
  // it away via sizeof, so the lambda must never run.
  EXPECT_EQ(evaluations, kAuditEnabled ? 1 : 0);
}

TEST(AuditInvariants, CleanIndexPasses) {
  FlatOccupancyIndex index;
  for (int i = 0; i < 200; ++i) {
    index.insert(Interval{static_cast<double>(i % 17),
                          static_cast<double>(i % 17) + 2.5});
  }
  index.audit_invariants();  // no-op in release, full walk under audit
  SUCCEED();
}

#if defined(ABT_AUDIT) && ABT_AUDIT
TEST(AuditInvariants, CorruptedBlockMaximumTrips) {
  // White-box: smash one block's cached maximum through the test-only hook
  // and insist the audit walk notices. This is the proof the ABT_AUDIT CI
  // job fails on real corruption instead of rubber-stamping.
  FlatOccupancyIndex index;
  for (int i = 0; i < 500; ++i) {
    const double lo = static_cast<double>(i % 97);
    index.insert(Interval{lo, lo + 3.0});
  }
  index.corrupt_block_max_for_test(0, 1 << 20);
  EXPECT_DEATH(index.audit_invariants(), "block max");
}
#endif

}  // namespace
