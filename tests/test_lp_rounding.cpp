#include "active/lp_rounding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "active/exact.hpp"
#include "active/lp_model.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"
#include "test_util.hpp"

namespace abt::active {
namespace {

using core::SlottedInstance;

TEST(ActiveLp, LpLowerBoundsIntegralOptimum) {
  core::Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 6));
    params.horizon = 8;
    params.capacity = 2;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const ActiveTimeLp model(inst);
    const ActiveLpSolution lp = solve_active_lp(model);
    ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
    const long opt = testutil::brute_force_active_opt(inst);
    EXPECT_LE(lp.objective, static_cast<double>(opt) + 1e-6)
        << "LP relaxation must lower-bound OPT";
  }
}

TEST(ActiveLp, GapInstanceLpValueIsGPlusOne) {
  for (int g = 2; g <= 5; ++g) {
    const SlottedInstance inst = gen::lp_gap_instance(g);
    const ActiveTimeLp model(inst);
    const ActiveLpSolution lp = solve_active_lp(model);
    ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
    // Section 3.5: fractional optimum g(1 + 1/g) = g + 1.
    EXPECT_NEAR(lp.objective, g + 1.0, 1e-5);
  }
}

TEST(ActiveLp, GapInstanceIntegralOptimumIsTwoG) {
  for (int g = 2; g <= 3; ++g) {
    const SlottedInstance inst = gen::lp_gap_instance(g);
    const auto exact = solve_exact(inst);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(exact->proven_optimal);
    EXPECT_EQ(exact->schedule.cost(), 2 * g);
  }
}

TEST(LpRounding, InfeasibleReturnsNullopt) {
  const SlottedInstance inst({{0, 1, 1}, {0, 1, 1}}, 1);
  EXPECT_FALSE(solve_lp_rounding(inst).has_value());
}

TEST(LpRounding, RigidInstanceOpensExactlyItsWindow) {
  const SlottedInstance inst({{2, 5, 3}}, 4);
  const auto result = solve_lp_rounding(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->schedule.cost(), 3);
  EXPECT_EQ(result->repair_opens, 0);
}

TEST(LpRounding, GapInstanceStaysWithinTwiceLp) {
  for (int g = 2; g <= 4; ++g) {
    const SlottedInstance inst = gen::lp_gap_instance(g);
    const auto result = solve_lp_rounding(inst);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(static_cast<double>(result->schedule.cost()),
              2.0 * result->lp_objective + 1e-6);
    // Integral OPT is 2g here, so the rounding must hit it exactly (it
    // cannot do better).
    EXPECT_EQ(result->schedule.cost(), 2 * g);
  }
}

TEST(LpRounding, Fig3InstanceWithinTwiceOpt) {
  for (int g = 3; g <= 5; ++g) {
    const SlottedInstance inst = gen::fig3_instance(g);
    const auto result = solve_lp_rounding(inst);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->schedule.cost(), 2 * g)
        << "LP rounding should beat the minimal-feasible worst case";
  }
}

/// Property (Theorem 2): rounding output is feasible, costs <= 2 LP*, and
/// the defensive repair never fires.
class LpRoundingRandom : public ::testing::TestWithParam<int> {};

TEST_P(LpRoundingRandom, FeasibleAndWithinTwiceLpOptimum) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 9176ULL + 3);
  for (int trial = 0; trial < 10; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 9));
    params.horizon = static_cast<core::SlotTime>(rng.uniform_int(6, 14));
    params.capacity = static_cast<int>(rng.uniform_int(1, 4));
    params.max_length = 4;
    params.max_slack = 6;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);

    const auto result = solve_lp_rounding(inst);
    ASSERT_TRUE(result.has_value());
    std::string why;
    EXPECT_TRUE(core::check_active_schedule(inst, result->schedule, &why))
        << why;
    EXPECT_LE(static_cast<double>(result->schedule.cost()),
              2.0 * result->lp_objective + 1e-6)
        << "Theorem 2 bound violated";
    EXPECT_EQ(result->repair_opens, 0)
        << "paper's Lemmas 4-6 guarantee prefix feasibility";
    EXPECT_GE(result->schedule.cost(),
              static_cast<core::SlotTime>(std::ceil(result->lp_objective - 1e-6)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRoundingRandom, ::testing::Range(1, 9));

/// LP rounding never does worse than twice the exact optimum on tiny
/// instances (and is usually much closer).
TEST(LpRounding, WithinTwiceExactOptimum) {
  core::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 6));
    params.horizon = 8;
    params.capacity = 2;
    params.max_length = 3;
    params.max_slack = 4;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const long opt = testutil::brute_force_active_opt(inst);
    const auto result = solve_lp_rounding(inst);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->schedule.cost(), 2 * opt);
    EXPECT_GE(result->schedule.cost(), opt);
  }
}

}  // namespace
}  // namespace abt::active
