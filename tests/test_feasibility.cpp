#include "active/feasibility.hpp"

#include <gtest/gtest.h>

#include "core/active_schedule.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::active {
namespace {

using core::SlottedInstance;
using core::SlottedJob;

TEST(Feasibility, SingleJobNeedsItsWindow) {
  const SlottedInstance inst({{0, 2, 2}}, 1);  // slots 1,2 both needed
  EXPECT_TRUE(is_feasible(inst));
  EXPECT_TRUE(is_feasible_with_slots(inst, {1, 2}));
  EXPECT_FALSE(is_feasible_with_slots(inst, {1}));
  EXPECT_FALSE(is_feasible_with_slots(inst, {}));
}

TEST(Feasibility, CapacityBindsConcurrentJobs) {
  // Three unit jobs all in slot 1, capacity 2: infeasible.
  const SlottedInstance inst({{0, 1, 1}, {0, 1, 1}, {0, 1, 1}}, 2);
  EXPECT_FALSE(is_feasible(inst));
  const SlottedInstance ok({{0, 1, 1}, {0, 1, 1}}, 2);
  EXPECT_TRUE(is_feasible(ok));
}

TEST(Feasibility, SubsetRestrictsToGivenJobs) {
  // Jobs: one impossible (3 units, window 2), one fine.
  const SlottedInstance inst({{0, 2, 2}, {0, 1, 1}}, 1);
  // Full set infeasible with capacity 1 at slot 1..2: total work 3 > 2.
  EXPECT_FALSE(is_feasible(inst));
  const std::vector<core::JobId> only_second = {1};
  EXPECT_TRUE(is_feasible_with_slots(inst, {1, 2}, &only_second));
}

TEST(Feasibility, CancelledFlowIsNeverReportedInfeasible) {
  // This feasible instance must come back kCancelled (not kInfeasible)
  // when the stop predicate trips: an abandoned flow is only a lower
  // bound, so its deficit proves nothing.
  const SlottedInstance inst({{0, 2, 2}, {0, 2, 1}}, 2);
  ASSERT_TRUE(is_feasible(inst));
  EXPECT_EQ(feasibility_with_slots(inst, {1, 2}, [] { return true; }),
            FeasStatus::kCancelled);
  EXPECT_EQ(feasibility_with_slots(inst, {1, 2}, [] { return false; }),
            FeasStatus::kFeasible);
  EXPECT_EQ(feasibility_with_slots(inst, {1}, {}), FeasStatus::kInfeasible);
}

TEST(Feasibility, CancelledExtractionSetsFlagInsteadOfInfeasible) {
  const SlottedInstance inst({{0, 2, 2}}, 1);
  bool cancelled = false;
  const auto sched =
      extract_assignment(inst, {1, 2}, [] { return true; }, &cancelled);
  EXPECT_FALSE(sched.has_value());
  EXPECT_TRUE(cancelled);
  cancelled = true;
  const auto ok = extract_assignment(inst, {1, 2}, {}, &cancelled);
  EXPECT_TRUE(ok.has_value());
  EXPECT_FALSE(cancelled);
}

TEST(Feasibility, ExtractAssignmentIsCheckedFeasible) {
  const SlottedInstance inst({{0, 4, 2}, {1, 3, 2}, {0, 2, 1}}, 2);
  const auto sched = extract_assignment(inst, {1, 2, 3, 4});
  ASSERT_TRUE(sched.has_value());
  std::string why;
  EXPECT_TRUE(core::check_active_schedule(inst, *sched, &why)) << why;
}

TEST(Feasibility, ExtractAssignmentFailsWhenInfeasible) {
  const SlottedInstance inst({{0, 2, 2}, {0, 2, 2}, {0, 2, 2}}, 2);
  EXPECT_FALSE(extract_assignment(inst, {1}).has_value());
}

TEST(Feasibility, CandidateSlotsSkipDeadTime) {
  const SlottedInstance inst({{0, 2, 1}, {5, 7, 1}}, 1);
  const std::vector<core::SlotTime> expected = {1, 2, 6, 7};
  EXPECT_EQ(candidate_slots(inst), expected);
}

TEST(Feasibility, EmptyInstanceIsFeasible) {
  const SlottedInstance inst({}, 1);
  EXPECT_TRUE(is_feasible(inst));
  EXPECT_TRUE(candidate_slots(inst).empty());
}

/// Property: Hall-style sanity — restricting feasible instances to fewer
/// slots never makes them feasible again after they turn infeasible
/// (monotonicity), and extract agrees with is_feasible.
class FeasibilityRandom : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityRandom, ExtractionAgreesWithDecisionAndIsValid) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77ULL + 5);
  for (int trial = 0; trial < 30; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 8));
    params.horizon = 10;
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.max_length = 3;
    params.max_slack = 4;
    const SlottedInstance inst = gen::random_slotted(rng, params);

    std::vector<core::SlotTime> slots = candidate_slots(inst);
    // Random subset of candidate slots.
    std::vector<core::SlotTime> subset;
    for (core::SlotTime t : slots) {
      if (rng.flip(0.7)) subset.push_back(t);
    }
    const bool feasible = is_feasible_with_slots(inst, subset);
    const auto sched = extract_assignment(inst, subset);
    EXPECT_EQ(feasible, sched.has_value());
    if (sched.has_value()) {
      std::string why;
      EXPECT_TRUE(core::check_active_schedule(inst, *sched, &why)) << why;
      // Monotonicity: adding back all slots stays feasible.
      EXPECT_TRUE(is_feasible_with_slots(inst, slots));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibilityRandom, ::testing::Range(1, 9));

}  // namespace
}  // namespace abt::active
