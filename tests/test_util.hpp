#pragma once

#include <algorithm>
#include <vector>

#include "core/continuous_instance.hpp"
#include "core/slotted_instance.hpp"

namespace abt::testutil {

/// Independent reference max-flow: Ford-Fulkerson with BFS on an adjacency
/// matrix. O(V^2) memory; only for tiny graphs.
class RefFlow {
 public:
  explicit RefFlow(int n) : n_(n), cap_(static_cast<std::size_t>(n * n), 0) {}

  void add(int u, int v, long c) {
    cap_[static_cast<std::size_t>(u * n_ + v)] += c;
  }

  long max_flow(int s, int t) {
    long total = 0;
    while (true) {
      std::vector<int> parent(static_cast<std::size_t>(n_), -1);
      parent[static_cast<std::size_t>(s)] = s;
      std::vector<int> queue = {s};
      for (std::size_t qi = 0; qi < queue.size(); ++qi) {
        const int u = queue[qi];
        for (int v = 0; v < n_; ++v) {
          if (parent[static_cast<std::size_t>(v)] < 0 &&
              cap_[static_cast<std::size_t>(u * n_ + v)] > 0) {
            parent[static_cast<std::size_t>(v)] = u;
            queue.push_back(v);
          }
        }
      }
      if (parent[static_cast<std::size_t>(t)] < 0) break;
      long push = 1L << 60;
      for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
        const int u = parent[static_cast<std::size_t>(v)];
        push = std::min(push, cap_[static_cast<std::size_t>(u * n_ + v)]);
      }
      for (int v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
        const int u = parent[static_cast<std::size_t>(v)];
        cap_[static_cast<std::size_t>(u * n_ + v)] -= push;
        cap_[static_cast<std::size_t>(v * n_ + u)] += push;
      }
      total += push;
    }
    return total;
  }

 private:
  int n_;
  std::vector<long> cap_;
};

/// Brute-force optimal active time: smallest k such that some k-subset of
/// candidate slots is feasible. Exponential; keep horizons tiny.
long brute_force_active_opt(const core::SlottedInstance& inst);

/// Brute-force g = infinity busy time for *integer* flexible instances:
/// enumerates every integral start vector and minimizes the union measure.
double brute_force_unbounded(const core::ContinuousInstance& inst);

/// Max concurrency of a set of half-open intervals.
int max_overlap(const std::vector<core::Interval>& ivs);

}  // namespace abt::testutil
