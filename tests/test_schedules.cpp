// Unit tests for the schedule data types and their feasibility checkers —
// these checkers gate every algorithm test, so they get their own coverage.
#include <gtest/gtest.h>

#include "core/active_schedule.hpp"
#include "core/busy_schedule.hpp"

namespace abt::core {
namespace {

TEST(ActiveScheduleCheck, AcceptsValidSchedule) {
  const SlottedInstance inst({{0, 3, 2}, {0, 2, 1}}, 2);
  ActiveSchedule s;
  s.active_slots = {1, 2};
  s.job_slots = {{1, 2}, {1}};
  std::string why;
  EXPECT_TRUE(check_active_schedule(inst, s, &why)) << why;
  EXPECT_EQ(s.cost(), 2);
  const auto loads = slot_loads(inst, s);
  EXPECT_EQ(loads, (std::vector<int>{2, 1}));
}

TEST(ActiveScheduleCheck, RejectsWrongUnitCount) {
  const SlottedInstance inst({{0, 3, 2}}, 1);
  ActiveSchedule s;
  s.active_slots = {1};
  s.job_slots = {{1}};
  EXPECT_FALSE(check_active_schedule(inst, s));
}

TEST(ActiveScheduleCheck, RejectsInactiveSlotUse) {
  const SlottedInstance inst({{0, 3, 1}}, 1);
  ActiveSchedule s;
  s.active_slots = {2};
  s.job_slots = {{1}};
  EXPECT_FALSE(check_active_schedule(inst, s));
}

TEST(ActiveScheduleCheck, RejectsOutOfWindow) {
  const SlottedInstance inst({{2, 4, 1}}, 1);
  ActiveSchedule s;
  s.active_slots = {1, 3};
  s.job_slots = {{1}};
  EXPECT_FALSE(check_active_schedule(inst, s)) << "slot 1 predates release 2";
}

TEST(ActiveScheduleCheck, RejectsOverCapacity) {
  const SlottedInstance inst({{0, 1, 1}, {0, 1, 1}}, 1);
  ActiveSchedule s;
  s.active_slots = {1};
  s.job_slots = {{1}, {1}};
  EXPECT_FALSE(check_active_schedule(inst, s));
}

TEST(ActiveScheduleCheck, RejectsDuplicateUnitInSlot) {
  const SlottedInstance inst({{0, 4, 2}}, 3);
  ActiveSchedule s;
  s.active_slots = {1};
  s.job_slots = {{1, 1}};
  EXPECT_FALSE(check_active_schedule(inst, s))
      << "at most one unit of a job per slot";
}

TEST(BusyScheduleCheck, AcceptsValidPacking) {
  const ContinuousInstance inst({{0, 1, 1}, {0.5, 1.5, 1}, {0, 1, 1}}, 2);
  BusySchedule s;
  s.placements = {{0, 0.0}, {0, 0.5}, {1, 0.0}};
  std::string why;
  EXPECT_TRUE(check_busy_schedule(inst, s, &why)) << why;
  EXPECT_EQ(s.machine_count(), 2);
  EXPECT_NEAR(busy_cost(inst, s), 1.5 + 1.0, 1e-9);
  EXPECT_NEAR(machine_busy_time(inst, s, 0), 1.5, 1e-9);
}

TEST(BusyScheduleCheck, RejectsCapacityViolation) {
  const ContinuousInstance inst({{0, 1, 1}, {0, 1, 1}, {0, 1, 1}}, 2);
  BusySchedule s;
  s.placements = {{0, 0.0}, {0, 0.0}, {0, 0.0}};
  EXPECT_FALSE(check_busy_schedule(inst, s));
}

TEST(BusyScheduleCheck, RejectsStartBeforeRelease) {
  const ContinuousInstance inst({{1, 3, 1}}, 1);
  BusySchedule s;
  s.placements = {{0, 0.5}};
  EXPECT_FALSE(check_busy_schedule(inst, s));
}

TEST(BusyScheduleCheck, RejectsStartPastLatestStart) {
  const ContinuousInstance inst({{1, 3, 1}}, 1);
  BusySchedule s;
  s.placements = {{0, 2.5}};
  EXPECT_FALSE(check_busy_schedule(inst, s));
}

TEST(BusyScheduleCheck, BackToBackJobsDoNotCollide) {
  const ContinuousInstance inst({{0, 1, 1}, {1, 2, 1}}, 1);
  BusySchedule s;
  s.placements = {{0, 0.0}, {0, 1.0}};
  std::string why;
  EXPECT_TRUE(check_busy_schedule(inst, s, &why))
      << "half-open intervals: " << why;
}

TEST(PreemptiveCheck, AcceptsSplitJob) {
  const ContinuousInstance inst({{0, 10, 3}}, 1);
  PreemptiveBusySchedule s;
  s.pieces = {{{0, {1, 2}}, {0, {5, 7}}}};
  std::string why;
  EXPECT_TRUE(check_preemptive_schedule(inst, s, &why)) << why;
  EXPECT_NEAR(busy_cost(inst, s), 3.0, 1e-9);
}

TEST(PreemptiveCheck, RejectsShortfall) {
  const ContinuousInstance inst({{0, 10, 3}}, 1);
  PreemptiveBusySchedule s;
  s.pieces = {{{0, {1, 2}}}};
  EXPECT_FALSE(check_preemptive_schedule(inst, s));
}

TEST(PreemptiveCheck, RejectsOverlappingPiecesOfOneJob) {
  const ContinuousInstance inst({{0, 10, 4}}, 5);
  PreemptiveBusySchedule s;
  s.pieces = {{{0, {1, 3}}, {1, {2, 4}}}};
  EXPECT_FALSE(check_preemptive_schedule(inst, s))
      << "a job may run on at most one machine at a time";
}

TEST(PreemptiveCheck, RejectsPieceOutsideWindow) {
  const ContinuousInstance inst({{2, 5, 1}}, 1);
  PreemptiveBusySchedule s;
  s.pieces = {{{0, {0, 1}}}};
  EXPECT_FALSE(check_preemptive_schedule(inst, s));
}

TEST(PreemptiveCheck, EnforcesMachineCapacity) {
  const ContinuousInstance inst({{0, 2, 2}, {0, 2, 2}, {0, 2, 2}}, 2);
  PreemptiveBusySchedule s;
  s.pieces = {{{0, {0, 2}}}, {{0, {0, 2}}}, {{0, {0, 2}}}};
  EXPECT_FALSE(check_preemptive_schedule(inst, s));
  s.pieces = {{{0, {0, 2}}}, {{0, {0, 2}}}, {{1, {0, 2}}}};
  std::string why;
  EXPECT_TRUE(check_preemptive_schedule(inst, s, &why)) << why;
}

}  // namespace
}  // namespace abt::core
