#include "busy/online.hpp"

#include <gtest/gtest.h>

#include "busy/exact_busy.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/naive_baselines.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;

ContinuousInstance intervals(std::vector<std::pair<double, double>> spans,
                             int g) {
  std::vector<core::ContinuousJob> jobs;
  for (auto [lo, hi] : spans) jobs.push_back({lo, hi, hi - lo});
  return ContinuousInstance(std::move(jobs), g);
}

TEST(Online, AllPoliciesHandleSingleJob) {
  const auto inst = intervals({{0, 2}}, 1);
  for (const auto policy : {OnlinePolicy::kFirstFit, OnlinePolicy::kBestFit,
                            OnlinePolicy::kNextFit}) {
    const auto s = schedule_online(inst, policy);
    std::string why;
    EXPECT_TRUE(core::check_busy_schedule(inst, s, &why)) << why;
    EXPECT_NEAR(core::busy_cost(inst, s), 2.0, 1e-9);
  }
}

TEST(Online, NextFitOpensMoreMachinesThanFirstFit) {
  // Alternating short/long jobs: next-fit loses track of earlier machines.
  const auto inst =
      intervals({{0, 1}, {0, 1}, {2, 3}, {0, 1}, {2, 3}, {2, 3}}, 1);
  const auto ff = schedule_online(inst, OnlinePolicy::kFirstFit);
  const auto nf = schedule_online(inst, OnlinePolicy::kNextFit);
  EXPECT_LE(core::busy_cost(inst, ff), core::busy_cost(inst, nf) + 1e-9);
}

TEST(Online, ProcessesInReleaseOrderNotIdOrder) {
  // Two overlapping long jobs released late, short one first; capacity 1.
  const auto inst = intervals({{5, 8}, {0, 4}, {5, 8}}, 1);
  const auto s = schedule_online(inst, OnlinePolicy::kFirstFit);
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, s, &why)) << why;
  // Job 1 (released 0) shares a machine with one of the late jobs.
  EXPECT_EQ(s.machine_count(), 2);
}

/// Property: every policy yields feasible schedules, and the measured
/// competitive ratio against the exact optimum never exceeds the general
/// deterministic lower-bound territory on these small instances (sanity:
/// always >= 1, finite).
class OnlineRandom : public ::testing::TestWithParam<int> {};

TEST_P(OnlineRandom, FeasibleAndAboveOptimum) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 883ULL);
  for (int trial = 0; trial < 10; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 9));
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.horizon = 12;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    const auto exact = solve_exact_interval(inst);
    const double opt = core::busy_cost(inst, *exact);
    for (const auto policy : {OnlinePolicy::kFirstFit, OnlinePolicy::kBestFit,
                              OnlinePolicy::kNextFit}) {
      const auto s = schedule_online(inst, policy);
      std::string why;
      EXPECT_TRUE(core::check_busy_schedule(inst, s, &why)) << why;
      EXPECT_GE(core::busy_cost(inst, s), opt - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineRandom, ::testing::Range(1, 7));

/// The occupancy-index machines must reproduce the frozen quadratic
/// originals placement-for-placement, for every policy, across sizes well
/// past anything the unit tests above touch.
TEST(Online, MatchesNaiveBaselinePlacementForPlacement) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
    core::Rng rng(seed * 977ULL);
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(50, 400));
    params.capacity = static_cast<int>(rng.uniform_int(1, 5));
    params.horizon = params.num_jobs / 8.0 + 10.0;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    for (const auto policy : {OnlinePolicy::kFirstFit, OnlinePolicy::kBestFit,
                              OnlinePolicy::kNextFit}) {
      const auto fast = schedule_online(inst, policy);
      const auto slow = naive::schedule_online(inst, policy);
      ASSERT_EQ(fast.placements.size(), slow.placements.size());
      for (std::size_t j = 0; j < fast.placements.size(); ++j) {
        EXPECT_EQ(fast.placements[j].machine, slow.placements[j].machine)
            << "job " << j << ", policy " << static_cast<int>(policy);
        EXPECT_EQ(fast.placements[j].start, slow.placements[j].start);
      }
    }
  }
}

}  // namespace
}  // namespace abt::busy
