// abtd service tests: protocol framing and payload parsing (line-numbered
// errors over the whole payload), canonical cache keys, and the live
// daemon behaviours the PR's acceptance criteria name — bit-identical
// cache replay, admission-control budget shrink with anytime gap rows,
// concurrent-client determinism for exact solvers, and the cancel verb
// reaching an in-flight solve.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/io.hpp"
#include "core/rng.hpp"
#include "engine/adapters.hpp"
#include "engine/builtin_solvers.hpp"
#include "gen/extended_instances.hpp"
#include "gen/random_instances.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace abt {
namespace {

using service::Frame;
using service::FrameType;
using service::SolveRequest;

core::ProblemInstance weighted_instance(int n, std::uint64_t seed,
                                        double slack = 0.0) {
  core::Rng rng(seed);
  gen::WeightedParams params;
  params.num_jobs = n;
  params.capacity = 4;
  params.max_slack = slack;
  return engine::make_weighted_instance(gen::random_weighted(rng, params));
}

std::string canonical_of(const core::ProblemInstance& inst) {
  std::ostringstream os;
  std::string why;
  EXPECT_TRUE(core::write_instance(os, inst, &why)) << why;
  return os.str();
}

Frame solve_frame(const SolveRequest& request) {
  Frame frame;
  frame.type = request.race ? FrameType::kRace : FrameType::kSolve;
  std::ostringstream os;
  std::string error;
  EXPECT_TRUE(service::write_solve_payload(os, request, &error)) << error;
  frame.payload = os.str();
  return frame;
}

/// Extracts the first `"key": <number>` occurrence, "" when absent.
std::string json_number_after(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto at = text.find(needle);
  if (at == std::string::npos) return "";
  auto end = at + needle.size();
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n') {
    ++end;
  }
  return text.substr(at + needle.size(), end - at - needle.size());
}

// ---------------------------------------------------------------------------
// Frame codec.

TEST(ServiceProtocol, FramesRoundTripOverAStream) {
  Frame frame;
  frame.type = FrameType::kOk;
  frame.flags = {{"exit", "0"}, {"cached", "1"}};
  frame.payload = "{\"hello\": 1}\n";

  std::stringstream wire;
  service::write_frame(wire, frame);
  Frame progress;
  progress.type = FrameType::kProgress;
  progress.payload = "{\"cost\": 3}\n";
  service::write_frame(wire, progress);

  Frame back;
  std::string error;
  ASSERT_TRUE(service::read_frame(wire, &back, &error)) << error;
  EXPECT_EQ(back.type, FrameType::kOk);
  EXPECT_EQ(back.flag("exit"), "0");
  EXPECT_TRUE(back.has_flag("cached"));
  EXPECT_EQ(back.payload, frame.payload);
  ASSERT_TRUE(service::read_frame(wire, &back, &error)) << error;
  EXPECT_EQ(back.type, FrameType::kProgress);

  // Clean EOF at a frame boundary: false with an EMPTY error.
  error = "sentinel";
  EXPECT_FALSE(service::read_frame(wire, &back, &error));
  EXPECT_TRUE(error.empty()) << error;
}

TEST(ServiceProtocol, HeaderRejectsMalformedLines) {
  FrameType type;
  std::size_t bytes = 0;
  std::vector<std::pair<std::string, std::string>> flags;
  std::string error;
  const auto rejects = [&](const std::string& line) {
    return !service::parse_frame_header(line, &type, &bytes, &flags, &error);
  };
  EXPECT_TRUE(rejects("abtX solve 0"));
  EXPECT_TRUE(rejects("abt1 bogus 0"));
  EXPECT_TRUE(rejects("abt1 solve"));
  EXPECT_TRUE(rejects("abt1 solve -1"));
  EXPECT_TRUE(rejects("abt1 solve nope"));
  EXPECT_TRUE(rejects("abt1 solve 0 ="));
  EXPECT_TRUE(rejects("abt1 solve 99999999999999999999"));
  EXPECT_FALSE(rejects("abt1 solve 12 exit=0"));
  EXPECT_EQ(type, FrameType::kSolve);
  EXPECT_EQ(bytes, 12u);
  ASSERT_EQ(flags.size(), 1u);
  EXPECT_EQ(flags[0].first, "exit");
}

// ---------------------------------------------------------------------------
// Solve payload: round trip per instance kind.

void expect_payload_round_trip(const core::ProblemInstance& inst) {
  SolveRequest request;
  request.id = "req-1";
  request.solvers = {"busy/first-fit", "busy/weighted-exact"};
  request.budget_ms = 125.5;
  request.accept_gap = 0.02;
  request.progress = 3;
  request.format = "csv";
  request.instance = inst;

  std::ostringstream os;
  std::string error;
  ASSERT_TRUE(service::write_solve_payload(os, request, &error)) << error;
  SolveRequest back;
  ASSERT_TRUE(service::parse_solve_payload(os.str(), &back, &error))
      << error << "\n--- payload:\n"
      << os.str();
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.solvers, request.solvers);
  EXPECT_EQ(back.budget_ms, request.budget_ms);
  EXPECT_EQ(back.accept_gap, request.accept_gap);
  EXPECT_EQ(back.progress, request.progress);
  EXPECT_EQ(back.format, request.format);
  EXPECT_EQ(back.canonical, canonical_of(inst));
  EXPECT_EQ(back.instance.kind, inst.kind);
  EXPECT_EQ(back.instance.family, inst.family);
}

TEST(ServiceProtocol, SolvePayloadRoundTripsEveryInstanceKind) {
  core::Rng rng(77);
  {
    gen::SlottedParams params;
    params.num_jobs = 9;
    params.capacity = 3;
    expect_payload_round_trip(
        core::make_instance(gen::random_slotted(rng, params)));
  }
  {
    gen::ContinuousParams params;
    params.num_jobs = 11;
    params.capacity = 2;
    params.max_slack = 1.3;
    expect_payload_round_trip(
        core::make_instance(gen::random_continuous(rng, params)));
  }
  expect_payload_round_trip(weighted_instance(10, 5, 0.8));
  {
    gen::MultiWindowParams params;
    params.num_jobs = 8;
    params.capacity = 3;
    expect_payload_round_trip(engine::make_multi_window_instance(
        gen::random_multi_window(rng, params)));
  }
}

// ---------------------------------------------------------------------------
// Malformed payloads: every diagnostic is line-numbered over the WHOLE
// payload, instance lines included.

TEST(ServiceProtocol, MalformedPayloadsAreLineNumbered) {
  struct Case {
    const char* payload;
    const char* line_prefix;  ///< Expected "line N:" prefix.
    const char* mentions;     ///< Substring the diagnostic must carry.
  };
  const Case cases[] = {
      {"bogus 1\n", "line 1:", "unknown request directive"},
      {"id\n", "line 1:", "id needs a token"},
      {"id a\nid b\n", "line 2:", "duplicate id"},
      {"budget-ms nope\n", "line 1:", "budget-ms"},
      {"budget-ms -5\n", "line 1:", "non-negative"},
      {"accept-gap x\n", "line 1:", "accept-gap"},
      {"progress -1\n", "line 1:", "progress"},
      {"format yaml\n", "line 1:", "format"},
      {"solvers\n", "line 1:", "at least one"},
      {"id a b\n", "line 1:", "trailing tokens"},
      {"instance extra\n", "line 1:", "takes no arguments"},
      {"id a\nformat json\n", "line 3:", "missing instance"},
      {"", "line 1:", "missing instance"},
      // Instance parse errors are re-numbered over the whole payload:
      // the bad model line is payload line 3.
      {"id a\ninstance\nmodel bogus\n", "line 3:", ""},
      // ... and a bad job line deeper into the instance text keeps its
      // offset: payload line 5.
      {"id a\ninstance\nmodel continuous\ncapacity 2\njob 1 2\n", "line 5:",
       ""},
  };
  for (const Case& c : cases) {
    SolveRequest out;
    std::string error;
    EXPECT_FALSE(service::parse_solve_payload(c.payload, &out, &error))
        << c.payload;
    EXPECT_EQ(error.rfind(c.line_prefix, 0), 0u)
        << "payload <" << c.payload << "> produced: " << error;
    EXPECT_NE(error.find(c.mentions), std::string::npos)
        << "payload <" << c.payload << "> produced: " << error;
  }
}

// ---------------------------------------------------------------------------
// Cache keys: spelling-insensitive, parameter-sensitive.

TEST(ServiceProtocol, CacheKeyCanonicalizesTextualSpellings) {
  const core::ProblemInstance inst = weighted_instance(10, 5);
  const std::string canonical = canonical_of(inst);

  // The same request spelled three different ways: comments, blank
  // lines, scientific notation, a different id and progress count.
  const std::string spelling_a =
      "id first\nsolvers busy/weighted-exact\nbudget-ms 200\n"
      "format json\ninstance\n" + canonical;
  const std::string spelling_b =
      "# a comment\n\nid second\nprogress 7\n"
      "solvers busy/weighted-exact\nbudget-ms 2e2\n"
      "format json\ninstance\n# another comment\n" + canonical;
  SolveRequest a, b;
  std::string error;
  ASSERT_TRUE(service::parse_solve_payload(spelling_a, &a, &error)) << error;
  ASSERT_TRUE(service::parse_solve_payload(spelling_b, &b, &error)) << error;
  EXPECT_EQ(service::cache_key(a), service::cache_key(b));

  // Changing any response-relevant parameter changes the key.
  SolveRequest c = a;
  c.budget_ms = 300.0;
  EXPECT_NE(service::cache_key(a), service::cache_key(c));
  SolveRequest d = a;
  d.race = true;
  EXPECT_NE(service::cache_key(a), service::cache_key(d));
  SolveRequest e = a;
  e.format = "csv";
  EXPECT_NE(service::cache_key(a), service::cache_key(e));
  SolveRequest f = a;
  f.solvers = {"busy/weighted-first-fit"};
  EXPECT_NE(service::cache_key(a), service::cache_key(f));
}

// ---------------------------------------------------------------------------
// Live daemon behaviours (loopback TCP on an ephemeral port).

class ServiceFixture : public ::testing::Test {
 protected:
  void start(service::ServiceConfig config) {
    config.tcp_port = 0;  // ephemeral loopback listener
    server_ = std::make_unique<service::Server>(engine::shared_registry(),
                                                std::move(config));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    address_ = server_->address();
  }

  void TearDown() override {
    if (server_) server_->stop();
  }

  service::Exchange roundtrip(const Frame& frame) {
    std::string error;
    auto exchange = service::client_roundtrip(address_, frame, &error);
    EXPECT_TRUE(exchange.has_value()) << error;
    return exchange.value_or(service::Exchange{});
  }

  /// Polls the stats verb until `in_flight` (which counts the stats
  /// request itself) reaches `want`, i.e. want-1 solves are executing.
  bool wait_for_in_flight(int want) {
    for (int i = 0; i < 500; ++i) {
      Frame stats;
      stats.type = FrameType::kStats;
      const service::Exchange exchange = roundtrip(stats);
      const std::string depth =
          json_number_after(exchange.final.payload, "in_flight");
      if (!depth.empty() && std::stoi(depth) >= want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  std::unique_ptr<service::Server> server_;
  service::Address address_;
};

TEST_F(ServiceFixture, SolveIsServedThenReplayedBitIdenticallyFromCache) {
  start({});
  SolveRequest request;
  request.solvers = {"busy/weighted-first-fit"};
  request.instance = weighted_instance(12, 3);
  const Frame frame = solve_frame(request);

  const service::Exchange first = roundtrip(frame);
  ASSERT_EQ(first.final.type, FrameType::kOk) << first.final.payload;
  EXPECT_EQ(first.final.flag("exit"), "0");
  EXPECT_FALSE(first.final.has_flag("cached"));
  EXPECT_NE(first.final.payload.find("\"solver\": \"busy/weighted-first-fit\""),
            std::string::npos)
      << first.final.payload;

  const service::Exchange second = roundtrip(frame);
  ASSERT_EQ(second.final.type, FrameType::kOk);
  EXPECT_TRUE(second.final.has_flag("cached"));
  EXPECT_EQ(second.final.flag("exit"), "0");
  // The acceptance criterion: byte-for-byte identical payloads.
  EXPECT_EQ(first.final.payload, second.final.payload);

  Frame stats;
  stats.type = FrameType::kStats;
  const service::Exchange after = roundtrip(stats);
  EXPECT_NE(after.final.payload.find("\"hits\": 1"), std::string::npos)
      << after.final.payload;
}

TEST_F(ServiceFixture, OverloadShrinksBudgetAndKeepsAnytimeGapRows) {
  service::ServiceConfig config;
  config.dispatchers = 2;
  config.threads = 1;
  config.queue_soft = 0;  // any in-flight load shrinks the next request
  config.queue_cap = 2;
  config.min_budget_factor = 0.25;
  start(config);

  // Occupy one dispatcher with a long-budget exact solve.
  SolveRequest victim;
  victim.id = "victim";
  victim.solvers = {"busy/weighted-exact"};
  victim.budget_ms = 60000.0;
  victim.instance = weighted_instance(26, 11);
  const Frame victim_frame = solve_frame(victim);
  std::thread occupant([&] {
    std::string error;
    (void)service::client_roundtrip(address_, victim_frame, &error);
  });
  ASSERT_TRUE(wait_for_in_flight(2));

  // The next request is admitted with a shrunk budget: the victim alone
  // gives load = 1 over a soft limit of 0 with cap 2, factor 1 - 1/2 =
  // 0.5 (100 ms). The wait_for_in_flight stats connection may still be
  // counted at the accept instant, making load = 2 and flooring the
  // factor at 0.25 (50 ms) — both are correct admission outcomes.
  SolveRequest squeezed;
  squeezed.solvers = {"busy/weighted-exact"};
  squeezed.budget_ms = 200.0;
  squeezed.instance = weighted_instance(26, 12);
  const service::Exchange exchange = roundtrip(solve_frame(squeezed));
  ASSERT_EQ(exchange.final.type, FrameType::kOk) << exchange.final.payload;
  const std::string granted = exchange.final.flag("budget-ms");
  ASSERT_FALSE(granted.empty()) << "expected a shrunk-budget flag";
  EXPECT_LT(std::stod(granted), squeezed.budget_ms);
  EXPECT_TRUE(std::stod(granted) == 100.0 || std::stod(granted) == 50.0)
      << "budget-ms flag: " << granted;
  // The response rows are anytime incumbents with a certified gap.
  EXPECT_NE(exchange.final.payload.find("\"timed_out\": true"),
            std::string::npos)
      << exchange.final.payload;
  EXPECT_NE(exchange.final.payload.find("\"gap\": "), std::string::npos)
      << exchange.final.payload;
  // Shrunk responses are never inserted into the cache.
  const service::Exchange again = roundtrip(solve_frame(squeezed));
  EXPECT_FALSE(again.final.has_flag("cached"));

  // Free the occupied dispatcher.
  Frame cancel;
  cancel.type = FrameType::kCancel;
  cancel.payload = "id victim\n";
  const service::Exchange cancelled = roundtrip(cancel);
  EXPECT_NE(cancelled.final.payload.find("\"cancelled\": true"),
            std::string::npos)
      << cancelled.final.payload;
  occupant.join();
}

TEST_F(ServiceFixture, ConcurrentClientsGetDeterministicExactAnswers) {
  service::ServiceConfig config;
  config.dispatchers = 4;
  config.threads = 1;
  config.queue_soft = 64;  // never shrink in this test
  config.queue_cap = 64;
  start(config);

  SolveRequest request;
  request.solvers = {"busy/weighted-exact"};
  request.budget_ms = 10000.0;
  request.instance = weighted_instance(10, 21);
  const Frame frame = solve_frame(request);

  constexpr int kClients = 6;
  std::vector<std::string> payloads(kClients);
  std::vector<std::string> exits(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      std::string error;
      auto exchange = service::client_roundtrip(address_, frame, &error);
      ASSERT_TRUE(exchange.has_value()) << error;
      ASSERT_EQ(exchange->final.type, FrameType::kOk)
          << exchange->final.payload;
      payloads[i] = exchange->final.payload;
      exits[i] = exchange->final.flag("exit");
    });
  }
  for (std::thread& t : clients) t.join();

  // Identical requests to exact solvers answer identically: same exit,
  // same proven-optimal cost, regardless of which clients raced the
  // cache and which replayed it.
  const std::string cost = json_number_after(payloads[0], "cost");
  ASSERT_FALSE(cost.empty()) << payloads[0];
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(exits[i], "0");
    EXPECT_EQ(json_number_after(payloads[i], "cost"), cost) << payloads[i];
    EXPECT_NE(payloads[i].find("\"exact\": true"), std::string::npos)
        << payloads[i];
  }
}

TEST_F(ServiceFixture, CancelVerbAbortsAnInFlightSolve) {
  service::ServiceConfig config;
  config.dispatchers = 2;
  config.threads = 1;
  config.queue_soft = 8;
  config.queue_cap = 8;
  start(config);

  SolveRequest victim;
  victim.id = "doomed";
  victim.solvers = {"busy/weighted-exact"};
  victim.budget_ms = 60000.0;
  victim.instance = weighted_instance(26, 31);
  const Frame victim_frame = solve_frame(victim);

  service::Exchange victim_exchange;
  std::thread runner([&] {
    std::string error;
    auto exchange =
        service::client_roundtrip(address_, victim_frame, &error);
    ASSERT_TRUE(exchange.has_value()) << error;
    victim_exchange = std::move(*exchange);
  });
  ASSERT_TRUE(wait_for_in_flight(2));

  // Cancelling a bogus id finds nothing and says so.
  Frame miss;
  miss.type = FrameType::kCancel;
  miss.payload = "id nobody\n";
  EXPECT_NE(roundtrip(miss).final.payload.find("\"cancelled\": false"),
            std::string::npos);

  Frame cancel;
  cancel.type = FrameType::kCancel;
  cancel.payload = "id doomed\n";
  const service::Exchange reply = roundtrip(cancel);
  EXPECT_NE(reply.final.payload.find("\"cancelled\": true"),
            std::string::npos)
      << reply.final.payload;

  // The solve returns promptly with its anytime incumbent instead of
  // burning the rest of its 60 s budget.
  runner.join();
  ASSERT_EQ(victim_exchange.final.type, FrameType::kOk)
      << victim_exchange.final.payload;
  EXPECT_NE(victim_exchange.final.payload.find("\"timed_out\": true"),
            std::string::npos)
      << victim_exchange.final.payload;
}

}  // namespace
}  // namespace abt
