// The trial-sweep engine: the thread pool itself, and the invariant the
// whole design hangs on — aggregated cost/verdict statistics are a pure
// function of (scenario, seeds, solver subset), identical for every worker
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <vector>

#include "engine/builtin_solvers.hpp"
#include "engine/campaign.hpp"
#include "engine/parallel.hpp"
#include "engine/runner.hpp"

namespace abt {
namespace {

using core::Solution;

TEST(Parallel, ResolveThreads) {
  EXPECT_EQ(engine::resolve_threads(1), 1);
  EXPECT_EQ(engine::resolve_threads(7), 7);
  EXPECT_GE(engine::resolve_threads(0), 1);
  EXPECT_GE(engine::resolve_threads(-3), 1);
}

TEST(Parallel, ThreadPoolDrainsEveryBatchAndSurvivesResize) {
  std::atomic<int> done{0};
  {
    engine::ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    pool.parallel_for(100, [&done](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 100);
    // A second batch reuses the same (still parked) workers.
    pool.parallel_for(50, [&done](std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 150);
    // Shrinking joins surplus workers; the survivors keep serving.
    pool.resize(2);
    EXPECT_EQ(pool.thread_count(), 2);
    pool.parallel_for(50, [&done](std::size_t) { done.fetch_add(1); });
    // Regrowing rebinds the parked slots rather than minting new ones.
    pool.resize(4);
    EXPECT_EQ(pool.thread_count(), 4);
    EXPECT_EQ(pool.worker_stats().size(), 4u);
    pool.parallel_for(50, [&done](std::size_t) { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 250);
}

TEST(Parallel, TinyBatchesRunInlineWithCellSemantics) {
  // Satellite fix: batches under the chunk threshold take the serial path
  // WITH begin_cell() per index — identical cell semantics, no pool wakeup.
  const std::size_t before = engine::worker_scratch().cells_served;
  int done = 0;
  engine::parallel_for(
      8, engine::kSerialBatchThreshold - 1,
      [&done](std::size_t) { ++done; });
  EXPECT_EQ(done, static_cast<int>(engine::kSerialBatchThreshold) - 1);
  EXPECT_EQ(engine::worker_scratch().cells_served,
            before + engine::kSerialBatchThreshold - 1)
      << "serial path must run begin_cell() for every index";
}

TEST(Parallel, CancelledBatchDrainsEveryRemainingIndexThroughCallback) {
  core::CancelSource source;
  source.cancel();  // tripped before the batch starts
  std::vector<int> visited(96, 0);
  std::atomic<int> drained{0};
  engine::ParallelOptions options;
  options.cancel = source.token();
  options.on_cancelled = [&](std::size_t i) {
    visited[i] += 1;
    drained.fetch_add(1);
  };
  engine::parallel_for(
      4, visited.size(),
      [&visited](std::size_t i) { visited[i] += 100; }, options);
  for (std::size_t i = 0; i < visited.size(); ++i) {
    EXPECT_EQ(visited[i], 1) << "index " << i
                             << ": drained exactly once, never dispatched";
  }
  EXPECT_EQ(drained.load(), 96);
}

TEST(Parallel, WorkerSlotArenasAreReusedAcrossBatches) {
  // The footprint contract of the persistent pool: per-cell allocations are
  // carved from slot-owned arenas that rewind between cells, so capacity is
  // bounded by the largest single cell — not by how many cells ever ran.
  constexpr std::size_t kCellBytes = std::size_t{32} << 10;
  engine::ThreadPool pool(4);
  const auto run_batch = [&pool] {
    pool.parallel_for(64, [](std::size_t) {
      core::MonotonicArena& arena = core::thread_arena();
      core::ArenaScope scope(arena);
      const std::span<std::byte> bytes =
          arena.alloc<std::byte>(kCellBytes);
      bytes[0] = std::byte{1};  // touch it so the alloc cannot be elided
    });
  };
  for (int i = 0; i < 20; ++i) run_batch();
  const std::vector<engine::WorkerStats> stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::size_t cells = 0;
  std::uint64_t chunks = 0;
  for (const engine::WorkerStats& s : stats) {
    cells += s.cells_served;
    chunks += s.chunks_claimed;
    EXPECT_LE(s.arena_capacity, std::size_t{256} << 10)
        << "slot arena must stay near one cell's worth, not accumulate";
  }
  EXPECT_EQ(cells, 20u * 64u) << "every cell ran on a pool worker slot";
  EXPECT_GT(chunks, 0u);
}

TEST(Parallel, ParallelForVisitsEachIndexExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    engine::parallel_for(threads, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

engine::SweepReport sweep_with_threads(const std::string& scenario, int n,
                                       int g, int trials, int threads) {
  engine::ScenarioSpec spec;
  spec.name = scenario;
  spec.n = n;
  spec.g = g;
  spec.seed = 42;
  spec.slack = 1.2;
  engine::SweepOptions options;
  options.trials = trials;
  options.threads = threads;
  std::string error;
  const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                        options, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

/// The satellite requirement verbatim: same seeds => identical aggregates,
/// --threads 1 vs --threads 8. Wall-clock fields are exempt (they measure
/// the machine, not the algorithms).
TEST(TrialSweep, AggregatesAreDeterministicAcrossThreadCounts) {
  for (const char* scenario : {"interval", "flexible", "weighted"}) {
    const engine::SweepReport one = sweep_with_threads(scenario, 10, 3, 8, 1);
    const engine::SweepReport eight =
        sweep_with_threads(scenario, 10, 3, 8, 8);

    ASSERT_EQ(one.cells.size(), eight.cells.size()) << scenario;
    for (std::size_t t = 0; t < one.cells.size(); ++t) {
      EXPECT_EQ(one.cells[t].lower_bound.value,
                eight.cells[t].lower_bound.value);
      EXPECT_EQ(one.cells[t].lower_bound.kind,
                eight.cells[t].lower_bound.kind);
      ASSERT_EQ(one.cells[t].solutions.size(),
                eight.cells[t].solutions.size());
      for (std::size_t s = 0; s < one.cells[t].solutions.size(); ++s) {
        const Solution& a = one.cells[t].solutions[s];
        const Solution& b = eight.cells[t].solutions[s];
        EXPECT_EQ(a.solver, b.solver);
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.feasible, b.feasible);
        EXPECT_EQ(a.exact, b.exact);
        EXPECT_EQ(a.cost, b.cost) << scenario << " " << a.solver
                                  << ": costs must match bit for bit";
      }
    }

    ASSERT_EQ(one.aggregates.size(), eight.aggregates.size()) << scenario;
    for (std::size_t i = 0; i < one.aggregates.size(); ++i) {
      const engine::SolverAggregate& a = one.aggregates[i];
      const engine::SolverAggregate& b = eight.aggregates[i];
      EXPECT_EQ(a.solver, b.solver);
      EXPECT_EQ(a.runs, b.runs);
      EXPECT_EQ(a.ok, b.ok);
      EXPECT_EQ(a.feasible, b.feasible);
      EXPECT_EQ(a.exact_runs, b.exact_runs);
      EXPECT_EQ(a.declined, b.declined);
      EXPECT_EQ(a.timed_out, b.timed_out);
      EXPECT_EQ(a.runs, a.ok + a.declined) << a.solver;
      EXPECT_EQ(a.ratio_count, b.ratio_count);
      EXPECT_EQ(a.ratio_mean, b.ratio_mean) << scenario << " " << a.solver;
      EXPECT_EQ(a.ratio_median, b.ratio_median);
      EXPECT_EQ(a.ratio_p95, b.ratio_p95);
      EXPECT_EQ(a.ratio_max, b.ratio_max);
    }
  }
}

/// PR 7 steal-order suite: an irregular workload (un-budgeted exact cells
/// costing milliseconds next to greedy cells costing microseconds) is
/// exactly where work stealing reshuffles execution order the most. Any
/// thread count, any steal order, repeated runs — one fingerprint.
TEST(TrialSweep, StealOrderCannotPerturbAggregates) {
  const auto fingerprint = [](const engine::SweepReport& report) {
    std::vector<double> out;
    for (const engine::RunReport& cell : report.cells) {
      out.push_back(cell.lower_bound.value);
      for (const Solution& sol : cell.solutions) {
        out.push_back(sol.cost);
        out.push_back(sol.ok ? 1.0 : 0.0);
        out.push_back(sol.exact ? 1.0 : 0.0);
      }
    }
    for (const engine::SolverAggregate& agg : report.aggregates) {
      out.push_back(agg.ratio_mean);
      out.push_back(agg.ratio_max);
    }
    return out;
  };
  const auto run = [&fingerprint](int threads) {
    engine::ScenarioSpec spec;
    spec.name = "weighted";
    spec.n = 11;  // inside the exact gate: no budget, so cells are exact
    spec.g = 3;
    spec.seed = 29;
    spec.slack = 1.2;
    engine::SweepOptions options;
    options.trials = 10;
    options.threads = threads;
    options.run.solvers = {"busy/weighted-exact", "busy/weighted-flexible"};
    std::string error;
    const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                          options, &error);
    EXPECT_TRUE(report.has_value()) << error;
    return fingerprint(*report);
  };
  const std::vector<double> base = run(1);
  ASSERT_FALSE(base.empty());
  for (const int threads : {1, 2, 8}) {
    // Repeats at one thread count exercise different steal interleavings
    // on the warm pool; across thread counts the partition itself changes.
    const int reps = threads == 8 ? 3 : 1;
    for (int rep = 0; rep < reps; ++rep) {
      EXPECT_EQ(run(threads), base)
          << threads << " threads, repetition " << rep;
    }
  }
}

/// Back-to-back sweeps go through the shared persistent pool: no new
/// worker slots appear, and the warm slots' arena footprint stops growing.
TEST(TrialSweep, BackToBackSweepsReuseTheSharedPool) {
  const auto footprint = [] {
    std::size_t total = 0;
    for (const engine::WorkerStats& s :
         engine::ThreadPool::shared().worker_stats()) {
      total += s.arena_capacity;
    }
    return total;
  };
  const auto cells_served = [] {
    std::size_t total = 0;
    for (const engine::WorkerStats& s :
         engine::ThreadPool::shared().worker_stats()) {
      total += s.cells_served;
    }
    return total;
  };
  // Two warm-up sweeps so every slot has seen this workload's cells.
  sweep_with_threads("interval", 10, 3, 6, 4);
  sweep_with_threads("interval", 10, 3, 6, 4);
  const std::size_t slots = engine::ThreadPool::shared().worker_stats().size();
  EXPECT_GE(slots, 4u);
  const std::size_t warm_footprint = footprint();
  const std::size_t warm_cells = cells_served();
  EXPECT_GT(warm_cells, 0u) << "sweep cells must run on pool worker slots";
  for (int i = 0; i < 3; ++i) sweep_with_threads("interval", 10, 3, 6, 4);
  EXPECT_EQ(engine::ThreadPool::shared().worker_stats().size(), slots)
      << "no new worker slots for a repeat of the same sweep";
  EXPECT_GT(cells_served(), warm_cells);
  EXPECT_LE(footprint(), warm_footprint + (std::size_t{64} << 10))
      << "warm worker arenas must be reused, not regrown per sweep";
}

TEST(TrialSweep, EveryCellIsCheckerValidated) {
  const engine::SweepReport report =
      sweep_with_threads("interval", 10, 3, 6, 4);
  EXPECT_EQ(report.trials, 6);
  int ok_cells = 0;
  for (const engine::RunReport& cell : report.cells) {
    EXPECT_GT(cell.lower_bound.value, 0.0);
    for (const Solution& sol : cell.solutions) {
      if (!sol.ok) continue;
      ++ok_cells;
      EXPECT_TRUE(sol.feasible) << sol.solver << ": " << sol.message;
    }
  }
  EXPECT_GT(ok_cells, 0);
  // Ratios are measured against per-trial lower bounds: never below 1 for
  // non-preemptive solvers, and the aggregate reflects that.
  for (const engine::SolverAggregate& agg : report.aggregates) {
    if (agg.ratio_count == 0 || agg.solver == "busy/preemptive") continue;
    EXPECT_GE(agg.ratio_mean, 1.0 - 1e-9) << agg.solver;
    EXPECT_LE(agg.ratio_median, agg.ratio_p95 + 1e-12) << agg.solver;
    EXPECT_LE(agg.ratio_p95, agg.ratio_max + 1e-12) << agg.solver;
  }
}

TEST(TrialSweep, ExplicitSubsetAndUnknownNamesGetRowsInEveryCell) {
  engine::ScenarioSpec spec;
  spec.name = "slotted";
  spec.n = 8;
  spec.g = 2;
  spec.seed = 5;
  engine::SweepOptions options;
  options.trials = 4;
  options.threads = 2;
  options.run.solvers = {"active/lp-rounding", "active/no-such-solver"};
  std::string error;
  const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                        options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  for (const engine::RunReport& cell : report->cells) {
    ASSERT_EQ(cell.solutions.size(), 2u);
    EXPECT_EQ(cell.solutions[0].solver, "active/lp-rounding");
    EXPECT_EQ(cell.solutions[1].solver, "active/no-such-solver");
    EXPECT_FALSE(cell.solutions[1].ok);
    EXPECT_EQ(cell.solutions[1].message, "unknown solver");
  }
  ASSERT_EQ(report->aggregates.size(), 2u);
  EXPECT_EQ(report->aggregates[1].runs, 4);
  EXPECT_EQ(report->aggregates[1].ok, 0);
}

/// The cancellation contract: a cancelled sweep declines every cell
/// promptly ("cancelled" rows, no solver work), instead of grinding
/// through the remaining grid.
TEST(TrialSweep, CancellationStopsASweepPromptly) {
  core::CancelSource source;
  source.cancel();  // cancelled before any cell runs
  engine::ScenarioSpec spec;
  spec.name = "weighted";
  spec.n = 13;  // inside the exact gate: a full sweep would be seconds
  spec.g = 3;
  spec.seed = 3;
  engine::SweepOptions options;
  options.trials = 8;
  options.threads = 2;
  options.run.cancel = source.token();
  std::string error;
  const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                        options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  for (const engine::RunReport& cell : report->cells) {
    for (const Solution& sol : cell.solutions) {
      EXPECT_FALSE(sol.ok);
      EXPECT_EQ(sol.message, "cancelled");
      EXPECT_TRUE(sol.timed_out);
    }
  }
  for (const engine::SolverAggregate& agg : report->aggregates) {
    EXPECT_EQ(agg.ok, 0) << agg.solver;
    EXPECT_EQ(agg.declined, agg.runs) << agg.solver;
  }
}

/// A budgeted sweep past the measured gate: every weighted-exact cell
/// reports (completed or timed out with an incumbent), none refuses.
TEST(TrialSweep, BudgetedSweepRunsExactPastTheGate) {
  engine::ScenarioSpec spec;
  spec.name = "weighted";
  spec.n = 18;  // past the free-run gate of 14
  spec.g = 3;
  spec.seed = 5;
  engine::SweepOptions options;
  options.trials = 3;
  options.threads = 2;
  options.run.solvers = {"busy/weighted-exact"};
  options.run.budget_ms = 40;
  std::string error;
  const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                        options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->budget_ms, 40.0);
  ASSERT_EQ(report->aggregates.size(), 1u);
  const engine::SolverAggregate& agg = report->aggregates[0];
  EXPECT_EQ(agg.ok, 3);
  EXPECT_EQ(agg.feasible, 3) << "incumbents must pass the checker";
  EXPECT_EQ(agg.declined, 0);
  EXPECT_EQ(agg.exact_runs + agg.timed_out, 3)
      << "every cell either proves optimality or times out";
  for (const engine::RunReport& cell : report->cells) {
    for (const Solution& sol : cell.solutions) {
      ASSERT_TRUE(sol.ok) << sol.message;
      if (sol.timed_out) {
        EXPECT_GT(sol.best_bound, 0.0);
        EXPECT_GE(sol.cost, sol.best_bound - 1e-9);
      }
    }
  }
}

TEST(TrialSweep, UnknownScenarioFailsWithError) {
  engine::ScenarioSpec spec;
  spec.name = "no-such-scenario";
  std::string error;
  EXPECT_FALSE(engine::run_sweep(engine::shared_registry(), spec, {}, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TrialSweep, WritersCarryTheAggregates) {
  const engine::SweepReport report =
      sweep_with_threads("multi-window", 6, 2, 4, 2);

  std::ostringstream table;
  engine::print_sweep(table, report);
  EXPECT_NE(table.str().find("active/multi-window-minimal"),
            std::string::npos);
  EXPECT_NE(table.str().find("4 trials"), std::string::npos);

  std::ostringstream csv;
  engine::write_sweep_csv(csv, report);
  EXPECT_NE(csv.str().find("solver,runs,ok,feasible"), std::string::npos);

  std::ostringstream json;
  engine::write_sweep_json(json, report);
  EXPECT_NE(json.str().find("\"aggregates\""), std::string::npos);
  EXPECT_NE(json.str().find("\"cells\""), std::string::npos);
  EXPECT_NE(json.str().find("\"scenario\": \"multi-window\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Campaigns: a scenario grid through one shared pool.

TEST(Campaign, ExpandGridIsScenarioMajorCrossProduct) {
  engine::CampaignGrid grid;
  grid.scenarios = {"interval", "flexible"};
  grid.ns = {8, 12};
  grid.gs = {2, 3};
  grid.base.seed = 9;
  const auto points = engine::expand_grid(grid);
  ASSERT_EQ(points.size(), 8u);
  EXPECT_EQ(points[0].name, "interval");
  EXPECT_EQ(points[0].n, 8);
  EXPECT_EQ(points[0].g, 2);
  EXPECT_EQ(points[1].g, 3);
  EXPECT_EQ(points[4].name, "flexible");
  for (const engine::ScenarioSpec& spec : points) EXPECT_EQ(spec.seed, 9u);
}

TEST(Campaign, ParseFileFormatAndRejectBadDirectives) {
  std::istringstream good(
      "# tiny grid\n"
      "scenario interval weighted\n"
      "n 8 10\n"
      "g 3\n"
      "trials 2\n"
      "seed 21\n");
  std::string error;
  const auto grid = engine::parse_campaign(good, &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->scenarios.size(), 2u);
  EXPECT_EQ(grid->ns.size(), 2u);
  EXPECT_EQ(grid->trials, 2);
  EXPECT_EQ(grid->base.seed, 21u);
  EXPECT_EQ(engine::expand_grid(*grid).size(), 4u);

  // A CLI-provided base seeds the shared knobs; file directives override.
  engine::ScenarioSpec base;
  base.seed = 99;
  base.slack = 2.5;
  std::istringstream with_base("scenario interval\nseed 3\n");
  const auto seeded = engine::parse_campaign(with_base, &error, base);
  ASSERT_TRUE(seeded.has_value()) << error;
  EXPECT_EQ(seeded->base.seed, 3u) << "file directive wins";
  EXPECT_EQ(seeded->base.slack, 2.5) << "base knob carries when file silent";

  std::istringstream unknown("scenario interval\nbogus 3\n");
  EXPECT_FALSE(engine::parse_campaign(unknown, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::istringstream empty("n 8\n");
  EXPECT_FALSE(engine::parse_campaign(empty, &error).has_value());
}

TEST(Campaign, ExpandGridCrossesSlackAndHorizonAxes) {
  engine::CampaignGrid grid;
  grid.scenarios = {"flexible"};
  grid.ns = {8};
  grid.gs = {3};
  grid.slacks = {0.5, 1.5};
  grid.horizons = {12.0, 18.0};
  const auto points = engine::expand_grid(grid);
  ASSERT_EQ(points.size(), 4u);
  // slack-major over horizon: (0.5,12), (0.5,18), (1.5,12), (1.5,18).
  EXPECT_EQ(points[0].slack, 0.5);
  EXPECT_EQ(points[0].horizon, 12.0);
  EXPECT_EQ(points[1].slack, 0.5);
  EXPECT_EQ(points[1].horizon, 18.0);
  EXPECT_EQ(points[2].slack, 1.5);
  EXPECT_EQ(points[3].horizon, 18.0);

  // Empty axes still borrow the base knobs.
  grid.slacks.clear();
  grid.horizons.clear();
  grid.base.slack = 2.5;
  grid.base.horizon = 7.0;
  const auto borrowed = engine::expand_grid(grid);
  ASSERT_EQ(borrowed.size(), 1u);
  EXPECT_EQ(borrowed[0].slack, 2.5);
  EXPECT_EQ(borrowed[0].horizon, 7.0);
}

TEST(Campaign, ParseSolverSubsetsAndAxisDirectives) {
  std::istringstream good(
      "scenario interval flexible\n"
      "n 8\n"
      "slack 0.5 1.5\n"
      "horizon 12 18\n"
      "solvers busy/first-fit busy/greedy-tracking\n"
      "solvers:flexible busy/greedy-tracking\n");
  std::string error;
  const auto grid = engine::parse_campaign(good, &error);
  ASSERT_TRUE(grid.has_value()) << error;
  EXPECT_EQ(grid->slacks, (std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(grid->horizons, (std::vector<double>{12.0, 18.0}));
  ASSERT_EQ(grid->solvers.size(), 2u);
  EXPECT_EQ(grid->solvers[0], "busy/first-fit");
  // The per-scenario override wins for its scenario, the grid-wide list
  // serves everything else.
  EXPECT_EQ(engine::grid_solvers(*grid, "flexible"),
            (std::vector<std::string>{"busy/greedy-tracking"}));
  EXPECT_EQ(engine::grid_solvers(*grid, "interval"), grid->solvers);
  EXPECT_EQ(engine::expand_grid(*grid).size(), 8u);

  std::istringstream stray(
      "scenario interval\nsolvers:weighted busy/weighted-first-fit\n");
  EXPECT_FALSE(engine::parse_campaign(stray, &error).has_value());
  EXPECT_NE(error.find("names no scenario"), std::string::npos) << error;

  std::istringstream nameless("scenario interval\nsolvers:\n");
  EXPECT_FALSE(engine::parse_campaign(nameless, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::istringstream bare("scenario interval\nsolvers\n");
  EXPECT_FALSE(engine::parse_campaign(bare, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  std::istringstream twice(
      "scenario interval\nsolvers busy/first-fit\nsolvers busy/exact\n");
  EXPECT_FALSE(engine::parse_campaign(twice, &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;

  std::istringstream negative("scenario interval\nslack -1\n");
  EXPECT_FALSE(engine::parse_campaign(negative, &error).has_value());
  EXPECT_NE(error.find(">= 0"), std::string::npos) << error;
}

TEST(Campaign, GridSolverSubsetsRestrictEachPointsPlan) {
  engine::CampaignGrid grid;
  grid.scenarios = {"interval", "weighted"};
  grid.ns = {8};
  grid.gs = {3};
  grid.base.seed = 5;
  grid.solvers = {"busy/first-fit"};
  grid.scenario_solvers["weighted"] = {"busy/weighted-first-fit"};
  engine::CampaignOptions options;
  options.trials = 2;
  std::string error;
  const auto report = engine::run_campaign(engine::shared_registry(), grid,
                                           options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  ASSERT_EQ(report->points.size(), 2u);
  for (const engine::CampaignPoint& point : report->points) {
    const std::string expected = point.spec.name == "weighted"
                                     ? "busy/weighted-first-fit"
                                     : "busy/first-fit";
    EXPECT_EQ(point.solvers, std::vector<std::string>{expected});
    ASSERT_EQ(point.aggregates.size(), 1u) << point.spec.name;
    EXPECT_EQ(point.aggregates[0].solver, expected);
  }

  // The writers carry the new point fields.
  std::ostringstream csv;
  engine::write_campaign_csv(csv, *report);
  EXPECT_NE(csv.str().find("slack"), std::string::npos);
  EXPECT_NE(csv.str().find("horizon"), std::string::npos);
  std::ostringstream json;
  engine::write_campaign_json(json, *report);
  EXPECT_NE(json.str().find("\"slack\""), std::string::npos);
  EXPECT_NE(json.str().find("\"solvers\": [\"busy/first-fit\"]"),
            std::string::npos);
}

TEST(Campaign, ExactFrontierPresetDeclaresAxesAndSubsets) {
  const auto grid = engine::campaign_preset("exact-frontier");
  ASSERT_TRUE(grid.has_value());
  EXPECT_FALSE(grid->horizons.empty());
  EXPECT_FALSE(grid->solvers.empty());
  ASSERT_TRUE(grid->scenario_solvers.count("weighted-flexible") == 1);
  // Every named solver must exist in the builtin registry.
  const auto& registry = engine::shared_registry();
  for (const std::string& name : grid->solvers) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  for (const auto& [scenario, subset] : grid->scenario_solvers) {
    for (const std::string& name : subset) {
      EXPECT_NE(registry.find(name), nullptr) << scenario << ": " << name;
    }
  }
}

TEST(Campaign, PresetsResolveAndUnknownNamesDoNot) {
  EXPECT_FALSE(engine::campaign_presets().empty());
  for (const engine::CampaignPresetInfo& info : engine::campaign_presets()) {
    const auto grid = engine::campaign_preset(info.name);
    ASSERT_TRUE(grid.has_value()) << info.name;
    EXPECT_GE(engine::expand_grid(*grid).size(), 4u) << info.name;
  }
  EXPECT_FALSE(engine::campaign_preset("no-such-preset").has_value());
}

engine::CampaignReport campaign_with_threads(int threads) {
  engine::CampaignGrid grid;
  grid.scenarios = {"interval", "weighted"};
  grid.ns = {8, 10};
  grid.gs = {3};
  grid.base.seed = 17;
  engine::CampaignOptions options;
  options.trials = 3;
  options.threads = threads;
  std::string error;
  const auto report = engine::run_campaign(engine::shared_registry(), grid,
                                           options, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

/// The satellite requirement for campaigns: identical grids => identical
/// per-point cost/verdict aggregates for any worker count (no budget in
/// play), because every cell writes only its own slot of the shared pool's
/// fan-out.
TEST(Campaign, AggregatesDeterministicAcrossThreadCounts) {
  const engine::CampaignReport one = campaign_with_threads(1);
  const engine::CampaignReport four = campaign_with_threads(4);
  ASSERT_EQ(one.points.size(), 4u);
  ASSERT_EQ(one.points.size(), four.points.size());
  for (std::size_t p = 0; p < one.points.size(); ++p) {
    const engine::CampaignPoint& a = one.points[p];
    const engine::CampaignPoint& b = four.points[p];
    EXPECT_EQ(a.spec.name, b.spec.name);
    EXPECT_EQ(a.cells, b.cells);
    EXPECT_EQ(a.ok_cells, b.ok_cells);
    EXPECT_EQ(a.infeasible_cells, 0);
    ASSERT_EQ(a.aggregates.size(), b.aggregates.size()) << a.spec.name;
    for (std::size_t i = 0; i < a.aggregates.size(); ++i) {
      const engine::SolverAggregate& x = a.aggregates[i];
      const engine::SolverAggregate& y = b.aggregates[i];
      EXPECT_EQ(x.solver, y.solver);
      EXPECT_EQ(x.runs, y.runs);
      EXPECT_EQ(x.ok, y.ok);
      EXPECT_EQ(x.feasible, y.feasible);
      EXPECT_EQ(x.exact_runs, y.exact_runs);
      EXPECT_EQ(x.declined, y.declined);
      EXPECT_EQ(x.timed_out, y.timed_out);
      EXPECT_EQ(x.ratio_mean, y.ratio_mean)
          << a.spec.name << " " << x.solver << ": bit-identical or bust";
      EXPECT_EQ(x.ratio_median, y.ratio_median);
      EXPECT_EQ(x.ratio_p95, y.ratio_p95);
      EXPECT_EQ(x.ratio_max, y.ratio_max);
    }
  }
}

/// A campaign point must report exactly what a standalone sweep of the
/// same spec reports — the aggregation path is shared, not parallel.
TEST(Campaign, PointMatchesStandaloneSweep) {
  const engine::CampaignReport campaign = campaign_with_threads(2);
  const engine::CampaignPoint& point = campaign.points.front();

  engine::SweepOptions options;
  options.trials = campaign.trials;
  options.threads = 1;
  std::string error;
  const auto sweep = engine::run_sweep(engine::shared_registry(), point.spec,
                                       options, &error);
  ASSERT_TRUE(sweep.has_value()) << error;
  ASSERT_EQ(sweep->aggregates.size(), point.aggregates.size());
  for (std::size_t i = 0; i < point.aggregates.size(); ++i) {
    EXPECT_EQ(point.aggregates[i].solver, sweep->aggregates[i].solver);
    EXPECT_EQ(point.aggregates[i].feasible, sweep->aggregates[i].feasible);
    EXPECT_EQ(point.aggregates[i].ratio_mean,
              sweep->aggregates[i].ratio_mean)
        << point.aggregates[i].solver;
  }
}

TEST(Campaign, CancelledCampaignDeclinesAllCells) {
  core::CancelSource source;
  source.cancel();
  engine::CampaignGrid grid;
  grid.scenarios = {"interval", "flexible"};
  grid.ns = {8, 12};
  grid.gs = {3};
  engine::CampaignOptions options;
  options.trials = 2;
  options.threads = 2;
  options.run.cancel = source.token();
  std::string error;
  const auto report = engine::run_campaign(engine::shared_registry(), grid,
                                           options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  for (const engine::CampaignPoint& point : report->points) {
    EXPECT_EQ(point.ok_cells, 0);
    EXPECT_GT(point.cells, 0);
  }
}

TEST(Campaign, BadGridPointFailsUpFrontWithContext) {
  engine::CampaignGrid grid;
  grid.scenarios = {"fig3"};
  grid.ns = {8};
  grid.gs = {2};  // fig3 requires g >= 3
  std::string error;
  EXPECT_FALSE(engine::run_campaign(engine::shared_registry(), grid, {},
                                    &error)
                   .has_value());
  EXPECT_NE(error.find("fig3"), std::string::npos) << error;
}

TEST(Campaign, WritersCarryThePoints) {
  const engine::CampaignReport report = campaign_with_threads(2);

  std::ostringstream table;
  engine::print_campaign(table, report);
  EXPECT_NE(table.str().find("4 grid points"), std::string::npos);
  EXPECT_NE(table.str().find("weighted"), std::string::npos);

  std::ostringstream csv;
  engine::write_campaign_csv(csv, report);
  EXPECT_NE(csv.str().find("scenario,n,g,seed,slack,horizon,solver"),
            std::string::npos);

  std::ostringstream json;
  engine::write_campaign_json(json, report);
  EXPECT_NE(json.str().find("\"campaign\""), std::string::npos);
  EXPECT_NE(json.str().find("\"points\""), std::string::npos);
  EXPECT_NE(json.str().find("\"declined\""), std::string::npos);
}

}  // namespace
}  // namespace abt
