// The trial-sweep engine: the thread pool itself, and the invariant the
// whole design hangs on — aggregated cost/verdict statistics are a pure
// function of (scenario, seeds, solver subset), identical for every worker
// count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <vector>

#include "engine/builtin_solvers.hpp"
#include "engine/parallel.hpp"
#include "engine/runner.hpp"

namespace abt {
namespace {

using core::Solution;

TEST(Parallel, ResolveThreads) {
  EXPECT_EQ(engine::resolve_threads(1), 1);
  EXPECT_EQ(engine::resolve_threads(7), 7);
  EXPECT_GE(engine::resolve_threads(0), 1);
  EXPECT_GE(engine::resolve_threads(-3), 1);
}

TEST(Parallel, ThreadPoolDrainsEverySubmittedTask) {
  std::atomic<int> done{0};
  {
    engine::ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 100);
    // A second batch reuses the same (still running) workers.
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 150);
}

TEST(Parallel, ParallelForVisitsEachIndexExactlyOnce) {
  for (const int threads : {1, 3, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    engine::parallel_for(threads, hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

engine::SweepReport sweep_with_threads(const std::string& scenario, int n,
                                       int g, int trials, int threads) {
  engine::ScenarioSpec spec;
  spec.name = scenario;
  spec.n = n;
  spec.g = g;
  spec.seed = 42;
  spec.slack = 1.2;
  engine::SweepOptions options;
  options.trials = trials;
  options.threads = threads;
  std::string error;
  const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                        options, &error);
  EXPECT_TRUE(report.has_value()) << error;
  return *report;
}

/// The satellite requirement verbatim: same seeds => identical aggregates,
/// --threads 1 vs --threads 8. Wall-clock fields are exempt (they measure
/// the machine, not the algorithms).
TEST(TrialSweep, AggregatesAreDeterministicAcrossThreadCounts) {
  for (const char* scenario : {"interval", "flexible", "weighted"}) {
    const engine::SweepReport one = sweep_with_threads(scenario, 10, 3, 8, 1);
    const engine::SweepReport eight =
        sweep_with_threads(scenario, 10, 3, 8, 8);

    ASSERT_EQ(one.cells.size(), eight.cells.size()) << scenario;
    for (std::size_t t = 0; t < one.cells.size(); ++t) {
      EXPECT_EQ(one.cells[t].lower_bound.value,
                eight.cells[t].lower_bound.value);
      EXPECT_EQ(one.cells[t].lower_bound.kind,
                eight.cells[t].lower_bound.kind);
      ASSERT_EQ(one.cells[t].solutions.size(),
                eight.cells[t].solutions.size());
      for (std::size_t s = 0; s < one.cells[t].solutions.size(); ++s) {
        const Solution& a = one.cells[t].solutions[s];
        const Solution& b = eight.cells[t].solutions[s];
        EXPECT_EQ(a.solver, b.solver);
        EXPECT_EQ(a.ok, b.ok);
        EXPECT_EQ(a.feasible, b.feasible);
        EXPECT_EQ(a.exact, b.exact);
        EXPECT_EQ(a.cost, b.cost) << scenario << " " << a.solver
                                  << ": costs must match bit for bit";
      }
    }

    ASSERT_EQ(one.aggregates.size(), eight.aggregates.size()) << scenario;
    for (std::size_t i = 0; i < one.aggregates.size(); ++i) {
      const engine::SolverAggregate& a = one.aggregates[i];
      const engine::SolverAggregate& b = eight.aggregates[i];
      EXPECT_EQ(a.solver, b.solver);
      EXPECT_EQ(a.runs, b.runs);
      EXPECT_EQ(a.ok, b.ok);
      EXPECT_EQ(a.feasible, b.feasible);
      EXPECT_EQ(a.exact_runs, b.exact_runs);
      EXPECT_EQ(a.ratio_count, b.ratio_count);
      EXPECT_EQ(a.ratio_mean, b.ratio_mean) << scenario << " " << a.solver;
      EXPECT_EQ(a.ratio_median, b.ratio_median);
      EXPECT_EQ(a.ratio_p95, b.ratio_p95);
      EXPECT_EQ(a.ratio_max, b.ratio_max);
    }
  }
}

TEST(TrialSweep, EveryCellIsCheckerValidated) {
  const engine::SweepReport report =
      sweep_with_threads("interval", 10, 3, 6, 4);
  EXPECT_EQ(report.trials, 6);
  int ok_cells = 0;
  for (const engine::RunReport& cell : report.cells) {
    EXPECT_GT(cell.lower_bound.value, 0.0);
    for (const Solution& sol : cell.solutions) {
      if (!sol.ok) continue;
      ++ok_cells;
      EXPECT_TRUE(sol.feasible) << sol.solver << ": " << sol.message;
    }
  }
  EXPECT_GT(ok_cells, 0);
  // Ratios are measured against per-trial lower bounds: never below 1 for
  // non-preemptive solvers, and the aggregate reflects that.
  for (const engine::SolverAggregate& agg : report.aggregates) {
    if (agg.ratio_count == 0 || agg.solver == "busy/preemptive") continue;
    EXPECT_GE(agg.ratio_mean, 1.0 - 1e-9) << agg.solver;
    EXPECT_LE(agg.ratio_median, agg.ratio_p95 + 1e-12) << agg.solver;
    EXPECT_LE(agg.ratio_p95, agg.ratio_max + 1e-12) << agg.solver;
  }
}

TEST(TrialSweep, ExplicitSubsetAndUnknownNamesGetRowsInEveryCell) {
  engine::ScenarioSpec spec;
  spec.name = "slotted";
  spec.n = 8;
  spec.g = 2;
  spec.seed = 5;
  engine::SweepOptions options;
  options.trials = 4;
  options.threads = 2;
  options.run.solvers = {"active/lp-rounding", "active/no-such-solver"};
  std::string error;
  const auto report = engine::run_sweep(engine::shared_registry(), spec,
                                        options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  for (const engine::RunReport& cell : report->cells) {
    ASSERT_EQ(cell.solutions.size(), 2u);
    EXPECT_EQ(cell.solutions[0].solver, "active/lp-rounding");
    EXPECT_EQ(cell.solutions[1].solver, "active/no-such-solver");
    EXPECT_FALSE(cell.solutions[1].ok);
    EXPECT_EQ(cell.solutions[1].message, "unknown solver");
  }
  ASSERT_EQ(report->aggregates.size(), 2u);
  EXPECT_EQ(report->aggregates[1].runs, 4);
  EXPECT_EQ(report->aggregates[1].ok, 0);
}

TEST(TrialSweep, UnknownScenarioFailsWithError) {
  engine::ScenarioSpec spec;
  spec.name = "no-such-scenario";
  std::string error;
  EXPECT_FALSE(engine::run_sweep(engine::shared_registry(), spec, {}, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TrialSweep, WritersCarryTheAggregates) {
  const engine::SweepReport report =
      sweep_with_threads("multi-window", 6, 2, 4, 2);

  std::ostringstream table;
  engine::print_sweep(table, report);
  EXPECT_NE(table.str().find("active/multi-window-minimal"),
            std::string::npos);
  EXPECT_NE(table.str().find("4 trials"), std::string::npos);

  std::ostringstream csv;
  engine::write_sweep_csv(csv, report);
  EXPECT_NE(csv.str().find("solver,runs,ok,feasible"), std::string::npos);

  std::ostringstream json;
  engine::write_sweep_json(json, report);
  EXPECT_NE(json.str().find("\"aggregates\""), std::string::npos);
  EXPECT_NE(json.str().find("\"cells\""), std::string::npos);
  EXPECT_NE(json.str().find("\"scenario\": \"multi-window\""),
            std::string::npos);
}

}  // namespace
}  // namespace abt
