#include "core/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::core {
namespace {

TEST(InstanceIo, ParsesSlotted) {
  std::istringstream in(
      "# a comment\n"
      "model slotted\n"
      "capacity 3\n"
      "job 0 5 2\n"
      "job 1 4 1  # trailing comment\n");
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->family, Family::kActive);
  EXPECT_EQ(parsed->kind, InstanceKind::kStandard);
  EXPECT_EQ(parsed->slotted.size(), 2);
  EXPECT_EQ(parsed->slotted.capacity(), 3);
  EXPECT_EQ(parsed->slotted.job(0).length, 2);
}

TEST(InstanceIo, ParsesContinuous) {
  std::istringstream in(
      "model continuous\ncapacity 2\njob 0.5 3.25 1.75\n");
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->family, Family::kBusy);
  EXPECT_EQ(parsed->kind, InstanceKind::kStandard);
  EXPECT_DOUBLE_EQ(parsed->continuous.job(0).release, 0.5);
}

TEST(InstanceIo, ErrorsCarryLineNumbers) {
  std::string error;
  {
    std::istringstream in("model slotted\ncapacity 2\njob 0 5\n");
    EXPECT_FALSE(parse_instance(in, &error).has_value());
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  }
  {
    std::istringstream in("job 0 5 1\n");
    EXPECT_FALSE(parse_instance(in, &error).has_value());
    EXPECT_NE(error.find("before model"), std::string::npos) << error;
  }
  {
    std::istringstream in("model teleport\n");
    EXPECT_FALSE(parse_instance(in, &error).has_value());
    EXPECT_NE(error.find("unknown model"), std::string::npos) << error;
  }
  {
    std::istringstream in("model slotted\njob 0 5 1\n");
    EXPECT_FALSE(parse_instance(in, &error).has_value());
    EXPECT_NE(error.find("capacity"), std::string::npos) << error;
  }
  {
    std::istringstream in("model slotted\ncapacity 1\nfrobnicate\n");
    EXPECT_FALSE(parse_instance(in, &error).has_value());
    EXPECT_NE(error.find("unknown directive"), std::string::npos) << error;
  }
}

TEST(InstanceIo, RejectsStructurallyInvalidInstances) {
  std::string error;
  std::istringstream in("model slotted\ncapacity 1\njob 0 1 5\n");
  EXPECT_FALSE(parse_instance(in, &error).has_value());
  EXPECT_NE(error.find("window"), std::string::npos) << error;
}

TEST(InstanceIo, SlottedRoundTrip) {
  Rng rng(5150);
  gen::SlottedParams params;
  params.num_jobs = 12;
  const auto original = gen::random_slotted(rng, params);
  std::ostringstream out;
  write_instance(out, original);
  std::istringstream in(out.str());
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->slotted.size(), original.size());
  for (int j = 0; j < original.size(); ++j) {
    EXPECT_EQ(parsed->slotted.job(j), original.job(j));
  }
  EXPECT_EQ(parsed->slotted.capacity(), original.capacity());
}

TEST(InstanceIo, ContinuousRoundTripPreservesDoubles) {
  Rng rng(6160);
  gen::ContinuousParams params;
  params.num_jobs = 12;
  params.max_slack = 1.3;
  const auto original = gen::random_continuous(rng, params);
  std::ostringstream out;
  write_instance(out, original);
  std::istringstream in(out.str());
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.has_value());
  for (int j = 0; j < original.size(); ++j) {
    EXPECT_EQ(parsed->continuous.job(j), original.job(j))
        << "precision-17 round trip must be exact";
  }
}

}  // namespace
}  // namespace abt::core
