// Integration tests across the interval-job busy-time algorithms: FIRSTFIT
// (baseline), GREEDYTRACKING (Theorem 5) and TwoTrackPeeling (Theorem 3
// charging), against the paper's lower bounds and the exact solver.
#include <gtest/gtest.h>

#include "busy/demand_profile.hpp"
#include "busy/exact_busy.hpp"
#include "busy/first_fit.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::BusySchedule;
using core::ContinuousInstance;

void expect_feasible(const ContinuousInstance& inst, const BusySchedule& s,
                     const char* label) {
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, s, &why)) << label << ": " << why;
}

TEST(FirstFit, SingleMachineWhenEverythingFits) {
  const ContinuousInstance inst({{0, 1, 1}, {0.5, 1.5, 1}, {2, 3, 1}}, 3);
  const BusySchedule s = first_fit(inst);
  expect_feasible(inst, s, "first_fit");
  EXPECT_EQ(s.machine_count(), 1);
}

TEST(FirstFit, OpensSecondMachineOnOverflow) {
  const ContinuousInstance inst({{0, 1, 1}, {0, 1, 1}, {0, 1, 1}}, 2);
  const BusySchedule s = first_fit(inst);
  expect_feasible(inst, s, "first_fit");
  EXPECT_EQ(s.machine_count(), 2);
  EXPECT_NEAR(core::busy_cost(inst, s), 2.0, 1e-9);
}

TEST(GreedyTracking, BundlesGTracksPerMachine) {
  // Four disjoint chains; g = 2 -> tracks pair up into ceil(k/g) machines.
  const ContinuousInstance inst(
      {{0, 3, 3}, {0, 2, 2}, {0, 1.5, 1.5}, {0, 1, 1}}, 2);
  GreedyTrackingTrace trace;
  const BusySchedule s = greedy_tracking(inst, &trace);
  expect_feasible(inst, s, "greedy_tracking");
  // All four jobs overlap at time 0, so each is its own track.
  EXPECT_EQ(trace.tracks.size(), 4u);
  EXPECT_EQ(s.machine_count(), 2);
  // Tracks come out longest-first (greedy).
  for (std::size_t i = 1; i < trace.tracks.size(); ++i) {
    double prev = 0;
    double cur = 0;
    for (auto j : trace.tracks[i - 1]) prev += inst.job(j).length;
    for (auto j : trace.tracks[i]) cur += inst.job(j).length;
    EXPECT_GE(prev, cur - 1e-9);
  }
}

TEST(GreedyTracking, Fig1ExampleMatchesOptimal) {
  const ContinuousInstance inst = gen::fig1_example();
  const auto exact = solve_exact_interval(inst);
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(core::busy_cost(inst, *exact), 6.0, 1e-9)
      << "Fig 1 optimum uses two machines of busy time 3";
  const BusySchedule s = greedy_tracking(inst);
  expect_feasible(inst, s, "greedy_tracking");
  EXPECT_LE(core::busy_cost(inst, s), 3 * 6.0 + 1e-9);
}

TEST(TwoTrackPeeling, ReproducesFig8TightExample) {
  const double eps = 0.05;
  const double eps_prime = 0.02;
  const ContinuousInstance inst = gen::fig8_instance(eps, eps_prime);
  PeelingTrace trace;
  const BusySchedule s = two_track_peeling(inst, &trace);
  expect_feasible(inst, s, "two_track_peeling");
  const double cost = core::busy_cost(inst, s);
  const auto exact = solve_exact_interval(inst);
  ASSERT_TRUE(exact.has_value());
  const double opt = core::busy_cost(inst, *exact);
  EXPECT_NEAR(opt, 1 + eps, 1e-9) << "Fig 8 optimum is 1 + eps";
  EXPECT_NEAR(cost, 2 + eps, 0.05) << "algorithm output approaches 2 OPT";
}

TEST(TwoTrackPeeling, LevelsChargeTheDemandProfile) {
  core::Rng rng(31);
  gen::ContinuousParams params;
  params.num_jobs = 30;
  params.capacity = 3;
  params.horizon = 25;
  const ContinuousInstance inst = gen::random_continuous(rng, params);
  PeelingTrace trace;
  const BusySchedule s = two_track_peeling(inst, &trace);
  expect_feasible(inst, s, "two_track_peeling");

  // Level l's span must sit inside {t : raw demand >= l+1}.
  const auto runs = inst.forced_intervals();
  for (std::size_t l = 0; l < trace.levels.size(); ++l) {
    for (core::JobId j : trace.levels[l]) {
      const double probe = inst.job(j).release;
      int raw = 0;
      for (const auto& iv : runs) {
        if (iv.lo <= probe && probe < iv.hi) ++raw;
      }
      EXPECT_GE(raw, static_cast<int>(l) + 1)
          << "level " << l << " sticks out of its demand layer";
    }
  }
}

/// Property sweep: all three algorithms produce feasible schedules within
/// their proven factors of the best lower bound, and respect each other's
/// proven ordering on worst cases.
struct SweepParam {
  int seed;
  int capacity;
};

class IntervalAlgos : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IntervalAlgos, FactorsAgainstLowerBoundsAndExact) {
  const auto [seed, capacity] = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(seed) * 40961ULL + 7);
  for (int trial = 0; trial < 6; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 9));
    params.capacity = capacity;
    params.horizon = 12;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    const auto exact = solve_exact_interval(inst);
    ASSERT_TRUE(exact.has_value());
    const double opt = core::busy_cost(inst, *exact);
    const BusyLowerBounds lb = busy_lower_bounds(inst);
    EXPECT_LE(lb.best(), opt + 1e-6);

    const BusySchedule ff = first_fit(inst);
    const BusySchedule gt = greedy_tracking(inst);
    const BusySchedule pe = two_track_peeling(inst);
    const BusySchedule pa =
        two_track_peeling(inst, nullptr, PairSplit::kParity);
    expect_feasible(inst, ff, "first_fit");
    expect_feasible(inst, gt, "greedy_tracking");
    expect_feasible(inst, pe, "two_track_peeling");
    expect_feasible(inst, pa, "two_track_peeling/parity");

    EXPECT_LE(core::busy_cost(inst, ff), 4 * opt + 1e-6) << "FIRSTFIT is 4-approx";
    EXPECT_LE(core::busy_cost(inst, gt), 3 * opt + 1e-6)
        << "GREEDYTRACKING is 3-approx (Theorem 5)";
    EXPECT_LE(core::busy_cost(inst, pe),
              2 * DemandProfile(inst).cost() + 1e-6)
        << "TwoTrackPeeling charges the profile at most twice (Theorem 3)";
    EXPECT_LE(core::busy_cost(inst, pa),
              2 * DemandProfile(inst).cost() + 1e-6)
        << "the parity split satisfies the same charging bound";
    EXPECT_GE(core::busy_cost(inst, ff), opt - 1e-6);
    EXPECT_GE(core::busy_cost(inst, gt), opt - 1e-6);
    EXPECT_GE(core::busy_cost(inst, pe), opt - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IntervalAlgos,
    ::testing::Values(SweepParam{1, 1}, SweepParam{2, 2}, SweepParam{3, 2},
                      SweepParam{4, 3}, SweepParam{5, 3}, SweepParam{6, 4}));

/// Clique, proper and laminar families (the special cases of section 1 and
/// Khandekar et al.) also stay within the proven factors.
TEST(IntervalAlgos, SpecialFamiliesStayFeasibleAndBounded) {
  core::Rng rng(777);
  for (int trial = 0; trial < 5; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = 10;
    params.capacity = 3;
    params.horizon = 20;
    for (const auto& inst :
         {gen::random_clique(rng, params), gen::random_proper(rng, params),
          gen::random_laminar(rng, params)}) {
      const BusyLowerBounds lb = busy_lower_bounds(inst);
      for (const auto& sched :
           {first_fit(inst), greedy_tracking(inst), two_track_peeling(inst)}) {
        std::string why;
        EXPECT_TRUE(core::check_busy_schedule(inst, sched, &why)) << why;
        EXPECT_GE(core::busy_cost(inst, sched), lb.best() - 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace abt::busy
