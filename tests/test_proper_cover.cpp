#include "busy/proper_cover.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;
using core::Interval;
using core::JobId;

std::vector<Interval> runs_of(const ContinuousInstance& inst,
                              const std::vector<JobId>& ids) {
  std::vector<Interval> out;
  for (JobId j : ids) {
    out.push_back({inst.job(j).release,
                   inst.job(j).release + inst.job(j).length});
  }
  return out;
}

int max_overlap(const std::vector<Interval>& ivs) {
  int best = 0;
  for (const Interval& iv : ivs) {
    int count = 0;
    for (const Interval& other : ivs) {
      if (other.lo <= iv.lo && iv.lo < other.hi) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

TEST(ProperCover, SingleJob) {
  const ContinuousInstance inst({{0, 1, 1}}, 1);
  EXPECT_EQ(proper_cover(inst, {0}).size(), 1u);
}

TEST(ProperCover, DropsDominatedJob) {
  const ContinuousInstance inst({{0, 4, 4}, {1, 3, 2}}, 1);
  const auto q = proper_cover(inst, {0, 1});
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0], 0);
}

TEST(ProperCover, KeepsOneOfIdenticalJobs) {
  const ContinuousInstance inst({{0, 1, 1}, {0, 1, 1}, {0, 1, 1}}, 1);
  EXPECT_EQ(proper_cover(inst, {0, 1, 2}).size(), 1u);
}

TEST(ProperCover, ChainKeepsEveryOtherish) {
  // Staircase: [0,2) [1,3) [2,4) [3,5): span [0,5).
  const ContinuousInstance inst(
      {{0, 2, 2}, {1, 3, 2}, {2, 4, 2}, {3, 5, 2}}, 1);
  std::vector<JobId> all = {0, 1, 2, 3};
  const auto q = proper_cover(inst, all);
  EXPECT_NEAR(core::span_of(runs_of(inst, q)), 5.0, 1e-12);
  EXPECT_LE(max_overlap(runs_of(inst, q)), 2);
}

TEST(ProperCover, DisjointComponentsAllKept) {
  const ContinuousInstance inst({{0, 1, 1}, {5, 6, 1}, {10, 11, 1}}, 1);
  EXPECT_EQ(proper_cover(inst, {0, 1, 2}).size(), 3u);
}

/// Property (proof of Theorem 5): the cover preserves the span and never
/// has three jobs live at once.
class ProperCoverRandom : public ::testing::TestWithParam<int> {};

TEST_P(ProperCoverRandom, SpanPreservedAndOverlapAtMostTwo) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 123457ULL);
  for (int trial = 0; trial < 40; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 25));
    params.horizon = 20;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    std::vector<JobId> all(static_cast<std::size_t>(inst.size()));
    std::iota(all.begin(), all.end(), JobId{0});

    const auto q = proper_cover(inst, all);
    EXPECT_NEAR(core::span_of(runs_of(inst, q)),
                core::span_of(runs_of(inst, all)), 1e-9)
        << "cover must preserve the projection Sp";
    EXPECT_LE(max_overlap(runs_of(inst, q)), 2)
        << "at most two cover jobs may be live at any time";
    // Q is a subset.
    for (JobId j : q) {
      EXPECT_TRUE(std::find(all.begin(), all.end(), j) != all.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProperCoverRandom, ::testing::Range(1, 15));

// ---------------------------------------------------------------------------
// LevelPeeler: sort-once level extraction must reproduce the one-shot
// proper_cover peel loop (the pre-PR-2 two_track_peeling inner loop)
// level-for-level, job-for-job.

class LevelPeelerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LevelPeelerEquivalence, MatchesRepeatedProperCover) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 424243ULL);
  for (int trial = 0; trial < 12; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 60));
    params.horizon = 18;
    const ContinuousInstance inst = gen::random_continuous(rng, params);

    std::vector<JobId> remaining(static_cast<std::size_t>(inst.size()));
    std::iota(remaining.begin(), remaining.end(), JobId{0});
    LevelPeeler peeler(inst, remaining);

    while (!remaining.empty()) {
      // Reference: re-run proper_cover on the remaining pool and erase.
      std::vector<JobId> expected = proper_cover(inst, remaining);
      std::sort(expected.begin(), expected.end());
      std::vector<char> taken(static_cast<std::size_t>(inst.size()), 0);
      for (JobId j : expected) taken[static_cast<std::size_t>(j)] = 1;
      std::erase_if(remaining, [&](JobId j) {
        return taken[static_cast<std::size_t>(j)] != 0;
      });

      ASSERT_FALSE(peeler.empty());
      std::vector<JobId> level = peeler.extract_level();
      std::sort(level.begin(), level.end());
      ASSERT_EQ(level, expected);
      ASSERT_EQ(peeler.remaining(), remaining.size());
    }
    EXPECT_TRUE(peeler.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevelPeelerEquivalence,
                         ::testing::Range(1, 8));

}  // namespace
}  // namespace abt::busy
