#include "flow/dinic.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "test_util.hpp"

namespace abt::flow {
namespace {

TEST(Dinic, TextbookNetwork) {
  Dinic d(6);
  d.add_edge(0, 1, 16);
  d.add_edge(0, 2, 13);
  d.add_edge(1, 2, 10);
  d.add_edge(2, 1, 4);
  d.add_edge(1, 3, 12);
  d.add_edge(3, 2, 9);
  d.add_edge(2, 4, 14);
  d.add_edge(4, 3, 7);
  d.add_edge(3, 5, 20);
  d.add_edge(4, 5, 4);
  EXPECT_EQ(d.max_flow(0, 5), 23);  // CLRS example
}

TEST(Dinic, DisconnectedIsZero) {
  Dinic d(4);
  d.add_edge(0, 1, 5);
  d.add_edge(2, 3, 5);
  EXPECT_EQ(d.max_flow(0, 3), 0);
}

TEST(Dinic, ParallelEdgesAccumulate) {
  Dinic d(2);
  d.add_edge(0, 1, 3);
  d.add_edge(0, 1, 4);
  EXPECT_EQ(d.max_flow(0, 1), 7);
}

TEST(Dinic, FlowOnEdgeReporting) {
  Dinic d(3);
  const auto a = d.add_edge(0, 1, 5);
  const auto b = d.add_edge(1, 2, 3);
  EXPECT_EQ(d.max_flow(0, 2), 3);
  EXPECT_EQ(d.flow_on(a), 3);
  EXPECT_EQ(d.flow_on(b), 3);
  EXPECT_EQ(d.residual_on(a), 2);
}

TEST(Dinic, MinCutSideSeparatesSourceFromSink) {
  Dinic d(4);
  d.add_edge(0, 1, 10);
  d.add_edge(1, 2, 1);  // bottleneck
  d.add_edge(2, 3, 10);
  EXPECT_EQ(d.max_flow(0, 3), 1);
  const auto side = d.min_cut_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
  EXPECT_FALSE(side[3]);
}

TEST(Dinic, ZeroCapacityEdgeCarriesNothing) {
  Dinic d(2);
  const auto e = d.add_edge(0, 1, 0);
  EXPECT_EQ(d.max_flow(0, 1), 0);
  EXPECT_EQ(d.flow_on(e), 0);
}

TEST(Dinic, StopBeforeFirstPhaseReturnsZeroAndSetsFlag) {
  Dinic d(3);
  d.add_edge(0, 1, 5);
  d.add_edge(1, 2, 5);
  Dinic::Options options;
  options.should_stop = [] { return true; };
  bool cancelled = false;
  EXPECT_EQ(d.max_flow(0, 2, options, &cancelled), 0);
  EXPECT_TRUE(cancelled);
}

TEST(Dinic, EmptyStopPredicateMatchesPlainMaxFlow) {
  Dinic plain(4);
  Dinic guarded(4);
  for (Dinic* d : {&plain, &guarded}) {
    d->add_edge(0, 1, 7);
    d->add_edge(0, 2, 3);
    d->add_edge(1, 3, 5);
    d->add_edge(2, 3, 6);
    d->add_edge(1, 2, 2);
  }
  bool cancelled = true;  // must be cleared even when never tripped
  EXPECT_EQ(guarded.max_flow(0, 3, Dinic::Options{}, &cancelled),
            plain.max_flow(0, 3));
  EXPECT_FALSE(cancelled);
}

TEST(Dinic, MidSearchStopYieldsLowerBoundOnMaxFlow) {
  // A wide bipartite network needs several augmenting paths; stopping
  // after the first few polls must return a value <= the true max flow
  // and flag the run, never fabricate extra flow.
  // Wide enough that one phase augments > kStopPollPaths times, so the
  // amortized per-path poll (not just the per-phase poll) gets exercised.
  constexpr int kPairs = 3 * Dinic::kStopPollPaths;
  Dinic full(2 + 2 * kPairs);
  Dinic stopped(2 + 2 * kPairs);
  const int sink = 1 + 2 * kPairs;
  for (Dinic* d : {&full, &stopped}) {
    for (int i = 0; i < kPairs; ++i) {
      d->add_edge(0, 1 + i, 1);
      d->add_edge(1 + i, 1 + kPairs + i, 1);
      d->add_edge(1 + kPairs + i, sink, 1);
    }
  }
  const auto exact = full.max_flow(0, sink);
  ASSERT_EQ(exact, kPairs);

  int polls = 0;
  Dinic::Options options;
  options.should_stop = [&polls] { return ++polls > 2; };
  bool cancelled = false;
  const auto partial = stopped.max_flow(0, sink, options, &cancelled);
  EXPECT_TRUE(cancelled);
  EXPECT_LE(partial, exact);
}

/// Property: Dinic matches an independent Ford-Fulkerson on random graphs.
class DinicRandom : public ::testing::TestWithParam<int> {};

TEST_P(DinicRandom, MatchesReferenceFlow) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 40; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    Dinic dinic(n);
    testutil::RefFlow ref(n);
    const int edges = static_cast<int>(rng.uniform_int(0, 20));
    for (int e = 0; e < edges; ++e) {
      const int u = static_cast<int>(rng.uniform_int(0, n - 1));
      const int v = static_cast<int>(rng.uniform_int(0, n - 1));
      if (u == v) continue;
      const long c = rng.uniform_int(0, 12);
      dinic.add_edge(u, v, c);
      ref.add(u, v, c);
    }
    EXPECT_EQ(dinic.max_flow(0, n - 1), ref.max_flow(0, n - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DinicRandom, ::testing::Range(1, 9));

}  // namespace
}  // namespace abt::flow
