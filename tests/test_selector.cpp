// The learned-selection layer: deterministic feature extraction, the
// versioned selector-model text format (write_model ∘ parse_model must be
// the identity on any model, and every malformed input must fail with a
// line-numbered diagnostic), offline training from real campaign CSV, and
// nearest-centroid selection itself.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "engine/builtin_solvers.hpp"
#include "engine/campaign.hpp"
#include "engine/features.hpp"
#include "engine/portfolio.hpp"
#include "engine/runner.hpp"
#include "engine/selector.hpp"

namespace abt {
namespace {

using core::ProblemInstance;
using engine::FeatureVector;
using engine::SelectorCentroid;
using engine::SelectorModel;

ProblemInstance scenario_instance(const std::string& name, int n, int g,
                                  std::uint64_t seed = 7) {
  engine::ScenarioSpec spec;
  spec.name = name;
  spec.n = n;
  spec.g = g;
  spec.seed = seed;
  std::string error;
  const auto inst = engine::make_scenario(spec, &error);
  EXPECT_TRUE(inst.has_value()) << name << ": " << error;
  return *inst;
}

// ---------------------------------------------------------------------------
// Feature extraction.

TEST(Features, ExtractionIsDeterministicAcrossKinds) {
  // Bit-identical vectors: twice on the same object, and on two
  // independently regenerated copies of the same scenario.
  for (const char* scenario :
       {"interval", "flexible", "slotted", "weighted", "multi-window"}) {
    const ProblemInstance a = scenario_instance(scenario, 12, 3);
    const ProblemInstance b = scenario_instance(scenario, 12, 3);
    const FeatureVector va = engine::extract_features(a);
    EXPECT_EQ(va, engine::extract_features(a)) << scenario;
    EXPECT_EQ(va, engine::extract_features(b)) << scenario;
    for (const double v : va.values) {
      EXPECT_TRUE(std::isfinite(v)) << scenario;
    }
  }
}

TEST(Features, DiscriminatesFamilyKindAndSize) {
  const FeatureVector busy =
      engine::extract_features(scenario_instance("interval", 12, 3));
  const FeatureVector active =
      engine::extract_features(scenario_instance("slotted", 12, 3));
  const FeatureVector weighted =
      engine::extract_features(scenario_instance("weighted", 12, 3));
  EXPECT_NE(busy.values, active.values);
  EXPECT_NE(busy.values, weighted.values);
  // Named accessors stay aligned with the manifest the model format pins.
  const auto& names = engine::feature_names();
  ASSERT_EQ(names.size(), engine::kFeatureCount);
  EXPECT_EQ(names[0], "jobs");
  EXPECT_EQ(busy.values[0], 12.0);
  EXPECT_EQ(names[1], "capacity");
  EXPECT_EQ(busy.values[1], 3.0);
}

// ---------------------------------------------------------------------------
// Model round trip.

SelectorModel random_model(std::mt19937& rng) {
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  std::uniform_real_distribution<double> positive(1e-9, 1e3);
  std::uniform_int_distribution<int> centroid_count(1, 5);
  std::uniform_int_distribution<int> rank_len(1, 6);
  SelectorModel model;
  for (std::size_t i = 0; i < engine::kFeatureCount; ++i) {
    model.mu[i] = value(rng);
    model.sigma[i] = positive(rng);
  }
  const int centroids = centroid_count(rng);
  for (int c = 0; c < centroids; ++c) {
    SelectorCentroid centroid;
    centroid.label = "scenario-" + std::to_string(c);
    for (std::size_t i = 0; i < engine::kFeatureCount; ++i) {
      centroid.center[i] = value(rng);
    }
    const int ranks = rank_len(rng);
    for (int r = 0; r < ranks; ++r) {
      centroid.ranking.push_back("family/solver-" + std::to_string(c) + "-" +
                                 std::to_string(r));
    }
    model.centroids.push_back(std::move(centroid));
  }
  return model;
}

TEST(Selector, WriteParseRoundTripIsIdentityOnRandomModels) {
  std::mt19937 rng(20260808);
  for (int iteration = 0; iteration < 25; ++iteration) {
    const SelectorModel model = random_model(rng);
    std::stringstream text;
    engine::write_model(text, model);
    std::string error;
    const auto parsed = engine::parse_model(text, &error);
    ASSERT_TRUE(parsed.has_value())
        << "iteration " << iteration << ": " << error;
    EXPECT_EQ(*parsed, model) << "iteration " << iteration
                              << " round trip is lossy:\n"
                              << text.str();
  }
}

TEST(Selector, RoundTripSurvivesExtremeDoubles) {
  std::mt19937 rng(7);
  SelectorModel model = random_model(rng);
  model.mu[0] = 1e-308;                     // subnormal-adjacent
  model.mu[1] = -1.7976931348623157e308;    // -DBL_MAX
  model.mu[2] = 0.1;                        // classic non-representable
  model.sigma[0] = 2.2250738585072014e-308; // DBL_MIN
  std::stringstream text;
  engine::write_model(text, model);
  const auto parsed = engine::parse_model(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, model);
}

TEST(Selector, MalformedInputsFailWithLineNumberedErrors) {
  const std::string names =
      [] {
        std::string out;
        for (const auto& name : engine::feature_names()) {
          out += " ";
          out += name;
        }
        return out;
      }();
  const std::string twelve_ones = [] {
    std::string out;
    for (std::size_t i = 0; i < engine::kFeatureCount; ++i) out += " 1";
    return out;
  }();
  const std::string head = "selector-model v1\nfeatures 12" + names +
                           "\nmu" + twelve_ones + "\nsigma" + twelve_ones +
                           "\n";
  struct Case {
    const char* what;
    std::string text;
    const char* line;      ///< Expected "line N" prefix.
    const char* fragment;  ///< Expected substring of the message.
  };
  const std::vector<Case> cases = {
      {"wrong magic", "not-a-model v1\n", "line 1", "expected header"},
      {"unsupported version", "selector-model v9\n", "line 1",
       "unsupported model version"},
      {"empty input", "", "line 1", "expected selector-model header"},
      {"duplicate features", head + "features 12" + names + "\n", "line 5",
       "duplicate features line"},
      {"bad feature count token",
       "selector-model v1\nfeatures twelve" + names + "\n", "line 2",
       "bad feature count"},
      {"feature name mismatch",
       "selector-model v1\nfeatures 12 bogus" +
           names.substr(0, names.rfind(' ')) + "\n",
       "line 2", "feature name mismatch"},
      {"mu arity",
       "selector-model v1\nfeatures 12" + names + "\nsigma" + twelve_ones +
           "\nmu 1 2 3\n",
       "line 4", "needs exactly 12 values"},
      {"bad number", "selector-model v1\nfeatures 12" + names + "\nmu 1 2 x" +
                         twelve_ones.substr(0, 18) + "\n",
       "line 3", "bad number"},
      {"non-positive sigma",
       "selector-model v1\nfeatures 12" + names + "\nmu" + twelve_ones +
           "\nsigma 0" + twelve_ones.substr(2) + "\n",
       "line 4", "sigma values must be > 0"},
      {"centroid label arity", head + "centroid two words\n", "line 5",
       "centroid needs exactly one label"},
      {"center outside block", head + "center" + twelve_ones + "\n", "line 5",
       "center outside a centroid block"},
      {"rank outside block", head + "rank a\n", "line 5",
       "rank outside a centroid block"},
      {"duplicate centroid label",
       head + "centroid a\ncenter" + twelve_ones +
           "\nrank x\ncentroid a\ncenter" + twelve_ones + "\nrank y\n",
       "line 8", "duplicate centroid label"},
      {"duplicate solver in rank",
       head + "centroid a\ncenter" + twelve_ones + "\nrank x x\n", "line 7",
       "duplicate solver"},
      {"unknown directive", head + "frobnicate 1\n", "line 5",
       "unknown directive"},
      {"missing mu",
       "selector-model v1\nfeatures 12" + names + "\nsigma" + twelve_ones +
           "\ncentroid a\ncenter" + twelve_ones + "\nrank x\n",
       "line 7", "missing mu line"},
      {"no centroid", head, "line 5", "model has no centroid"},
      {"incomplete last block",
       head + "centroid a\ncenter" + twelve_ones + "\n", "line 7",
       "missing its rank line"},
  };
  for (const Case& test_case : cases) {
    std::istringstream in(test_case.text);
    std::string error;
    const auto parsed = engine::parse_model(in, &error);
    EXPECT_FALSE(parsed.has_value()) << test_case.what;
    EXPECT_NE(error.find(test_case.line), std::string::npos)
        << test_case.what << ": got '" << error << "'";
    EXPECT_NE(error.find(test_case.fragment), std::string::npos)
        << test_case.what << ": got '" << error << "'";
  }
}

TEST(Selector, CommentsAndBlankLinesAreIgnored) {
  SelectorModel model;
  model.mu.fill(0.0);
  model.sigma.fill(1.0);
  SelectorCentroid centroid;
  centroid.label = "a";
  centroid.center.fill(0.5);
  centroid.ranking = {"x/y"};
  model.centroids.push_back(centroid);
  std::stringstream text;
  engine::write_model(text, model);
  std::string decorated = "# leading comment\n\n";
  decorated += text.str();
  decorated += "\n# trailing comment\n";
  std::istringstream in(decorated);
  const auto parsed = engine::parse_model(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, model);
}

// ---------------------------------------------------------------------------
// Selection.

TEST(Selector, PicksTheNearestCentroidAndTruncatesTopK) {
  SelectorModel model;
  model.mu.fill(0.0);
  model.sigma.fill(1.0);
  SelectorCentroid near;
  near.label = "near";
  near.center.fill(1.0);
  near.ranking = {"a", "b", "c"};
  SelectorCentroid far;
  far.label = "far";
  far.center.fill(100.0);
  far.ranking = {"z"};
  model.centroids.push_back(near);
  model.centroids.push_back(far);
  FeatureVector query;
  query.values.fill(2.0);
  EXPECT_EQ(engine::select_solvers(model, query),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(engine::select_solvers(model, query, 2),
            (std::vector<std::string>{"a", "b"}));
  query.values.fill(90.0);
  EXPECT_EQ(engine::select_solvers(model, query),
            (std::vector<std::string>{"z"}));
  EXPECT_TRUE(engine::select_solvers(SelectorModel{}, query).empty());
}

// ---------------------------------------------------------------------------
// Offline training from a real campaign.

TEST(Selector, TrainsFromCampaignCsvAndSelectsRegisteredSolvers) {
  const core::SolverRegistry& registry = engine::shared_registry();
  engine::CampaignGrid grid;
  grid.scenarios = {"interval", "weighted"};
  grid.ns = {8, 10};
  grid.gs = {3};
  engine::CampaignOptions options;
  options.trials = 2;
  options.threads = 2;
  std::string error;
  const auto report = engine::run_campaign(registry, grid, options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  std::stringstream csv;
  engine::write_campaign_csv(csv, *report);

  const auto model = engine::train_selector(csv, &error);
  ASSERT_TRUE(model.has_value()) << error;
  ASSERT_EQ(model->centroids.size(), 2u);
  EXPECT_EQ(model->centroids[0].label, "interval");
  EXPECT_EQ(model->centroids[1].label, "weighted");
  for (const SelectorCentroid& centroid : model->centroids) {
    ASSERT_FALSE(centroid.ranking.empty()) << centroid.label;
    for (const std::string& name : centroid.ranking) {
      EXPECT_NE(registry.find(name), nullptr)
          << centroid.label << " ranked unregistered '" << name << "'";
    }
  }
  for (std::size_t i = 0; i < engine::kFeatureCount; ++i) {
    EXPECT_TRUE(std::isfinite(model->mu[i]));
    EXPECT_GT(model->sigma[i], 0.0);
  }
  // The trained model survives its own serialization...
  std::stringstream text;
  engine::write_model(text, *model);
  const auto reparsed = engine::parse_model(text, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(*reparsed, *model);
  // ...and routes a weighted query to weighted-kind solvers.
  const ProblemInstance inst = scenario_instance("weighted", 10, 3);
  const std::vector<std::string> picked =
      engine::select_solvers(*model, engine::extract_features(inst), 3);
  ASSERT_FALSE(picked.empty());
  for (const std::string& name : picked) {
    const core::Solver* solver = registry.find(name);
    ASSERT_NE(solver, nullptr);
    EXPECT_EQ(solver->kind, inst.kind) << name;
  }
}

TEST(Selector, TrainingRejectsGarbageCsv) {
  std::string error;
  std::istringstream missing_column("scenario,n,g\ninterval,8,3\n");
  EXPECT_FALSE(engine::train_selector(missing_column, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::istringstream bad_row(
      "scenario,n,g,seed,solver,runs,ok,feasible,exact,declined,timed_out,"
      "ratio_mean,ratio_median,ratio_p95,ratio_max,wall_median_ms,"
      "wall_total_ms\n"
      "interval,eight,3,1,busy/first-fit,2,2,2,0,0,0,1,1,1,1,0.1,0.2\n");
  EXPECT_FALSE(engine::train_selector(bad_row, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::istringstream unknown_scenario(
      "scenario,n,g,seed,solver,runs,ok,feasible,exact,declined,timed_out,"
      "ratio_mean,ratio_median,ratio_p95,ratio_max,wall_median_ms,"
      "wall_total_ms\n"
      "no-such-scenario,8,3,1,busy/first-fit,2,2,2,0,0,0,1,1,1,1,0.1,0.2\n");
  EXPECT_FALSE(engine::train_selector(unknown_scenario, &error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace abt
