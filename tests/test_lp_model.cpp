// Direct unit coverage of the LP1 model builder and the right-shift
// preprocessing (Lemma 3) — the internals behind the 2-approximation.
#include "active/lp_model.hpp"

#include <gtest/gtest.h>

#include "active/lp_rounding.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"

namespace abt::active {
namespace {

using core::SlottedInstance;

TEST(LpModel, VariableLayout) {
  const SlottedInstance inst({{0, 3, 2}, {1, 4, 1}}, 2);
  const ActiveTimeLp model(inst);
  // y per candidate slot (1..4), x per (job, window slot).
  EXPECT_EQ(static_cast<int>(model.slots().size()), 4);
  EXPECT_EQ(model.problem().num_vars, 4 + 3 + 3);
  EXPECT_GE(model.y_index(1), 0);
  EXPECT_GE(model.x_index(0, 3), 0);
  EXPECT_EQ(model.x_index(0, 4), -1) << "slot 4 outside job 0's window";
  EXPECT_EQ(model.x_index(1, 1), -1) << "slot 1 before job 1's release";
}

TEST(LpModel, ObjectiveCountsOnlyYVariables) {
  const SlottedInstance inst({{0, 3, 2}}, 1);
  const ActiveTimeLp model(inst);
  double total = 0;
  for (double c : model.problem().objective) total += c;
  EXPECT_DOUBLE_EQ(total, 3.0) << "three candidate slots, cost 1 each";
}

TEST(LpModel, RigidJobForcesFullWindow) {
  const SlottedInstance inst({{1, 4, 3}}, 1);
  const ActiveLpSolution lp = solve_active_lp(ActiveTimeLp(inst));
  ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(lp.objective, 3.0, 1e-7);
  for (double y : lp.y) EXPECT_NEAR(y, 1.0, 1e-7);
}

TEST(LpModel, CapacitySharingShowsInObjective) {
  // Two unit jobs, same slot pair, g = 2: LP opens one slot fully.
  const SlottedInstance inst({{0, 2, 1}, {0, 2, 1}}, 2);
  const ActiveLpSolution lp = solve_active_lp(ActiveTimeLp(inst));
  EXPECT_NEAR(lp.objective, 1.0, 1e-7);
}

TEST(LpModel, FractionalOptimumOnGapFamily) {
  // The g=2 gap instance: 3 unit jobs per slot pair, y = (1, 1/2) per pair.
  const SlottedInstance inst = gen::lp_gap_instance(2);
  const ActiveLpSolution lp = solve_active_lp(ActiveTimeLp(inst));
  ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(lp.objective, 3.0, 1e-7);
}

TEST(RightShift, SegmentMassesSumToObjective) {
  core::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 8));
    params.horizon = 10;
    params.capacity = 2;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const ActiveTimeLp model(inst);
    const ActiveLpSolution lp = solve_active_lp(model);
    ASSERT_EQ(lp.status, lp::SolveStatus::kOptimal);
    const RightShiftedLp rs = right_shift(inst, model.slots(), lp.y);
    double total = 0;
    for (double m : rs.segment_mass) total += m;
    EXPECT_NEAR(total, lp.objective, 1e-6)
        << "right-shifting must conserve the LP mass";
    EXPECT_NEAR(rs.objective, lp.objective, 1e-6);
    // Deadlines ascending, one mass per deadline.
    EXPECT_EQ(rs.deadlines.size(), rs.segment_mass.size());
    for (std::size_t i = 1; i < rs.deadlines.size(); ++i) {
      EXPECT_LT(rs.deadlines[i - 1], rs.deadlines[i]);
    }
  }
}

TEST(RightShift, MassFitsSegmentCapacity) {
  core::Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = 6;
    params.horizon = 9;
    params.capacity = 3;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const ActiveTimeLp model(inst);
    const ActiveLpSolution lp = solve_active_lp(model);
    const RightShiftedLp rs = right_shift(inst, model.slots(), lp.y);
    core::SlotTime prev = 0;
    for (std::size_t i = 0; i < rs.deadlines.size(); ++i) {
      EXPECT_LE(rs.segment_mass[i],
                static_cast<double>(rs.deadlines[i] - prev) + 1e-6)
          << "segment mass cannot exceed the number of slots in it";
      prev = rs.deadlines[i];
    }
  }
}

// Regression (PR 8): model CONSTRUCTION used to be uninterruptible — on a
// large instance a cancelled context still paid the full O(n * horizon)
// row build before the simplex's own polls could notice. The build now
// polls should_stop between row batches and abandons promptly.
TEST(LpModel, BuildPollsCancellationAndAbandonsPromptly) {
  core::Rng rng(11);
  gen::SlottedParams params;
  params.num_jobs = 40;
  params.horizon = 120;
  params.capacity = 3;
  const SlottedInstance inst = gen::random_feasible_slotted(rng, params);

  // A pre-cancelled context never builds a single constraint row.
  core::CancelSource source;
  source.cancel();
  const core::RunContext cancelled =
      core::RunContext().set_cancel_token(source.token());
  const ActiveTimeLp aborted(inst, &cancelled);
  EXPECT_TRUE(aborted.build_cancelled());
  EXPECT_TRUE(aborted.problem().rows.empty());
  // solve_active_lp surfaces the abandoned build as kCancelled without
  // ever touching the partial model.
  EXPECT_EQ(solve_active_lp(aborted, &cancelled).status,
            lp::SolveStatus::kCancelled);
  EXPECT_EQ(solve_active_lp(aborted).status, lp::SolveStatus::kCancelled);

  // A budget that expires DURING construction (armed, then spun down to
  // zero) trips a mid-build poll: the model reports cancelled without the
  // caller ever reaching the simplex.
  const core::RunContext expiring = core::RunContext::with_budget_ms(1e-6);
  while (!expiring.out_of_budget()) {
  }
  const ActiveTimeLp mid_build(inst, &expiring);
  EXPECT_TRUE(mid_build.build_cancelled());

  // Control: the same instance with a live generous context builds fully
  // and solves — the polls are observation only.
  const core::RunContext generous = core::RunContext::with_budget_ms(60'000);
  const ActiveTimeLp complete(inst, &generous);
  EXPECT_FALSE(complete.build_cancelled());
  EXPECT_FALSE(complete.problem().rows.empty());
  EXPECT_EQ(solve_active_lp(complete, &generous).status,
            lp::SolveStatus::kOptimal);
}

}  // namespace
}  // namespace abt::active
