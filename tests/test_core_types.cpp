// Unit coverage for the foundational value types: jobs, instances, rng.
#include <gtest/gtest.h>

#include "core/continuous_instance.hpp"
#include "core/rng.hpp"
#include "core/slotted_instance.hpp"

namespace abt::core {
namespace {

TEST(SlottedJob, WindowAndLiveness) {
  const SlottedJob j{2, 6, 3};
  EXPECT_EQ(j.window_size(), 4);
  EXPECT_TRUE(j.window_fits());
  EXPECT_FALSE(j.rigid());
  EXPECT_FALSE(j.live_in_slot(2)) << "slot r is before the window";
  EXPECT_TRUE(j.live_in_slot(3));
  EXPECT_TRUE(j.live_in_slot(6));
  EXPECT_FALSE(j.live_in_slot(7));
  const SlottedJob rigid{1, 3, 2};
  EXPECT_TRUE(rigid.rigid());
}

TEST(ContinuousJob, IntervalDetectionAndLatestStart) {
  const ContinuousJob interval{1.0, 3.0, 2.0};
  EXPECT_TRUE(interval.is_interval_job());
  EXPECT_DOUBLE_EQ(interval.latest_start(), 1.0);
  const ContinuousJob flexible{0.0, 10.0, 2.0};
  EXPECT_FALSE(flexible.is_interval_job());
  EXPECT_DOUBLE_EQ(flexible.latest_start(), 8.0);
}

TEST(SlottedInstance, AggregatesAndBounds) {
  const SlottedInstance inst({{0, 4, 2}, {2, 9, 3}}, 2);
  EXPECT_EQ(inst.size(), 2);
  EXPECT_EQ(inst.horizon(), 9);
  EXPECT_EQ(inst.total_work(), 5);
  EXPECT_EQ(inst.mass_lower_bound(), 3);  // ceil(5/2)
}

TEST(SlottedInstance, LiveJobsPerSlot) {
  const SlottedInstance inst({{0, 2, 1}, {1, 3, 1}}, 1);
  EXPECT_EQ(inst.live_jobs(1), (std::vector<JobId>{0}));
  EXPECT_EQ(inst.live_jobs(2), (std::vector<JobId>{0, 1}));
  EXPECT_EQ(inst.live_jobs(3), (std::vector<JobId>{1}));
  EXPECT_TRUE(inst.live_jobs(4).empty());
}

TEST(SlottedInstance, StructuralValidationMessages) {
  std::string why;
  EXPECT_FALSE(SlottedInstance({{-1, 2, 1}}, 1).structurally_valid(&why));
  EXPECT_NE(why.find("negative"), std::string::npos);
  EXPECT_FALSE(SlottedInstance({{0, 2, 0}}, 1).structurally_valid(&why));
  EXPECT_FALSE(SlottedInstance({{0, 2, 3}}, 1).structurally_valid(&why));
  EXPECT_NE(why.find("window"), std::string::npos);
  EXPECT_TRUE(SlottedInstance({{0, 2, 2}}, 1).structurally_valid());
}

TEST(ContinuousInstance, MassAndWindows) {
  const ContinuousInstance inst({{0, 4, 2}, {1, 3, 2}}, 2);
  EXPECT_DOUBLE_EQ(inst.total_mass(), 4.0);
  EXPECT_DOUBLE_EQ(inst.mass_lower_bound(), 2.0);
  EXPECT_FALSE(inst.all_interval_jobs()) << "first job has slack";
  const auto windows = inst.windows();
  EXPECT_DOUBLE_EQ(windows[0].hi, 4.0);
  const auto forced = inst.forced_intervals();
  EXPECT_DOUBLE_EQ(forced[0].hi, 2.0);
}

TEST(ContinuousInstance, ToleratesFloatRoundingInWindowFit) {
  // (release + length) - release can round below length; the instance must
  // still validate (regression test for the generator crash).
  const double release = 0.1;
  const double length = 0.30000000000000004;
  const ContinuousInstance inst({{release, release + length, length}}, 1);
  std::string why;
  EXPECT_TRUE(inst.structurally_valid(&why)) << why;
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
  Rng c(43);
  bool any_different = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.uniform_int(0, 1000) != c.uniform_int(0, 1000)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Rng, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    const double r = rng.uniform_real(1.5, 2.5);
    EXPECT_GE(r, 1.5);
    EXPECT_LT(r, 2.5);
  }
}

}  // namespace
}  // namespace abt::core
