#include "busy/dp_unbounded.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"
#include "test_util.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;

void expect_valid_solution(const ContinuousInstance& inst,
                           const UnboundedSolution& sol) {
  ASSERT_EQ(sol.starts.size(), static_cast<std::size_t>(inst.size()));
  std::vector<core::Interval> runs;
  for (int j = 0; j < inst.size(); ++j) {
    const auto& job = inst.job(j);
    const double s = sol.starts[static_cast<std::size_t>(j)];
    EXPECT_GE(s, job.release - 1e-9) << "job " << j;
    EXPECT_LE(s, job.latest_start() + 1e-9) << "job " << j;
    runs.push_back({s, s + job.length});
  }
  EXPECT_NEAR(core::span_of(runs), sol.busy_time, 1e-9);
}

TEST(DpUnbounded, EmptyInstance) {
  const ContinuousInstance inst({}, 1);
  const auto sol = solve_unbounded(inst);
  EXPECT_DOUBLE_EQ(sol.busy_time, 0.0);
  EXPECT_TRUE(sol.exact);
}

TEST(DpUnbounded, SingleJobCostsItsLength) {
  const ContinuousInstance inst({{2, 9, 3}}, 1);
  const auto sol = solve_unbounded(inst);
  expect_valid_solution(inst, sol);
  EXPECT_NEAR(sol.busy_time, 3.0, 1e-9);
}

TEST(DpUnbounded, OverlappingFlexibleJobsStack) {
  // Two flexible jobs that can fully overlap: cost = max length.
  const ContinuousInstance inst({{0, 10, 4}, {0, 10, 3}}, 1);
  const auto sol = solve_unbounded(inst);
  expect_valid_solution(inst, sol);
  EXPECT_NEAR(sol.busy_time, 4.0, 1e-9);
}

TEST(DpUnbounded, BridgingJobLinksTwoRigidOnes) {
  // Rigid [0,2) and [8,10); flexible length 2 in window [0,10): tucks into
  // either rigid run -> total 4, no bridge needed.
  const ContinuousInstance inst({{0, 2, 2}, {8, 10, 2}, {0, 10, 2}}, 1);
  const auto sol = solve_unbounded(inst);
  expect_valid_solution(inst, sol);
  EXPECT_NEAR(sol.busy_time, 4.0, 1e-9);
}

TEST(DpUnbounded, AnchoredAtLatestStart) {
  // The [5,13) merge example: A window [0,10) p=5, B rigid [8,13) p=5.
  // Optimal: A at [5,10) glued to B -> busy time 8.
  const ContinuousInstance inst({{0, 10, 5}, {8, 13, 5}}, 1);
  const auto sol = solve_unbounded(inst);
  expect_valid_solution(inst, sol);
  EXPECT_NEAR(sol.busy_time, 8.0, 1e-9);
}

TEST(DpUnbounded, FlexibleParksInEarlyRunDespiteLateDeadline) {
  // The case that breaks naive consecutive-grouping DPs: rigid [0,10),
  // rigid [20,21), flexible p=10 window [0,1000) must reuse the *early*
  // run even though its deadline is the latest.
  const ContinuousInstance inst({{0, 10, 10}, {20, 21, 1}, {0, 1000, 10}}, 1);
  const auto sol = solve_unbounded(inst);
  expect_valid_solution(inst, sol);
  EXPECT_NEAR(sol.busy_time, 11.0, 1e-9);
}

TEST(DpUnbounded, IntervalJobsGiveExactlyTheSpan) {
  core::Rng rng(5);
  gen::ContinuousParams params;
  params.num_jobs = 14;
  params.horizon = 18;
  const ContinuousInstance inst = gen::random_continuous(rng, params);
  const auto sol = solve_unbounded(inst);
  EXPECT_NEAR(sol.busy_time, core::span_of(inst.forced_intervals()), 1e-9);
}

TEST(DpUnbounded, Fig9FreezeIsSpanOptimal) {
  const int g = 4;
  const double eps = 0.01;
  const auto flexible = gen::fig9_instance(g, eps);
  const auto adversarial = gen::fig9_adversarial_freeze(g, eps);
  const auto sol = solve_unbounded(flexible);
  ASSERT_TRUE(sol.exact);
  // The adversarial freeze hides every flexible job inside a block, so the
  // DP value must equal its span (the minimum possible).
  EXPECT_NEAR(sol.busy_time, core::span_of(adversarial.forced_intervals()),
              1e-9);
}

TEST(DpUnbounded, FreezeProducesIntervalInstanceWithSameCapacity) {
  const ContinuousInstance inst({{0, 10, 5}, {8, 13, 5}}, 7);
  const auto sol = solve_unbounded(inst);
  const ContinuousInstance frozen = freeze_to_interval_instance(inst, sol);
  EXPECT_EQ(frozen.capacity(), 7);
  EXPECT_TRUE(frozen.all_interval_jobs());
  EXPECT_NEAR(core::span_of(frozen.forced_intervals()), sol.busy_time, 1e-9);
}

TEST(DpUnbounded, ManyIdenticalStragglersStayTractable) {
  // 12 identical flexible jobs spanning three rigid anchors: identical jobs
  // are satisfied all-or-none by any window, so the pending sets stay
  // block-structured and the state count stays tiny.
  std::vector<core::ContinuousJob> jobs;
  for (int k = 0; k < 3; ++k) {
    jobs.push_back({10.0 * k, 10.0 * k + 2, 2.0});  // rigid anchors
  }
  for (int i = 0; i < 12; ++i) {
    jobs.push_back({0.0, 100.0, 1.5});  // identical straddlers
  }
  const ContinuousInstance inst(std::move(jobs), 1);
  const auto sol = solve_unbounded(inst);
  ASSERT_TRUE(sol.exact);
  expect_valid_solution(inst, sol);
  // Straggers tuck inside the 2-wide anchors: cost = 3 anchors only.
  EXPECT_NEAR(sol.busy_time, 6.0, 1e-9);
  EXPECT_LT(sol.nodes, 2000) << "identical jobs must collapse in the state";
}

TEST(DpUnbounded, StateLimitFallsBackToValidUpperBound) {
  std::vector<core::ContinuousJob> jobs;
  core::Rng rng(33);
  for (int i = 0; i < 10; ++i) {
    const double r = rng.uniform_real(0, 10);
    const double p = rng.uniform_real(0.5, 2.0);
    jobs.push_back({r, r + p + rng.uniform_real(0, 4), p});
  }
  const ContinuousInstance inst(std::move(jobs), 1);
  UnboundedOptions options;
  options.state_limit = 1;  // force the fallback
  const auto sol = solve_unbounded(inst, options);
  EXPECT_FALSE(sol.exact);
  expect_valid_solution(inst, sol);  // push-left schedule is still feasible
  const auto exact = solve_unbounded(inst);
  ASSERT_TRUE(exact.exact);
  EXPECT_GE(sol.busy_time, exact.busy_time - 1e-9)
      << "fallback is an upper bound";
}

/// Property: exact against full enumeration of integral starts.
class DpVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(DpVsBrute, MatchesBruteForceOnIntegerInstances) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 60013ULL);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<core::ContinuousJob> jobs;
    for (int i = 0; i < n; ++i) {
      const double p = static_cast<double>(rng.uniform_int(1, 4));
      const double r = static_cast<double>(rng.uniform_int(0, 8));
      const double slack = static_cast<double>(rng.uniform_int(0, 5));
      jobs.push_back({r, r + p + slack, p});
    }
    const ContinuousInstance inst(std::move(jobs), 1);
    const double brute = testutil::brute_force_unbounded(inst);
    const auto sol = solve_unbounded(inst);
    ASSERT_TRUE(sol.exact);
    expect_valid_solution(inst, sol);
    EXPECT_NEAR(sol.busy_time, brute, 1e-9)
        << "g=infinity DP must be exact (Theorem 4)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpVsBrute, ::testing::Range(1, 17));

}  // namespace
}  // namespace abt::busy
