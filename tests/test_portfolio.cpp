// Portfolio racing: the determinism contract (which contestant wins is
// timing-dependent, everything reported about the winner is not), the
// cancellation-storm stability of the shared pool underneath back-to-back
// races, and the campaign integration. The race-equivalence property —
// winner cost == a standalone run of that solver, all-exact races report a
// bit-identical fingerprint for every thread count and repetition — is
// what makes racing safe to put in front of users: faster, never
// different.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/run_context.hpp"
#include "core/solver.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/campaign.hpp"
#include "engine/parallel.hpp"
#include "engine/portfolio.hpp"
#include "engine/runner.hpp"

namespace abt {
namespace {

using core::ProblemInstance;
using core::RunContext;
using core::Solution;
using engine::RaceEntry;
using engine::RaceOptions;
using engine::RaceReport;

ProblemInstance scenario_instance(const std::string& name, int n, int g,
                                  std::uint64_t seed = 7) {
  engine::ScenarioSpec spec;
  spec.name = name;
  spec.n = n;
  spec.g = g;
  spec.seed = seed;
  std::string error;
  const auto inst = engine::make_scenario(spec, &error);
  EXPECT_TRUE(inst.has_value()) << name << ": " << error;
  return *inst;
}

/// One representative (scenario, size, exact solver) per instance kind —
/// small enough that every exact solver is inside its ungated size range.
struct KindCase {
  const char* scenario;
  int n;
  int g;
  const char* exact_solver;
};

const std::vector<KindCase>& kind_cases() {
  static const std::vector<KindCase> kCases = {
      {"interval", 10, 3, "busy/exact"},
      {"slotted", 8, 2, "active/exact"},
      {"weighted", 10, 3, "busy/weighted-exact"},
      {"multi-window", 6, 2, "active/multi-window-exact"},
  };
  return kCases;
}

TEST(Portfolio, WinnerIsCheckerVerifiedAndMatchesStandaloneRun) {
  const core::SolverRegistry& registry = engine::shared_registry();
  for (const KindCase& kind : kind_cases()) {
    const ProblemInstance inst =
        scenario_instance(kind.scenario, kind.n, kind.g);
    const std::vector<RaceEntry> entries =
        engine::auto_entries(registry, inst);
    ASSERT_FALSE(entries.empty()) << kind.scenario;
    // 0 is the CLI's default (resolved to hardware concurrency), not a
    // synonym for the serial path.
    for (const int threads : {0, 1, 2, 8}) {
      RaceOptions options;
      options.threads = threads;
      const RaceReport report =
          engine::race(registry, inst, entries, RunContext(), options);
      ASSERT_EQ(report.rows.size(), entries.size());
      ASSERT_GE(report.winner, 0)
          << kind.scenario << " at " << threads << " threads";
      const Solution& winner =
          report.rows[static_cast<std::size_t>(report.winner)];
      EXPECT_TRUE(winner.ok);
      EXPECT_TRUE(winner.feasible) << winner.solver << ": " << winner.message;
      EXPECT_FALSE(winner.timed_out);
      // Race equivalence: the winner's cost is exactly what a standalone
      // run of that solver reports — racing changes the wall clock, never
      // the answer attributed to a solver.
      engine::RunOptions standalone;
      standalone.solvers = {winner.solver};
      const engine::RunReport ref =
          engine::run_instance(registry, inst, standalone);
      ASSERT_EQ(ref.solutions.size(), 1u);
      EXPECT_TRUE(ref.solutions[0].feasible);
      EXPECT_EQ(winner.cost, ref.solutions[0].cost)
          << winner.solver << " raced vs standalone, " << threads
          << " threads";
    }
  }
}

TEST(Portfolio, AllExactRaceFingerprintIsThreadAndRepetitionInvariant) {
  // Duplicate entries of the kind's exact solver: WHICH copy wins depends
  // on timing, but every copy that completes proves the same optimum, so
  // the reported (cost, exact, best_bound, feasible) fingerprint must be
  // bit-identical across thread counts and repetitions.
  const core::SolverRegistry& registry = engine::shared_registry();
  for (const KindCase& kind : kind_cases()) {
    const ProblemInstance inst =
        scenario_instance(kind.scenario, kind.n, kind.g);
    const std::vector<RaceEntry> entries(3, RaceEntry{kind.exact_solver, 0.0});
    std::set<std::tuple<double, bool, bool, double>> fingerprints;
    for (const int threads : {0, 1, 2, 8}) {
      const int reps = threads == 8 ? 3 : 1;
      for (int rep = 0; rep < reps; ++rep) {
        RaceOptions options;
        options.threads = threads;
        const RaceReport report =
            engine::race(registry, inst, entries, RunContext(), options);
        ASSERT_GE(report.winner, 0) << kind.scenario;
        const Solution& winner =
            report.rows[static_cast<std::size_t>(report.winner)];
        EXPECT_TRUE(winner.exact) << kind.scenario;
        fingerprints.insert({winner.cost, winner.feasible, winner.exact,
                             report.best_bound});
      }
    }
    EXPECT_EQ(fingerprints.size(), 1u)
        << kind.scenario << ": all-exact races must agree bit-for-bit";
  }
}

TEST(Portfolio, SingleThreadRaceIsFirstAcceptableInEntryOrder) {
  // At one thread the race runs inline and sequentially: the first entry
  // that passes acceptance wins, deterministically, and later entries are
  // drained as cancelled without running.
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 10, 3);
  const std::vector<RaceEntry> entries = {{"busy/weighted-narrow-wide", 0.0},
                                          {"busy/weighted-first-fit", 0.0}};
  RaceOptions options;
  options.threads = 1;
  for (int rep = 0; rep < 3; ++rep) {
    const RaceReport report =
        engine::race(registry, inst, entries, RunContext(), options);
    EXPECT_EQ(report.winner, 0);
    EXPECT_EQ(report.rows[1].message, "cancelled");
    EXPECT_TRUE(report.rows[1].timed_out);
    EXPECT_EQ(report.cancelled, 1);
  }
}

TEST(Portfolio, DefaultThreadsRaceRunsContestantsConcurrently) {
  // Regression: threads = 0 (the CLI default for --race without
  // --threads) must fan out over the pool, not fall into parallel_for's
  // serial path. With the slow exact solver listed FIRST and no budget, a
  // sequential race deterministically runs it to completion, crowns it,
  // and drains the greedy without ever running it; a concurrent race lets
  // the microsecond greedy finish (and almost always win) while the exact
  // search is still working.
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 pool workers to observe concurrency";
  }
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 12, 3);
  const std::vector<RaceEntry> entries = {{"busy/weighted-exact", 0.0},
                                          {"busy/weighted-first-fit", 0.0}};
  bool greedy_ran = false;
  for (int rep = 0; rep < 5 && !greedy_ran; ++rep) {
    const RaceReport report =
        engine::race(registry, inst, entries, RunContext(), {});
    ASSERT_GE(report.winner, 0);
    const Solution& winner =
        report.rows[static_cast<std::size_t>(report.winner)];
    EXPECT_TRUE(winner.feasible) << winner.solver << ": " << winner.message;
    // Serial would leave the greedy drained (ok = false, "cancelled") in
    // every rep; concurrency means it actually ran in at least one.
    greedy_ran = report.winner == 1 || report.rows[1].ok;
  }
  EXPECT_TRUE(greedy_ran)
      << "threads = 0 raced sequentially: the greedy entry never ran";
}

TEST(Portfolio, OwnBudgetExpiryIsNotCountedAsCancelled) {
  // Contestants that exhaust their own per-entry budget cap were not
  // interrupted by the race: with an unattainable acceptance gap nobody
  // wins, the race source never trips, and `cancelled` must stay 0 even
  // though every row is timed out.
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 22, 3);
  const std::vector<RaceEntry> entries = {{"busy/weighted-exact", 10.0},
                                          {"busy/weighted-exact", 10.0}};
  RaceOptions options;
  options.accept_gap = 1e-9;
  const RaceReport report =
      engine::race(registry, inst, entries, RunContext(), options);
  EXPECT_EQ(report.winner, -1);
  for (const Solution& sol : report.rows) {
    ASSERT_TRUE(sol.ok) << sol.solver << ": " << sol.message;
    EXPECT_TRUE(sol.timed_out) << sol.solver;
  }
  EXPECT_EQ(report.cancelled, 0)
      << "per-entry budget expiry misreported as race cancellation";
}

TEST(Portfolio, CallerAbortedRaceDeclaresNoWinner) {
  // The caller cancels mid-run (here: from the incumbent hook, which the
  // child context inherits, so the abort lands while the contestant is
  // working). The interrupted contestant still returns a checker-verified
  // incumbent — which must surface as best effort, never as WINNER: an
  // externally aborted race did not finish.
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 12, 3);
  core::CancelSource source;
  RunContext parent;
  parent.set_cancel_token(source.token());
  parent.set_incumbent_hook(
      [&source](const core::Incumbent&) { source.cancel(); });
  RaceOptions options;
  options.threads = 1;
  const RaceReport report = engine::race(
      registry, inst, {{"busy/weighted-exact", 0.0}}, parent, options);
  EXPECT_EQ(report.winner, -1)
      << "a race the caller aborted must not report a winner";
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_TRUE(report.rows[0].ok);
  EXPECT_TRUE(report.rows[0].feasible) << report.rows[0].message;
  EXPECT_EQ(report.best, 0);  // the incumbent stays visible as best effort
}

TEST(Portfolio, ReportsTightestCertifiedBound) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 10, 3);
  // Reference bound alone (greedy-only race, no certificates beyond the
  // combinatorial reference):
  const RaceReport greedy = engine::race(
      registry, inst, {{"busy/weighted-first-fit", 0.0}}, RunContext(), {});
  EXPECT_GT(greedy.reference.value, 0.0);
  EXPECT_GE(greedy.best_bound, greedy.reference.value);
  // An exact completion certifies OPT: the race's bound must tighten to
  // exactly the winner's cost.
  RaceOptions serial;
  serial.threads = 1;
  const RaceReport exact =
      engine::race(registry, inst, {{"busy/weighted-exact", 0.0}},
                   RunContext(), serial);
  ASSERT_GE(exact.winner, 0);
  const Solution& winner =
      exact.rows[static_cast<std::size_t>(exact.winner)];
  ASSERT_TRUE(winner.exact);
  EXPECT_EQ(exact.best_bound, winner.cost);
  EXPECT_GE(exact.best_bound, greedy.best_bound);
}

TEST(Portfolio, NoAcceptableWinnerFallsBackToBestEffort) {
  // An acceptance gap no greedy can certify: nobody wins, nobody is
  // cancelled (the race runs out of contestants, not patience), and
  // `best` still points at the cheapest checker-verified row.
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 16, 3);
  const std::vector<RaceEntry> entries = {{"busy/weighted-first-fit", 0.0},
                                          {"busy/weighted-narrow-wide", 0.0}};
  RaceOptions options;
  options.accept_gap = 1e-9;
  const RaceReport report =
      engine::race(registry, inst, entries, RunContext(), options);
  EXPECT_EQ(report.winner, -1);
  EXPECT_EQ(report.cancelled, 0);
  ASSERT_GE(report.best, 0);
  const Solution& best = report.rows[static_cast<std::size_t>(report.best)];
  EXPECT_TRUE(best.feasible);
  for (const Solution& sol : report.rows) {
    EXPECT_TRUE(sol.ok) << sol.solver;
    if (sol.feasible) {
      EXPECT_GE(sol.cost, best.cost);
    }
  }
}

TEST(Portfolio, UnknownEntriesGetRefusalRowsWithoutKillingTheRace) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("interval", 8, 2);
  const RaceReport report = engine::race(
      registry, inst, {{"no/such-solver", 0.0}, {"busy/first-fit", 0.0}},
      RunContext(), {});
  ASSERT_EQ(report.rows.size(), 2u);
  EXPECT_FALSE(report.rows[0].ok);
  EXPECT_EQ(report.rows[0].message, "unknown solver");
  EXPECT_EQ(report.winner, 1);
  // All-unknown: no winner, no best, but still one stamped row per entry.
  const RaceReport none = engine::race(
      registry, inst, {{"no/such-solver", 0.0}}, RunContext(), {});
  EXPECT_EQ(none.winner, -1);
  EXPECT_EQ(none.best, -1);
}

TEST(Portfolio, PreCancelledParentDrainsEveryContestant) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("interval", 10, 3);
  core::CancelSource source;
  source.cancel();
  const RunContext parent = RunContext().set_cancel_token(source.token());
  const std::vector<RaceEntry> entries = {{"busy/first-fit", 0.0},
                                          {"busy/greedy-tracking", 0.0},
                                          {"busy/exact", 0.0}};
  const RaceReport report =
      engine::race(registry, inst, entries, parent, {});
  EXPECT_EQ(report.winner, -1);
  for (const Solution& sol : report.rows) {
    EXPECT_FALSE(sol.ok) << sol.solver;
    EXPECT_EQ(sol.message, "cancelled") << sol.solver;
  }
}

TEST(Portfolio, AutoEntriesCoverApplicableSolversPerKind) {
  const core::SolverRegistry& registry = engine::shared_registry();
  for (const KindCase& kind : kind_cases()) {
    const ProblemInstance inst =
        scenario_instance(kind.scenario, kind.n, kind.g);
    const std::vector<RaceEntry> entries =
        engine::auto_entries(registry, inst);
    ASSERT_FALSE(entries.empty()) << kind.scenario;
    std::set<std::string> seen;
    for (const RaceEntry& entry : entries) {
      const core::Solver* solver = registry.find(entry.solver);
      ASSERT_NE(solver, nullptr) << entry.solver;
      EXPECT_EQ(solver->family, inst.family) << entry.solver;
      EXPECT_EQ(solver->kind, inst.kind) << entry.solver;
      EXPECT_TRUE(seen.insert(entry.solver).second)
          << entry.solver << " listed twice";
    }
  }
}

TEST(Portfolio, AutoEntriesFollowTheSelectorRanking) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 10, 3);
  engine::SelectorModel model;
  model.mu.fill(0.0);
  model.sigma.fill(1.0);
  engine::SelectorCentroid centroid;
  centroid.label = "weighted";
  centroid.center = engine::extract_features(inst).values;
  centroid.ranking = {"busy/weighted-narrow-wide", "not/registered",
                      "busy/weighted-exact"};
  model.centroids.push_back(centroid);
  const std::vector<RaceEntry> entries =
      engine::auto_entries(registry, inst, &model, 3);
  ASSERT_EQ(entries.size(), 2u);  // the unregistered pick is dropped
  EXPECT_EQ(entries[0].solver, "busy/weighted-narrow-wide");
  EXPECT_EQ(entries[1].solver, "busy/weighted-exact");
  // A model whose picks apply nowhere falls back to every applicable
  // solver instead of racing nothing.
  model.centroids[0].ranking = {"not/registered"};
  const std::vector<RaceEntry> fallback =
      engine::auto_entries(registry, inst, &model, 3);
  EXPECT_GT(fallback.size(), 2u);
}

/// 200 back-to-back race/cancel cycles on the shared pool: every cycle
/// trips the race-local CancelSource (the winner finishes in microseconds
/// while the exact contestant is still working), so this hammers the
/// wakeup/drain path. Extends the PR 7 pool assertions: no lost wakeups
/// (every cycle terminates with all rows stamped exactly once), no new
/// worker slots, and the warm slots' arena footprint stops growing.
TEST(Portfolio, CancellationStormKeepsThePoolStable) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = scenario_instance("weighted", 12, 3);
  const std::vector<RaceEntry> entries = {{"busy/weighted-narrow-wide", 0.0},
                                          {"busy/weighted-first-fit", 0.0},
                                          {"busy/weighted-exact", 0.0}};
  RaceOptions options;
  options.threads = 4;
  const auto run_once = [&] {
    const RaceReport report =
        engine::race(registry, inst, entries, RunContext(), options);
    ASSERT_EQ(report.rows.size(), entries.size());
    ASSERT_GE(report.winner, 0);
    int stamped = 0;
    for (const Solution& sol : report.rows) {
      // Exactly-once slot writes: every row names its solver (run,
      // drained, or refused) — an unstamped default row would be empty.
      EXPECT_FALSE(sol.solver.empty());
      ++stamped;
    }
    EXPECT_EQ(stamped, static_cast<int>(entries.size()));
  };
  const auto footprint = [] {
    std::size_t total = 0;
    for (const engine::WorkerStats& s :
         engine::ThreadPool::shared().worker_stats()) {
      total += s.arena_capacity;
    }
    return total;
  };
  // Warm the pool so the arena high-water marks reflect this workload.
  for (int i = 0; i < 8; ++i) run_once();
  const std::size_t slots = engine::ThreadPool::shared().worker_stats().size();
  const std::size_t warm_footprint = footprint();
  for (int cycle = 0; cycle < 200; ++cycle) {
    run_once();
    if (HasFatalFailure()) {
      FAIL() << "storm aborted at cycle " << cycle;
    }
  }
  EXPECT_EQ(engine::ThreadPool::shared().worker_stats().size(), slots)
      << "no new worker slots under a cancellation storm";
  EXPECT_LE(footprint(), warm_footprint + (std::size_t{64} << 10))
      << "warm worker arenas must be reused, not regrown per race";
}

TEST(Portfolio, CampaignRacesEveryCellAndTalliesWinners) {
  const core::SolverRegistry& registry = engine::shared_registry();
  engine::CampaignGrid grid;
  grid.scenarios = {"interval", "weighted"};
  grid.ns = {8, 10};
  grid.gs = {3};
  engine::CampaignOptions options;
  options.trials = 3;
  options.threads = 2;
  options.race.enabled = true;
  std::string error;
  const auto report = engine::run_campaign(registry, grid, options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_TRUE(report->raced);
  ASSERT_EQ(report->points.size(), 4u);
  for (const engine::CampaignPoint& point : report->points) {
    EXPECT_EQ(point.races, 3);
    int wins = 0;
    for (const auto& [solver, count] : point.race_wins) {
      EXPECT_NE(registry.find(solver), nullptr) << solver;
      wins += count;
    }
    EXPECT_EQ(wins + point.races_unwon, point.races);
    EXPECT_GT(point.ok_cells, 0) << point.spec.name;
    EXPECT_EQ(point.infeasible_cells, 0) << point.spec.name;
    EXPECT_FALSE(point.aggregates.empty());
  }
}

TEST(Portfolio, CampaignRaceHonoursExplicitEntriesAndCancellation) {
  const core::SolverRegistry& registry = engine::shared_registry();
  engine::CampaignGrid grid;
  grid.scenarios = {"weighted"};
  grid.ns = {10};
  grid.gs = {3};
  engine::CampaignOptions options;
  options.trials = 2;
  options.threads = 1;
  options.race.enabled = true;
  options.race.entries = {{"busy/weighted-narrow-wide", 0.0},
                          {"busy/weighted-exact", 0.0}};
  std::string error;
  const auto report = engine::run_campaign(registry, grid, options, &error);
  ASSERT_TRUE(report.has_value()) << error;
  ASSERT_EQ(report->points.size(), 1u);
  // Serial races: the first entry wins each trial.
  ASSERT_EQ(report->points[0].race_wins.size(), 1u);
  EXPECT_EQ(report->points[0].race_wins[0].first,
            "busy/weighted-narrow-wide");
  EXPECT_EQ(report->points[0].race_wins[0].second, 2);

  // A campaign cancelled before it starts drains every race cell.
  core::CancelSource source;
  source.cancel();
  options.run.cancel = source.token();
  const auto drained = engine::run_campaign(registry, grid, options, &error);
  ASSERT_TRUE(drained.has_value()) << error;
  EXPECT_EQ(drained->points[0].races_unwon, 2);
  EXPECT_EQ(drained->points[0].ok_cells, 0);
}

}  // namespace
}  // namespace abt
