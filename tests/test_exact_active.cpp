#include "active/exact.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"
#include "test_util.hpp"

namespace abt::active {
namespace {

using core::SlottedInstance;

TEST(ExactActive, InfeasibleReturnsNullopt) {
  const SlottedInstance inst({{0, 1, 1}, {0, 1, 1}}, 1);
  EXPECT_FALSE(solve_exact(inst).has_value());
}

TEST(ExactActive, SingleRigidJob) {
  const SlottedInstance inst({{1, 4, 3}}, 2);
  const auto result = solve_exact(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_EQ(result->schedule.cost(), 3);
}

TEST(ExactActive, SharesSlotsAcrossJobs) {
  // Two unit jobs with overlapping windows and capacity 2: one slot.
  const SlottedInstance inst({{0, 3, 1}, {1, 4, 1}}, 2);
  const auto result = solve_exact(inst);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->schedule.cost(), 1);
}

TEST(ExactActive, Fig3OptimumIsG) {
  for (int g = 3; g <= 4; ++g) {
    const auto result = solve_exact(gen::fig3_instance(g));
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->proven_optimal);
    EXPECT_EQ(result->schedule.cost(), g);
  }
}

TEST(ExactActive, NodeLimitReturnsIncumbent) {
  core::Rng rng(5);
  gen::SlottedParams params;
  params.num_jobs = 8;
  params.horizon = 12;
  params.capacity = 2;
  const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
  ExactOptions options;
  options.node_limit = 3;
  const auto result = solve_exact(inst, options);
  ASSERT_TRUE(result.has_value());
  std::string why;
  EXPECT_TRUE(core::check_active_schedule(inst, result->schedule, &why)) << why;
}

/// Property: branch-and-bound matches subset-enumeration brute force.
class ExactVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(ExactVsBrute, MatchesBruteForce) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271828ULL);
  for (int trial = 0; trial < 10; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 7));
    params.horizon = 8;
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.max_length = 3;
    params.max_slack = 5;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const long brute = testutil::brute_force_active_opt(inst);
    const auto result = solve_exact(inst);
    ASSERT_TRUE(result.has_value());
    ASSERT_TRUE(result->proven_optimal);
    EXPECT_EQ(result->schedule.cost(), brute);
    std::string why;
    EXPECT_TRUE(core::check_active_schedule(inst, result->schedule, &why))
        << why;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBrute, ::testing::Range(1, 11));

/// Property: the unit-job greedy (lazy left-to-right closing) is exact on
/// unit instances — the case solved optimally by Chang-Gabow-Khuller [2].
class UnitGreedyExact : public ::testing::TestWithParam<int> {};

TEST_P(UnitGreedyExact, MatchesBruteForceOnUnitJobs) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1009ULL + 17);
  for (int trial = 0; trial < 15; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 9));
    params.horizon = 9;
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.unit_jobs = true;
    params.max_slack = 6;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const long brute = testutil::brute_force_active_opt(inst);
    const auto greedy = solve_unit_greedy(inst);
    ASSERT_TRUE(greedy.has_value());
    EXPECT_EQ(greedy->cost(), brute)
        << "unit-job greedy must be exact (CGK [2])";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnitGreedyExact, ::testing::Range(1, 15));

}  // namespace
}  // namespace abt::active
