// The instance-kind adapter layer: weighted busy time and multi-window
// active time as first-class registry citizens — kind gating, adapter
// checkers, guarantee factors against their own exact oracles, and the
// feasible-by-construction extended generators.
#include <gtest/gtest.h>

#include <string>

#include "active/multi_window.hpp"
#include "busy/weighted.hpp"
#include "core/rng.hpp"
#include "engine/adapters.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/runner.hpp"
#include "gen/extended_instances.hpp"

namespace abt {
namespace {

using core::Family;
using core::InstanceKind;
using core::ProblemInstance;
using core::Solution;

constexpr double kEps = 1e-6;

ProblemInstance weighted_instance(std::uint64_t seed, int n, int g,
                                  double slack = 0.0) {
  core::Rng rng(seed);
  gen::WeightedParams params;
  params.num_jobs = n;
  params.capacity = g;
  params.horizon = 12.0;
  params.max_slack = slack;
  return engine::make_weighted_instance(gen::random_weighted(rng, params));
}

ProblemInstance multi_window_instance(std::uint64_t seed, int n, int g) {
  core::Rng rng(seed);
  gen::MultiWindowParams params;
  params.num_jobs = n;
  params.capacity = g;
  // Keep candidate-slot counts small enough for the exact oracle's gate.
  params.max_length = 2;
  params.window_slack = 1;
  return engine::make_multi_window_instance(
      gen::random_multi_window(rng, params));
}

TEST(Adapters, ExtendedInstancesCarryKindAndExtension) {
  const ProblemInstance w = weighted_instance(3, 6, 4);
  EXPECT_EQ(w.family, Family::kBusy);
  EXPECT_EQ(w.kind, InstanceKind::kWeighted);
  ASSERT_NE(w.extension, nullptr);
  EXPECT_EQ(w.extension->size(), 6);
  EXPECT_EQ(w.extension->capacity(), 4);
  EXPECT_GT(w.extension->lower_bound(), 0.0);
  EXPECT_EQ(engine::weighted_of(w).size(), 6);

  const ProblemInstance m = multi_window_instance(3, 5, 2);
  EXPECT_EQ(m.family, Family::kActive);
  EXPECT_EQ(m.kind, InstanceKind::kMultiWindow);
  ASSERT_NE(m.extension, nullptr);
  EXPECT_EQ(engine::multi_window_of(m).size(), 5);

  EXPECT_EQ(core::instance_kind_name(InstanceKind::kStandard), "standard");
  EXPECT_EQ(core::instance_kind_name(InstanceKind::kWeighted), "weighted");
  EXPECT_EQ(core::instance_kind_name(InstanceKind::kMultiWindow),
            "multi-window");
}

TEST(Adapters, RegistryListsTheExtendedSolvers) {
  const core::SolverRegistry& registry = engine::shared_registry();
  for (const char* name :
       {"busy/weighted-first-fit", "busy/weighted-narrow-wide",
        "busy/weighted-exact", "busy/weighted-flexible",
        "active/multi-window-minimal", "active/multi-window-exact"}) {
    const core::Solver* solver = registry.find(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_NE(solver->kind, InstanceKind::kStandard) << name;
    EXPECT_TRUE(static_cast<bool>(solver->check))
        << name << " must register an adapter checker";
  }
}

TEST(Adapters, KindGateKeepsStandardAndExtendedSolversApart) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance weighted = weighted_instance(7, 6, 3);

  // Unrestricted run on a weighted instance: only weighted solvers fire.
  for (const Solution& sol : registry.run_applicable(weighted)) {
    EXPECT_NE(sol.solver.find("weighted"), std::string::npos) << sol.solver;
  }
  // A standard busy solver explicitly requested on a weighted instance is
  // declined (not crashed, not silently run on the empty carrier).
  const Solution declined = registry.run("busy/first-fit", weighted);
  EXPECT_FALSE(declined.ok);
  EXPECT_NE(declined.message.find("kind"), std::string::npos);
  // And the other direction.
  const ProblemInstance standard = core::make_instance(
      core::ContinuousInstance({{0.0, 2.0, 2.0}, {1.0, 3.0, 2.0}}, 2));
  const Solution wrong_kind = registry.run("busy/weighted-exact", standard);
  EXPECT_FALSE(wrong_kind.ok);
}

TEST(Adapters, AdapterCheckerRejectsOverloadedSchedules) {
  // A deliberately broken solver that piles every job onto machine 0 at
  // its release: the registry's adapter checker must veto it whenever the
  // cumulative width exceeds g.
  core::SolverRegistry registry;
  core::Solver bogus;
  bogus.name = "busy/weighted-bogus";
  bogus.family = Family::kBusy;
  bogus.kind = InstanceKind::kWeighted;
  bogus.guarantee = "none";
  bogus.check = [](const ProblemInstance& inst, const Solution& sol,
                   std::string* why) {
    return sol.busy.has_value() &&
           busy::check_weighted_schedule(engine::weighted_of(inst), *sol.busy,
                                         why);
  };
  bogus.run = [](const ProblemInstance& inst, const core::RunContext&) {
    const busy::WeightedInstance& w = engine::weighted_of(inst);
    core::BusySchedule sched;
    for (const busy::WeightedJob& wj : w.jobs()) {
      sched.placements.push_back({0, wj.job.release});
    }
    Solution sol;
    sol.ok = true;
    sol.cost = 0.0;
    sol.busy = std::move(sched);
    return sol;
  };
  registry.add(std::move(bogus));

  // Three width-2 jobs overlapping at time 1 with g = 3: one machine
  // cannot hold them.
  const busy::WeightedInstance overloaded(
      {{{0.0, 2.0, 2.0}, 2}, {{0.5, 2.5, 2.0}, 2}, {{0.8, 2.8, 2.0}, 2}}, 3);
  const Solution sol = registry.run(
      "busy/weighted-bogus", engine::make_weighted_instance(overloaded));
  EXPECT_TRUE(sol.ok);
  EXPECT_FALSE(sol.feasible);
  EXPECT_FALSE(sol.message.empty());
}

class AdapterGuarantees : public ::testing::TestWithParam<int> {};

TEST_P(AdapterGuarantees, WeightedSolversRespectFactorsAgainstExact) {
  const core::SolverRegistry& registry = engine::shared_registry();
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6367ULL);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 9));
    const int g = static_cast<int>(rng.uniform_int(2, 5));
    const ProblemInstance inst =
        weighted_instance(rng.uniform_int(1, 1 << 20), n, g);

    const Solution exact = registry.run("busy/weighted-exact", inst);
    ASSERT_TRUE(exact.ok && exact.feasible) << exact.message;
    ASSERT_TRUE(exact.exact);
    const double opt = exact.cost;
    EXPECT_GE(opt, inst.extension->lower_bound() - kEps);

    for (const Solution& sol : registry.run_applicable(inst)) {
      ASSERT_TRUE(sol.ok) << sol.solver << ": " << sol.message;
      EXPECT_TRUE(sol.feasible) << sol.solver << ": " << sol.message;
      EXPECT_GE(sol.cost, opt - kEps)
          << sol.solver << " beat the exact optimum";
      const core::Solver* solver = registry.find(sol.solver);
      ASSERT_NE(solver, nullptr);
      if (solver->guarantee_factor > 0.0) {
        EXPECT_LE(sol.cost, solver->guarantee_factor * opt + kEps)
            << sol.solver << " violates its declared guarantee";
      }
    }
  }
}

TEST_P(AdapterGuarantees, WeightedFlexiblePipelineStaysFeasible) {
  const core::SolverRegistry& registry = engine::shared_registry();
  const ProblemInstance inst = weighted_instance(
      static_cast<std::uint64_t>(GetParam()) * 131ULL + 7, 8, 4, 1.5);
  ASSERT_EQ(inst.kind, InstanceKind::kWeighted);
  ASSERT_FALSE(engine::weighted_of(inst).all_interval_jobs(1e-6));
  const Solution sol = registry.run("busy/weighted-flexible", inst);
  ASSERT_TRUE(sol.ok) << sol.message;
  EXPECT_TRUE(sol.feasible) << sol.message;
  EXPECT_GE(sol.cost, engine::weighted_of(inst).mass_lower_bound() - kEps);
}

TEST_P(AdapterGuarantees, MultiWindowGeneratorIsFeasibleAndExactMatches) {
  const core::SolverRegistry& registry = engine::shared_registry();
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 90001ULL);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    const int g = static_cast<int>(rng.uniform_int(1, 3));
    const ProblemInstance inst =
        multi_window_instance(rng.uniform_int(1, 1 << 20), n, g);
    const active::MultiWindowInstance& mw = engine::multi_window_of(inst);
    ASSERT_TRUE(mw.structurally_valid());

    // Feasible by construction: the minimal-feasible heuristic must find a
    // schedule, and the registry must validate it.
    const Solution minimal =
        registry.run("active/multi-window-minimal", inst);
    ASSERT_TRUE(minimal.ok) << minimal.message;
    EXPECT_TRUE(minimal.feasible) << minimal.message;

    const Solution exact = registry.run("active/multi-window-exact", inst);
    if (!exact.ok) continue;  // candidate-slot gate may decline
    EXPECT_TRUE(exact.feasible) << exact.message;
    EXPECT_TRUE(exact.exact);
    EXPECT_LE(exact.cost, minimal.cost + kEps);
    EXPECT_EQ(static_cast<long>(exact.cost), active::mw_brute_force_opt(mw));
    EXPECT_GE(exact.cost, inst.extension->lower_bound() - kEps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdapterGuarantees, ::testing::Range(1, 6));

TEST(Adapters, RunInstanceDerivesExtendedLowerBounds) {
  // With the exact oracle in the subset, the bound is its certificate.
  const ProblemInstance inst = weighted_instance(11, 6, 3);
  engine::RunOptions all;
  const engine::RunReport certified =
      engine::run_instance(engine::shared_registry(), inst, all);
  EXPECT_EQ(certified.lower_bound.kind, "exact");

  // Restricted to heuristics, the model's own combinatorial bound steps in.
  engine::RunOptions heuristics_only;
  heuristics_only.solvers = {"busy/weighted-first-fit"};
  const engine::RunReport modeled = engine::run_instance(
      engine::shared_registry(), inst, heuristics_only);
  EXPECT_EQ(modeled.lower_bound.kind, "model");
  EXPECT_GT(modeled.lower_bound.value, 0.0);
}

TEST(Adapters, GeneratorsAreSeedDeterministic) {
  for (int seed = 1; seed <= 3; ++seed) {
    const ProblemInstance a =
        weighted_instance(static_cast<std::uint64_t>(seed), 8, 4);
    const ProblemInstance b =
        weighted_instance(static_cast<std::uint64_t>(seed), 8, 4);
    const busy::WeightedInstance& wa = engine::weighted_of(a);
    const busy::WeightedInstance& wb = engine::weighted_of(b);
    ASSERT_EQ(wa.size(), wb.size());
    for (int j = 0; j < wa.size(); ++j) {
      EXPECT_EQ(wa.job(j).job.release, wb.job(j).job.release);
      EXPECT_EQ(wa.job(j).job.length, wb.job(j).job.length);
      EXPECT_EQ(wa.job(j).width, wb.job(j).width);
    }
  }
}

}  // namespace
}  // namespace abt
